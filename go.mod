module lemonade

go 1.22
