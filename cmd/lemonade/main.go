// Command lemonade is the CLI front end of the library.
//
// Subcommands:
//
//	dse     — explore the design space for a device model and usage target
//	sim     — Monte-Carlo a design's empirical access bounds
//	otp     — analyze a one-time-pad parameter point (Eqs 9–15)
//	attack  — run the brute-force race against a design
//	wearattack — targeted-wearout attack vs the wear-leveling defense
//
// Every subcommand takes -seed for reproducibility.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"lemonade/internal/attack"
	"lemonade/internal/connection"
	"lemonade/internal/dse"
	"lemonade/internal/figures"
	"lemonade/internal/montecarlo"
	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "dse":
		err = runDSE(os.Args[2:])
	case "sim":
		err = runSim(os.Args[2:])
	case "otp":
		err = runOTP(os.Args[2:])
	case "attack":
		err = runAttack(os.Args[2:])
	case "wearattack":
		err = runWearAttack(os.Args[2:])
	case "fit":
		err = runFit(os.Args[2:])
	case "frontier":
		err = runFrontier(os.Args[2:])
	case "chipplan":
		err = runChipPlan(os.Args[2:])
	case "plan":
		err = runPlan(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lemonade: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lemonade:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lemonade <dse|sim|otp|attack|wearattack|fit|plan|chipplan> [flags]

  dse    -alpha 14 -beta 8 -lab 91250 -kfrac 0.1 [-upper N] [-minwork .99] [-overrun .01]
  sim    -alpha 12 -beta 8 -lab 100 -kfrac 0.1 [-trials 200] [-seed 1]
  otp    -alpha 10 -beta 1 -height 8 -copies 128 -k 8
  attack -alpha 12 -beta 8 -lab 200 -kfrac 0.1 [-trials 20] [-seed 1]
  wearattack                                                       (Extension E4: attack vs wear leveling)
  fit    -alpha 14 -beta 8 -samples 3000 [-cutoff 100] [-seed 1]   (characterize a lot, then design)
  plan   -alpha 14 -beta 8 -daily 500 [-years 5]                   (M-way replication plan, §4.1.5)
  chipplan -messages 100 -size 256 [-copies 128 -k 8]              (size a one-time-pad chip)
  frontier -alpha 14 -beta 12 -lab 1000 -kfrac 0 [-limit 12]       (all feasible designs)`)
}

func specFlags(fs *flag.FlagSet) func() (dse.Spec, error) {
	alpha := fs.Float64("alpha", 14, "Weibull scale (mean lifetime, cycles)")
	beta := fs.Float64("beta", 8, "Weibull shape (consistency)")
	lab := fs.Int("lab", 91250, "legitimate access bound")
	upper := fs.Int("upper", 0, "upper-bound target (0 = wear out right after LAB)")
	kfrac := fs.Float64("kfrac", 0.1, "encoding threshold fraction (0 = no encoding)")
	minWork := fs.Float64("minwork", 0.99, "per-copy reliability requirement")
	overrun := fs.Float64("overrun", 0.01, "per-copy max overrun probability")
	return func() (dse.Spec, error) {
		d, err := weibull.New(*alpha, *beta)
		if err != nil {
			return dse.Spec{}, err
		}
		return dse.Spec{
			Dist:        d,
			Criteria:    reliability.Criteria{MinWork: *minWork, MaxOverrun: *overrun},
			LAB:         *lab,
			UpperBound:  *upper,
			KFrac:       *kfrac,
			ContinuousT: true,
		}, nil
	}
}

func runDSE(args []string) error {
	fs := flag.NewFlagSet("dse", flag.ExitOnError)
	getSpec := specFlags(fs)
	keyBits := fs.Int("keybits", 256, "protected secret size for area accounting")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := getSpec()
	if err != nil {
		return err
	}
	d, err := dse.Explore(spec)
	if err != nil {
		return err
	}
	fmt.Println(d)
	fmt.Printf("  per-copy target T        = %d accesses (%.2f continuous)\n", d.T, d.TReal)
	fmt.Printf("  per-copy upper bound     = %d accesses\n", d.UpperT)
	fmt.Printf("  copies                   = %d\n", d.Copies)
	fmt.Printf("  devices per structure    = %d (k = %d)\n", d.N, d.K)
	fmt.Printf("  total devices            = %d\n", d.TotalDevices)
	fmt.Printf("  guaranteed min accesses  = %d\n", d.GuaranteedMinAccesses())
	fmt.Printf("  max allowed accesses     = %d\n", d.MaxAllowedAccesses())
	fmt.Printf("  per-copy work prob       = %.6f\n", d.WorkProb)
	fmt.Printf("  per-copy overrun prob    = %.2e\n", d.OverrunProb)
	fmt.Printf("  area                     = %.4g mm²\n", d.Area(*keyBits).Mm2())
	fmt.Printf("  energy per access        = %.3g J\n", float64(d.EnergyPerAccess()))
	fmt.Printf("  switching latency        = %.0f ns\n", d.LatencyPerAccess().Ns())
	return nil
}

func runSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ExitOnError)
	getSpec := specFlags(fs)
	trials := fs.Int("trials", 200, "Monte-Carlo trials")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := getSpec()
	if err != nil {
		return err
	}
	d, err := dse.Explore(spec)
	if err != nil {
		return err
	}
	fmt.Println(d)
	sum, err := montecarlo.RunParallel(context.Background(), *seed, *trials, func(r *rng.RNG) float64 {
		copies := make([]structure.Structure, d.Copies)
		for i := range copies {
			p, err := structure.NewParallel(spec.Dist, d.N, d.K, r)
			if err != nil {
				panic(err)
			}
			copies[i] = p
		}
		sys := structure.NewSerialCopies(copies)
		return float64(structure.CountSuccessfulAccesses(sys, nems.RoomTemp, d.MaxAllowedAccesses()*3))
	})
	if err != nil {
		return err
	}
	fmt.Printf("  empirical total accesses: %v\n", sum)
	fmt.Printf("  min observed / LAB      : %g / %d\n", sum.Min, spec.LAB)
	fmt.Printf("  max observed / allowed  : %g / %d\n", sum.Max, d.MaxAllowedAccesses())
	fmt.Printf("  quantiles p01/p50/p99   : %.0f / %.0f / %.0f\n",
		sum.Quantile(0.01), sum.Median(), sum.Quantile(0.99))
	return nil
}

func runOTP(args []string) error {
	fs := flag.NewFlagSet("otp", flag.ExitOnError)
	alpha := fs.Float64("alpha", 10, "Weibull scale")
	beta := fs.Float64("beta", 1, "Weibull shape")
	height := fs.Int("height", 8, "decision-tree height H")
	copies := fs.Int("copies", 128, "tree copies n")
	k := fs.Int("k", 8, "Shamir threshold")
	chip := fs.Float64("chip", 1, "chip area in mm² for density")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := weibull.New(*alpha, *beta)
	if err != nil {
		return err
	}
	p := otp.Params{Dist: d, Height: *height, Copies: *copies, K: *k}
	if err := p.Validate(); err != nil {
		return err
	}
	fmt.Printf("one-time pad %s H=%d n=%d k=%d\n", d, p.Height, p.Copies, p.K)
	fmt.Printf("  candidate keys per tree  = %d\n", p.Paths())
	fmt.Printf("  key size                 = %d bits\n", p.KeyBits())
	fmt.Printf("  path success (Eq 9/12)   = %.6f\n", p.PathSuccessProb())
	fmt.Printf("  receiver success (Eq 10) = %.6f\n", p.ReceiverSuccess())
	fmt.Printf("  adversary success (Eq15) = %.3e\n", p.AdversarySuccess())
	fmt.Printf("  retrieval latency        = %.5f ms\n", p.RetrievalLatency().Ms())
	fmt.Printf("  retrieval energy         = %.3g J\n", float64(p.RetrievalEnergy()))
	fmt.Printf("  pads per %.3g mm² chip    = %d\n", *chip, p.PadsPerChip(*chip))
	return nil
}

func runAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	getSpec := specFlags(fs)
	trials := fs.Int("trials", 20, "race trials")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := getSpec()
	if err != nil {
		return err
	}
	d, err := dse.Explore(spec)
	if err != nil {
		return err
	}
	curve := password.UrEtAl()
	fmt.Println(d)
	fmt.Printf("  analytic crack probability at the hardware bound: %.3e\n",
		attack.BruteForceAnalytic(d, curve))
	cracked := 0
	base := rng.New(*seed)
	for i := 0; i < *trials; i++ {
		out, err := attack.BruteForce(context.Background(), d, curve, base.Derive(fmt.Sprintf("race-%d", i)))
		if err != nil {
			return err
		}
		state := "locked out"
		if out.Cracked {
			state = "CRACKED"
			cracked++
		}
		fmt.Printf("  race %2d: %s after %d attempts (user rank %d)\n", i, state, out.Attempts, out.UserRank)
	}
	fmt.Printf("  cracked %d/%d races\n", cracked, *trials)
	return nil
}

func runWearAttack(args []string) error {
	fs := flag.NewFlagSet("wearattack", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The experiment is fully seeded inside the figures package, so the
	// printed table is bit-identical across runs and machines.
	fmt.Println(figures.WearLevelingDefense().Render())
	return nil
}

func runFit(args []string) error {
	fs := flag.NewFlagSet("fit", flag.ExitOnError)
	alpha := fs.Float64("alpha", 14, "true Weibull scale of the simulated lot")
	beta := fs.Float64("beta", 8, "true Weibull shape of the simulated lot")
	cvAlpha := fs.Float64("cvalpha", 0, "per-device alpha variation (coefficient of variation)")
	cvBeta := fs.Float64("cvbeta", 0, "per-device beta variation")
	samples := fs.Int("samples", 3000, "devices to cycle to failure")
	cutoff := fs.Uint64("cutoff", 100, "censoring cutoff in cycles")
	lab := fs.Int("lab", 91250, "usage target for the follow-on design")
	kfrac := fs.Float64("kfrac", 0.1, "encoding threshold fraction")
	seed := fs.Uint64("seed", 1, "RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	truth, err := weibull.New(*alpha, *beta)
	if err != nil {
		return err
	}
	lot := nems.NewPopulation(truth, *cvAlpha, *cvBeta, rng.New(*seed))
	fmt.Printf("characterizing a lot of %s (%d samples, cutoff %d cycles)\n", truth, *samples, *cutoff)
	obs := lot.MeasureLifetimes(*samples, *cutoff)
	censored := 0
	for _, o := range obs {
		if o.Censored {
			censored++
		}
	}
	fitted, err := weibull.Fit(obs)
	if err != nil {
		return err
	}
	fmt.Printf("  observed failures  : %d (%d censored at cutoff)\n", *samples-censored, censored)
	fmt.Printf("  fitted model       : %s\n", fitted)
	fmt.Printf("  fitted mean / true : %.2f / %.2f cycles\n", fitted.Mean(), truth.Mean())
	spec := dse.Spec{
		Dist:        fitted,
		Criteria:    reliability.DefaultCriteria,
		LAB:         *lab,
		KFrac:       *kfrac,
		ContinuousT: true,
	}
	d, err := dse.Explore(spec)
	if err != nil {
		return fmt.Errorf("design from fitted model: %w", err)
	}
	fmt.Printf("  design from fit    : %v\n", d)
	return nil
}

func runPlan(args []string) error {
	fs := flag.NewFlagSet("plan", flag.ExitOnError)
	getSpec := specFlags(fs)
	daily := fs.Int("daily", 500, "required unlocks per day")
	years := fs.Float64("years", 5, "deployment lifetime in years")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := getSpec()
	if err != nil {
		return err
	}
	design, err := dse.Explore(spec)
	if err != nil {
		return err
	}
	plan, err := connection.PlanMWay(design, *daily, time.Duration(*years*365*24)*time.Hour)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	fmt.Printf("  per-module design : %v\n", design)
	fmt.Printf("  lifetime accesses : %d\n", plan.TotalAccesses)
	fmt.Printf("  user burden       : new passcode + storage re-encryption every %.1f months\n",
		plan.MigrateEvery.Hours()/24/30)
	return nil
}

func runChipPlan(args []string) error {
	fs := flag.NewFlagSet("chipplan", flag.ExitOnError)
	alpha := fs.Float64("alpha", 10, "Weibull scale")
	beta := fs.Float64("beta", 1, "Weibull shape")
	messages := fs.Int("messages", 100, "messages the chip must support")
	size := fs.Int("size", 256, "max message size in bytes")
	copies := fs.Int("copies", 128, "tree copies per pad")
	k := fs.Int("k", 8, "Shamir threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	d, err := weibull.New(*alpha, *beta)
	if err != nil {
		return err
	}
	plan, err := otp.PlanChip(d, *messages, *size, *copies, *k)
	if err != nil {
		return err
	}
	fmt.Println(plan)
	fmt.Printf("  tree height          = %d (%d candidate keys per pad)\n",
		plan.Params.Height, plan.Params.Paths())
	fmt.Printf("  per-message capacity = %d bytes\n", plan.MaxMessageBytes)
	fmt.Printf("  chip area            = %.4g mm²\n", plan.AreaMm2)
	fmt.Printf("  retrieval latency    = %.4f ms\n", plan.Params.RetrievalLatency().Ms())
	fmt.Printf("  receiver success     = %.6f\n", plan.ReceiverSuccess)
	fmt.Printf("  adversary success    = %.3e\n", plan.AdversarySucces)
	return nil
}

func runFrontier(args []string) error {
	fs := flag.NewFlagSet("frontier", flag.ExitOnError)
	getSpec := specFlags(fs)
	limit := fs.Int("limit", 12, "show at most this many designs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := getSpec()
	if err != nil {
		return err
	}
	spec.ContinuousT = false // the frontier enumerates integer targets
	frontier, err := dse.ExploreFrontier(context.Background(), spec)
	if err != nil {
		return err
	}
	fmt.Printf("%d feasible designs (best first):\n", len(frontier))
	for i, d := range frontier {
		if i >= *limit {
			fmt.Printf("  ... %d more\n", len(frontier)-*limit)
			break
		}
		fmt.Printf("  T=%-4d copies=%-6d n=%-8d k=%-6d total=%d\n",
			d.T, d.Copies, d.N, d.K, d.TotalDevices)
	}
	return nil
}
