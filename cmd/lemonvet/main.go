// Command lemonvet runs the repo-specific static-analysis suite from
// internal/analysis over the given packages (default ./...): the five
// local determinism passes plus the whole-program concurrency and
// durability passes (guardedby, lockorder, logahead, ctxflow) built on
// the stdlib-only call graph.
//
// Usage:
//
//	go run ./cmd/lemonvet [-json] [-strict-suppress] [packages...]
//
// It exits 0 when every check passes, 1 when there are unsuppressed
// findings (or, with -strict-suppress, stale //lemonvet:allow comments),
// and 2 when the packages cannot be loaded (parse or type errors).
// Findings print as file:line:col: [analyzer] message, or as a JSON array
// with -json. Suppress an individual finding with a trailing or
// immediately-preceding comment:
//
//	//lemonvet:allow <analyzer> <reason>
//
// -strict-suppress additionally fails the run when an allow comment
// suppresses nothing (stale) or names an unknown analyzer, keeping the
// suppression inventory honest.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lemonade/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	strictSuppress := flag.Bool("strict-suppress", false, "fail on stale or unknown //lemonvet:allow comments")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lemonvet [-json] [-strict-suppress] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lemonvet:", err)
		os.Exit(2)
	}

	res := analysis.Run(pkgs)
	findings := res.Findings
	if *strictSuppress {
		findings = append(findings, res.Stale...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lemonvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "lemonvet: %d packages, %d findings, %d suppressed, %d stale allows\n",
			res.Packages, len(res.Findings), res.Suppressed, len(res.Stale))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
