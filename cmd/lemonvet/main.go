// Command lemonvet runs the repo-specific static-analysis suite from
// internal/analysis over the given packages (default ./...).
//
// Usage:
//
//	go run ./cmd/lemonvet [-json] [packages...]
//
// It exits 0 when every check passes, 1 when there are unsuppressed
// findings, and 2 when the packages cannot be loaded (parse or type
// errors). Findings print as file:line:col: [analyzer] message, or as a
// JSON array with -json. Suppress an individual finding with a trailing or
// immediately-preceding comment:
//
//	//lemonvet:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lemonade/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lemonvet [-json] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lemonvet:", err)
		os.Exit(2)
	}

	var findings []analysis.Finding
	suppressed := 0
	for _, pkg := range pkgs {
		analyzers := analysis.AnalyzersFor(pkg.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		fs, sup := analysis.Check(pkg, analyzers)
		findings = append(findings, fs...)
		suppressed += sup
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lemonvet:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Fprintf(os.Stderr, "lemonvet: %d packages, %d findings, %d suppressed\n",
			len(pkgs), len(findings), suppressed)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
