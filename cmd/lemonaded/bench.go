package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"lemonade/internal/bench"
)

// runBench runs the lemonbench macro-benchmark suite, or — with the
// "compare" verb — gates one report against another:
//
//	lemonaded bench [-seed n] [-n reps] [-warmup reps] [-filter substr]
//	                [-json] [-out file] [-quiet]
//	lemonaded bench compare OLD.json NEW.json [-threshold f] [-sigma f]
//	                [-floor-us n]
//
// compare exits non-zero when the new report regresses, printing one
// line per offending metric.
func runBench(args []string) error {
	if len(args) > 0 && args[0] == "compare" {
		return runBenchCompare(args[1:])
	}
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	seed := fs.Uint64("seed", 42, "workload seed (same seed, same machine => identical non-timing fields)")
	n := fs.Int("n", 10, "measured repetitions per metric")
	warmup := fs.Int("warmup", 2, "discarded warmup repetitions per metric")
	filter := fs.String("filter", "", "only run metrics whose name contains this substring")
	jsonOut := fs.Bool("json", false, "write the report as JSON to stdout")
	out := fs.String("out", "", "also write the report to this file")
	quiet := fs.Bool("quiet", false, "suppress per-metric progress on stderr")
	scratch := fs.String("scratch", "", "directory for WAL scratch data (default: OS temp dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("bench: unexpected argument %q (did you mean 'bench compare OLD NEW'?)", fs.Arg(0))
	}

	cfg := bench.Config{
		Seed:   *seed,
		N:      *n,
		Warmup: *warmup,
		Filter: *filter,
		// The benchmark clock is the composition root's monotonic clock:
		// cmd/ is exempt from the library determinism contract.
		NowNanos: func() int64 { return time.Now().UnixNano() },
		Scratch:  *scratch,
	}
	if !*quiet {
		cfg.Log = func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		}
	}

	rep, err := bench.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	rep.GitSHA = gitSHA()

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lemonaded: wrote %s (%d metrics)\n", *out, len(rep.Results))
	}
	if *jsonOut {
		return rep.Encode(os.Stdout)
	}
	return nil
}

// runBenchCompare loads two reports and applies the noise-aware gate.
func runBenchCompare(args []string) error {
	fs := flag.NewFlagSet("bench compare", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.10, "relative median-shift threshold")
	sigma := fs.Float64("sigma", 3, "pooled-stddev multiplier in the noise term")
	floorUS := fs.Float64("floor-us", 20, "absolute noise floor in microseconds")
	noRatchet := fs.Bool("no-ratchet", false, "disable the absolute allocs/op ceilings on the codec and simulation metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("bench compare: want exactly two report files, got %d", fs.NArg())
	}
	old, err := bench.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := bench.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	ceilings := bench.DefaultAllocCeilings
	if *noRatchet {
		ceilings = nil
	}
	regs, err := bench.Compare(old, cur, bench.CompareOpts{
		RelThreshold:  *threshold,
		SigmaFactor:   *sigma,
		MinDeltaNanos: *floorUS * 1000,
		AllocCeilings: ceilings,
	})
	if err != nil {
		return err
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("bench compare: %d regression(s) between %s and %s",
			len(regs), fs.Arg(0), fs.Arg(1))
	}
	fmt.Fprintf(os.Stderr, "bench compare: OK — %d metrics within thresholds (%s vs %s)\n",
		len(old.Results), fs.Arg(0), fs.Arg(1))
	return nil
}

// gitSHA stamps reports with the working tree's commit; benchmarking
// outside a git checkout is fine, the field just stays empty.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
