// Command lemonaded runs the lemonade key-access service: an HTTP daemon
// that provisions simulated limited-use architectures and serves
// wearout-consuming accesses against them.
//
// Subcommands:
//
//	serve    — run the daemon (default when flags are given directly)
//	loadgen  — drive a running daemon with concurrent access traffic
//	bench    — run the lemonbench macro-benchmark suite / gate two reports
//
// With -data-dir the daemon is durable: every provision and access is
// appended to a write-ahead log before the hardware fires (the log-ahead
// rule), snapshots compact the log periodically, and startup recovers
// the exact wearout state — a process restart never refreshes a budget.
//
// The daemon drains gracefully: SIGINT/SIGTERM stop the listener and wait
// for in-flight requests (bounded by -drain-timeout) before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lemonade/api"
	"lemonade/internal/cluster"
	"lemonade/internal/fault"
	"lemonade/internal/metrics"
	"lemonade/internal/registry"
	"lemonade/internal/resilience"
	"lemonade/internal/server"
	"lemonade/internal/wal"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "serve":
		err = runServe(args)
	case "loadgen":
		err = runLoadgen(args)
	case "bench":
		err = runBench(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lemonaded: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lemonaded: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lemonaded [serve|loadgen|bench] [flags]

serve   [-addr host:port] [-addr-file path] [-shards n] [-cache n] [-drain-timeout d]
        [-data-dir path] [-snapshot-interval d] [-snapshot-records n]
        [-breaker-threshold n] [-breaker-cooldown d] [-access-timeout d]
        [-max-concurrent-access n] [-access-queue n]
        [-node-name name -ring-nodes name=url,... [-ring-seed n]]
loadgen -base URL [-workers n] [-seed n] [-alpha a] [-beta b] [-lab n] [-kfrac f]
loadgen -cluster name=url,... [-ring-seed n] [-share-k k] [-share-n n] [-workers n] ...
bench   [-seed n] [-n reps] [-warmup reps] [-filter substr] [-json] [-out file]
bench   compare OLD.json NEW.json [-threshold f] [-sigma f] [-floor-us n]
`)
}

// runServe starts the daemon and blocks until a signal drains it.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using :0)")
	shards := fs.Int("shards", 0, "registry stripe count (0 = default)")
	cacheSize := fs.Int("cache", 0, "DSE design cache capacity (0 = default)")
	drain := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	dataDir := fs.String("data-dir", "", "durable state directory (empty = in-memory, no persistence)")
	snapInterval := fs.Duration("snapshot-interval", time.Minute, "max time between snapshots (with -data-dir)")
	snapRecords := fs.Int("snapshot-records", 4096, "WAL records that trigger a snapshot (with -data-dir)")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive store failures that open the circuit breaker (with -data-dir)")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "how long the breaker stays open before probing the store")
	accessTimeout := fs.Duration("access-timeout", 10*time.Second, "per-request deadline on the access path (0 = none)")
	maxAccess := fs.Int("max-concurrent-access", 256, "concurrent accesses before requests queue")
	accessQueue := fs.Int("access-queue", 1024, "queued accesses before requests are shed with 503")
	nodeName := fs.String("node-name", "", "this node's name in the cluster ring (enables cluster mode)")
	ringNodes := fs.String("ring-nodes", "", "cluster membership as name=url,name=url,... (with -node-name)")
	ringSeed := fs.Uint64("ring-seed", 42, "placement ring seed; must match every node and client")
	// Deliberately absent from usage(): chaos mode exists for
	// scripts/chaos.sh and fault-injection experiments, not operators.
	chaos := fs.String("chaos", "", "inject deterministic storage faults: seed=N[,ops=N][,density=F] (requires -data-dir)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Cluster identity: the ring is configuration, not discovery — every
	// node and every client must be handed the same (members, seed) pair
	// or provisions are refused as misrouted (421).
	var clusterNode *cluster.Node
	if *nodeName != "" || *ringNodes != "" {
		if *nodeName == "" || *ringNodes == "" {
			return fmt.Errorf("cluster mode needs both -node-name and -ring-nodes")
		}
		members, err := parseNodeList(*ringNodes)
		if err != nil {
			return err
		}
		clusterNode, err = cluster.NewNode(cluster.Config{Self: *nodeName, Nodes: members, Seed: *ringSeed})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "lemonaded: cluster node %q in a %d-node ring (seed %d)\n",
			*nodeName, clusterNode.Ring().Size(), *ringSeed)
	}

	// The daemon is the composition root: the wall clock enters here
	// (cmd/ is exempt from the library determinism contract).
	wallNanos := func() int64 { return time.Now().UnixNano() }

	// One metric registry shared by the WAL store and the server, so
	// recovery and fsync instrumentation shows up on /metrics.
	met := metrics.NewRegistry()

	// Chaos mode: route the WAL through a deterministic fault injector.
	var storeFS fault.FS = fault.OS{}
	if *chaos != "" {
		if *dataDir == "" {
			return fmt.Errorf("-chaos requires -data-dir (faults target the durable store)")
		}
		plan, err := fault.ParsePlan(*chaos)
		if err != nil {
			return err
		}
		storeFS = fault.NewInjector(fault.OS{}, plan, fault.WithSleep(time.Sleep))
		fmt.Fprintf(os.Stderr, "lemonaded: CHAOS MODE: seed %d, %d faults scheduled against the durable store\n",
			plan.Seed, len(plan.Rules))
	}

	var reg *registry.Registry
	var store *wal.DiskStore
	var breaker *resilience.Breaker
	if *dataDir != "" {
		var err error
		store, err = wal.Open(wal.Config{
			Dir:               *dataDir,
			NowNanos:          wallNanos,
			Metrics:           met,
			SnapshotThreshold: *snapRecords,
			FS:                storeFS,
		})
		if err != nil {
			return fmt.Errorf("opening data dir: %w", err)
		}
		// The registry writes through the breaker: sustained store failure
		// flips the daemon into degraded read-only mode instead of burning
		// a doomed fsync per request.
		breaker = resilience.NewBreaker(resilience.BreakerConfig{
			Store:            store,
			FailureThreshold: *breakerThreshold,
			Cooldown:         *breakerCooldown,
			NowNanos:         wallNanos,
			Metrics:          met,
		})
		reg = registry.NewWithStore(*shards, breaker)
		stats, err := store.Recover(reg)
		if err != nil {
			return fmt.Errorf("recovering %s: %w", *dataDir, err)
		}
		fmt.Fprintf(os.Stderr,
			"lemonaded: recovered %s: snapshot epoch %d (%d architectures), replayed %d provisions + %d accesses from %d segments",
			*dataDir, stats.SnapshotEpoch, stats.SnapshotArchitectures,
			stats.ReplayedProvisions, stats.ReplayedAccesses, stats.Segments)
		if stats.TornBytesTruncated > 0 {
			fmt.Fprintf(os.Stderr, ", truncated %d torn bytes", stats.TornBytesTruncated)
		}
		fmt.Fprintln(os.Stderr)
	}

	s := server.New(server.Config{
		Registry:  reg,
		Shards:    *shards,
		Metrics:   met,
		CacheSize: *cacheSize,
		NowNanos:  wallNanos,
		Breaker:   breaker,
		Shedder: resilience.NewShedder(resilience.ShedderConfig{
			MaxConcurrent: *maxAccess,
			MaxQueue:      *accessQueue,
			Metrics:       met,
		}),
		AccessTimeout: *accessTimeout,
		Cluster:       clusterNode,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing addr-file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "lemonaded: listening on %s\n", bound)

	// Snapshot loop: compact when the WAL grows past the record
	// threshold or the interval elapses, whichever comes first.
	snapDone := make(chan struct{})
	var snapWG sync.WaitGroup
	if store != nil {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			ticker := time.NewTicker(*snapInterval)
			defer ticker.Stop()
			for {
				select {
				case <-snapDone:
					return
				case <-ticker.C:
					if store.RecordsSinceSnapshot() == 0 {
						continue // nothing new to compact
					}
				case <-store.SnapshotNeeded():
				}
				if err := store.Snapshot(s.Registry()); err != nil {
					fmt.Fprintf(os.Stderr, "lemonaded: snapshot: %v\n", err)
				}
			}
		}()
	}

	httpSrv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard
	fmt.Fprintln(os.Stderr, "lemonaded: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if store != nil {
		close(snapDone)
		snapWG.Wait()
		// A parting snapshot keeps the next startup's replay short; the
		// WAL already holds everything, so failure here loses nothing.
		if store.RecordsSinceSnapshot() > 0 {
			if err := store.Snapshot(s.Registry()); err != nil {
				fmt.Fprintf(os.Stderr, "lemonaded: final snapshot: %v\n", err)
			}
		}
		if err := store.Close(); err != nil {
			return fmt.Errorf("closing store: %w", err)
		}
	}
	fmt.Fprintln(os.Stderr, "lemonaded: stopped")
	return nil
}

// runLoadgen provisions one architecture on a running daemon and races
// concurrent workers against it until lockout, reporting what each
// worker observed — a live demonstration of the concurrent budget
// invariant (and a handy smoke/load tool).
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	base := fs.String("base", "http://127.0.0.1:8080", "daemon base URL")
	workers := fs.Int("workers", 8, "concurrent access workers")
	seed := fs.Uint64("seed", 42, "fabrication seed")
	alpha := fs.Float64("alpha", 6, "Weibull mean lifetime (cycles)")
	beta := fs.Float64("beta", 8, "Weibull shape")
	lab := fs.Int("lab", 30, "lower access bound")
	kfrac := fs.Float64("kfrac", 0.1, "encoding fraction (0 = unencoded)")
	secretHex := fs.String("secret", "00112233445566778899aabbccddeeff", "secret to protect (hex)")
	clusterNodes := fs.String("cluster", "", "drive a cluster instead: membership as name=url,name=url,...")
	ringSeed := fs.Uint64("ring-seed", 42, "placement ring seed (with -cluster); must match the nodes")
	shareK := fs.Int("share-k", 2, "Shamir threshold: shares needed per access (with -cluster)")
	shareN := fs.Int("share-n", 0, "Shamir share count (0 = one per cluster node; with -cluster)")
	hedge := fs.Duration("hedge", 0, "hedge delay before consulting spare owners (0 = off; with -cluster)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *clusterNodes != "" {
		return runClusterLoadgen(clusterLoadgenConfig{
			nodes: *clusterNodes, ringSeed: *ringSeed,
			shareK: *shareK, shareN: *shareN, hedge: *hedge,
			workers: *workers, seed: *seed, secretHex: *secretHex,
			spec: api.SpecRequest{Alpha: *alpha, Beta: *beta, LAB: *lab, KFrac: *kfrac, ContinuousT: true},
		})
	}

	client, err := api.NewClient(*base, api.WithTimeout(30*time.Second))
	if err != nil {
		return err
	}
	ctx := context.Background()

	prov, err := client.Provision(ctx, api.ProvisionRequest{
		Spec: api.SpecRequest{
			Alpha: *alpha, Beta: *beta, LAB: *lab,
			KFrac: *kfrac, ContinuousT: true,
		},
		SecretHex: *secretHex,
		Seed:      *seed,
	})
	if err != nil {
		return fmt.Errorf("provision: %w", err)
	}
	fmt.Printf("provisioned %s: %d devices, designed window [%d, %d] accesses\n",
		prov.ID, prov.Design.TotalDevices,
		prov.Design.GuaranteedMinAccesses, prov.Design.MaxAllowedAccesses)

	var successes, transients atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := client.Access(ctx, prov.ID, api.AccessRequest{})
				switch {
				case err == nil:
					successes.Add(1)
				case api.IsTransient(err):
					transients.Add(1)
				case api.IsExhausted(err):
					return
				default:
					fmt.Fprintf(os.Stderr, "lemonaded: access: %v\n", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("lockout after %d successful accesses (%d transients) across %d workers in %v\n",
		successes.Load(), transients.Load(), *workers, elapsed.Round(time.Millisecond))
	if n := int(successes.Load()); n < prov.Design.GuaranteedMinAccesses || n > prov.Design.MaxAllowedAccesses {
		return fmt.Errorf("successes %d outside designed window [%d, %d]",
			n, prov.Design.GuaranteedMinAccesses, prov.Design.MaxAllowedAccesses)
	}
	fmt.Println("within designed window: budget invariant held under concurrency")
	return nil
}

// clusterLoadgenConfig carries the -cluster mode parameters.
type clusterLoadgenConfig struct {
	nodes     string
	ringSeed  uint64
	shareK    int
	shareN    int
	hedge     time.Duration
	workers   int
	seed      uint64
	secretHex string
	spec      api.SpecRequest
}

// runClusterLoadgen provisions one k-of-n cluster architecture across
// the ring and races workers against it until the global lockout,
// verifying the cluster-wide budget ceiling with no coordinator on the
// read path: reveals ≤ ⌈n·M/k⌉ where M is one share's hardware budget
// (+ the per-copy overrun slack).
func runClusterLoadgen(cfg clusterLoadgenConfig) error {
	members, err := parseNodeList(cfg.nodes)
	if err != nil {
		return err
	}
	if cfg.shareN == 0 {
		cfg.shareN = len(members)
	}
	opts := []api.ClusterOption{api.WithClusterNodeOptions(api.WithTimeout(30 * time.Second))}
	if cfg.hedge > 0 {
		opts = append(opts, api.WithHedgeDelay(cfg.hedge))
	}
	cc, err := api.NewClusterClient(members, cfg.ringSeed, opts...)
	if err != nil {
		return err
	}
	ctx := context.Background()

	prov, err := cc.Provision(ctx, api.ClusterProvision{
		Spec: cfg.spec, SecretHex: cfg.secretHex, Seed: cfg.seed,
		ShareK: cfg.shareK, ShareN: cfg.shareN,
	})
	if err != nil {
		return fmt.Errorf("cluster provision: %w", err)
	}
	fmt.Printf("provisioned %s: %d-of-%d shares on %v (ring seed %d)\n",
		prov.ClusterID, prov.ShareK, prov.ShareN, prov.Owners, cfg.ringSeed)

	// One share's design gives the per-share hardware budget M; the
	// cluster-wide ceiling is ⌈n·M/k⌉ since every reveal consumes at
	// least k share successes from a pool of n·M (plus per-copy overrun
	// slack, same convention as the single-node window check).
	sts, err := cc.ShareStatuses(ctx, prov.ClusterID)
	if err != nil {
		return err
	}
	var design *api.DesignResponse
	for _, st := range sts {
		if st != nil {
			design = &st.Design
			break
		}
	}
	if design == nil {
		return fmt.Errorf("no share owner reachable for status")
	}
	perShare := design.MaxAllowedAccesses + 2*design.Copies
	ceiling := (cfg.shareN*perShare + cfg.shareK - 1) / cfg.shareK
	fmt.Printf("per-share budget %d, global ceiling %d reveals\n", perShare, ceiling)

	var reveals, transients, decodeFails atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res, err := cc.Access(ctx, prov.ClusterID, api.AccessRequest{})
				switch {
				case err == nil:
					if res.SecretHex != cfg.secretHex {
						fmt.Fprintf(os.Stderr, "lemonaded: WRONG SECRET reconstructed\n")
						return
					}
					reveals.Add(1)
				case api.IsTransient(err):
					transients.Add(1)
				case api.IsExhausted(err):
					return
				default:
					decodeFails.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("global lockout after %d reveals (%d transients, %d decode failures) across %d workers in %v\n",
		reveals.Load(), transients.Load(), decodeFails.Load(), cfg.workers, elapsed.Round(time.Millisecond))
	if n := int(reveals.Load()); n > ceiling {
		return fmt.Errorf("GLOBAL BUDGET OVERRUN: %d reveals > ceiling %d", n, ceiling)
	} else if n == 0 {
		return fmt.Errorf("no reveals before lockout — cluster misconfigured?")
	}
	fmt.Println("within global ceiling: cluster budget invariant held with no coordinator")
	return nil
}

// parseNodeList parses "name=url,name=url,..." cluster membership.
func parseNodeList(s string) (map[string]string, error) {
	members := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, url, ok := strings.Cut(kv, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad ring member %q (want name=url)", kv)
		}
		if _, dup := members[name]; dup {
			return nil, fmt.Errorf("duplicate ring member %q", name)
		}
		members[name] = url
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("empty ring member list")
	}
	return members, nil
}
