// Command lemonaded runs the lemonade key-access service: an HTTP daemon
// that provisions simulated limited-use architectures and serves
// wearout-consuming accesses against them.
//
// Subcommands:
//
//	serve    — run the daemon (default when flags are given directly)
//	loadgen  — drive a running daemon with concurrent access traffic
//
// The daemon drains gracefully: SIGINT/SIGTERM stop the listener and wait
// for in-flight requests (bounded by -drain-timeout) before exiting.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"lemonade/internal/server"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 && args[0] != "" && args[0][0] != '-' {
		cmd, args = args[0], args[1:]
	}
	var err error
	switch cmd {
	case "serve":
		err = runServe(args)
	case "loadgen":
		err = runLoadgen(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lemonaded: unknown subcommand %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lemonaded: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: lemonaded [serve|loadgen] [flags]

serve   [-addr host:port] [-addr-file path] [-shards n] [-cache n] [-drain-timeout d]
loadgen -base URL [-workers n] [-seed n] [-alpha a] [-beta b] [-lab n] [-kfrac f]
`)
}

// runServe starts the daemon and blocks until a signal drains it.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file (for scripts using :0)")
	shards := fs.Int("shards", 0, "registry stripe count (0 = default)")
	cacheSize := fs.Int("cache", 0, "DSE design cache capacity (0 = default)")
	drain := fs.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := server.New(server.Config{
		Shards:    *shards,
		CacheSize: *cacheSize,
		// The daemon is the composition root: the wall clock enters here
		// (cmd/ is exempt from the library determinism contract).
		NowNanos: func() int64 { return time.Now().UnixNano() },
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing addr-file: %w", err)
		}
	}
	fmt.Fprintf(os.Stderr, "lemonaded: listening on %s\n", bound)

	httpSrv := &http.Server{Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard
	fmt.Fprintln(os.Stderr, "lemonaded: draining...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "lemonaded: stopped")
	return nil
}

// runLoadgen provisions one architecture on a running daemon and races
// concurrent workers against it until lockout, reporting what each
// worker observed — a live demonstration of the concurrent budget
// invariant (and a handy smoke/load tool).
func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	base := fs.String("base", "http://127.0.0.1:8080", "daemon base URL")
	workers := fs.Int("workers", 8, "concurrent access workers")
	seed := fs.Uint64("seed", 42, "fabrication seed")
	alpha := fs.Float64("alpha", 6, "Weibull mean lifetime (cycles)")
	beta := fs.Float64("beta", 8, "Weibull shape")
	lab := fs.Int("lab", 30, "lower access bound")
	kfrac := fs.Float64("kfrac", 0.1, "encoding fraction (0 = unencoded)")
	secretHex := fs.String("secret", "00112233445566778899aabbccddeeff", "secret to protect (hex)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	provReq := map[string]any{
		"spec": map[string]any{
			"alpha": *alpha, "beta": *beta, "lab": *lab,
			"kfrac": *kfrac, "continuous_t": true,
		},
		"secret_hex": *secretHex,
		"seed":       *seed,
	}
	body, err := json.Marshal(provReq)
	if err != nil {
		return err
	}
	resp, err := http.Post(*base+"/v1/architectures", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("provision: %w", err)
	}
	provBody, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("provision: status %d: %s", resp.StatusCode, provBody)
	}
	var prov struct {
		ID     string `json:"id"`
		Design struct {
			GuaranteedMinAccesses int `json:"guaranteed_min_accesses"`
			MaxAllowedAccesses    int `json:"max_allowed_accesses"`
			TotalDevices          int `json:"total_devices"`
		} `json:"design"`
	}
	if err := json.Unmarshal(provBody, &prov); err != nil {
		return fmt.Errorf("provision response: %w", err)
	}
	fmt.Printf("provisioned %s: %d devices, designed window [%d, %d] accesses\n",
		prov.ID, prov.Design.TotalDevices,
		prov.Design.GuaranteedMinAccesses, prov.Design.MaxAllowedAccesses)

	var successes, transients atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	url := *base + "/v1/architectures/" + prov.ID + "/access"
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := http.Post(url, "application/json", nil)
				if err != nil {
					fmt.Fprintf(os.Stderr, "lemonaded: access: %v\n", err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					successes.Add(1)
				case http.StatusServiceUnavailable:
					transients.Add(1)
				case http.StatusGone:
					return
				default:
					fmt.Fprintf(os.Stderr, "lemonaded: access: unexpected status %d\n", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("lockout after %d successful accesses (%d transients) across %d workers in %v\n",
		successes.Load(), transients.Load(), *workers, elapsed.Round(time.Millisecond))
	if n := int(successes.Load()); n < prov.Design.GuaranteedMinAccesses || n > prov.Design.MaxAllowedAccesses {
		return fmt.Errorf("successes %d outside designed window [%d, %d]",
			n, prov.Design.GuaranteedMinAccesses, prov.Design.MaxAllowedAccesses)
	}
	fmt.Println("within designed window: budget invariant held under concurrency")
	return nil
}
