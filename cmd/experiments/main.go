// Command experiments regenerates every table and figure of the paper's
// evaluation (plus this repo's ablation/extension exhibits) and prints
// them as text or writes them as CSV files. The output backs
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-only <id>] [-csv <dir>] [-plot]
//
// where <id> is a case-insensitive substring of an exhibit ID ("fig 4a",
// "table 1", ...). With -csv, one CSV file per exhibit is written into the
// directory instead of printing text; with -plot, figures render as ASCII
// charts. Without -only, everything runs (a few tens of seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lemonade/internal/figures"
)

func main() {
	only := flag.String("only", "", "regenerate only exhibits whose ID contains this substring")
	csvDir := flag.String("csv", "", "write one CSV file per exhibit into this directory")
	plot := flag.Bool("plot", false, "render figures as ASCII charts instead of point lists")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	matched := false
	for _, e := range figures.Exhibits() {
		if *only != "" && !strings.Contains(strings.ToLower(e.ID), strings.ToLower(*only)) {
			continue
		}
		matched = true
		for i, block := range e.Gen() {
			if *csvDir == "" {
				if fig, ok := block.(figures.Figure); ok && *plot {
					fmt.Println(fig.Plot(72, 20))
					continue
				}
				fmt.Println(block.Render())
				continue
			}
			name := figures.Slug(e.ID)
			if i > 0 {
				name = fmt.Sprintf("%s-%d", name, i+1)
			}
			path := filepath.Join(*csvDir, name+".csv")
			if err := os.WriteFile(path, []byte(block.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			fmt.Println("wrote", path)
		}
		if *csvDir == "" {
			fmt.Println(strings.Repeat("-", 72))
		}
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "experiments: no exhibit matches %q\n", *only)
		os.Exit(1)
	}
}
