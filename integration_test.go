// Integration tests: end-to-end flows across the module boundaries —
// characterize → design → fabricate → operate → attack.
package lemonade_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lemonade/internal/attack"
	"lemonade/internal/connection"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// TestCharacterizeDesignBuildOperate is the full fabrication pipeline: a
// manufacturing lot is characterized by cycling sample devices to failure,
// the Weibull parameters are refit from the measurements, the DSE sizes an
// architecture from the *fitted* (not true) parameters, and the fabricated
// system still honours its usage window.
func TestCharacterizeDesignBuildOperate(t *testing.T) {
	truth := weibull.MustNew(13, 9) // the fab's secret process parameters
	r := rng.New(4242)

	// 1. Characterize: destructive lifetime testing of 3000 samples.
	lot := nems.NewPopulation(truth, 0, 0, r.Derive("lot"))
	obs := lot.MeasureLifetimes(3000, 100)
	fitted, err := weibull.Fit(obs)
	if err != nil {
		t.Fatal(err)
	}
	if fitted.Alpha < truth.Alpha-1 || fitted.Alpha > truth.Alpha+2.5 {
		t.Fatalf("characterization off: fitted %v from truth %v", fitted, truth)
	}

	// 2. Design from the fitted model.
	design, err := dse.Explore(dse.Spec{
		Dist:        fitted,
		Criteria:    reliability.DefaultCriteria,
		LAB:         60,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 3. Fabricate with the TRUE process and operate.
	trueDesign := design
	trueDesign.Spec.Dist = truth
	secret := []byte("pipeline secret")
	arch, err := core.Build(trueDesign, secret, r.Derive("fab"))
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for arch.Alive() {
		got, err := arch.Access(nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, secret) {
				t.Fatal("wrong secret")
			}
			succ++
		}
	}
	// The design was sized from an imperfect fit; allow modest slack on
	// the window but the order must hold.
	if succ < design.GuaranteedMinAccesses()*8/10 {
		t.Errorf("delivered %d accesses, designed %d", succ, design.GuaranteedMinAccesses())
	}
	if succ > design.MaxAllowedAccesses()*3 {
		t.Errorf("delivered %d accesses, far beyond designed max %d", succ, design.MaxAllowedAccesses())
	}
}

// TestSmartphoneLifecycle drives a phone through normal use, theft, brute
// force and lockout, mirroring the §4 narrative at reduced scale.
func TestSmartphoneLifecycle(t *testing.T) {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         120,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	userPass := password.PasswordString(5_000_000) // an unpopular passcode
	phone, err := connection.NewDevice(design, userPass, []byte("storage"), r)
	if err != nil {
		t.Fatal(err)
	}
	// normal use: 100 unlocks, retrying the transient copy-boundary
	// failures as the unlock protocol would
	ok := 0
	for i := 0; i < 100; i++ {
		_, err := phone.Unlock(userPass, nems.RoomTemp)
		if errors.Is(err, connection.ErrTransient) {
			_, err = phone.Unlock(userPass, nems.RoomTemp)
		}
		if err == nil {
			ok++
		}
	}
	if ok < 98 {
		t.Fatalf("owner lost %d of 100 unlocks even with retries", 100-ok)
	}
	// theft: popularity-ordered brute force
	guesses := 0
	for g := uint64(1); !phone.Locked(); g++ {
		guesses++
		if _, err := phone.Unlock(password.PasswordString(g), nems.RoomTemp); err == nil {
			t.Fatal("thief cracked an unpopular passcode within the wearout budget")
		}
		if guesses > design.MaxAllowedAccesses()*3 {
			t.Fatal("device never locked")
		}
	}
	// the remaining budget was ~20 accesses plus bounded overrun
	if guesses > design.MaxAllowedAccesses()-100+3*design.Copies {
		t.Errorf("thief got %d guesses, budget said ~%d", guesses, design.MaxAllowedAccesses()-100)
	}
	if _, err := phone.Unlock(userPass, nems.RoomTemp); !errors.Is(err, connection.ErrLocked) {
		t.Error("locked phone served the owner")
	}
}

// TestMWayLifecycle runs a 3-module device through its full life,
// migrating twice and verifying the storage survives every re-encryption.
func TestMWayLifecycle(t *testing.T) {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         40,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(777)
	storage := []byte("durable user data across migrations")
	passes := []string{"alpha", "bravo", "charlie"}
	dev, err := connection.NewMWayDevice(design, passes, storage, r)
	if err != nil {
		t.Fatal(err)
	}
	for mod := 0; mod < 3; mod++ {
		// use most of the module's budget
		for i := 0; i < 30; i++ {
			got, err := dev.Unlock(passes[mod], nems.RoomTemp)
			if err == nil && !bytes.Equal(got, storage) {
				t.Fatalf("module %d returned wrong storage", mod)
			}
		}
		if mod < 2 {
			if err := dev.Migrate(passes[mod], nems.RoomTemp, r); err != nil {
				t.Fatalf("migration %d failed: %v", mod, err)
			}
		}
	}
	got, err := dev.Unlock("charlie", nems.RoomTemp)
	if err != nil || !bytes.Equal(got, storage) {
		t.Errorf("final module unlock: %v %q", err, got)
	}
	// plan sanity: the same design supports the paper's M-way math
	plan, err := connection.PlanMWay(design, 3*40/5/365+1, 5*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Modules < 1 {
		t.Error("degenerate plan")
	}
}

// TestOTPConversationWithAdversary exchanges several messages while an
// adversary sweeps every pad once in between; the analytic design point
// must keep the channel alive and the adversary empty-handed.
func TestOTPConversationWithAdversary(t *testing.T) {
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 8, Copies: 64, K: 8}
	r := rng.New(31337)
	chip, book, err := otp.FabricateChip(p, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	maid := rng.New(666)
	delivered := 0
	for i, text := range []string{"one", "two", "three", "four"} {
		// the maid sneaks one sweep of the next pad before each message
		if _, ok := chip.Pad(i).AdversaryTrial(0, nems.RoomTemp, maid); ok {
			t.Fatal("adversary assembled a key at H=8")
		}
		msg, err := book.Encrypt([]byte(text))
		if err != nil {
			t.Fatal(err)
		}
		got, err := chip.Decrypt(msg, nems.RoomTemp)
		if err == nil {
			if !bytes.Equal(got, []byte(text)) {
				t.Fatalf("message %d corrupted", i)
			}
			delivered++
		}
	}
	if delivered < 3 {
		t.Errorf("only %d/4 messages survived light sweeping", delivered)
	}
}

// TestDepletionLeavesSecretsSafe is the §7 availability/confidentiality
// trade at integration scale.
func TestDepletionLeavesSecretsSafe(t *testing.T) {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         50,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := attack.Depletion(design, rng.New(55))
	if err != nil {
		t.Fatal(err)
	}
	if out.DataExposed {
		t.Error("depletion exposed data")
	}
	if !out.OwnerLockedOut {
		t.Error("depletion should cost availability")
	}
}

// TestFullScaleSmartphoneArchitecture is the flagship end-to-end run:
// fabricate the paper's actual design point — α=14, β=8, k=10%·n,
// LAB=91,250, ~848k simulated NEMS switches — and drive it through its
// entire life, verifying the designed usage window at full scale.
func TestFullScaleSmartphoneArchitecture(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale run (~13M switch actuations)")
	}
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("design: %v", design)
	r := rng.New(91250)
	secret := []byte("the real storage decryption key!")
	arch, err := core.Build(design, secret, r)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for arch.Alive() {
		got, err := arch.Access(nems.RoomTemp)
		if err == nil {
			succ++
			if succ == 1 && !bytes.Equal(got, secret) {
				t.Fatal("wrong secret at full scale")
			}
		}
	}
	t.Logf("delivered %d accesses (designed window %d–%d)",
		succ, design.GuaranteedMinAccesses(), design.MaxAllowedAccesses())
	// System-level min: each copy meets its target with 99% probability,
	// and shortfalls are single accesses, so the total sits within a
	// fraction of a percent of the guarantee.
	if succ < design.GuaranteedMinAccesses()-design.Copies {
		t.Errorf("full-scale run delivered %d accesses, guarantee %d", succ, design.GuaranteedMinAccesses())
	}
	// System-level max: per-copy overruns are ≤1% likely and worth a
	// couple of accesses each.
	limit := design.MaxAllowedAccesses() + design.Copies
	if succ > limit {
		t.Errorf("full-scale run delivered %d accesses, beyond %d", succ, limit)
	}
}

// TestOTPChipPlanToMessages plans a chip for a workload, fabricates it,
// and exchanges every planned message.
func TestOTPChipPlanToMessages(t *testing.T) {
	plan, err := otp.PlanChip(weibull.MustNew(10, 1), 3, 200, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(777)
	chip, book, err := otp.FabricateChip(plan.Params, plan.Pads, r)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < plan.Pads; i++ {
		text := bytes.Repeat([]byte{byte('a' + i)}, 200)
		msg, err := book.Encrypt(text)
		if err != nil {
			t.Fatal(err)
		}
		got, err := chip.Decrypt(msg, nems.RoomTemp)
		if err != nil {
			continue
		}
		if !bytes.Equal(got, text) {
			t.Fatalf("message %d corrupted", i)
		}
		delivered++
	}
	if delivered < plan.Pads-1 {
		t.Errorf("delivered %d of %d planned messages", delivered, plan.Pads)
	}
}
