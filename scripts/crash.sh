#!/usr/bin/env bash
# crash.sh — crash-recovery smoke test of the lemonaded daemon.
#
# The durability claim under test: a SIGKILL can never refresh a wearout
# budget. The script runs a durable daemon, burns part of the budget,
# kills the process dead (no drain, no final snapshot), restarts it on
# the same data directory, and drives the recovered architecture to
# lockout. Seed 42 is the golden seed, so the two phases together must
# observe EXACTLY 30 successful accesses — one fewer means recovery
# replayed too much wear, one more means it lost some.
#
# Run from the repo root; CI runs this exact script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/lemonaded" ./cmd/lemonaded

start_daemon() {
    rm -f "$workdir/addr"
    # A tiny snapshot threshold forces snapshot + segment rotation to
    # happen during the run, so recovery exercises snapshot load AND
    # tail replay, not just one of them.
    "$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
        -data-dir "$workdir/data" -snapshot-records 8 \
        >>"$workdir/log" 2>&1 &
    pid=$!
    for _ in $(seq 1 50); do
        [ -s "$workdir/addr" ] && break
        sleep 0.1
    done
    base="http://$(cat "$workdir/addr")"
}

# access_n N — perform up to N accesses; echo "<successes> <locked>".
# 503 (transient) keeps going; 410 (lockout) stops early.
access_n() {
    local ok=0 locked=0 i code
    for i in $(seq 1 "$1"); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            "$base/v1/architectures/$id/access")
        case "$code" in
            200) ok=$((ok + 1)) ;;
            503) ;;
            410) locked=1; break ;;
            *) echo "crash: unexpected status $code" >&2; exit 1 ;;
        esac
    done
    echo "$ok $locked"
}

# ---- Phase 1: burn part of the budget, then die without warning. ----
start_daemon
echo "crash: phase 1 on $base"
prov=$(curl -sf -X POST "$base/v1/architectures" -d '{
    "spec": {"alpha": 6, "beta": 8, "lab": 30, "kfrac": 0.1, "continuous_t": true},
    "secret_hex": "00112233445566778899aabbccddeeff",
    "seed": 42
}')
id=$(echo "$prov" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "crash: provision failed: $prov"; exit 1; }
read -r s1 locked <<<"$(access_n 17)"
[ "$locked" = 0 ] || { echo "crash: locked out already in phase 1"; exit 1; }
echo "crash: $s1 successes in 17 attempts, killing daemon with SIGKILL"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true

# ---- Phase 2: restart on the same directory and finish the budget. ----
start_daemon
echo "crash: phase 2 on $base"
grep -q 'lemonaded: recovered' "$workdir/log" || {
    echo "crash: no recovery log line"; tail "$workdir/log"; exit 1
}
status=$(curl -sf "$base/v1/architectures/$id")
echo "$status" | grep -q '"attempts": 17' || {
    echo "crash: recovered state lost attempts:"; echo "$status"; exit 1
}
read -r s2 locked <<<"$(access_n 200)"
[ "$locked" = 1 ] || { echo "crash: never reached lockout after restart"; exit 1; }
echo "crash: $s2 more successes until lockout"

total=$((s1 + s2))
if [ "$total" -ne 30 ]; then
    echo "crash: FAIL — $s1 + $s2 = $total successful accesses across the crash, want exactly 30"
    exit 1
fi
echo "crash: budget held exactly across SIGKILL: $s1 + $s2 = 30"

# The recovered lockout is also durable: once dead, always dead.
# (Capture before grepping: grep -q quitting early would SIGPIPE curl
# and fail the pipeline under pipefail even on a match.)
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^lemonaded_lockouts_total 1$' || {
    echo "crash: lockout counter wrong after recovery:"
    echo "$metrics" | grep lockout
    exit 1
}
kill -TERM "$pid"
wait "$pid" || { echo "crash: daemon exited nonzero"; exit 1; }
echo "crash: PASS"
