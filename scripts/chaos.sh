#!/usr/bin/env bash
# chaos.sh — live-daemon chaos test of the fail-closed wearout guarantee.
#
# For each fixed fault seed the script runs three phases against one data
# directory:
#
#   1. CHAOS  — lemonaded serves with -chaos injecting deterministic
#      storage faults (failed fsyncs, torn writes, ENOSPC, slow ops).
#      Clients hammer the access path and tolerate 500/503; the daemon is
#      then killed dead mid-flight.
#   2. RECOVER — a clean daemon (no chaos) restarts on the battered
#      directory, must log a successful recovery, and is driven to
#      lockout. The combined successful accesses across BOTH phases must
#      not exceed the architecture's max_allowed_accesses: faults and
#      crashes may waste budget, never mint it.
#   3. REPLAY — the daemon is killed and restarted once more; the
#      architecture's status must come back byte-identical and the
#      lockout must still hold (once dead, always dead).
#
# `chaos.sh attack` runs the ATTACK phase instead: a wear-leveled
# architecture serves legitimate clients while a concurrent stress
# attacker (hot/cold cycled bursts on targeted shares) races them, with
# chaos faults still injected. The invariants: no attacker-visible
# response ever carries key bytes, total reveals stay within the design
# budget, and the wear-leveling metrics are live in /metrics.
#
# `chaos.sh cluster` runs the CLUSTER phase: three durable nodes form a
# consistent-hash ring, a 2-of-3 share-split architecture is driven to
# the global lockout while one whole node is killed dead mid-load, and
# the reveals must stay within the cluster-wide ceiling ⌈n·M/k⌉ with no
# coordinator anywhere. The killed node then restarts on its battered
# directory and the cluster-level lockout must still hold.
#
# Run from the repo root; CI runs this exact script.
set -euo pipefail

mode="${1:-chaos}"

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
pid=""
allpids=""
trap 'kill -9 $allpids $pid 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/lemonaded" ./cmd/lemonaded

# start_daemon [extra flags...] — boot on the seed's data dir.
start_daemon() {
    rm -f "$workdir/addr"
    # Tiny snapshot threshold: rotation and snapshot writes happen during
    # the run, so faults land on those paths too. Short breaker cooldown
    # keeps the daemon probing its way back out of degraded mode.
    "$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
        -data-dir "$workdir/data-$seed" -snapshot-records 8 \
        -breaker-threshold 3 -breaker-cooldown 200ms \
        "$@" >>"$workdir/log-$seed" 2>&1 &
    pid=$!
    for _ in $(seq 1 50); do
        [ -s "$workdir/addr" ] && break
        sleep 0.1
    done
    [ -s "$workdir/addr" ] || { echo "chaos: daemon never bound"; tail "$workdir/log-$seed"; exit 1; }
    base="http://$(cat "$workdir/addr")"
}

# access_n N — up to N accesses; echo "<successes> <locked>". Under
# chaos, 500 (store fault) and 503 (transient/degraded/shed) are the
# weather; 410 is lockout and stops early.
access_n() {
    local ok=0 locked=0 i code
    for i in $(seq 1 "$1"); do
        code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
            "$base/v1/architectures/$id/access")
        case "$code" in
            200) ok=$((ok + 1)) ;;
            500 | 503) ;;
            410) locked=1; break ;;
            *) echo "chaos: unexpected status $code" >&2; exit 1 ;;
        esac
    done
    echo "$ok $locked"
}

# provision_arch JSON_EXTRA — provision under chaos with retries; sets $id.
provision_arch() {
    id=""
    for _ in $(seq 1 20); do
        prov=$(curl -s -X POST "$base/v1/architectures" -d "{
            \"spec\": {\"alpha\": 6, \"beta\": 8, \"lab\": 30, \"kfrac\": 0.1, \"continuous_t\": true},
            \"secret_hex\": \"$secret\",
            \"seed\": 42$1
        }")
        id=$(echo "$prov" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
        [ -n "$id" ] && break
        sleep 0.2
    done
    [ -n "$id" ] || { echo "chaos: provision never succeeded under chaos"; exit 1; }
}

secret="00112233445566778899aabbccddeeff"

if [ "$mode" = attack ]; then
    # Seeds whose fault schedule lets the daemon boot (seed 4's first
    # injected fault lands on segment creation and kills startup).
    for seed in 5 6; do
        # ---- Attack phase: stress attacker races users through chaos. ----
        start_daemon -chaos "seed=$seed,density=0.02"
        echo "chaos: seed $seed attack phase on $base"
        spares=4
        provision_arch ", \"spares\": $spares, \"remap_epoch\": 8"
        status=$(curl -sf "$base/v1/architectures/$id")
        max=$(echo "$status" | sed -n 's/.*"max_allowed_accesses": \([0-9]*\).*/\1/p')
        n=$(echo "$status" | sed -n 's/.*"n": \([0-9]*\).*/\1/p')
        copies=$(echo "$status" | sed -n 's/.*"copies": \([0-9]*\).*/\1/p')
        [ -n "$max" ] && [ -n "$n" ] && [ -n "$copies" ] ||
            { echo "chaos: incomplete design in status: $status"; exit 1; }
        # The wear-leveled budget: spares extend each copy's physical pool
        # from n to n+spares switches, so the designed access ceiling
        # scales by (n+spares)/n, plus one access of slack per copy.
        budget=$(((max * (n + spares) + n - 1) / n + copies))

        # The attacker: 120 deterministic hot/cold bursts concentrated on
        # shares 0–2. Any response carrying the secret is a leak; 500/503
        # are chaos weather; 410 means the attack killed the device.
        leakfile="$workdir/leak-$seed"
        (
            for i in $(seq 1 120); do
                t=400
                [ $(((i / 4) % 2)) = 1 ] && t=-40
                resp=$(curl -s -X POST "$base/v1/architectures/$id/stress" \
                    -d "{\"temp_celsius\": $t, \"indices\": [0, 1, 2], \"pulses\": 2}")
                case "$resp" in
                    *"$secret"*) echo "burst $i leaked key bytes: $resp" >"$leakfile"; exit 0 ;;
                    *'"error": "core: architecture exhausted'*) exit 0 ;;
                esac
            done
        ) &
        attacker=$!
        read -r s locked <<<"$(access_n 300)"
        wait "$attacker"
        [ ! -f "$leakfile" ] || { echo "chaos: FAIL — $(cat "$leakfile")"; exit 1; }
        [ "$locked" = 1 ] || { echo "chaos: attacked device never locked out"; exit 1; }
        if [ "$s" -gt "$budget" ]; then
            echo "chaos: FAIL — seed $seed attack minted budget: $s > leveled budget $budget"
            exit 1
        fi
        echo "chaos: seed $seed: reveals within budget under attack ($s <= $budget)"

        # The wear-observability contract: stress, remap, spare, and skew
        # metrics must be live on the scrape.
        metrics=$(curl -sf "$base/metrics")
        for metric in lemonaded_stress_pulses_total \
            lemonaded_wearout_remaps_total \
            "lemonaded_spares_remaining{arch=\"$id\"}" \
            "lemonaded_wear_skew_millis{arch=\"$id\"}"; do
            case "$metrics" in
                *"$metric"*) ;;
                *) echo "chaos: FAIL — /metrics missing $metric"; exit 1 ;;
            esac
        done
        echo "chaos: seed $seed: wear metrics present"

        kill -TERM "$pid"
        wait "$pid" || { echo "chaos: daemon exited nonzero"; exit 1; }
        echo "chaos: seed $seed attack PASS"
    done
    echo "chaos: attack PASS"
    exit 0
fi

if [ "$mode" = cluster ]; then
    ring="n0=ring,n1=ring,n2=ring" # nodes only need names+seed; they never dial peers
    # start_node NAME — boot one durable cluster member; appends to $allpids
    # and records its base URL in $workdir/url-NAME.
    start_node() {
        local name=$1
        rm -f "$workdir/addr-$name"
        "$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr-$name" \
            -data-dir "$workdir/cluster-$name" -snapshot-records 8 \
            -node-name "$name" -ring-nodes "$ring" -ring-seed 42 \
            >>"$workdir/log-$name" 2>&1 &
        eval "pid_$name=$!"
        allpids="$allpids $!"
        for _ in $(seq 1 50); do
            [ -s "$workdir/addr-$name" ] && break
            sleep 0.1
        done
        [ -s "$workdir/addr-$name" ] || { echo "chaos: node $name never bound"; tail "$workdir/log-$name"; exit 1; }
        echo "http://$(cat "$workdir/addr-$name")" >"$workdir/url-$name"
    }

    for name in n0 n1 n2; do start_node "$name"; done
    members="n0=$(cat "$workdir/url-n0"),n1=$(cat "$workdir/url-n1"),n2=$(cat "$workdir/url-n2")"
    echo "chaos: cluster up: $members"

    # Every node must publish a consistent ring identity.
    for name in n0 n1 n2; do
        curl -sf "$(cat "$workdir/url-$name")/v1/cluster/ring" | grep -q "\"self\": \"$name\"" ||
            { echo "chaos: node $name ring endpoint broken"; exit 1; }
    done

    # Drive a 2-of-3 split to the global lockout; the loadgen itself
    # fails nonzero on a budget overrun or a wrong reconstructed secret.
    "$workdir/lemonaded" loadgen -cluster "$members" -ring-seed 42 \
        -share-k 2 -share-n 3 -workers 4 >"$workdir/loadgen-out" 2>&1 &
    lg=$!
    allpids="$allpids $lg"

    # The moment load starts flowing, kill a whole node dead. k=2 of 3
    # means the survivors keep serving; the dead node's share is wasted
    # budget, never minted budget.
    for _ in $(seq 1 100); do
        grep -q 'per-share budget' "$workdir/loadgen-out" && break
        sleep 0.1
    done
    kill -9 "$pid_n1" 2>/dev/null || true
    echo "chaos: killed n1 mid-load"

    wait "$lg" || { echo "chaos: FAIL — cluster loadgen:"; cat "$workdir/loadgen-out"; exit 1; }
    grep -q 'within global ceiling' "$workdir/loadgen-out" ||
        { echo "chaos: loadgen never verified the ceiling"; cat "$workdir/loadgen-out"; exit 1; }
    sed -n 's/^global lockout/chaos: global lockout/p' "$workdir/loadgen-out"

    # The killed node restarts on its battered directory; the cluster
    # lockout must survive: at least k of the shares must answer 410, so
    # no client can ever again assemble a quorum.
    start_node n1
    grep -q 'lemonaded: recovered' "$workdir/log-n1" ||
        { echo "chaos: n1 did not recover its WAL"; tail "$workdir/log-n1"; exit 1; }
    gone=0
    for name in n0 n1 n2; do
        base=$(cat "$workdir/url-$name")
        for idx in 0 1 2; do
            code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$base/v1/cluster/access" \
                -d "{\"cluster_id\": \"arch-000001\", \"share_index\": $idx, \"share_total\": 3}")
            [ "$code" = 410 ] && gone=$((gone + 1))
        done
    done
    [ "$gone" -ge 2 ] || { echo "chaos: FAIL — only $gone shares report 410; quorum still assemblable"; exit 1; }
    echo "chaos: cluster lockout durable across node restart ($gone shares spent)"

    for name in n0 n1 n2; do
        eval "kill -TERM \$pid_$name 2>/dev/null || true"
    done
    echo "chaos: cluster PASS"
    exit 0
fi

for seed in 1 2 3; do
    # ---- Phase 1: serve through a faulty disk, then die mid-flight. ----
    start_daemon -chaos "seed=$seed,density=0.02"
    echo "chaos: seed $seed phase 1 (chaos) on $base"
    grep -q 'CHAOS MODE' "$workdir/log-$seed" || {
        echo "chaos: daemon did not announce chaos mode"; exit 1
    }
    # Provisioning itself may hit an injected fault (500/503); retry.
    provision_arch ''
    max=$(curl -sf "$base/v1/architectures/$id" |
        sed -n 's/.*"max_allowed_accesses": \([0-9]*\).*/\1/p')
    [ -n "$max" ] || { echo "chaos: no max_allowed_accesses in status"; exit 1; }
    read -r s1 _ <<<"$(access_n 20)"
    echo "chaos: seed $seed: $s1 successes through the faulty disk, killing daemon"
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true

    # ---- Phase 2: clean restart, recover, drive to lockout. ----
    start_daemon
    echo "chaos: seed $seed phase 2 (recovery) on $base"
    grep -q 'lemonaded: recovered' "$workdir/log-$seed" || {
        echo "chaos: no recovery log line"; tail "$workdir/log-$seed"; exit 1
    }
    read -r s2 locked <<<"$(access_n 200)"
    [ "$locked" = 1 ] || { echo "chaos: never reached lockout after recovery"; exit 1; }
    total=$((s1 + s2))
    if [ "$total" -gt "$max" ]; then
        echo "chaos: FAIL — seed $seed minted budget: $s1 + $s2 = $total > max_allowed $max"
        exit 1
    fi
    echo "chaos: seed $seed: budget held ($s1 + $s2 = $total <= $max), lockout reached"
    status1=$(curl -sf "$base/v1/architectures/$id")
    kill -9 "$pid"
    wait "$pid" 2>/dev/null || true

    # ---- Phase 3: recovery is bit-identical and lockout is durable. ----
    start_daemon
    echo "chaos: seed $seed phase 3 (replay) on $base"
    status2=$(curl -sf "$base/v1/architectures/$id")
    if [ "$status1" != "$status2" ]; then
        echo "chaos: FAIL — seed $seed status diverged across replay:"
        echo "  before: $status1"
        echo "  after:  $status2"
        exit 1
    fi
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "$base/v1/architectures/$id/access")
    [ "$code" = 410 ] || { echo "chaos: lockout not durable (got $code)"; exit 1; }
    kill -TERM "$pid"
    wait "$pid" || { echo "chaos: daemon exited nonzero"; exit 1; }
    echo "chaos: seed $seed PASS"
done
echo "chaos: PASS"
