#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the lemonaded daemon.
#
# Builds lemonaded, starts it on an ephemeral port, then drives it with
# the loadgen subcommand (which exercises the public api client package):
# provision with seed 42, access to lockout with a single worker, scrape
# /metrics, assert the golden counters, and check graceful shutdown.
# Run from the repo root; CI runs this exact script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill "$pid" "$pid2" 2>/dev/null || true; rm -rf "$workdir"' EXIT
pid2=""

go build -o "$workdir/lemonaded" ./cmd/lemonaded

"$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    >"$workdir/log" 2>&1 &
pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
done
addr=$(cat "$workdir/addr")
base="http://$addr"
echo "smoke: daemon on $base"

# One worker, seed 42: the sequential golden transcript — exactly 30
# successes and 5 transients before lockout. loadgen itself asserts the
# success count lands in the designed window.
out=$("$workdir/lemonaded" loadgen -base "$base" -workers 1)
echo "$out" | sed 's/^/smoke: /'
echo "$out" | grep -q 'provisioned arch-000001:' || {
    echo "smoke: unexpected provision ID (determinism broken?)"; exit 1
}
echo "$out" | grep -q 'lockout after 30 successful accesses (5 transients)' || {
    echo "smoke: golden transcript changed"; exit 1
}
echo "$out" | grep -q 'budget invariant held' || {
    echo "smoke: loadgen did not confirm the budget invariant"; exit 1
}

# The scrape must agree with what the client observed.
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^lemonaded_lockouts_total 1$' || {
    echo "smoke: lockout counter wrong:"
    echo "$metrics" | grep lockouts
    exit 1
}
echo "$metrics" | grep -q 'lemonaded_accesses_total{outcome="success"} 30' || {
    echo "smoke: success counter wrong (determinism broken?):"
    echo "$metrics" | grep accesses_total
    exit 1
}
echo "smoke: metrics assert lockout"

# The fleet listing and event log survived the trip through the wire
# types. (Capture before grepping: grep -q quitting early would SIGPIPE
# curl and fail the pipeline under pipefail even on a match.)
listing=$(curl -sf "$base/v1/architectures")
echo "$listing" | grep -q '"id": "arch-000001"' || {
    echo "smoke: listing missing arch-000001"; exit 1
}
events=$(curl -sf "$base/v1/architectures/arch-000001/events?max=3")
echo "$events" | grep -q '"outcome"' || {
    echo "smoke: events endpoint empty"; exit 1
}
echo "smoke: list + events endpoints OK"

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$pid"
wait "$pid" || { echo "smoke: daemon exited nonzero"; cat "$workdir/log"; exit 1; }
grep -q 'stopped' "$workdir/log" || { echo "smoke: no clean-stop log line"; exit 1; }
echo "smoke: graceful shutdown OK"

# Durable phase: the same drive against a WAL-backed daemon, with
# concurrent workers so the group committer actually folds appends into
# shared fsyncs, then assert the group-commit telemetry is exported.
"$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr2" \
    -data-dir "$workdir/data" >"$workdir/log2" 2>&1 &
pid2=$!
for _ in $(seq 1 50); do
    [ -s "$workdir/addr2" ] && break
    sleep 0.1
done
base2="http://$(cat "$workdir/addr2")"
echo "smoke: durable daemon on $base2"

out=$("$workdir/lemonaded" loadgen -base "$base2" -workers 8)
echo "$out" | sed 's/^/smoke: /'
echo "$out" | grep -q 'budget invariant held' || {
    echo "smoke: durable loadgen did not confirm the budget invariant"; exit 1
}

wal_metrics=$(curl -sf "$base2/metrics")
echo "$wal_metrics" | grep -q '^lemonaded_wal_batch_size_bucket' || {
    echo "smoke: lemonaded_wal_batch_size histogram missing:"
    echo "$wal_metrics" | grep wal_ || true
    exit 1
}
echo "$wal_metrics" | grep '^lemonaded_wal_batch_size_count' | grep -qv ' 0$' || {
    echo "smoke: lemonaded_wal_batch_size observed nothing"; exit 1
}
echo "$wal_metrics" | grep '^lemonaded_wal_group_fsyncs_total' | grep -qv ' 0$' || {
    echo "smoke: lemonaded_wal_group_fsyncs_total missing or zero:"
    echo "$wal_metrics" | grep wal_ || true
    exit 1
}
fsyncs=$(echo "$wal_metrics" | grep '^lemonaded_wal_group_fsyncs_total' | awk '{print $2}')
records=$(echo "$wal_metrics" | grep '^lemonaded_wal_batch_size_sum' | awk '{print $2}')
echo "smoke: group commit exported ($records records over $fsyncs group fsyncs)"

kill -TERM "$pid2"
wait "$pid2" || { echo "smoke: durable daemon exited nonzero"; cat "$workdir/log2"; exit 1; }
echo "smoke: PASS"
