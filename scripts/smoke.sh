#!/usr/bin/env bash
# smoke.sh — end-to-end smoke test of the lemonaded daemon.
#
# Builds lemonaded, starts it on an ephemeral port, provisions an
# architecture, accesses it to lockout, scrapes /metrics, asserts the
# lockout counter, and checks graceful shutdown. Run from the repo root;
# CI runs this exact script.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/lemonaded" ./cmd/lemonaded

"$workdir/lemonaded" serve -addr 127.0.0.1:0 -addr-file "$workdir/addr" \
    >"$workdir/log" 2>&1 &
pid=$!

for _ in $(seq 1 50); do
    [ -s "$workdir/addr" ] && break
    sleep 0.1
done
addr=$(cat "$workdir/addr")
base="http://$addr"
echo "smoke: daemon on $base"

# Provision a small architecture with a fixed seed.
prov=$(curl -sf -X POST "$base/v1/architectures" -d '{
    "spec": {"alpha": 6, "beta": 8, "lab": 30, "kfrac": 0.1, "continuous_t": true},
    "secret_hex": "00112233445566778899aabbccddeeff",
    "seed": 42
}')
id=$(echo "$prov" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "smoke: provision failed: $prov"; exit 1; }
echo "smoke: provisioned $id"

# Access to lockout (HTTP 410). 200=success and 503=transient both continue.
locked=0
for _ in $(seq 1 200); do
    code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
        "$base/v1/architectures/$id/access")
    case "$code" in
        200|503) ;;
        410) locked=1; break ;;
        *) echo "smoke: unexpected status $code"; exit 1 ;;
    esac
done
[ "$locked" = 1 ] || { echo "smoke: never reached lockout"; exit 1; }
echo "smoke: reached lockout"

# The scrape must report exactly one lockout.
metrics=$(curl -sf "$base/metrics")
echo "$metrics" | grep -q '^lemonaded_lockouts_total 1$' || {
    echo "smoke: lockout counter wrong:"
    echo "$metrics" | grep lockouts
    exit 1
}
echo "$metrics" | grep -q 'lemonaded_accesses_total{outcome="success"} 30' || {
    echo "smoke: success counter wrong (determinism broken?):"
    echo "$metrics" | grep accesses_total
    exit 1
}
echo "smoke: metrics assert lockout"

# Graceful shutdown: SIGTERM drains and exits 0.
kill -TERM "$pid"
wait "$pid" || { echo "smoke: daemon exited nonzero"; cat "$workdir/log"; exit 1; }
grep -q 'stopped' "$workdir/log" || { echo "smoke: no clean-stop log line"; exit 1; }
echo "smoke: graceful shutdown OK"
echo "smoke: PASS"
