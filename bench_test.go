// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per exhibit — the benchmark body IS the
// experiment), plus microbenchmarks of the substrates they rest on.
//
//	go test -bench=. -benchmem
package lemonade_test

import (
	"testing"

	"lemonade/internal/baselines"
	"lemonade/internal/core"
	"lemonade/internal/drift"
	"lemonade/internal/dse"
	"lemonade/internal/figures"
	"lemonade/internal/mathx"
	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/rs"
	"lemonade/internal/shamir"
	"lemonade/internal/shamir16"
	"lemonade/internal/structure"
	"lemonade/internal/timeline"
	"lemonade/internal/weibull"
)

// sink defeats dead-code elimination.
var sink interface{}

// --- One benchmark per paper exhibit --------------------------------------------

func BenchmarkFigure1_WeibullModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure1()
	}
}

func BenchmarkFigure3a_ScaledAlpha(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure3a()
	}
}

func BenchmarkFigure3b_Parallel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure3b()
	}
}

func BenchmarkFigure3c_RedundantEncoding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure3c()
	}
}

func BenchmarkFigure4a_ConnectionNoEncoding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure4a()
	}
}

func BenchmarkFigure4b_ConnectionEncoding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure4b()
	}
}

func BenchmarkFigure4c_RelaxedCriteria(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, t := figures.Figure4c()
		sink = []interface{}{f, t}
	}
}

func BenchmarkFigure4d_StrongerPasscodes(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure4d()
	}
}

func BenchmarkTable1_AreaCost(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Table1()
	}
}

func BenchmarkFigure5a_TargetingNoEncoding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure5a()
	}
}

func BenchmarkFigure5b_TargetingEncoding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure5b()
	}
}

func BenchmarkFigure8_OTPSuccessKH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, a := figures.Figure8()
		sink = []interface{}{r, a}
	}
}

func BenchmarkFigure9_OTPSuccessAlphaH(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, a := figures.Figure9()
		sink = []interface{}{r, a}
	}
}

func BenchmarkFigure10_OTPDensity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.Figure10()
	}
}

func BenchmarkOTPLatencyEnergy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.OTPLatencyEnergy()
	}
}

func BenchmarkConnectionEnergyLatency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.ConnectionEnergyLatency()
	}
}

func BenchmarkAbstract_HeadlineReduction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.HeadlineReduction()
	}
}

// --- Substrate microbenchmarks ----------------------------------------------------

func BenchmarkWeibullSample(b *testing.B) {
	d := weibull.MustNew(14, 8)
	r := rng.New(1)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = d.Sample(r)
	}
}

func BenchmarkWeibullFit(b *testing.B) {
	d := weibull.MustNew(14, 8)
	times := d.SampleN(rng.New(2), 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fit, err := weibull.FitLifetimes(times)
		if err != nil {
			b.Fatal(err)
		}
		sink = fit
	}
}

func BenchmarkParallelReliability(b *testing.B) {
	d := weibull.MustNew(14, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = structure.ParallelReliability(d, 141, 15, 15)
	}
}

func BenchmarkShamirSplit(b *testing.B) {
	r := rng.New(3)
	secret := make([]byte, 32)
	r.Bytes(secret)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shares, err := shamir.Split(secret, 15, 141, r)
		if err != nil {
			b.Fatal(err)
		}
		sink = shares
	}
}

func BenchmarkShamirCombine(b *testing.B) {
	r := rng.New(4)
	secret := make([]byte, 32)
	r.Bytes(secret)
	shares, err := shamir.Split(secret, 15, 141, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := shamir.Combine(shares[:15], 15)
		if err != nil {
			b.Fatal(err)
		}
		sink = got
	}
}

func BenchmarkRSEncode(b *testing.B) {
	c, err := rs.New(16, 64)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 16*64)
	rng.New(5).Bytes(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards, err := c.Encode(data)
		if err != nil {
			b.Fatal(err)
		}
		sink = shards
	}
}

func BenchmarkArchitectureAccess(b *testing.B) {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         1000,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(6)
	arch, err := core.Build(design, []byte("benchmark secret"), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := arch.Access(nems.RoomTemp)
		if err != nil {
			// Worn out mid-benchmark: fabricate a fresh architecture
			// without charging the benchmark for it.
			b.StopTimer()
			arch, err = core.Build(design, []byte("benchmark secret"), r)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			continue
		}
		sink = got
	}
}

func BenchmarkOTPFabricateAndRetrieve(b *testing.B) {
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 32, K: 4}
	r := rng.New(7)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pad, _, err := otp.Fabricate(p, 3, r)
		if err != nil {
			b.Fatal(err)
		}
		key, _, err := pad.Retrieve(3, nems.RoomTemp)
		if err == nil {
			sink = key
		}
	}
}

func BenchmarkDSEExploreEncoded(b *testing.B) {
	spec := dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := dse.Explore(spec)
		if err != nil {
			b.Fatal(err)
		}
		sink = d
	}
}

// --- Ablation / extension benches ----------------------------------------------

func BenchmarkAblationContinuousT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.AblationContinuousT()
	}
}

func BenchmarkAblationKFraction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.AblationKFraction()
	}
}

func BenchmarkAblationReplication(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.AblationReplication()
	}
}

func BenchmarkAblationSeriesRejection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.SeriesRejection()
	}
}

func BenchmarkExtensionFabricationTradeoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.FabricationTradeoff()
	}
}

func BenchmarkShamir16WideSplit(b *testing.B) {
	r := rng.New(8)
	secret := make([]byte, 32)
	r.Bytes(secret)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		shares, err := shamir16.Split(secret, 150, 1500, r)
		if err != nil {
			b.Fatal(err)
		}
		sink = shares
	}
}

func BenchmarkExtensionInvasiveAttack(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.InvasiveAttack()
	}
}

func BenchmarkBinomTailGE(b *testing.B) {
	cases := []struct {
		name string
		n, k int
		p    float64
	}{
		{"exact_small", 141, 15, 0.176},
		{"exact_large", 150_000, 15_000, 0.117},
		{"normal", 1_000_000, 100_000, 0.117},
		{"poisson_sum", 10_000_000, 100, 5e-6},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = mathx.BinomTailGE(c.n, c.k, c.p)
			}
		})
	}
}

func BenchmarkExtensionDefenseComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = figures.DefenseComparison()
	}
}

func BenchmarkDriftCheckLot(b *testing.B) {
	ref := weibull.MustNew(14, 8)
	lifetimes := ref.SampleN(rng.New(9), 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := drift.NewMonitor(ref, 0.10, 0.20, 0.001)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := m.CheckLot(lifetimes)
		if err != nil {
			b.Fatal(err)
		}
		sink = rep
	}
}

func BenchmarkTimelineWeek(b *testing.B) {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         100,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	user := timeline.UserModel{MeanDailyUnlocks: 10, TypoRate: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := timeline.Simulate(design, user, []string{"a", "b"}, 7, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		sink = res
	}
}

func BenchmarkOTPReliableChannelSend(b *testing.B) {
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 32, K: 4}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ch, err := otp.NewReliableChannel(p, 1, 0, rng.New(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		got, _ := ch.Send([]byte("bench message"), nems.RoomTemp)
		sink = got
	}
}

func BenchmarkBaselinePUFFingerprint(b *testing.B) {
	p := baselines.NewPUF(512, 0.05, rng.New(10))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = p.Fingerprint(9)
	}
}
