# Local developer workflow; `make check` runs exactly what CI runs
# (.github/workflows/ci.yml), so a green check here is a green CI.

GO ?= go

.PHONY: check lint vet-fixtures race bench test build fmt smoke crash chaos attack cluster bench-json bench-compare fuzz-smoke

## check: everything CI runs — format, vet, lemonvet, build, tests, race, smoke
check: lint build test race smoke crash chaos attack cluster

## lint: gofmt (fail on diff), go vet, and the lemonvet static-analysis
## suite (all nine passes; -strict-suppress also fails on stale allows)
lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needs to be run on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/lemonvet -strict-suppress ./...

## vet-fixtures: the lemonvet fixture suites only — every pass against its
## testdata/src package, local and whole-program
vet-fixtures:
	$(GO) test ./internal/analysis/ -run 'TestAnalyzers$$|TestProgramAnalyzers$$' -v

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: race detector over the concurrency-sensitive packages, then the
## whole module in short mode (matches the CI race matrix entry)
race:
	$(GO) test -race ./internal/montecarlo/... ./internal/targeting/... ./internal/core/... ./internal/server/... ./internal/registry/... ./internal/cache/... ./internal/wal/... ./internal/fault/... ./internal/resilience/... ./internal/analysis/ ./internal/attack/... ./internal/nems/... ./internal/cluster/... ./api/...
	$(GO) test -race -short ./...

## smoke: end-to-end daemon test (build, provision, lockout, metrics, drain)
smoke:
	./scripts/smoke.sh

## bench: the repo benchmarks, including the DeriveIndex hot path
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/rng/ ./internal/montecarlo/ .

## bench-json: lemonbench macro suite -> BENCH_<gitsha>.json at the repo root
bench-json:
	$(GO) run ./cmd/lemonaded bench -seed 42 \
		-out BENCH_$$(git rev-parse --short=12 HEAD).json

## bench-compare: gate NEW (default: this checkout's BENCH file) against OLD
## usage: make bench-compare OLD=BENCH_abc.json [NEW=BENCH_def.json]
bench-compare:
	@test -n "$(OLD)" || { echo "usage: make bench-compare OLD=<file> [NEW=<file>]"; exit 2; }
	$(GO) run ./cmd/lemonaded bench compare "$(OLD)" \
		"$${NEW:-BENCH_$$(git rev-parse --short=12 HEAD).json}"

## fuzz-smoke: short native-fuzz runs over the WAL frame decoder and the
## codec (the CI smoke; `go test -fuzz` for a long local session)
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzWALFrameDecode' -fuzztime 30s ./internal/wal/
	$(GO) test -run '^$$' -fuzz 'FuzzWearRecordDecode' -fuzztime 15s ./internal/wal/
	$(GO) test -run '^$$' -fuzz 'FuzzShamirReconstruct' -fuzztime 15s ./internal/shamir/
	$(GO) test -run '^$$' -fuzz 'FuzzRSDecode' -fuzztime 15s ./internal/rs/

## crash: crash-recovery test (SIGKILL mid-budget, restart, exact wear)
crash:
	./scripts/crash.sh

## chaos: live-daemon fault injection over 3 fixed seeds (fail closed,
## bit-identical recovery)
chaos:
	./scripts/chaos.sh

## attack: adversarial wearout attacker racing legitimate clients through
## chaos faults (no key leak, reveals within the leveled budget, wear
## metrics live)
attack:
	./scripts/chaos.sh attack

## cluster: 3-node consistent-hash cluster driven to the global lockout
## with a whole node killed mid-load (reveals within the cluster ceiling,
## lockout durable across the node's restart)
cluster:
	./scripts/chaos.sh cluster
