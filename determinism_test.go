// Determinism regression tests: golden constants locking down the exact
// bit streams of the RNG and the montecarlo harness. If any of these fail,
// every recorded figure in EXPERIMENTS.md silently stops being
// reproducible — treat a failure as a breaking change to the determinism
// contract, never as a constant to update casually.
package lemonade_test

import (
	"context"
	"math"
	"runtime"
	"testing"

	"lemonade/internal/montecarlo"
	"lemonade/internal/rng"
)

// TestGoldenRNGStream pins the first outputs of rng.New for a fixed seed.
func TestGoldenRNGStream(t *testing.T) {
	want := []uint64{
		0x66620712d61b1b4d, 0xd756b24e69ea6cee, 0xe35a1ee228e01f7d, 0x28b6713b3b53538b,
		0xeee74fd0a2c3a8fa, 0x3c8887b82dcf7223, 0xfd70f7fbebb9debd, 0xf9f69314fdfccbbd,
	}
	r := rng.New(0x1EA0_2017)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("rng.New stream draw %d = %#016x, want %#016x", i, got, w)
		}
	}
}

// TestGoldenDeriveStream pins a labelled Derive stream.
func TestGoldenDeriveStream(t *testing.T) {
	want := []uint64{0xf839942780968121, 0x4243a1e1ebec7ed7, 0x20308c924439e505, 0x0e8fe939288a9608}
	d := rng.New(1).Derive("weibull/sample")
	for i, w := range want {
		if got := d.Uint64(); got != w {
			t.Fatalf("Derive stream draw %d = %#016x, want %#016x", i, got, w)
		}
	}
}

// TestGoldenFloats pins the float conversion and the normal variate path
// (Float64 shift/scale and Marsaglia polar method both affect every
// simulation in the repo).
func TestGoldenFloats(t *testing.T) {
	f := rng.New(7)
	if got := math.Float64bits(f.Float64()); got != 0x3fe66b1f5ee9df2e {
		t.Fatalf("Float64 bits = %#016x", got)
	}
	if got := math.Float64bits(f.NormFloat64()); got != 0xbfe00123db8e278d {
		t.Fatalf("NormFloat64 bits = %#016x", got)
	}
}

// TestGoldenMonteCarloSummary pins a small montecarlo.Run summary
// bit-for-bit, covering per-trial stream derivation (DeriveIndex) and the
// aggregation order.
func TestGoldenMonteCarloSummary(t *testing.T) {
	sum := montecarlo.Run(42, 500, func(r *rng.RNG) float64 { return r.LogNormal(0, 1) })
	check := func(name string, got float64, want uint64) {
		t.Helper()
		if math.Float64bits(got) != want {
			t.Errorf("%s bits = %#016x, want %#016x", name, math.Float64bits(got), want)
		}
	}
	check("Mean", sum.Mean, 0x3ff8364f28177984)
	check("SD", sum.SD, 0x3ffcfd2af81e72e9)
	check("Min", sum.Min, 0x3fa69853c97affd9)
	check("Max", sum.Max, 0x402aadc227ac44a0)
	check("Median", sum.Median(), 0x3fecef55cffe040a)
}

// TestRunParallelMatchesRun asserts that parallel execution is
// bit-identical to sequential execution regardless of worker count:
// scheduling must never leak into results.
func TestRunParallelMatchesRun(t *testing.T) {
	trial := func(r *rng.RNG) float64 { return r.LogNormal(0, 1) + float64(r.Poisson(3)) }
	const seed, trials = 99, 400
	want := montecarlo.Run(seed, trials, trial)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		got, err := montecarlo.RunParallel(context.Background(), seed, trials, trial)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: RunParallel: %v", procs, err)
		}
		if math.Float64bits(got.Mean) != math.Float64bits(want.Mean) ||
			math.Float64bits(got.SD) != math.Float64bits(want.SD) ||
			math.Float64bits(got.Min) != math.Float64bits(want.Min) ||
			math.Float64bits(got.Max) != math.Float64bits(want.Max) ||
			math.Float64bits(got.Median()) != math.Float64bits(want.Median()) {
			t.Fatalf("GOMAXPROCS=%d: RunParallel %v differs from Run %v", procs, got, want)
		}
	}
}
