// Quickstart: design a limited-use architecture for a secret, fabricate
// it, and access it until it wears out.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func main() {
	// 1. Describe the devices you can fabricate and the usage you need:
	//    NEMS switches with a mean lifetime of 12 cycles (±, β=8), and a
	//    secret that must be readable at least 100 times — then never
	//    again.
	spec := dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria, // 99% reliable / ≤1% overrun
		LAB:         100,
		KFrac:       0.10, // k-out-of-n redundant encoding (§4.1.4)
		ContinuousT: true,
	}

	// 2. Let the design-space exploration size the hardware.
	design, err := dse.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design:", design)
	fmt.Printf("guarantees: ≥%d accesses, ≤%d accesses\n",
		design.GuaranteedMinAccesses(), design.MaxAllowedAccesses())

	// 3. Fabricate the architecture around your secret.
	r := rng.New(42)
	secret := []byte("the storage decryption key")
	arch, err := core.Build(design, secret, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabricated %d simulated NEMS switches\n", arch.TotalDevices())

	// 4. Access it. Every access physically wears the hardware; after the
	//    designed bound the secret is gone forever.
	accesses := 0
	for {
		got, err := arch.Access(nems.RoomTemp)
		switch {
		case err == nil:
			accesses++
			if accesses == 1 {
				fmt.Printf("first access returned: %q\n", got)
			}
		case errors.Is(err, core.ErrTransient):
			continue // a worn copy handed over; retry
		case errors.Is(err, core.ErrExhausted):
			fmt.Printf("architecture wore out after %d successful accesses "+
				"(designed window: %d–%d)\n",
				accesses, design.GuaranteedMinAccesses(), design.MaxAllowedAccesses())
			return
		default:
			log.Fatal(err)
		}
	}
}
