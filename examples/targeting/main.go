// Targeting: the §5 use case. A launching station decrypts at most ~100
// targeting commands through wearout hardware; a compromised link cannot
// push it past the mission bound.
//
//	go run ./examples/targeting
package main

import (
	"errors"
	"fmt"
	"log"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/targeting"
	"lemonade/internal/weibull"
)

func main() {
	spec := targeting.MissionSpec(weibull.MustNew(10, 8), 100, 0.10)
	design, err := dse.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("station design:", design)
	fmt.Printf("(the paper reports ~810 switches for this point)\n\n")

	r := rng.New(1)
	center, station, err := targeting.NewMission(design, r)
	if err != nil {
		log.Fatal(err)
	}

	// Mission: 100 legitimate strikes.
	executed := 0
	for i := 0; i < 100; i++ {
		enc, err := center.Encrypt(fmt.Sprintf("strike grid %d", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := station.Execute(enc, nems.RoomTemp); errors.Is(err, targeting.ErrTransient) {
			_, err = station.Execute(enc, nems.RoomTemp)
			if err != nil {
				continue
			}
		} else if err != nil {
			continue
		}
		executed++
	}
	fmt.Printf("mission: %d/100 commands executed\n", executed)

	// The adversary captures the link and floods the station with a
	// replayed command. The wearout bound caps everything.
	enc, _ := center.Encrypt("unauthorized strike")
	flood := 0
	for i := 0; i < 10_000; i++ {
		_, err := station.Execute(enc, nems.RoomTemp)
		if errors.Is(err, targeting.ErrExpired) {
			break
		}
		if err == nil {
			flood++
		}
	}
	fmt.Printf("adversary flood: %d extra executions before the station expired\n", flood)
	fmt.Printf("station expired: %v (total attempts: %d)\n", station.Expired(), station.Attempts())
}
