// One-time pad: the §6 use case. A sender fabricates a chip of decision-
// tree pads, keeps the codebook, and ships the chip to the receiver. Each
// message burns one pad; an evil maid who borrows the chip learns nothing.
//
//	go run ./examples/onetimepad
package main

import (
	"fmt"
	"log"

	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func main() {
	// H=8: the paper's security recommendation ("when the tree height is 8
	// or more, the adversaries' success probability reduces to zero").
	params := otp.Params{
		Dist:   weibull.MustNew(10, 1),
		Height: 8,
		Copies: 64,
		K:      8,
	}
	fmt.Printf("pad parameters: %s H=%d n=%d k=%d\n",
		params.Dist, params.Height, params.Copies, params.K)
	fmt.Printf("  receiver success  (Eq 10): %.6f\n", params.ReceiverSuccess())
	fmt.Printf("  adversary success (Eq 15): %.3e\n", params.AdversarySuccess())
	fmt.Printf("  retrieval latency        : %.4f ms\n\n", params.RetrievalLatency().Ms())

	r := rng.New(2024)
	chip, codebook, err := otp.FabricateChip(params, 3, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabricated a chip with %d pads; codebook stays with the sender\n\n", chip.Pads())

	// Exchange messages.
	for _, text := range []string{"meet at the usual place", "bring the documents"} {
		msg, err := codebook.Encrypt([]byte(text))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sender -> [pad %d, path %03b, %d ct bytes]\n",
			msg.PadIndex, msg.Path, len(msg.Ciphertext))
		plain, err := chip.Decrypt(msg, nems.RoomTemp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("receiver <- %q\n", plain)
	}

	// An evil maid borrows the chip and sweeps the last pad with random
	// path trials, then the legitimate message is sent.
	fmt.Println("\nevil maid sweeps the remaining pad 20 times...")
	target := chip.Pad(2)
	maid := rng.New(666)
	stolen := 0
	for i := 0; i < 20; i++ {
		if _, ok := target.AdversaryTrial(0 /* she guesses paths at random */, nems.RoomTemp, maid); ok {
			stolen++
		}
	}
	fmt.Printf("maid assembled the key in %d/20 sweeps\n", stolen)

	msg, err := codebook.Encrypt([]byte("final instructions"))
	if err != nil {
		log.Fatal(err)
	}
	if plain, err := chip.Decrypt(msg, nems.RoomTemp); err != nil {
		fmt.Printf("receiver: retrieval FAILED (%v) — tamper evidence, channel aborted\n", err)
	} else {
		fmt.Printf("receiver <- %q (pad survived the sweep)\n", plain)
	}
}
