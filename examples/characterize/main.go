// Characterize: the fabrication pipeline behind every deployment. A
// manufacturing lot with unknown true parameters is destructively
// characterized, the Weibull model is fit from (censored) lifetime data,
// process drift is monitored across lots, and an architecture sized from
// the fit is validated against the real devices.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"

	"lemonade/internal/core"
	"lemonade/internal/drift"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func main() {
	r := rng.New(20260706)
	truth := weibull.MustNew(13.4, 8.7) // the fab's secret process

	// 1. Destructive characterization of 2,000 sample devices, censored at
	//    40 cycles (the tester gives up on long-lived outliers).
	lot := nems.NewPopulation(truth, 0, 0, r.Derive("lot0"))
	obs := lot.MeasureLifetimes(2000, 40)
	fitted, err := weibull.Fit(obs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true process : %v\n", truth)
	fmt.Printf("fitted model : %v (from %d samples)\n\n", fitted, len(obs))

	// 2. Qualify the process and set up drift monitoring at ±10% α, ±25% β.
	mon, err := drift.NewMonitor(fitted, 0.10, 0.25, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	for i, trueLot := range []weibull.Dist{
		truth,                      // healthy lot
		weibull.MustNew(13.1, 8.9), // healthy lot
		weibull.MustNew(16.5, 8.7), // the line drifted: +23% lifetime!
	} {
		lifetimes := trueLot.SampleN(r.Derive(fmt.Sprintf("lot%d", i+1)), 1500)
		rep, err := mon.CheckLot(lifetimes)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "PASS"
		if rep.Alarm {
			verdict = "ALARM: " + rep.Reason
		}
		fmt.Printf("lot %d: fitted %v → %s\n", i+1, rep.Fitted, verdict)
	}

	// 3. Size an architecture from the fitted model and check what the
	//    drifted lot would do to it.
	design, err := dse.Explore(dse.Spec{
		Dist:        fitted,
		Criteria:    reliability.DefaultCriteria,
		LAB:         500,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndesign from fit: %v\n", design)
	w, o, ok := drift.ImpactOnDesign(design.N, design.K, design.T, weibull.MustNew(16.5, 8.7), 0.98, 0.05)
	fmt.Printf("drifted lot impact: work=%.4f overrun=%.4f acceptable=%v\n", w, o, ok)

	// 4. Fabricate from the healthy process and validate the usage window.
	arch, err := core.Build(design, []byte("qualification secret"), r.Derive("fab"))
	if err != nil {
		log.Fatal(err)
	}
	succ := 0
	for arch.Alive() {
		if _, err := arch.Access(nems.RoomTemp); err == nil {
			succ++
		}
	}
	fmt.Printf("\nfabricated architecture delivered %d accesses (designed window %d–%d)\n",
		succ, design.GuaranteedMinAccesses(), design.MaxAllowedAccesses())
}
