// Forward secrecy: the §1 motivation. A mail archive encrypts each message
// with a one-time key held in hardware that wears out after exactly one
// read — physically enforcing the "destroy after use" rule that software
// key management cannot. Even a full forensic compromise (including cold
// reads that bypass read destruction) recovers nothing that was already
// read.
//
//	go run ./examples/forwardsecrecy
package main

import (
	"fmt"
	"log"

	"lemonade/internal/forwardsec"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

func main() {
	archive := forwardsec.NewArchive(rng.New(99))

	var ids []int
	for _, text := range []string{"Q3 numbers", "offer letter", "incident report"} {
		id, err := archive.Seal([]byte(text))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		fmt.Printf("sealed message %d under a one-time hardware key\n", id)
	}

	// Legitimate read of message 1.
	plain, err := archive.Read(ids[1], nems.RoomTemp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nread message 1: %q\n", plain)

	// A replay attempt: the key hardware is consumed.
	if _, err := archive.Read(ids[1], nems.RoomTemp); err != nil {
		fmt.Printf("replay of message 1 failed: %v\n", err)
	}

	// Total compromise: the attacker images the machine, cold-reading
	// every store that still exists.
	dump := archive.CompromiseDump()
	fmt.Printf("\nfull compromise recovered %d of %d messages:\n", len(dump), archive.Len())
	for id, text := range dump {
		fmt.Printf("  message %d leaked: %q (it was never read, so its key still existed)\n", id, text)
	}
	if _, leaked := dump[ids[1]]; !leaked {
		fmt.Println("message 1 did NOT leak — its key was physically destroyed at read time")
	}
}
