// Smartphone: the paper's motivating scenario (§1, §4). A phone's storage
// key sits behind a limited-use connection sized for 5 years × 50 unlocks
// a day; a professional cracker with physical access races the wearout.
//
// A full 91,250-access architecture simulates millions of switch
// actuations, so this demo scales the scenario to one week of usage while
// keeping every ratio from the paper.
//
//	go run ./examples/smartphone
package main

import (
	"errors"
	"fmt"
	"log"

	"lemonade/internal/attack"
	"lemonade/internal/connection"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func main() {
	// One week of legitimate usage: 7 days × 50 unlocks.
	const weeklyLAB = 7 * 50
	spec := dse.Spec{
		Dist:        weibull.MustNew(14, 8), // the paper's running device point
		Criteria:    reliability.DefaultCriteria,
		LAB:         weeklyLAB,
		KFrac:       0.10,
		ContinuousT: true,
	}
	design, err := dse.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unlock-path design:", design)

	r := rng.New(7)
	phone, err := connection.NewDevice(design, "correct horse", []byte("photos, messages, keys"), r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phone fabricated with %d NEMS switches guarding the storage key\n\n",
		phone.HardwareDevices())

	// The owner's week: unlock 50 times a day.
	owner := 0
	for day := 1; day <= 7; day++ {
		for u := 0; u < 50; u++ {
			if _, err := phone.Unlock("correct horse", nems.RoomTemp); err == nil {
				owner++
			}
		}
	}
	fmt.Printf("owner: %d/350 unlocks succeeded over the week\n", owner)

	// Now the phone is stolen. The thief brute-forces passcodes in
	// popularity order until the hardware locks.
	attempts := 0
	for guess := uint64(1); ; guess++ {
		_, err := phone.Unlock(password.PasswordString(guess), nems.RoomTemp)
		attempts++
		if errors.Is(err, connection.ErrLocked) {
			break
		}
		if err == nil {
			fmt.Println("thief: cracked the passcode!")
			return
		}
	}
	fmt.Printf("thief: device locked forever after %d guesses — storage is unrecoverable\n", attempts)

	// The analytic risk at the paper's full scale:
	full := spec
	full.LAB = 5 * 365 * 50
	fullDesign, err := dse.Explore(full)
	if err != nil {
		log.Fatal(err)
	}
	p := attack.BruteForceAnalytic(fullDesign, password.UrEtAl())
	fmt.Printf("\nat full scale (LAB=%d, %d switches): analytic crack probability %.2e\n",
		full.LAB, fullDesign.TotalDevices, p)
}
