// Package lemonade is a Go reproduction of "Lemonade from Lemons:
// Harnessing Device Wearout to Create Limited-Use Security Architectures"
// (Deng, Feldman, Kurtz, Chong — ISCA 2017).
//
// The library turns device wearout into a security primitive: secrets are
// stored behind simulated NEMS contact switches whose Weibull-distributed
// lifetimes statistically enforce both a minimum number of uses (for
// legitimate users) and a maximum (against brute-force and cloning
// adversaries).
//
// Layout:
//
//   - internal/core — the paper's contribution: buildable limited-use
//     architectures (design → fabricate → access until wearout)
//   - internal/dse — the design-space exploration that sizes them
//   - internal/{weibull,nems,memory,structure,reliability,cost} — the
//     device and structure substrates
//   - internal/{gf256,shamir,rs} — the redundant-encoding substrates
//   - internal/{connection,targeting,otp} — the paper's three use cases
//   - internal/{password,attack,montecarlo} — threat models and harness
//   - internal/figures — regenerates every table and figure of the paper
//   - cmd/lemonade, cmd/experiments — CLI front ends
//   - examples/ — runnable demonstrations of the public API
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package lemonade
