// Cross-validation sweep: the repository's central correctness claim is
// that the analytic reliability models (the paper's equations) and the
// executable device simulations agree. This test sweeps a grid of
// structures and verifies the agreement statistically everywhere.
package lemonade_test

import (
	"fmt"
	"math"
	"testing"

	"lemonade/internal/montecarlo"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

func TestAnalyticMatchesSimulationEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is slow")
	}
	type point struct {
		alpha, beta float64
		n, k, at    int
	}
	grid := []point{
		{10, 8, 20, 1, 8},
		{10, 8, 20, 1, 12},
		{14, 8, 141, 15, 14},
		{14, 8, 141, 15, 16},
		{20, 12, 60, 30, 19},
		{20, 12, 60, 30, 21},
		{9.3, 12, 40, 1, 10},
		{12, 4, 80, 8, 9},
		{10, 1, 30, 3, 5},
		{16, 16, 25, 5, 15},
	}
	for _, p := range grid {
		p := p
		name := fmt.Sprintf("a%g_b%g_n%d_k%d_t%d", p.alpha, p.beta, p.n, p.k, p.at)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			d := weibull.MustNew(p.alpha, p.beta)
			analytic := structure.ParallelReliability(d, p.n, p.k, float64(p.at))
			emp, lo, hi := montecarlo.Proportion(uint64(p.n*1000+p.k*10+p.at), 3000, func(r *rng.RNG) bool {
				st, err := structure.NewParallel(d, p.n, p.k, r)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < p.at; i++ {
					if !st.Access(nems.RoomTemp) {
						return false
					}
				}
				return true
			})
			// Wilson interval plus a small epsilon for the MC noise floor.
			const eps = 0.015
			if analytic < lo-eps || analytic > hi+eps {
				t.Errorf("analytic %.4f outside MC interval [%.4f, %.4f] (emp %.4f)",
					analytic, lo, hi, emp)
			}
		})
	}
}

func TestSerialCopiesCompositionMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation sweep is slow")
	}
	// System-level composition: total accesses across N serial copies
	// should match the sum of per-copy analytic means.
	d := weibull.MustNew(12, 8)
	const n, k, copies = 50, 5, 6
	var perCopyMean float64
	{
		// E[T] = Σ_t P(T >= t)
		for tt := 1; ; tt++ {
			w := structure.ParallelReliability(d, n, k, float64(tt))
			if w < 1e-12 {
				break
			}
			perCopyMean += w
		}
	}
	sum := montecarlo.Run(777, 800, func(r *rng.RNG) float64 {
		cs := make([]structure.Structure, copies)
		for i := range cs {
			p, err := structure.NewParallel(d, n, k, r)
			if err != nil {
				t.Fatal(err)
			}
			cs[i] = p
		}
		sys := structure.NewSerialCopies(cs)
		return float64(structure.CountSuccessfulAccesses(sys, nems.RoomTemp, 1000))
	})
	want := perCopyMean * copies
	if math.Abs(sum.Mean-want) > 0.03*want {
		t.Errorf("system mean %.2f vs analytic %.2f", sum.Mean, want)
	}
}
