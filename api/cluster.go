package api

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lemonade/internal/cluster"
	"lemonade/internal/rng"
	"lemonade/internal/shamir"
)

// ClusterClient is the cluster-aware client: it splits each secret into
// n Shamir shares, routes every share to its ring-placed owner node, and
// reconstructs secrets locally from any k fetched shares. No node ever
// sees the whole secret, and no coordinator sits on the read path — the
// client IS the combiner, and the only global state is the placement
// function every party computes independently.
//
// Create with NewClusterClient. Methods are safe for concurrent use.
type ClusterClient struct {
	node     *cluster.Node
	clients  map[string]*Client
	nodeOpts []Option
	// hedge, when > 0, is how long Access waits on an outstanding share
	// fetch before speculatively launching the next spare owner.
	hedge time.Duration
	// sleep is the one ctx-capped wait shared by the hedge pump and, via
	// assignment into every node Client, the 503 retry path — so no part
	// of the cluster path can ever sleep past the caller's deadline.
	sleep func(ctx context.Context, d time.Duration) error

	mu   sync.Mutex
	seq  uint64                 // guarded by mu; cluster ID mint counter
	arcs map[string]clusterArch // guarded by mu; cluster ID -> (k, n)
}

// clusterArch is the client-side record of a cluster architecture's
// share geometry; Access needs it to know how many owners to consult.
type clusterArch struct{ K, N int }

// ClusterOption customizes a ClusterClient.
type ClusterOption func(*ClusterClient)

// WithClusterNodeOptions forwards opts to every per-node Client (e.g.
// WithRetryOn503 + WithRetryBackoff for transparent retry of transient
// share failures). The node clients' retry sleeps are still capped by
// the cluster client's shared ctx-aware sleep.
func WithClusterNodeOptions(opts ...Option) ClusterOption {
	return func(cc *ClusterClient) { cc.nodeOpts = append(cc.nodeOpts, opts...) }
}

// WithHedgeDelay enables hedged share fetches: when an owner has not
// answered within d, Access speculatively asks the next spare owner for
// its share instead of waiting out the straggler. 0 (the default)
// disables hedging; failed fetches still fail over to spares instantly.
func WithHedgeDelay(d time.Duration) ClusterOption {
	return func(cc *ClusterClient) { cc.hedge = d }
}

// NewClusterClient returns a client for the cluster whose members are
// nodes (name -> base URL) under the given placement seed. The node set
// and seed must match every server's ring configuration, or provisions
// will be refused as misrouted.
func NewClusterClient(nodes map[string]string, seed uint64, opts ...ClusterOption) (*ClusterClient, error) {
	cc := &ClusterClient{
		sleep: sleepCtx,
		arcs:  make(map[string]clusterArch),
	}
	for _, o := range opts {
		o(cc)
	}
	node, err := cluster.NewNode(cluster.Config{Nodes: nodes, Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	cc.node = node
	cc.clients = make(map[string]*Client, len(nodes))
	for name, base := range nodes {
		c, err := NewClient(base, cc.nodeOpts...)
		if err != nil {
			return nil, fmt.Errorf("api: cluster node %q: %w", name, err)
		}
		// One shared ctx-capped sleep for the whole cluster path: hedge
		// waits and per-node 503 retry waits go through the same function,
		// so a cancelled request can never sleep past its deadline in
		// either place.
		c.sleep = cc.sleep
		cc.clients[name] = c
	}
	return cc, nil
}

// Ring exposes the client's placement ring, mainly for tests and
// tooling that want to predict share ownership.
func (cc *ClusterClient) Ring() *cluster.Ring { return cc.node.Ring() }

// ClusterProvision parameterizes one cluster-wide provision: the share
// geometry (any ShareK of ShareN nodes can answer an access), the
// per-share architecture spec, and the master seed every derived
// randomness stems from.
type ClusterProvision struct {
	Spec      SpecRequest
	SecretHex string
	Seed      uint64
	ShareK    int
	ShareN    int
}

// ClusterProvisionResult identifies one provisioned cluster
// architecture: its minted ID and the owner of each share.
type ClusterProvisionResult struct {
	ClusterID string
	ShareK    int
	ShareN    int
	// Owners[i] is the node holding share i.
	Owners []string
}

// Provision splits the secret into ShareN shares (threshold ShareK) and
// provisions each onto its ring-placed owner, one limited-use
// architecture per share. The split and every per-share build seed are
// derived from Seed, so a fixed provisioning sequence is bit-identical
// across runs.
//
// Provisioning is sequential and fails fast: an error part-way leaves
// the earlier shares registered under a cluster ID this client has
// burned. Those orphans are inert — fewer than ShareK shares
// reconstruct nothing — and consume no wear unless accessed.
func (cc *ClusterClient) Provision(ctx context.Context, req ClusterProvision) (*ClusterProvisionResult, error) {
	if req.ShareK < 1 || req.ShareN < req.ShareK {
		return nil, fmt.Errorf("api: cluster: need 1 <= k <= n, got k=%d n=%d", req.ShareK, req.ShareN)
	}
	secret, err := hex.DecodeString(req.SecretHex)
	if err != nil {
		return nil, fmt.Errorf("api: cluster: secret_hex: %w", err)
	}
	if len(secret) == 0 {
		return nil, errors.New("api: cluster: empty secret")
	}
	cc.mu.Lock()
	cc.seq++
	id := fmt.Sprintf("arch-%06d", cc.seq)
	cc.mu.Unlock()
	owners, err := cc.node.Ring().Owners(id, req.ShareN)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	shares, err := shamir.Split(secret, req.ShareK, req.ShareN, rng.New(req.Seed).Derive("cluster/split"))
	if err != nil {
		return nil, fmt.Errorf("api: cluster: %w", err)
	}
	for i, owner := range owners {
		payload := cluster.EncodeShare(shares[i].X, shares[i].Data)
		_, err := cc.clients[owner].ClusterShare(ctx, ClusterShareRequest{
			ClusterID:  id,
			ShareIndex: i,
			ShareTotal: req.ShareN,
			Spec:       req.Spec,
			ShareHex:   hex.EncodeToString(payload),
			Seed:       rng.New(req.Seed).DeriveIndex("cluster/arch", i).Uint64(),
		})
		if err != nil {
			return nil, fmt.Errorf("api: cluster: provisioning share %d on %q: %w", i, owner, err)
		}
	}
	cc.mu.Lock()
	cc.arcs[id] = clusterArch{K: req.ShareK, N: req.ShareN}
	cc.mu.Unlock()
	return &ClusterProvisionResult{ClusterID: id, ShareK: req.ShareK, ShareN: req.ShareN, Owners: owners}, nil
}

// RegisterCluster teaches the client the share geometry of a cluster
// architecture provisioned elsewhere (another client process), so
// Access can route to it. Placement needs no registration — it is
// re-derived from the ring.
func (cc *ClusterClient) RegisterCluster(id string, shareK, shareN int) error {
	if id == "" {
		return errors.New("api: cluster: empty cluster id")
	}
	if shareK < 1 || shareN < shareK {
		return fmt.Errorf("api: cluster: need 1 <= k <= n, got k=%d n=%d", shareK, shareN)
	}
	if shareN > cc.node.Ring().Size() {
		return fmt.Errorf("api: cluster: n=%d exceeds ring size %d", shareN, cc.node.Ring().Size())
	}
	cc.mu.Lock()
	cc.arcs[id] = clusterArch{K: shareK, N: shareN}
	cc.mu.Unlock()
	return nil
}

// geometry looks up a registered cluster architecture.
func (cc *ClusterClient) geometry(id string) (clusterArch, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	a, ok := cc.arcs[id]
	return a, ok
}

// ClusterAccessResult reports one reconstructed cluster access.
type ClusterAccessResult struct {
	SecretHex string
	// Served names the nodes whose shares won the race, in completion
	// order. len(Served) == the cluster's k.
	Served []string
}

// shareResult is one owner's answer to a share fetch.
type shareResult struct {
	idx   int
	node  string
	share shamir.Share
	err   error
}

// Access reconstructs the secret by fetching any k of the n shares.
//
// The fan-out is eager for the first k owners and lazy for the spares:
// spare owner k+j is consulted only when a fetch fails (instant
// failover) or when the hedge delay elapses j times with the access
// still unresolved (straggler hedging, WithHedgeDelay). Each owner is
// asked at most once per call — a hedged loser's wear is bounded by the
// one fetch already in flight, never duplicated — and the first k
// successes cancel every straggler via the shared request context.
//
// Failures map onto the cluster error taxonomy, all as *Error:
//
//	410 — exhausted: so many owners report spent budgets that k shares
//	      can never again be assembled. The cluster-level lockout.
//	422 — decode failed: k shares were unreachable and at least one
//	      owner conducted but could not reconstruct its share (or
//	      returned a malformed payload).
//	503 — owner down: a node could not be reached at all (transport
//	      error). Retryable; spares may cover it on the next call.
//	503 — quorum unreachable: owners answered but fewer than k could
//	      serve (degraded stores, shedding, replays). Retryable.
func (cc *ClusterClient) Access(ctx context.Context, id string, req AccessRequest) (*ClusterAccessResult, error) {
	geo, ok := cc.geometry(id)
	if !ok {
		return nil, fmt.Errorf("api: cluster: unknown cluster id %q (RegisterCluster first)", id)
	}
	owners, err := cc.node.Ring().Owners(id, geo.N)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan shareResult, geo.N)
	launch := func(i int) {
		go func() {
			r := shareResult{idx: i, node: owners[i]}
			out, err := cc.clients[owners[i]].ClusterAccess(rctx, ClusterAccessRequest{
				ClusterID:   id,
				ShareIndex:  i,
				ShareTotal:  geo.N,
				TempCelsius: req.TempCelsius,
			})
			if err != nil {
				r.err = err
			} else if sh, derr := decodeShareHex(out.ShareHex); derr != nil {
				// A malformed payload is a decode failure, not an owner
				// outage — classify it as the node's 422 would be.
				r.err = &Error{StatusCode: http.StatusUnprocessableEntity, Message: "malformed share payload: " + derr.Error()}
			} else {
				r.share = sh
			}
			results <- r
		}()
	}
	for i := 0; i < geo.K; i++ {
		launch(i)
	}
	// The hedge pump: one tick per spare, spaced hedge apart, through the
	// shared ctx-capped sleep. Ticks only grant permission — the collector
	// below is the sole launcher, so a spare is never raced onto the wire
	// twice (once for a failure, once for a hedge).
	hedgeTick := make(chan struct{}, geo.N-geo.K)
	if cc.hedge > 0 && geo.K < geo.N {
		go func() {
			for j := geo.K; j < geo.N; j++ {
				if cc.sleep(rctx, cc.hedge) != nil {
					return
				}
				hedgeTick <- struct{}{}
			}
		}()
	}

	spares := make([]int, 0, geo.N-geo.K)
	for i := geo.K; i < geo.N; i++ {
		spares = append(spares, i)
	}
	popSpare := func() {
		if len(spares) > 0 {
			launch(spares[0])
			spares = spares[1:]
		}
	}
	var (
		won      = make([]shamir.Share, 0, geo.K)
		served   = make([]string, 0, geo.K)
		errs     []error
		launched = geo.K
		outcomes = 0
	)
	for len(won) < geo.K {
		if outcomes == launched && len(spares) == 0 {
			// Every consulted owner has answered, no spares remain, and
			// still fewer than k shares: the access has failed.
			return nil, classifyClusterFailure(geo.K, geo.N, errs)
		}
		select {
		case r := <-results:
			outcomes++
			if r.err != nil {
				errs = append(errs, fmt.Errorf("share %d on %q: %w", r.idx, r.node, r.err))
				before := len(spares)
				popSpare()
				launched += before - len(spares)
				continue
			}
			won = append(won, r.share)
			served = append(served, r.node)
		case <-hedgeTick:
			before := len(spares)
			popSpare()
			launched += before - len(spares)
		case <-rctx.Done():
			return nil, rctx.Err()
		}
	}
	secret, err := combineShares(won, geo.K)
	if err != nil {
		return nil, &Error{StatusCode: http.StatusUnprocessableEntity, Message: "cluster: decode failed: " + err.Error()}
	}
	return &ClusterAccessResult{SecretHex: hex.EncodeToString(secret), Served: served}, nil
}

// ShareStatuses reports each share's wearout state without consuming
// any access, indexed by share number; an unreachable owner leaves a
// nil entry.
func (cc *ClusterClient) ShareStatuses(ctx context.Context, id string) ([]*StatusResponse, error) {
	geo, ok := cc.geometry(id)
	if !ok {
		return nil, fmt.Errorf("api: cluster: unknown cluster id %q (RegisterCluster first)", id)
	}
	owners, err := cc.node.Ring().Owners(id, geo.N)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	out := make([]*StatusResponse, geo.N)
	for i, owner := range owners {
		st, err := cc.clients[owner].Status(ctx, cluster.ShareID(id, i))
		if err != nil {
			continue
		}
		out[i] = st
	}
	return out, nil
}

// decodeShareHex unpacks one wire share payload.
func decodeShareHex(shareHex string) (shamir.Share, error) {
	payload, err := hex.DecodeString(shareHex)
	if err != nil {
		return shamir.Share{}, fmt.Errorf("share_hex: %w", err)
	}
	x, data, err := cluster.DecodeShare(payload)
	if err != nil {
		return shamir.Share{}, err
	}
	return shamir.Share{X: x, Data: data}, nil
}

// combineShares reconstructs the secret from k shares, validating that
// the shares agree on length first (a malformed node response must
// surface as a decode failure, not a panic or a garbled secret).
func combineShares(shares []shamir.Share, k int) ([]byte, error) {
	if len(shares) < k {
		return nil, fmt.Errorf("need %d shares, have %d", k, len(shares))
	}
	width := len(shares[0].Data)
	for _, s := range shares {
		if len(s.Data) != width {
			return nil, fmt.Errorf("inconsistent share lengths (%d vs %d)", width, len(s.Data))
		}
	}
	dst := make([]byte, width)
	n, err := shamir.CombineInto(shares[:k], k, dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// classifyClusterFailure folds the per-share failures of one Access
// into the cluster error taxonomy. Precedence: a permanent global
// lockout (410) beats everything; a permanent per-share decode failure
// (422) beats the retryable refusals; transport failures classify as
// owner-down and everything else as quorum-unreachable (both 503).
func classifyClusterFailure(k, n int, errs []error) error {
	exhausted, decode, transport := 0, false, false
	for _, e := range errs {
		var ae *Error
		if !errors.As(e, &ae) {
			transport = true
			continue
		}
		switch ae.StatusCode {
		case http.StatusGone:
			exhausted++
		case http.StatusUnprocessableEntity:
			decode = true
		}
	}
	msg := errors.Join(errs...)
	switch {
	case n-exhausted < k:
		// Too few un-exhausted owners remain to ever assemble k shares:
		// the global budget is spent. This is the paper's lockout, one
		// level up — permanent by the same hardware argument.
		return &Error{StatusCode: http.StatusGone, Message: fmt.Sprintf("cluster: budget exhausted: %d of %d shares spent, need %d: %v", exhausted, n, k, msg)}
	case decode:
		return &Error{StatusCode: http.StatusUnprocessableEntity, Message: fmt.Sprintf("cluster: decode failed: %v", msg)}
	case transport:
		return &Error{StatusCode: http.StatusServiceUnavailable, Retry: true, Message: fmt.Sprintf("cluster: owner down: %v", msg)}
	default:
		return &Error{StatusCode: http.StatusServiceUnavailable, Retry: true, Message: fmt.Sprintf("cluster: quorum unreachable: %v", msg)}
	}
}
