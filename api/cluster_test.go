package api

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lemonade/internal/cluster"
	"lemonade/internal/rng"
	"lemonade/internal/shamir"
)

// fakeNode is one scripted cluster member: it owns a set of shares and
// serves POST /v1/cluster/access from them, with an optional per-node
// behavior override. It counts how often it is asked, because "each
// owner asked at most once per call" is a wear guarantee, not a perf
// nicety.
type fakeNode struct {
	name   string
	srv    *httptest.Server
	hits   atomic.Int64
	shares map[int]shamir.Share // share index -> share
	// behave, when non-nil, runs instead of the default share reply.
	behave func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest)
}

func (f *fakeNode) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/access" {
			http.NotFound(w, r)
			return
		}
		f.hits.Add(1)
		var req ClusterAccessRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		if f.behave != nil {
			f.behave(w, r, req)
			return
		}
		f.reply(w, req)
	})
}

func (f *fakeNode) reply(w http.ResponseWriter, req ClusterAccessRequest) {
	sh, ok := f.shares[req.ShareIndex]
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "unknown share"})
		return
	}
	json.NewEncoder(w).Encode(ClusterAccessResponse{
		Node:     f.name,
		ShareHex: hex.EncodeToString(cluster.EncodeShare(sh.X, sh.Data)),
	})
}

// fakeCluster splits secret k-of-n across three scripted nodes placed
// by the real ring, and returns the nodes keyed by name plus the owner
// order for the given cluster ID.
func fakeCluster(t *testing.T, id string, secret []byte, k, n int) (map[string]*fakeNode, []string, map[string]string) {
	t.Helper()
	nodes := map[string]*fakeNode{}
	urls := map[string]string{}
	for _, name := range []string{"n0", "n1", "n2"} {
		f := &fakeNode{name: name, shares: map[int]shamir.Share{}}
		f.srv = httptest.NewServer(f.handler())
		t.Cleanup(f.srv.Close)
		nodes[name] = f
		urls[name] = f.srv.URL
	}
	ring, err := cluster.NewRing([]string{"n0", "n1", "n2"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	owners, err := ring.Owners(id, n)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := shamir.Split(secret, k, n, rng.New(7).Derive("test/split"))
	if err != nil {
		t.Fatal(err)
	}
	for i, owner := range owners {
		nodes[owner].shares[i] = shares[i]
	}
	return nodes, owners, urls
}

// TestClusterHedgeFiresAfterDelay pins the hedged-fetch contract end to
// end: a slow owner does not stall the access (the spare is consulted
// after exactly the configured hedge delay), the first k shares win,
// the straggler's request is cancelled — and the slow owner was asked
// exactly once, so losing the race never costs duplicate wear.
func TestClusterHedgeFiresAfterDelay(t *testing.T) {
	const id = "arch-000001"
	secret := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	nodes, owners, urls := fakeCluster(t, id, secret, 2, 3)

	release := make(chan struct{})
	cancelled := make(chan struct{})
	nodes[owners[0]].behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
		select {
		case <-r.Context().Done():
			close(cancelled)
		case <-release:
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	defer close(release)

	const hedge = 50 * time.Millisecond
	cc, err := NewClusterClient(urls, 42, WithHedgeDelay(hedge))
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic hedging: the shared sleep records each requested wait
	// and returns immediately, so the test never waits wall-clock time.
	var mu sync.Mutex
	var slept []time.Duration
	record := func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	cc.sleep = record
	for _, c := range cc.clients {
		c.sleep = record
	}
	if err := cc.RegisterCluster(id, 2, 3); err != nil {
		t.Fatal(err)
	}

	res, err := cc.Access(context.Background(), id, AccessRequest{})
	if err != nil {
		t.Fatalf("hedged access failed: %v", err)
	}
	if res.SecretHex != hex.EncodeToString(secret) {
		t.Fatalf("reconstructed %q, want %q", res.SecretHex, hex.EncodeToString(secret))
	}
	if len(res.Served) != 2 {
		t.Fatalf("Served = %v, want 2 winners", res.Served)
	}
	for _, n := range res.Served {
		if n == owners[0] {
			t.Fatalf("slow owner %q listed among winners %v", owners[0], res.Served)
		}
	}
	mu.Lock()
	sawHedge := false
	for _, d := range slept {
		if d == hedge {
			sawHedge = true
		}
	}
	mu.Unlock()
	if !sawHedge {
		t.Fatalf("hedge delay %v never went through the shared sleep: %v", hedge, slept)
	}
	// First k wins must cancel the straggler...
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("straggler request never cancelled after k shares won")
	}
	// ...and hedging must not have asked it a second time.
	if got := nodes[owners[0]].hits.Load(); got != 1 {
		t.Fatalf("slow owner asked %d times, want exactly 1 (duplicate wear)", got)
	}
	for _, name := range []string{owners[1], owners[2]} {
		if got := nodes[name].hits.Load(); got != 1 {
			t.Fatalf("owner %q asked %d times, want 1", name, got)
		}
	}
}

// TestClusterFailoverWithoutHedge pins the lazy-spare baseline: with
// hedging disabled, a failed owner triggers an instant spare launch —
// no hedge delay, no sleep at all — and every owner is still consulted
// at most once.
func TestClusterFailoverWithoutHedge(t *testing.T) {
	const id = "arch-000001"
	secret := []byte{9, 9, 9, 9}
	nodes, owners, urls := fakeCluster(t, id, secret, 2, 3)
	nodes[owners[1]].behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "degraded"})
	}
	cc, err := NewClusterClient(urls, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sleeps atomic.Int64
	record := func(ctx context.Context, d time.Duration) error {
		sleeps.Add(1)
		return ctx.Err()
	}
	cc.sleep = record
	for _, c := range cc.clients {
		c.sleep = record
	}
	if err := cc.RegisterCluster(id, 2, 3); err != nil {
		t.Fatal(err)
	}
	res, err := cc.Access(context.Background(), id, AccessRequest{})
	if err != nil {
		t.Fatalf("failover access failed: %v", err)
	}
	if res.SecretHex != hex.EncodeToString(secret) {
		t.Fatal("failover reconstructed the wrong secret")
	}
	if n := sleeps.Load(); n != 0 {
		t.Fatalf("instant failover slept %d times, want 0", n)
	}
	for name, f := range nodes {
		if got := f.hits.Load(); got > 1 {
			t.Fatalf("owner %q asked %d times, want at most 1", name, got)
		}
	}
}

// TestClusterRetrySleepCappedByContext is the regression test for the
// shared-sleep fix: a malicious or miscalibrated node answering 503
// with Retry-After: 3600 must not pin a cancelled cluster access for an
// hour — the per-node retry wait goes through the cluster's ctx-capped
// sleep, so the call returns roughly at the caller's deadline.
func TestClusterRetrySleepCappedByContext(t *testing.T) {
	const id = "arch-000001"
	secret := []byte{5, 5, 5, 5}
	nodes, _, urls := fakeCluster(t, id, secret, 3, 3)
	for _, f := range nodes {
		f.behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
			w.Header().Set("Retry-After", "3600")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "try much later"})
		}
	}
	// Real sleeps, real retries: only the context cap stands between this
	// test and an hour-long hang.
	cc, err := NewClusterClient(urls, 42, WithClusterNodeOptions(WithRetryOn503(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.RegisterCluster(id, 3, 3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cc.Access(ctx, id, AccessRequest{})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("access against all-503 nodes succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("access outlived its 100ms deadline by %v — a retry slept past the context", elapsed)
	}
}

// TestClusterHedgeSleepCappedByContext is the same regression on the
// hedge path: an hour-long hedge delay against a blocked owner must die
// with the caller's context, not wait out the delay.
func TestClusterHedgeSleepCappedByContext(t *testing.T) {
	const id = "arch-000001"
	secret := []byte{4, 4, 4, 4}
	nodes, owners, urls := fakeCluster(t, id, secret, 1, 2)
	release := make(chan struct{})
	defer close(release)
	nodes[owners[0]].behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	cc, err := NewClusterClient(urls, 42, WithHedgeDelay(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.RegisterCluster(id, 1, 2); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cc.Access(ctx, id, AccessRequest{})
	if err == nil {
		t.Fatal("access with a blocked sole owner succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("access outlived its 100ms deadline by %v — the hedge slept past the context", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) && !IsTransient(err) {
		t.Fatalf("want deadline or transient error, got %v", err)
	}
}

// TestClusterSharedSleepIsShared proves the fix is structural, not
// incidental: the hedge pump and a per-node 503 retry both wait through
// the ONE recorded sleep function, so capping it caps every wait the
// cluster path can take.
func TestClusterSharedSleepIsShared(t *testing.T) {
	const id = "arch-000001"
	secret := []byte{8, 8}
	nodes, owners, urls := fakeCluster(t, id, secret, 2, 3)

	// owners[0] answers 503 once (with Retry-After so the retry path
	// waits), then serves its share; owners[1] blocks until cancelled.
	var flaky atomic.Bool
	nodes[owners[0]].behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
		if flaky.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "flap"})
			return
		}
		nodes[owners[0]].reply(w, req)
	}
	release := make(chan struct{})
	defer close(release)
	nodes[owners[1]].behave = func(w http.ResponseWriter, r *http.Request, req ClusterAccessRequest) {
		select {
		case <-r.Context().Done():
		case <-release:
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	}

	const hedge = 30 * time.Millisecond
	cc, err := NewClusterClient(urls, 42,
		WithHedgeDelay(hedge),
		WithClusterNodeOptions(WithRetryOn503(2)))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var slept []time.Duration
	record := func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	cc.sleep = record
	for _, c := range cc.clients {
		c.sleep = record
	}
	if err := cc.RegisterCluster(id, 2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Access(context.Background(), id, AccessRequest{}); err != nil {
		t.Fatalf("access failed: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawRetry, sawHedge bool
	for _, d := range slept {
		if d == time.Second {
			sawRetry = true // Retry-After: 1 from the flapping owner
		}
		if d == hedge {
			sawHedge = true
		}
	}
	if !sawRetry || !sawHedge {
		t.Fatalf("shared sleep saw retry=%v hedge=%v (waits: %v) — both paths must flow through it",
			sawRetry, sawHedge, slept)
	}
}
