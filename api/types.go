// Package api is the public wire contract of the lemonaded HTTP service:
// the request/response types for every endpoint, and a typed client.
//
// The types are pure data — plain structs with JSON tags and no
// dependency on the server's internals — so external tooling can import
// this package alone. The server converts between these wire forms and
// its domain types at the handler boundary; the golden determinism tests
// pin the JSON produced here, so field names and ordering are part of
// the compatibility contract.
package api

// SpecRequest is the wire form of a design problem: flat JSON, with the
// same defaulting as the CLI (99%/1% criteria when omitted).
type SpecRequest struct {
	Alpha           float64 `json:"alpha"`
	Beta            float64 `json:"beta"`
	MinWork         float64 `json:"min_work,omitempty"`
	MaxOverrun      float64 `json:"max_overrun,omitempty"`
	LAB             int     `json:"lab"`
	UpperBound      int     `json:"upper_bound,omitempty"`
	KFrac           float64 `json:"kfrac,omitempty"`
	ContinuousT     bool    `json:"continuous_t,omitempty"`
	MaxPerStructure int     `json:"max_per_structure,omitempty"`
}

// DesignResponse is the wire form of a solved design.
type DesignResponse struct {
	T                     int     `json:"t"`
	UpperT                int     `json:"upper_t"`
	N                     int     `json:"n"`
	K                     int     `json:"k"`
	Copies                int     `json:"copies"`
	TotalDevices          int     `json:"total_devices"`
	GuaranteedMinAccesses int     `json:"guaranteed_min_accesses"`
	MaxAllowedAccesses    int     `json:"max_allowed_accesses"`
	WorkProb              float64 `json:"work_prob"`
	OverrunProb           float64 `json:"overrun_prob"`
}

// ProvisionRequest fabricates an architecture. The seed is mandatory in
// spirit — omitting it means seed 0, which is still fully deterministic.
//
// Setting Spares or RemapEpoch provisions the wear-leveled variant: each
// serial copy is fabricated with Spares extra switches behind a
// programmable remap table, and the daemon rotates assignments onto the
// least-worn switches every RemapEpoch operations (immediately when an
// assigned switch dies). Both zero provisions the plain architecture,
// whose wire encoding is unchanged.
type ProvisionRequest struct {
	Spec      SpecRequest `json:"spec"`
	SecretHex string      `json:"secret_hex"`
	Seed      uint64      `json:"seed"`
	// Spares is the spare-switch complement per copy (0 = unleveled).
	Spares int `json:"spares,omitempty"`
	// RemapEpoch is the rotation schedule in operations; 0 with Spares set
	// lets the server pick its default epoch.
	RemapEpoch uint64 `json:"remap_epoch,omitempty"`
}

// ProvisionResponse identifies the provisioned architecture.
type ProvisionResponse struct {
	ID     string         `json:"id"`
	Seed   uint64         `json:"seed"`
	Cached bool           `json:"design_cached"`
	Design DesignResponse `json:"design"`
	// Spares and RemapEpoch echo the wear-leveling variant actually
	// provisioned (defaulting applied); both absent for plain
	// architectures.
	Spares     int    `json:"spares,omitempty"`
	RemapEpoch uint64 `json:"remap_epoch,omitempty"`
}

// StressRequest parameterizes one adversarial stress burst: Pulses
// actuations of each listed share index under the given environment.
// Stress consumes wearout exactly like an access but never attempts
// reconstruction — the response carries no key material by construction.
type StressRequest struct {
	TempCelsius float64 `json:"temp_celsius,omitempty"` // 0 = room temperature
	Indices     []int   `json:"indices"`                // share indices to actuate, each in [0, n)
	Pulses      int     `json:"pulses,omitempty"`       // actuations per index (0 = 1)
}

// StressResponse reports one applied stress burst. It deliberately has
// no secret field: stress wears the hardware without revealing anything.
type StressResponse struct {
	Conducted int    `json:"conducted"` // actuations that conducted (still-working switches)
	Pulses    int    `json:"pulses"`    // pulses applied per index (after defaulting)
	Stressed  uint64 `json:"stressed"`  // lifetime stress pulses against this architecture
	Remaps    uint64 `json:"remaps"`    // wear-leveling rotations performed so far
}

// AccessRequest parameterizes one access; the zero value means room
// temperature (the paper's nominal environment).
type AccessRequest struct {
	TempCelsius float64 `json:"temp_celsius,omitempty"`
}

// AccessResponse reports one successful access.
type AccessResponse struct {
	SecretHex  string `json:"secret_hex"`
	Attempts   uint64 `json:"attempts"`   // total accesses attempted so far
	Successful uint64 `json:"successful"` // accesses that yielded the secret
	Copy       int    `json:"copy"`       // copy index that served this access
}

// WearLevelingStatus is the wear-leveling block of a status report, only
// present for architectures provisioned with spares.
type WearLevelingStatus struct {
	Spares          int     `json:"spares"`           // spare complement per copy
	RemapEpoch      uint64  `json:"remap_epoch"`      // rotation schedule in operations
	Remaps          uint64  `json:"remaps"`           // rotations performed
	SparesRemaining int     `json:"spares_remaining"` // usable unassigned switches, summed over copies
	WearSkew        float64 `json:"wear_skew"`        // max−min wear over the active copy's serviceable pool
	Stressed        uint64  `json:"stressed"`         // lifetime stress pulses absorbed
}

// StatusResponse reports an architecture's wearout state. WearLeveling
// is nil for plain architectures, keeping their encoding unchanged.
type StatusResponse struct {
	ID              string              `json:"id"`
	Alive           bool                `json:"alive"`
	Attempts        uint64              `json:"attempts"`
	Successful      uint64              `json:"successful"`
	CurrentCopy     int                 `json:"current_copy"`
	ExhaustedCopies int                 `json:"exhausted_copies"`
	Design          DesignResponse      `json:"design"`
	WearLeveling    *WearLevelingStatus `json:"wear_leveling,omitempty"`
}

// ArchitectureSummary is one row of the fleet listing.
type ArchitectureSummary struct {
	ID         string `json:"id"`
	Alive      bool   `json:"alive"`
	Attempts   uint64 `json:"attempts"`
	Successful uint64 `json:"successful"`
}

// ListResponse answers GET /v1/architectures. Architectures come in
// deterministic ascending ID order; NextAfterID, when set, is the cursor
// for the following page (pass it as ?after_id=).
type ListResponse struct {
	Architectures []ArchitectureSummary `json:"architectures"`
	NextAfterID   string                `json:"next_after_id,omitempty"`
}

// AccessEvent is one completed access attempt, as reported by the events
// endpoint. Outcome is one of "success", "transient", "exhausted",
// "decode_failed".
type AccessEvent struct {
	Attempt    uint64 `json:"attempt"` // 1-based attempt number
	Copy       int    `json:"copy"`    // copy that served (or refused) the access
	Conducting int    `json:"conducting"`
	Outcome    string `json:"outcome"`
}

// EventsResponse answers GET /v1/architectures/{id}/events: the most
// recent access events, oldest first. The buffer is in-memory telemetry
// bounded by the server's ring size; after a daemon restart it holds
// only events replayed since the last snapshot.
type EventsResponse struct {
	ID     string        `json:"id"`
	Events []AccessEvent `json:"events"`
}

// ExploreResponse answers a cached design search.
type ExploreResponse struct {
	Cached bool           `json:"cached"`
	Design DesignResponse `json:"design"`
}

// FrontierResponse answers a frontier enumeration.
type FrontierResponse struct {
	Count   int              `json:"count"`
	Designs []DesignResponse `json:"designs"`
}

// ClusterShareRequest provisions one Shamir share of a cluster-level
// architecture onto the node that owns it. The receiving node verifies
// ownership against its ring — ClusterID placed with ShareTotal owners
// must put ShareIndex on this node, or the request is refused with 421
// Misdirected Request — and then fabricates a limited-use architecture
// from Spec whose protected secret is the encoded share payload.
type ClusterShareRequest struct {
	ClusterID  string      `json:"cluster_id"`
	ShareIndex int         `json:"share_index"`
	ShareTotal int         `json:"share_total"`
	Spec       SpecRequest `json:"spec"`
	// ShareHex is the hex-encoded share payload (one X byte followed by
	// the share data) that the node's architecture will guard.
	ShareHex string `json:"share_hex"`
	Seed     uint64 `json:"seed"`
}

// ClusterShareResponse identifies one provisioned share.
type ClusterShareResponse struct {
	ID     string         `json:"id"`   // the node-local share ID (cluster_id + "@s" + index)
	Node   string         `json:"node"` // the answering node's name
	Seed   uint64         `json:"seed"`
	Design DesignResponse `json:"design"`
}

// ClusterAccessRequest asks the owning node for one wearout-consuming
// access against the architecture guarding a single share. ShareTotal
// rides along so the node can re-derive placement and refuse misrouted
// requests without any peer traffic.
type ClusterAccessRequest struct {
	ClusterID   string  `json:"cluster_id"`
	ShareIndex  int     `json:"share_index"`
	ShareTotal  int     `json:"share_total"`
	TempCelsius float64 `json:"temp_celsius,omitempty"`
}

// ClusterAccessResponse reports one successful share access. It carries
// one share's payload only — never the cluster secret, which no single
// node can reconstruct.
type ClusterAccessResponse struct {
	Node       string `json:"node"`
	ShareHex   string `json:"share_hex"`
	Attempts   uint64 `json:"attempts"`
	Successful uint64 `json:"successful"`
}

// RingResponse answers GET /v1/cluster/ring: the node's view of the
// placement configuration. Two nodes (or a node and a client) agree on
// placement iff they agree on Seed and Nodes.
type RingResponse struct {
	Self  string   `json:"self"`
	Seed  uint64   `json:"seed"`
	Nodes []string `json:"nodes"` // canonical (sorted) ring membership
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"` // set for spec validation failures
	Retry bool   `json:"retry,omitempty"` // set when retrying may succeed
}
