package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Retry policy: WithRetryOn503 sets HOW MANY times a 503 is retried;
// WithRetryBackoff sets HOW LONG to wait between attempts when the
// server is silent. A server-sent Retry-After header always takes
// precedence over the computed backoff — the server knows its drain
// better than any client-side schedule. Without WithRetryBackoff the
// client waits only when the server sends Retry-After (the original
// fixed behavior), so existing callers are unchanged.

// Error is the typed failure returned by every Client method when the
// server answered with a non-2xx status. It preserves the HTTP status,
// the decoded error body, and the server's Retry-After hint, so callers
// can branch on semantics (IsExhausted, IsTransient, IsNotFound) instead
// of string-matching.
type Error struct {
	StatusCode int
	Message    string
	Field      string // offending field, for validation failures
	Retry      bool   // server says retrying may succeed
	// RetryAfter is the parsed Retry-After header, 0 if absent or
	// unparseable. Both RFC 9110 forms are understood: delta-seconds
	// ("Retry-After: 3") and HTTP-date ("Retry-After: Fri, 08 Aug 2026
	// 17:00:00 GMT"); the date form is resolved against the response's
	// own Date header, so server/client clock skew cancels out. Callers
	// never need to re-parse headers.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("api: %d: %s (field %s)", e.StatusCode, e.Message, e.Field)
	}
	return fmt.Sprintf("api: %d: %s", e.StatusCode, e.Message)
}

// IsExhausted reports whether err is the server refusing an access
// because the wearout budget is spent (HTTP 410) — the paper's lockout.
func IsExhausted(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusGone
}

// IsTransient reports whether err is a retryable failure (HTTP 503).
// The server answers 503 for every transient refusal: a copy died
// mid-access and the next takes over, the circuit breaker is open, the
// load-shedder rejected the request at the door, or the durable store
// wrapped a commit failure (ErrStore) — in all cases no wearout budget
// was consumed and retrying the same request may succeed.
func IsTransient(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// IsNotFound reports whether err is an unknown-architecture failure.
func IsNotFound(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// Client is a typed client for the lemonaded HTTP API. Create with
// NewClient; the zero value is not usable. Methods are safe for
// concurrent use.
type Client struct {
	base  string
	httpc *http.Client
	// retry503 is how many times a 503 response is retried (0 = no
	// retries). Waits honor the server's Retry-After header.
	retry503 int
	// backoffBase/backoffMax, when set, schedule the wait before retry
	// attempt k as jittered exponential backoff capped at backoffMax —
	// used only when the server sent no Retry-After (see backoff).
	backoffBase time.Duration
	backoffMax  time.Duration
	// sleep waits for d or until ctx is done, whichever is first,
	// returning ctx.Err() in the latter case. Injectable so retry tests
	// run instantly.
	sleep func(ctx context.Context, d time.Duration) error
}

// sleepCtx is the production sleep: a timer race against the context, so
// a server-suggested Retry-After can never outlive the caller's
// deadline.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (e.g. to add a
// transport-level timeout or a test transport).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithTimeout sets a per-request timeout on the client's *http.Client.
// Apply it after WithHTTPClient if both are used.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.httpc.Timeout = d } }

// WithRetryOn503 makes every request retry up to n times when the server
// answers 503 (transient access failure or shutdown drain), sleeping for
// the server's Retry-After between attempts. Combine with
// WithRetryBackoff to also wait when the server sends no Retry-After.
func WithRetryOn503(n int) Option { return func(c *Client) { c.retry503 = n } }

// WithRetryBackoff schedules the wait between 503 retries when the
// server sends no Retry-After header: attempt k (0-based) waits
// min(max, base<<k) shrunk by a jitter that is a pure function of k —
// deterministic given the attempt count, so retry traces replay exactly,
// yet de-synchronized across successive attempts. A server-sent
// Retry-After always overrides the computed wait. The option sets only
// the schedule; pair it with WithRetryOn503(n) to enable retries at all.
func WithRetryBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase, c.backoffMax = base, max }
}

// backoff computes the attempt-k wait for WithRetryBackoff: exponential
// growth base<<k capped at backoffMax, then scaled into [1/2, 1) of that
// ceiling by a splitmix64-style hash of k. No global RNG is consulted —
// two clients configured alike back off identically, which keeps retry
// tests and recorded traces deterministic.
func (c *Client) backoff(attempt int) time.Duration {
	if c.backoffBase <= 0 {
		return 0
	}
	d := c.backoffMax
	if attempt < 62 {
		if exp := c.backoffBase << uint(attempt); exp > 0 && exp < d {
			d = exp
		}
	}
	if d <= 1 {
		return d
	}
	// splitmix64 finalizer on the attempt number: well-mixed bits from a
	// trivially small domain, with no process-global state.
	z := uint64(attempt) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	half := uint64(d) / 2
	return time.Duration(half + z%(uint64(d)-half))
}

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("api: invalid base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("api: base URL must be http or https, got %q", base)
	}
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		httpc: &http.Client{},
		sleep: sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Provision fabricates a new architecture.
func (c *Client) Provision(ctx context.Context, req ProvisionRequest) (*ProvisionResponse, error) {
	var out ProvisionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/architectures", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status reports an architecture's wearout state without consuming an
// access.
func (c *Client) Status(ctx context.Context, id string) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/architectures/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Access performs one real, wearout-consuming access.
func (c *Client) Access(ctx context.Context, id string, req AccessRequest) (*AccessResponse, error) {
	var out AccessResponse
	if err := c.do(ctx, http.MethodPost, "/v1/architectures/"+url.PathEscape(id)+"/access", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stress applies one adversarial stress burst: pulses × indices
// wearout-consuming actuations with no reconstruction attempt. The
// response never carries key material.
func (c *Client) Stress(ctx context.Context, id string, req StressRequest) (*StressResponse, error) {
	var out StressResponse
	if err := c.do(ctx, http.MethodPost, "/v1/architectures/"+url.PathEscape(id)+"/stress", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// List pages through the fleet in deterministic ID order. An empty
// afterID starts from the beginning; limit <= 0 lets the server choose.
//
// The response is returned faithfully: in particular NextAfterID is
// preserved even when Architectures is empty. A server (or a filtering
// proxy in front of one) may legally emit an empty page mid-pagination
// with the cursor still set, so "page is empty" does NOT mean "done" —
// loop until NextAfterID is empty, never until a page has no rows.
func (c *Client) List(ctx context.Context, afterID string, limit int) (*ListResponse, error) {
	q := url.Values{}
	if afterID != "" {
		q.Set("after_id", afterID)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/architectures"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out ListResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events returns an architecture's recent access events, oldest first.
// max <= 0 means all buffered events.
func (c *Client) Events(ctx context.Context, id string, max int) (*EventsResponse, error) {
	path := "/v1/architectures/" + url.PathEscape(id) + "/events"
	if max > 0 {
		path += "?max=" + strconv.Itoa(max)
	}
	var out EventsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explore runs (or recalls) a design-space search.
func (c *Client) Explore(ctx context.Context, req SpecRequest) (*ExploreResponse, error) {
	var out ExploreResponse
	if err := c.do(ctx, http.MethodPost, "/v1/dse/explore", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Frontier enumerates feasible designs; limit <= 0 returns all.
func (c *Client) Frontier(ctx context.Context, req SpecRequest, limit int) (*FrontierResponse, error) {
	path := "/v1/dse/frontier"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out FrontierResponse
	if err := c.do(ctx, http.MethodPost, path, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterShare provisions one Shamir share onto this node. The node
// verifies ownership against its ring and refuses misrouted shares with
// 421 Misdirected Request; a share ID already provisioned is 409.
func (c *Client) ClusterShare(ctx context.Context, req ClusterShareRequest) (*ClusterShareResponse, error) {
	var out ClusterShareResponse
	if err := c.do(ctx, http.MethodPost, "/v1/cluster/shares", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterAccess performs one wearout-consuming access against the
// architecture guarding one share on this node. The response carries
// that single share's payload, never the cluster secret.
func (c *Client) ClusterAccess(ctx context.Context, req ClusterAccessRequest) (*ClusterAccessResponse, error) {
	var out ClusterAccessResponse
	if err := c.do(ctx, http.MethodPost, "/v1/cluster/access", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ClusterRing fetches the node's placement configuration, for verifying
// that a client and its nodes agree on ring membership and seed.
func (c *Client) ClusterRing(ctx context.Context) (*RingResponse, error) {
	var out RingResponse
	if err := c.do(ctx, http.MethodGet, "/v1/cluster/ring", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy checks the liveness endpoint.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// MetricsText fetches the raw Prometheus exposition, for scripted
// assertions on counters.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &Error{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// do executes one API call: marshal, send, retry 503s if configured,
// decode into out (skipped when out is nil). The request body is
// marshaled once and replayed on each attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryable, err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= c.retry503 {
			return lastErr
		}
		// Server-sent Retry-After wins; the configured backoff schedule
		// fills in only when the server was silent.
		var wait time.Duration
		var ae *Error
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			wait = ae.RetryAfter
		} else {
			wait = c.backoff(attempt)
		}
		if wait > 0 {
			// The wait is capped by the request context: a server
			// suggesting Retry-After: 3600 against a 50ms deadline gives
			// up in 50ms, not an hour.
			if serr := c.sleep(ctx, wait); serr != nil {
				return serr
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// parseRetryAfter turns a Retry-After header into a wait. RFC 9110
// allows two forms: delta-seconds ("3") and HTTP-date ("Fri, 08 Aug 2026
// 17:00:00 GMT"). The date form is resolved against the response's own
// Date header — both stamps come from the server's clock, so their
// difference is skew-free, and no wall clock is read here (the lemonvet
// determinism contract covers this package). Go's net/http sets Date on
// every response automatically; if it is missing or unparseable the date
// form is ignored rather than guessed. Unparseable or already-elapsed
// values yield 0.
func parseRetryAfter(ra, date string) time.Duration {
	if secs, err := strconv.Atoi(ra); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(ra)
	if err != nil {
		return 0
	}
	ref, err := http.ParseTime(date)
	if err != nil {
		return 0
	}
	if wait := when.Sub(ref); wait > 0 {
		return wait
	}
	return 0
}

// once performs a single HTTP exchange; retryable reports whether the
// failure was a 503 the caller may retry.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("api: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return false, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, fmt.Errorf("api: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &Error{StatusCode: resp.StatusCode}
		var eb ErrorResponse
		if jsonErr := json.Unmarshal(payload, &eb); jsonErr == nil && eb.Error != "" {
			ae.Message, ae.Field, ae.Retry = eb.Error, eb.Field, eb.Retry
		} else {
			ae.Message = strings.TrimSpace(string(payload))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			ae.RetryAfter = parseRetryAfter(ra, resp.Header.Get("Date"))
		}
		return resp.StatusCode == http.StatusServiceUnavailable, ae
	}
	if out == nil {
		return false, nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return false, fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return false, nil
}
