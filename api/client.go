package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// Error is the typed failure returned by every Client method when the
// server answered with a non-2xx status. It preserves the HTTP status,
// the decoded error body, and the server's Retry-After hint, so callers
// can branch on semantics (IsExhausted, IsTransient, IsNotFound) instead
// of string-matching.
type Error struct {
	StatusCode int
	Message    string
	Field      string        // offending field, for validation failures
	Retry      bool          // server says retrying may succeed
	RetryAfter time.Duration // parsed Retry-After header, 0 if absent
}

func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("api: %d: %s (field %s)", e.StatusCode, e.Message, e.Field)
	}
	return fmt.Sprintf("api: %d: %s", e.StatusCode, e.Message)
}

// IsExhausted reports whether err is the server refusing an access
// because the wearout budget is spent (HTTP 410) — the paper's lockout.
func IsExhausted(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusGone
}

// IsTransient reports whether err is a retryable failure (HTTP 503): the
// active copy died mid-access and the next copy takes over.
func IsTransient(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusServiceUnavailable
}

// IsNotFound reports whether err is an unknown-architecture failure.
func IsNotFound(err error) bool {
	var ae *Error
	return errors.As(err, &ae) && ae.StatusCode == http.StatusNotFound
}

// Client is a typed client for the lemonaded HTTP API. Create with
// NewClient; the zero value is not usable. Methods are safe for
// concurrent use.
type Client struct {
	base  string
	httpc *http.Client
	// retry503 is how many times a 503 response is retried (0 = no
	// retries). Waits honor the server's Retry-After header.
	retry503 int
	// sleep waits for d or until ctx is done, whichever is first,
	// returning ctx.Err() in the latter case. Injectable so retry tests
	// run instantly.
	sleep func(ctx context.Context, d time.Duration) error
}

// sleepCtx is the production sleep: a timer race against the context, so
// a server-suggested Retry-After can never outlive the caller's
// deadline.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (e.g. to add a
// transport-level timeout or a test transport).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithTimeout sets a per-request timeout on the client's *http.Client.
// Apply it after WithHTTPClient if both are used.
func WithTimeout(d time.Duration) Option { return func(c *Client) { c.httpc.Timeout = d } }

// WithRetryOn503 makes every request retry up to n times when the server
// answers 503 (transient access failure or shutdown drain), sleeping for
// the server's Retry-After between attempts.
func WithRetryOn503(n int) Option { return func(c *Client) { c.retry503 = n } }

// NewClient returns a client for the daemon at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...Option) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("api: invalid base URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("api: base URL must be http or https, got %q", base)
	}
	c := &Client{
		base:  strings.TrimRight(base, "/"),
		httpc: &http.Client{},
		sleep: sleepCtx,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Provision fabricates a new architecture.
func (c *Client) Provision(ctx context.Context, req ProvisionRequest) (*ProvisionResponse, error) {
	var out ProvisionResponse
	if err := c.do(ctx, http.MethodPost, "/v1/architectures", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Status reports an architecture's wearout state without consuming an
// access.
func (c *Client) Status(ctx context.Context, id string) (*StatusResponse, error) {
	var out StatusResponse
	if err := c.do(ctx, http.MethodGet, "/v1/architectures/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Access performs one real, wearout-consuming access.
func (c *Client) Access(ctx context.Context, id string, req AccessRequest) (*AccessResponse, error) {
	var out AccessResponse
	if err := c.do(ctx, http.MethodPost, "/v1/architectures/"+url.PathEscape(id)+"/access", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// List pages through the fleet in deterministic ID order. An empty
// afterID starts from the beginning; limit <= 0 lets the server choose.
func (c *Client) List(ctx context.Context, afterID string, limit int) (*ListResponse, error) {
	q := url.Values{}
	if afterID != "" {
		q.Set("after_id", afterID)
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/architectures"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out ListResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events returns an architecture's recent access events, oldest first.
// max <= 0 means all buffered events.
func (c *Client) Events(ctx context.Context, id string, max int) (*EventsResponse, error) {
	path := "/v1/architectures/" + url.PathEscape(id) + "/events"
	if max > 0 {
		path += "?max=" + strconv.Itoa(max)
	}
	var out EventsResponse
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Explore runs (or recalls) a design-space search.
func (c *Client) Explore(ctx context.Context, req SpecRequest) (*ExploreResponse, error) {
	var out ExploreResponse
	if err := c.do(ctx, http.MethodPost, "/v1/dse/explore", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Frontier enumerates feasible designs; limit <= 0 returns all.
func (c *Client) Frontier(ctx context.Context, req SpecRequest, limit int) (*FrontierResponse, error) {
	path := "/v1/dse/frontier"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out FrontierResponse
	if err := c.do(ctx, http.MethodPost, path, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthy checks the liveness endpoint.
func (c *Client) Healthy(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// MetricsText fetches the raw Prometheus exposition, for scripted
// assertions on counters.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return "", err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &Error{StatusCode: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return string(body), nil
}

// do executes one API call: marshal, send, retry 503s if configured,
// decode into out (skipped when out is nil). The request body is
// marshaled once and replayed on each attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("api: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		retryable, err := c.once(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= c.retry503 {
			return lastErr
		}
		var ae *Error
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			// The wait is capped by the request context: a server
			// suggesting Retry-After: 3600 against a 50ms deadline gives
			// up in 50ms, not an hour.
			if serr := c.sleep(ctx, ae.RetryAfter); serr != nil {
				return serr
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

// once performs a single HTTP exchange; retryable reports whether the
// failure was a 503 the caller may retry.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (retryable bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return false, fmt.Errorf("api: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return false, fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, fmt.Errorf("api: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		ae := &Error{StatusCode: resp.StatusCode}
		var eb ErrorResponse
		if jsonErr := json.Unmarshal(payload, &eb); jsonErr == nil && eb.Error != "" {
			ae.Message, ae.Field, ae.Retry = eb.Error, eb.Field, eb.Retry
		} else {
			ae.Message = strings.TrimSpace(string(payload))
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, perr := strconv.Atoi(ra); perr == nil && secs >= 0 {
				ae.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return resp.StatusCode == http.StatusServiceUnavailable, ae
	}
	if out == nil {
		return false, nil
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return false, fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return false, nil
}
