package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func newTestClient(t *testing.T, h http.Handler, opts ...Option) (*Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	c, err := NewClient(srv.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, srv
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("ftp://example.com"); err == nil {
		t.Error("NewClient accepted a non-http scheme")
	}
	if _, err := NewClient("://bad"); err == nil {
		t.Error("NewClient accepted an unparseable URL")
	}
	c, err := NewClient("http://example.com/")
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://example.com" {
		t.Errorf("base = %q, want trailing slash trimmed", c.base)
	}
}

func TestTypedRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/architectures", func(w http.ResponseWriter, r *http.Request) {
		var req ProvisionRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decoding provision request: %v", err)
		}
		if req.Seed != 42 || req.Spec.LAB != 30 {
			t.Errorf("provision request = %+v", req)
		}
		w.WriteHeader(http.StatusCreated)
		_ = json.NewEncoder(w).Encode(ProvisionResponse{ID: "arch-000001", Seed: req.Seed})
	})
	mux.HandleFunc("GET /v1/architectures", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("after_id") != "arch-000001" || r.URL.Query().Get("limit") != "2" {
			t.Errorf("list query = %v", r.URL.Query())
		}
		_ = json.NewEncoder(w).Encode(ListResponse{
			Architectures: []ArchitectureSummary{{ID: "arch-000002", Alive: true}},
			NextAfterID:   "arch-000002",
		})
	})
	mux.HandleFunc("GET /v1/architectures/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("id") != "arch-000001" || r.URL.Query().Get("max") != "5" {
			t.Errorf("events request: id=%q query=%v", r.PathValue("id"), r.URL.Query())
		}
		_ = json.NewEncoder(w).Encode(EventsResponse{
			ID:     "arch-000001",
			Events: []AccessEvent{{Attempt: 1, Outcome: "success"}},
		})
	})
	c, _ := newTestClient(t, mux)

	prov, err := c.Provision(context.Background(), ProvisionRequest{
		Spec: SpecRequest{Alpha: 6, Beta: 8, LAB: 30}, SecretHex: "ff", Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prov.ID != "arch-000001" {
		t.Errorf("provision ID = %q", prov.ID)
	}

	list, err := c.List(context.Background(), "arch-000001", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Architectures) != 1 || list.NextAfterID != "arch-000002" {
		t.Errorf("list = %+v", list)
	}

	evs, err := c.Events(context.Background(), "arch-000001", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs.Events) != 1 || evs.Events[0].Outcome != "success" {
		t.Errorf("events = %+v", evs)
	}
}

func TestErrorClassification(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/gone", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGone)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "exhausted"})
	})
	mux.HandleFunc("/missing", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "unknown architecture"})
	})
	mux.HandleFunc("/bad", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "alpha must be positive", Field: "alpha"})
	})
	c, _ := newTestClient(t, mux)

	err := c.do(context.Background(), http.MethodGet, "/gone", nil, nil)
	if !IsExhausted(err) || IsTransient(err) || IsNotFound(err) {
		t.Errorf("410: IsExhausted=%t IsTransient=%t IsNotFound=%t", IsExhausted(err), IsTransient(err), IsNotFound(err))
	}
	if !IsNotFound(c.do(context.Background(), http.MethodGet, "/missing", nil, nil)) {
		t.Error("404 not classified as not-found")
	}
	var ae *Error
	err = c.do(context.Background(), http.MethodGet, "/bad", nil, nil)
	if !asAPIError(err, &ae) || ae.Field != "alpha" || ae.StatusCode != http.StatusBadRequest {
		t.Errorf("400 error = %v", err)
	}
}

func asAPIError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

// TestRetryOn503 pins the retry loop: n failures then success, sleeping
// for the server's Retry-After between attempts.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
			return
		}
		_ = json.NewEncoder(w).Encode(AccessResponse{SecretHex: "ff", Attempts: 3})
	})
	c, _ := newTestClient(t, h, WithRetryOn503(3))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	out, err := c.Access(context.Background(), "arch-000001", AccessRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if out.SecretHex != "ff" || calls.Load() != 3 {
		t.Errorf("after retries: resp=%+v calls=%d", out, calls.Load())
	}
	want := []time.Duration{3 * time.Second, 3 * time.Second}
	if len(slept) != 2 || slept[0] != want[0] || slept[1] != want[1] {
		t.Errorf("slept %v, want %v (honoring Retry-After)", slept, want)
	}
}

// TestRetryBackoffDeterministic pins WithRetryBackoff: with no server
// Retry-After, attempt k waits a jittered share of min(max, base<<k) —
// and because the jitter is a pure function of k, two identically
// configured clients produce the exact same schedule.
func TestRetryBackoffDeterministic(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable) // no Retry-After
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
	})
	const base, max = 10 * time.Millisecond, 80 * time.Millisecond
	c, _ := newTestClient(t, h, WithRetryOn503(5), WithRetryBackoff(base, max))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}

	if _, err := c.Access(context.Background(), "arch-000001", AccessRequest{}); !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if calls.Load() != 6 || len(slept) != 5 {
		t.Fatalf("calls=%d slept=%v, want 6 calls and 5 waits", calls.Load(), slept)
	}
	for k, d := range slept {
		ceil := max
		if exp := base << uint(k); exp < ceil {
			ceil = exp
		}
		if d < ceil/2 || d >= ceil {
			t.Errorf("attempt %d slept %v, want within [%v, %v)", k, d, ceil/2, ceil)
		}
		if want := c.backoff(k); d != want {
			t.Errorf("attempt %d slept %v, want the deterministic %v", k, d, want)
		}
	}
	// A second identically configured client computes the same schedule.
	c2, err := NewClient("http://example.com", WithRetryBackoff(base, max))
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range slept {
		if want := c2.backoff(k); d != want {
			t.Errorf("attempt %d: clients disagree (%v vs %v)", k, d, want)
		}
	}
}

// TestRetryAfterOverridesBackoff: a server-sent Retry-After beats the
// configured backoff schedule.
func TestRetryAfterOverridesBackoff(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
	})
	c, _ := newTestClient(t, h, WithRetryOn503(2), WithRetryBackoff(time.Millisecond, time.Second))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	if _, err := c.Access(context.Background(), "arch-000001", AccessRequest{}); !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if len(slept) != 2 || slept[0] != 7*time.Second || slept[1] != 7*time.Second {
		t.Errorf("slept %v, want two 7s waits from Retry-After", slept)
	}
}

// TestRetryAfterHTTPDate: the HTTP-date form of Retry-After parses
// relative to the response's own Date header, so clock skew between
// server and client cancels out.
func TestRetryAfterHTTPDate(t *testing.T) {
	// The server's absolute clock is irrelevant — only the delta between
	// its Date and Retry-After stamps matters, so skew cancels out.
	serverNow := time.Date(2026, time.August, 8, 12, 0, 0, 0, time.UTC)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Date", serverNow.Format(http.TimeFormat))
		w.Header().Set("Retry-After", serverNow.Add(7*time.Second).Format(http.TimeFormat))
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "draining", Retry: true})
	})
	c, _ := newTestClient(t, h)
	err := c.do(context.Background(), http.MethodGet, "/v1/architectures", nil, nil)
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s (HTTP-date relative to Date header)", ae.RetryAfter)
	}

	date := serverNow.Format(http.TimeFormat)
	if d := parseRetryAfter("not-a-date", date); d != 0 {
		t.Errorf("unparseable Retry-After = %v, want 0", d)
	}
	if d := parseRetryAfter("-3", date); d != 0 {
		t.Errorf("negative delta-seconds = %v, want 0", d)
	}
	past := serverNow.Add(-time.Hour).Format(http.TimeFormat)
	if d := parseRetryAfter(past, date); d != 0 {
		t.Errorf("already-elapsed HTTP-date = %v, want 0", d)
	}
	future := serverNow.Add(time.Minute).Format(http.TimeFormat)
	if d := parseRetryAfter(future, ""); d != 0 {
		t.Errorf("HTTP-date with no Date reference = %v, want 0 (never guessed)", d)
	}
}

// TestListEmptyPageKeepsCursor is the pagination regression test: an
// empty page mid-pagination must still surface the server's
// next_after_id, or a paginating caller silently drops the rest of the
// fleet.
func TestListEmptyPageKeepsCursor(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("after_id") != "arch-000003" {
			t.Errorf("after_id = %q", r.URL.Query().Get("after_id"))
		}
		_, _ = w.Write([]byte(`{"architectures":[],"next_after_id":"arch-000007"}`))
	})
	c, _ := newTestClient(t, h)
	list, err := c.List(context.Background(), "arch-000003", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Architectures) != 0 {
		t.Errorf("architectures = %+v, want empty page", list.Architectures)
	}
	if list.NextAfterID != "arch-000007" {
		t.Errorf("NextAfterID = %q, want %q preserved on an empty page", list.NextAfterID, "arch-000007")
	}
}

// TestRetryBudgetExhausted: once retries run out the 503 surfaces as a
// transient typed error.
func TestRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
	})
	c, _ := newTestClient(t, h, WithRetryOn503(2))
	c.sleep = func(context.Context, time.Duration) error { return nil }

	_, err := c.Access(context.Background(), "arch-000001", AccessRequest{})
	if !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", calls.Load())
	}
}

// TestNoRetryByDefault: without WithRetryOn503 a 503 is returned
// immediately.
func TestNoRetryByDefault(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
	})
	c, _ := newTestClient(t, h)
	if _, err := c.Access(context.Background(), "arch-000001", AccessRequest{}); !IsTransient(err) {
		t.Fatalf("err = %v", err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1", calls.Load())
	}
}

// TestRetryRespectsContext: a cancelled context stops the retry loop.
func TestRetryRespectsContext(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c, _ := newTestClient(t, h, WithRetryOn503(100))
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, _ time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if _, err := c.Access(ctx, "arch-000001", AccessRequest{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRetryWaitCappedByDeadline is the regression test for the
// Retry-After bug: a server suggesting a one-hour wait must not outlive
// a 50ms request deadline. The real sleepCtx runs here — the test
// passing quickly IS the assertion.
func TestRetryWaitCappedByDeadline(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(ErrorResponse{Error: "transient", Retry: true})
	})
	c, _ := newTestClient(t, h, WithRetryOn503(100))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.Access(ctx, "arch-000001", AccessRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry wait ran %v past a 50ms deadline — Retry-After not capped", elapsed)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (deadline expired during the wait)", calls.Load())
	}
}
