package otp

import (
	"errors"
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// ReliableChannel wraps a chip/codebook pair with a retransmission
// protocol: if the receiver's retrieval fails (the designed ≤1−S_recv
// event), the receiver NACKs over the short-string channel and the sender
// re-encrypts the message with the next pad. This turns the per-pad
// success probability into an end-to-end delivery guarantee at the cost
// of pad budget.
type ReliableChannel struct {
	chip       *Chip
	book       *Codebook
	maxRetries int

	delivered  int
	retries    int
	padsBurned int
}

// ErrChannelExhausted is returned when the pads run out mid-protocol.
var ErrChannelExhausted = errors.New("otp: channel exhausted its pads")

// NewReliableChannel provisions a channel with `pads` one-time pads and a
// per-message retry budget.
func NewReliableChannel(p Params, pads, maxRetries int, r *rng.RNG) (*ReliableChannel, error) {
	if maxRetries < 0 {
		return nil, fmt.Errorf("otp: negative retry budget %d", maxRetries)
	}
	chip, book, err := FabricateChip(p, pads, r)
	if err != nil {
		return nil, err
	}
	return &ReliableChannel{chip: chip, book: book, maxRetries: maxRetries}, nil
}

// Send delivers one message end to end, retrying on retrieval failure.
func (c *ReliableChannel) Send(plain []byte, env nems.Environment) ([]byte, error) {
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		msg, err := c.book.Encrypt(plain)
		if errors.Is(err, ErrPadExhausted) {
			return nil, ErrChannelExhausted
		}
		if err != nil {
			return nil, err
		}
		c.padsBurned++
		got, err := c.chip.Decrypt(msg, env)
		if err == nil {
			c.delivered++
			return got, nil
		}
		c.retries++
	}
	return nil, fmt.Errorf("otp: message undeliverable after %d attempts", c.maxRetries+1)
}

// Stats returns (messages delivered, retries used, pads burned).
func (c *ReliableChannel) Stats() (delivered, retries, padsBurned int) {
	return c.delivered, c.retries, c.padsBurned
}

// PadsRemaining returns the unused pad count.
func (c *ReliableChannel) PadsRemaining() int { return c.book.PadsRemaining() }

// DeliveryProb returns the analytic end-to-end delivery probability with
// the given retry budget: 1 − (1 − S_recv)^(retries+1).
func DeliveryProb(p Params, maxRetries int) float64 {
	fail := 1 - p.ReceiverSuccess()
	prob := 1.0
	for i := 0; i <= maxRetries; i++ {
		prob *= fail
	}
	return mathx.Clamp01(1 - prob)
}

// PadsPerMessage returns the expected pad consumption per delivered
// message: 1/S_recv for an unbounded retry budget (geometric).
func PadsPerMessage(p Params) float64 {
	s := p.ReceiverSuccess()
	if s <= 0 {
		return math.Inf(1)
	}
	return 1 / s
}
