package otp

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"lemonade/internal/montecarlo"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// paperParams are the §6.4 defaults: α=10, β=1, n=128.
func paperParams(h, k int) Params {
	return Params{Dist: weibull.MustNew(10, 1), Height: h, Copies: 128, K: k}
}

func TestValidate(t *testing.T) {
	if err := paperParams(4, 8).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Dist: weibull.MustNew(10, 1), Height: 0, Copies: 128, K: 8},
		{Dist: weibull.MustNew(10, 1), Height: 63, Copies: 128, K: 8},
		{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 0, K: 1},
		{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 300, K: 8},
		{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 128, K: 0},
		{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 128, K: 129},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("case %d should be invalid: %+v", i, p)
		}
	}
}

func TestPathCountAndKeyBits(t *testing.T) {
	p := paperParams(4, 8)
	if p.Paths() != 8 {
		t.Errorf("H=4 should have 8 paths, got %d", p.Paths())
	}
	if p.KeyBits() != 4000 {
		t.Errorf("H=4 key bits = %d, want 4000", p.KeyBits())
	}
	if paperParams(1, 8).Paths() != 1 {
		t.Error("H=1 should have a single path")
	}
}

func TestPathSuccessProbEq9(t *testing.T) {
	// Eq 9: S = e^{-(1/α)^β·H}; α=10, β=1, H=4 → e^{-0.4}
	p := paperParams(4, 8)
	want := math.Exp(-0.4)
	if got := p.PathSuccessProb(); math.Abs(got-want) > 1e-12 {
		t.Errorf("PathSuccessProb = %g, want %g", got, want)
	}
}

func TestReceiverSuccessEq10(t *testing.T) {
	// brute-force the binomial tail
	p := paperParams(4, 8)
	s1 := p.PathSuccessProb()
	var want float64
	for i := p.K; i <= p.Copies; i++ {
		want += choose(p.Copies, i) * math.Pow(s1, float64(i)) * math.Pow(1-s1, float64(p.Copies-i))
	}
	if got := p.ReceiverSuccess(); math.Abs(got-want) > 1e-9 {
		t.Errorf("ReceiverSuccess = %g, brute %g", got, want)
	}
	// with α=10, β=1, H=4, n=128, k=8: S1≈0.67, mean successes ≈86 — the
	// receiver succeeds essentially always.
	if p.ReceiverSuccess() < 0.999 {
		t.Errorf("paper point should give near-certain receiver success, got %g", p.ReceiverSuccess())
	}
}

func choose(n, k int) float64 {
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(k-i)
	}
	return res
}

func TestAdversaryBlockedByHeight(t *testing.T) {
	// Fig 8b: with H >= 8 the adversary's success probability collapses to
	// ~0 even at high redundancy (small k).
	for _, h := range []int{8, 10, 12} {
		p := paperParams(h, 8)
		if adv := p.AdversarySuccess(); adv > 1e-6 {
			t.Errorf("H=%d adversary success = %g, should be ~0", h, adv)
		}
	}
	// while the receiver still has a workable chance at moderate k
	p := paperParams(8, 8)
	if p.ReceiverSuccess() < 0.9 {
		t.Errorf("H=8 k=8 receiver success = %g, should remain high", p.ReceiverSuccess())
	}
}

func TestSuccessSpaceShrinksWithK(t *testing.T) {
	// Fig 8a: receiver success falls as k grows (less redundancy).
	prev := 2.0
	for _, k := range []int{1, 16, 32, 64, 100, 128} {
		p := paperParams(4, k)
		s := p.ReceiverSuccess()
		if s > prev+1e-12 {
			t.Fatalf("receiver success should fall with k, rose at k=%d", k)
		}
		prev = s
	}
}

func TestAdversaryFallsWithK(t *testing.T) {
	// Fig 8b: adversary success also falls with k, and faster.
	p1 := paperParams(3, 1)
	p8 := paperParams(3, 8)
	a1, a8 := p1.AdversarySuccess(), p8.AdversarySuccess()
	if a8 >= a1 {
		t.Errorf("adversary success should fall with k: k=1 %g, k=8 %g", a1, a8)
	}
	r1, r8 := p1.ReceiverSuccess(), p8.ReceiverSuccess()
	// adversaries fail faster than receivers as k grows (§6.4.1)
	if a8/math.Max(a1, 1e-300) > r8/r1 {
		t.Error("adversary should degrade faster with k than receiver")
	}
}

func TestHigherAlphaHelpsBoth(t *testing.T) {
	// Fig 9: with higher α both receiver and adversary succeed more.
	// Use a high threshold so receiver success is not saturated at 1.
	lo := Params{Dist: weibull.MustNew(5, 1), Height: 4, Copies: 128, K: 100}
	hi := Params{Dist: weibull.MustNew(40, 1), Height: 4, Copies: 128, K: 100}
	if hi.ReceiverSuccess() <= lo.ReceiverSuccess() {
		t.Error("higher α should help the receiver")
	}
	if hi.AdversarySuccess() < lo.AdversarySuccess() {
		t.Error("higher α should not hurt the adversary")
	}
}

func TestSuccessSpace(t *testing.T) {
	// §6.4.2: "when the tree height is 8 or more, the adversaries' success
	// probability reduces to zero" — H=8, k=8 is in the success space.
	p := paperParams(8, 8)
	if !p.SuccessSpace(0.99, 1e-6) {
		t.Errorf("H=8 k=8 should be in success space: recv=%g adv=%g",
			p.ReceiverSuccess(), p.AdversarySuccess())
	}
	// Low trees with high redundancy are reliable but insecure — the red
	// region of Fig 8b (our H=4, k=8 adversary success is ~0.85).
	weak := paperParams(4, 8)
	if weak.SuccessSpace(0.99, 1e-3) {
		t.Errorf("H=4 k=8 should not be secure: adv=%g", weak.AdversarySuccess())
	}
}

func TestPaperLatencyEnergyPoints(t *testing.T) {
	p := paperParams(4, 8)
	if ms := p.RetrievalLatency().Ms(); math.Abs(ms-0.08512) > 1e-9 {
		t.Errorf("retrieval latency = %g ms, paper says 0.08512", ms)
	}
	if e := float64(p.RetrievalEnergy()); math.Abs(e-5.12e-18) > 1e-27 {
		t.Errorf("retrieval energy = %g J, paper says 5.12e-18", e)
	}
	if pads := p.PadsPerChip(1); pads < 4000 || pads > 5500 {
		t.Errorf("pads per 1mm² chip = %d, paper says ~4687", pads)
	}
}

func TestFabricateAndRetrieve(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 3, Copies: 32, K: 4}
	r := rng.New(11)
	pad, key, err := Fabricate(p, 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(key)*8 < p.KeyBits() {
		t.Errorf("key too short: %d bytes", len(key))
	}
	got, stats, err := pad.Retrieve(2, nems.RoomTemp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Error("retrieved key differs from fabricated key")
	}
	if stats.LatencyNs <= 0 || stats.EnergyJ <= 0 {
		t.Error("stats should be positive")
	}
	if !pad.Used() {
		t.Error("pad should be marked used")
	}
}

func TestWrongPathYieldsWrongKey(t *testing.T) {
	p := Params{Dist: weibull.MustNew(1000, 8), Height: 3, Copies: 16, K: 2} // durable devices
	r := rng.New(13)
	pad, key, err := Fabricate(p, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pad.Retrieve(3, nems.RoomTemp) // wrong path: decoy key
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, key) {
		t.Error("wrong path should yield a decoy, not the real key")
	}
}

func TestRetrieveValidation(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 3, Copies: 8, K: 2}
	r := rng.New(17)
	pad, _, err := Fabricate(p, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pad.Retrieve(99, nems.RoomTemp); err == nil {
		t.Error("out-of-range path should error")
	}
	if _, _, err := Fabricate(p, -1, r); err == nil {
		t.Error("negative path should error")
	}
	if _, _, err := Fabricate(Params{Dist: weibull.MustNew(10, 1), Height: 0, Copies: 8, K: 2}, 0, r); err == nil {
		t.Error("invalid params should error")
	}
}

func TestSecondRetrievalUsuallyFails(t *testing.T) {
	// One-time usage: the right leaf registers are destroyed by the first
	// retrieval, so a second retrieval of the same path must fail even if
	// switches survive.
	p := Params{Dist: weibull.MustNew(1000, 8), Height: 3, Copies: 8, K: 2} // durable switches
	r := rng.New(19)
	pad, _, err := Fabricate(p, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pad.Retrieve(1, nems.RoomTemp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pad.Retrieve(1, nems.RoomTemp); !errors.Is(err, ErrRetrievalFailed) {
		t.Errorf("second retrieval should fail (read-destructive leaves), got %v", err)
	}
}

func TestReceiverSuccessMatchesSimulation(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 4, Copies: 32, K: 4}
	analytic := mathxTail(p)
	emp, lo, hi := montecarlo.Proportion(23, 800, func(r *rng.RNG) bool {
		pad, _, err := Fabricate(p, 3, r)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = pad.Retrieve(3, nems.RoomTemp)
		return err == nil
	})
	_ = emp
	if analytic < lo-0.02 || analytic > hi+0.02 {
		t.Errorf("analytic receiver success %g outside MC interval [%g, %g]", analytic, lo, hi)
	}
}

func mathxTail(p Params) float64 { return p.ReceiverSuccess() }

func TestAdversarySuccessMatchesSimulation(t *testing.T) {
	// Use a parameter point where the adversary has non-negligible success
	// so the MC estimate is meaningful: H=2 (2 paths), k=2, n=16, α=10.
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 2}
	analytic := p.AdversarySuccess()
	emp, lo, hi := montecarlo.Proportion(29, 1500, func(r *rng.RNG) bool {
		pad, _, err := Fabricate(p, 1, r)
		if err != nil {
			t.Fatal(err)
		}
		_, ok := pad.AdversaryTrial(1, nems.RoomTemp, r.Derive("adv"))
		return ok
	})
	_ = emp
	if analytic < lo-0.03 || analytic > hi+0.03 {
		t.Errorf("analytic adversary success %g outside MC interval [%g, %g]", analytic, lo, hi)
	}
}

func TestMessagingRoundTrip(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 3, Copies: 32, K: 4}
	r := rng.New(31)
	chip, book, err := FabricateChip(p, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if chip.Pads() != 3 || book.PadsRemaining() != 3 {
		t.Error("chip/book sizing wrong")
	}
	plain := []byte("attack at dawn")
	msg, err := book.Encrypt(plain)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(msg.Ciphertext, []byte("attack")) {
		t.Error("ciphertext leaks plaintext")
	}
	got, err := chip.Decrypt(msg, nems.RoomTemp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plain) {
		t.Errorf("decrypted %q", got)
	}
	if book.PadsRemaining() != 2 {
		t.Error("pad not consumed from book")
	}
}

func TestMessagingExhaustion(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 2}
	r := rng.New(37)
	_, book, err := FabricateChip(p, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := book.Encrypt([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := book.Encrypt([]byte("two")); !errors.Is(err, ErrPadExhausted) {
		t.Errorf("expected ErrPadExhausted, got %v", err)
	}
}

func TestMessageTooLong(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 2}
	r := rng.New(41)
	_, book, err := FabricateChip(p, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	long := make([]byte, p.KeyBits()) // bytes > bits/8
	if _, err := book.Encrypt(long); !errors.Is(err, ErrKeyTooShort) {
		t.Errorf("expected ErrKeyTooShort, got %v", err)
	}
}

func TestSenderKeyDestroyedAfterUse(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 2}
	r := rng.New(43)
	_, book, err := FabricateChip(p, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	keyBefore := append([]byte(nil), book.keys[0]...)
	if _, err := book.Encrypt([]byte("msg")); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(book.keys[0], keyBefore) {
		t.Error("sender must zeroize the key after use (OTP rule)")
	}
	allZero := true
	for _, b := range book.keys[0] {
		if b != 0 {
			allZero = false
		}
	}
	if !allZero {
		t.Error("key not zeroized")
	}
}

func TestPlanChip(t *testing.T) {
	d := weibull.MustNew(10, 1)
	plan, err := PlanChip(d, 10, 100, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 100-byte messages fit in the security-floor height H=8 (1000 bytes)
	if plan.Params.Height != 8 {
		t.Errorf("height = %d, want security floor 8", plan.Params.Height)
	}
	if plan.MaxMessageBytes < 100 {
		t.Errorf("capacity %dB below requested 100B", plan.MaxMessageBytes)
	}
	if plan.AreaMm2 <= 0 {
		t.Error("area should be positive")
	}
	if plan.AdversarySucces > 1e-6 {
		t.Errorf("planned chip insecure: adv=%g", plan.AdversarySucces)
	}
	if plan.String() == "" {
		t.Error("empty String")
	}
	// big messages push the height above the floor
	big, err := PlanChip(d, 1, 2000, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if big.Params.Height != 16 {
		t.Errorf("2000B message should need H=16, got %d", big.Params.Height)
	}
	// validation
	if _, err := PlanChip(d, 0, 10, 64, 8); err == nil {
		t.Error("zero messages should error")
	}
	if _, err := PlanChip(d, 1, 0, 64, 8); err == nil {
		t.Error("zero size should error")
	}
	if _, err := PlanChip(d, 1, 10, 300, 8); err == nil {
		t.Error("invalid copies should error")
	}
}

func TestReliableChannelDelivers(t *testing.T) {
	// A marginal design (lowish per-pad success) plus retries gives a
	// strong end-to-end channel.
	p := Params{Dist: weibull.MustNew(4, 1), Height: 4, Copies: 32, K: 8}
	perPad := p.ReceiverSuccess()
	if perPad > 0.95 {
		t.Fatalf("test wants a marginal design, got %g", perPad)
	}
	ch, err := NewReliableChannel(p, 40, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	for i := 0; i < 10; i++ {
		got, err := ch.Send([]byte("msg"), nems.RoomTemp)
		if err == nil {
			if string(got) != "msg" {
				t.Fatal("corrupted delivery")
			}
			delivered++
		}
	}
	d, retries, burned := ch.Stats()
	if d != delivered {
		t.Errorf("stats delivered %d, counted %d", d, delivered)
	}
	if delivered < 9 {
		t.Errorf("delivered only %d/10 with retries (per-pad %g)", delivered, perPad)
	}
	if retries == 0 {
		t.Log("note: no retries needed in this seed")
	}
	if burned < delivered {
		t.Error("pads burned should cover deliveries")
	}
	if ch.PadsRemaining() != 40-burned {
		t.Error("pad accounting wrong")
	}
}

func TestReliableChannelExhaustion(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 2}
	ch, err := NewReliableChannel(p, 2, 0, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = ch.Send([]byte("a"), nems.RoomTemp)
	_, _ = ch.Send([]byte("b"), nems.RoomTemp)
	if _, err := ch.Send([]byte("c"), nems.RoomTemp); !errors.Is(err, ErrChannelExhausted) {
		t.Errorf("expected exhaustion, got %v", err)
	}
	if _, err := NewReliableChannel(p, 1, -1, rng.New(7)); err == nil {
		t.Error("negative retries should error")
	}
}

func TestDeliveryProbAndPadCost(t *testing.T) {
	p := Params{Dist: weibull.MustNew(4, 1), Height: 4, Copies: 32, K: 8}
	s := p.ReceiverSuccess()
	if got, want := DeliveryProb(p, 0), s; math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-retry delivery = %g, want %g", got, want)
	}
	d1 := DeliveryProb(p, 1)
	if d1 <= s {
		t.Error("a retry should raise delivery probability")
	}
	want := 1 - (1-s)*(1-s)
	if math.Abs(d1-want) > 1e-12 {
		t.Errorf("one-retry delivery = %g, want %g", d1, want)
	}
	if ppm := PadsPerMessage(p); math.Abs(ppm-1/s) > 1e-12 {
		t.Errorf("pads per message = %g, want %g", ppm, 1/s)
	}
}
