package otp

import (
	"fmt"
	"math"

	"lemonade/internal/weibull"
)

// ChipPlan sizes a one-time-pad chip for a messaging workload: how tall
// the trees must be for the message size, whether the point is secure,
// and what the chip costs in area.
type ChipPlan struct {
	Params          Params
	Pads            int     // messages supported
	MaxMessageBytes int     // per-message capacity
	AreaMm2         float64 // total silicon
	ReceiverSuccess float64
	AdversarySucces float64
}

// PlanChip sizes a chip for `messages` messages of up to maxMessageBytes
// each, using the given device model and redundancy (copies, k). The tree
// height is the larger of the security floor (H=8, §6.4.2) and the height
// whose 1000·H-bit keys cover the message size.
func PlanChip(dist weibull.Dist, messages, maxMessageBytes, copies, k int) (ChipPlan, error) {
	if messages < 1 {
		return ChipPlan{}, fmt.Errorf("otp: need at least one message, got %d", messages)
	}
	if maxMessageBytes < 1 {
		return ChipPlan{}, fmt.Errorf("otp: message size must be positive, got %d", maxMessageBytes)
	}
	const securityFloor = 8
	h := securityFloor
	if need := int(math.Ceil(float64(8*maxMessageBytes) / 1000)); need > h {
		h = need
	}
	p := Params{Dist: dist, Height: h, Copies: copies, K: k}
	if err := p.Validate(); err != nil {
		return ChipPlan{}, err
	}
	area := float64(p.TreeArea()) * float64(copies) * float64(messages)
	return ChipPlan{
		Params:          p,
		Pads:            messages,
		MaxMessageBytes: p.KeyBits() / 8,
		AreaMm2:         area / 1e12,
		ReceiverSuccess: p.ReceiverSuccess(),
		AdversarySucces: p.AdversarySuccess(),
	}, nil
}

// String implements fmt.Stringer.
func (c ChipPlan) String() string {
	return fmt.Sprintf("ChipPlan{%d pads, H=%d, ≤%dB/message, %.4g mm², recv %.4f, adv %.2e}",
		c.Pads, c.Params.Height, c.MaxMessageBytes, c.AreaMm2, c.ReceiverSuccess, c.AdversarySucces)
}
