package otp

import (
	"errors"
	"fmt"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// This file implements the end-to-end messaging protocol of §6.1: the
// sender fabricates a chip of pads, keeps a private codebook of (path,
// key) pairs, and delivers the chip to the receiver ahead of time. For
// each message the sender transmits the ciphertext plus the short path
// string over cheap channels; the receiver burns one pad to recover the
// key. Encryption is the information-theoretic one-time pad (XOR).

// ErrPadExhausted is returned when the codebook has no pads left.
var ErrPadExhausted = errors.New("otp: no pads left on the chip")

// ErrKeyTooShort is returned when a message exceeds the pad key length.
var ErrKeyTooShort = errors.New("otp: message longer than the one-time key")

// Chip is the receiver's hardware: a sequence of pads.
type Chip struct {
	pads []*Pad
}

// Codebook is the sender's private state: per-pad path strings and keys.
type Codebook struct {
	paths []int
	keys  [][]byte
	next  int
}

// FabricateChip builds `count` pads with fresh random keys and paths,
// returning the receiver's chip and the sender's codebook.
func FabricateChip(p Params, count int, r *rng.RNG) (*Chip, *Codebook, error) {
	if count < 1 {
		return nil, nil, fmt.Errorf("otp: chip needs at least one pad, got %d", count)
	}
	chip := &Chip{}
	book := &Codebook{}
	for i := 0; i < count; i++ {
		path := r.Intn(p.Paths())
		pad, key, err := Fabricate(p, path, r)
		if err != nil {
			return nil, nil, fmt.Errorf("otp: fabricating pad %d: %w", i, err)
		}
		chip.pads = append(chip.pads, pad)
		book.paths = append(book.paths, path)
		book.keys = append(book.keys, key)
	}
	return chip, book, nil
}

// PadsRemaining returns how many messages the sender can still encrypt.
func (b *Codebook) PadsRemaining() int { return len(b.keys) - b.next }

// Message is one transmitted message: ciphertext over the radio, path
// string over a separate short-lived channel.
type Message struct {
	PadIndex   int
	Path       int // the short string of Fig 6
	Ciphertext []byte
}

// Encrypt seals a plaintext with the next unused pad key.
func (b *Codebook) Encrypt(plain []byte) (Message, error) {
	if b.next >= len(b.keys) {
		return Message{}, ErrPadExhausted
	}
	key := b.keys[b.next]
	if len(plain) > len(key) {
		return Message{}, fmt.Errorf("%w: %d > %d bytes", ErrKeyTooShort, len(plain), len(key))
	}
	ct := make([]byte, len(plain))
	for i := range plain {
		ct[i] = plain[i] ^ key[i]
	}
	msg := Message{PadIndex: b.next, Path: b.paths[b.next], Ciphertext: ct}
	// OTP rule: the sender destroys their key copy immediately after use.
	for i := range key {
		key[i] = 0
	}
	b.next++
	return msg, nil
}

// Decrypt recovers a message by burning the chip's pad. Each pad works for
// one retrieval with the designed probability and is destroyed by use.
func (c *Chip) Decrypt(msg Message, env nems.Environment) ([]byte, error) {
	if msg.PadIndex < 0 || msg.PadIndex >= len(c.pads) {
		return nil, fmt.Errorf("otp: pad index %d out of range", msg.PadIndex)
	}
	key, _, err := c.pads[msg.PadIndex].Retrieve(msg.Path, env)
	if err != nil {
		return nil, err
	}
	if len(msg.Ciphertext) > len(key) {
		return nil, ErrKeyTooShort
	}
	plain := make([]byte, len(msg.Ciphertext))
	for i := range plain {
		plain[i] = msg.Ciphertext[i] ^ key[i]
	}
	return plain, nil
}

// Pad returns the i-th pad (for attack simulations).
func (c *Chip) Pad(i int) *Pad { return c.pads[i] }

// Pads returns the number of pads on the chip.
func (c *Chip) Pads() int { return len(c.pads) }
