package otp_test

import (
	"fmt"

	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// ExampleFabricateChip runs the §6 messaging protocol: the sender keeps
// the codebook, the receiver burns one pad per message.
func ExampleFabricateChip() {
	params := otp.Params{
		Dist:   weibull.MustNew(10, 1),
		Height: 8,
		Copies: 64,
		K:      8,
	}
	chip, codebook, err := otp.FabricateChip(params, 1, rng.New(7))
	if err != nil {
		panic(err)
	}
	msg, err := codebook.Encrypt([]byte("attack at dawn"))
	if err != nil {
		panic(err)
	}
	plain, err := chip.Decrypt(msg, nems.RoomTemp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", plain)
	// Output:
	// attack at dawn
}

// ExampleParams_AdversarySuccess evaluates Eq 15 at the paper's secure
// operating point.
func ExampleParams_AdversarySuccess() {
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 8, Copies: 128, K: 8}
	fmt.Printf("receiver: %.4f\n", p.ReceiverSuccess())
	fmt.Printf("adversary below 1e-6: %v\n", p.AdversarySuccess() < 1e-6)
	// Output:
	// receiver: 1.0000
	// adversary below 1e-6: true
}
