// Package otp implements use case 3 of the paper (§6): hardware one-time
// pads built from NEMS decision trees.
//
// A pad stores 2^(H-1) candidate random keys at the leaves of a
// decision-tree circuit whose intermediate nodes are fast-wearing NEMS
// switches (Fig 7). Only the sender and receiver know the short path
// string indexing the real key. To tolerate path failures without leaking
// information, the key at every leaf position is Shamir-split across
// n = Copies replicas of the tree (§6.3): the receiver needs k successful
// traversals of the right path; an adversary doing random-path trials
// needs k successes that also happen to be the right path — Eqs 9–15.
//
// The leaves are read-destructive shift registers, and every traversal
// wears the path's switches, so the pad self-destructs with use.
package otp

import (
	"errors"
	"fmt"
	"math"

	"lemonade/internal/cost"
	"lemonade/internal/mathx"
	"lemonade/internal/memory"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/shamir"
	"lemonade/internal/weibull"
)

// Params are the engineering parameters of one pad (§6.4).
type Params struct {
	Dist   weibull.Dist // device wearout model (paper default α=10, β=1)
	Height int          // H: switches traversed per path; 2^(H-1) leaves
	Copies int          // n: replicated trees per pad (paper default 128)
	K      int          // Shamir threshold (paper default 8)
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if err := p.Dist.Validate(); err != nil {
		return err
	}
	if p.Height < 1 || p.Height > 62 {
		return fmt.Errorf("otp: height must be in [1, 62], got %d", p.Height)
	}
	if p.Copies < 1 || p.Copies > shamir.MaxShares {
		return fmt.Errorf("otp: copies must be in [1, %d], got %d", shamir.MaxShares, p.Copies)
	}
	if p.K < 1 || p.K > p.Copies {
		return fmt.Errorf("otp: k must be in [1, copies], got %d", p.K)
	}
	return nil
}

// Paths returns the number of candidate keys per tree: 2^(H-1) (Eq 11).
func (p Params) Paths() int { return 1 << uint(p.Height-1) }

// KeyBits returns the paper's key sizing rule: ~1000·H bits (§6.5.1).
func (p Params) KeyBits() int { return 1000 * p.Height }

// --- Analytics (Eqs 9–15) ------------------------------------------------------

// PathSuccess returns the probability of getting through one H-switch path
// on the first access: e^{-(1/α)^β·H} (Eqs 9, 12 — identical for receiver
// and adversary). It is a package-level function so the Fig 8/9 grids can
// evaluate heights beyond the buildable-hardware cap.
func PathSuccess(d weibull.Dist, height int) float64 {
	return math.Exp(float64(height) * d.LogReliability(1))
}

// ReceiverSuccessProb returns S_recv(k+) of Eq 10 for arbitrary
// parameters.
func ReceiverSuccessProb(d weibull.Dist, height, copies, k int) float64 {
	return mathx.BinomTailGE(copies, k, PathSuccess(d, height))
}

// AdversarySuccessProb returns S_adv(k+) of Eq 15 for arbitrary
// parameters: the right-path probability 1/2^(H-1) (Eq 11) is computed in
// floating point, so heights far beyond integer-path-count range work.
func AdversarySuccessProb(d weibull.Dist, height, copies, k int) float64 {
	s1 := PathSuccess(d, height)
	pRight := math.Exp2(-float64(height - 1)) // Eq 11
	var sum mathx.KahanSum
	for x := k; x <= copies; x++ {
		probX := mathx.BinomPMF(copies, x, s1)  // Eq 13
		hitK := mathx.BinomTailGE(x, k, pRight) // Eq 14
		sum.Add(probX * hitK)                   // Eq 15
	}
	return mathx.Clamp01(sum.Sum())
}

// PathSuccessProb returns the per-copy path survival probability of this
// parameter point.
func (p Params) PathSuccessProb() float64 { return PathSuccess(p.Dist, p.Height) }

// ReceiverSuccess returns S_recv(k+) of Eq 10: the probability the
// receiver gets through the right path in at least k of the n copies.
func (p Params) ReceiverSuccess() float64 {
	return ReceiverSuccessProb(p.Dist, p.Height, p.Copies, p.K)
}

// AdversarySuccess returns S_adv(k+) of Eq 15: the probability an
// adversary doing one random-path trial per copy obtains at least k
// components of the right key.
func (p Params) AdversarySuccess() float64 {
	return AdversarySuccessProb(p.Dist, p.Height, p.Copies, p.K)
}

// SuccessSpace reports whether the parameters live in the pads' "success
// space" (Fig 8): receiver succeeds with at least recvMin probability while
// the adversary succeeds with at most advMax.
func (p Params) SuccessSpace(recvMin, advMax float64) bool {
	return p.ReceiverSuccess() >= recvMin && p.AdversarySuccess() <= advMax
}

// RetrievalLatency returns the worst-case key retrieval latency (§6.5.2).
func (p Params) RetrievalLatency() cost.Latency {
	return cost.OTPRetrievalLatency(p.Height, p.Copies, p.KeyBits())
}

// RetrievalEnergy returns the worst-case path energy (§6.5.2).
func (p Params) RetrievalEnergy() cost.Energy {
	return cost.OTPPathEnergy(p.Height, p.Copies)
}

// TreeArea returns the area of one tree copy (§6.5.1).
func (p Params) TreeArea() cost.Area {
	return cost.DecisionTreeArea(p.Height, p.KeyBits())
}

// PadsPerChip returns how many complete pads (n tree copies each) fit on a
// chip of the given area in mm² (Fig 10 divides by the copy count).
func (p Params) PadsPerChip(chipMm2 float64) int {
	return cost.TreesPerChip(p.Height, chipMm2) / p.Copies
}

// --- Hardware ---------------------------------------------------------------------

// tree is one decision-tree circuit: Height levels of switches, a register
// per leaf.
type tree struct {
	levels [][]*nems.Switch // levels[l] has min(2^l, leaves) switches
	leaves []*memory.ShiftRegister
}

// newTree fabricates a tree whose leaf j holds share data shares[j].
func newTree(p Params, shares [][]byte, r *rng.RNG) (*tree, error) {
	leaves := p.Paths()
	if len(shares) != leaves {
		return nil, fmt.Errorf("otp: need %d leaf payloads, got %d", leaves, len(shares))
	}
	t := &tree{levels: make([][]*nems.Switch, p.Height), leaves: make([]*memory.ShiftRegister, leaves)}
	for l := 0; l < p.Height; l++ {
		width := 1 << uint(l)
		if width > leaves {
			width = leaves
		}
		t.levels[l] = make([]*nems.Switch, width)
		for i := range t.levels[l] {
			t.levels[l][i] = nems.Fabricate(p.Dist, r)
		}
	}
	for j, data := range shares {
		sr, err := memory.NewShiftRegister(data, len(data)*8)
		if err != nil {
			return nil, err
		}
		t.leaves[j] = sr
	}
	return t, nil
}

// traverse actuates the switches along the path and, if all conduct, reads
// the leaf register destructively. It returns the leaf payload (nil if the
// path failed or the leaf was already consumed) plus the latency spent.
func (t *tree) traverse(path int, env nems.Environment) (data []byte, latencyNs float64) {
	for l, level := range t.levels {
		idx := 0
		if len(level) > 1 {
			// bits of path select the node at each level below the root
			idx = path >> uint(len(t.levels)-1-l)
			idx %= len(level)
		}
		latencyNs += nems.ActuationLatencySeconds * 1e9
		if level[idx].Actuate(env) != nil {
			return nil, latencyNs
		}
	}
	payload, readNs, err := t.leaves[path].ReadOut()
	latencyNs += readNs
	if err != nil {
		return nil, latencyNs
	}
	return payload, latencyNs
}

// Pad is one fabricated one-time pad: n tree copies whose leaf position j
// holds the n Shamir shares of candidate key j.
type Pad struct {
	params Params
	trees  []*tree
	used   bool
}

// RetrievalStats reports the physical cost of one retrieval.
type RetrievalStats struct {
	LatencyNs float64
	EnergyJ   float64
}

var (
	// ErrRetrievalFailed is returned when fewer than k copies yielded the
	// right-path component.
	ErrRetrievalFailed = errors.New("otp: retrieval failed (too few surviving paths)")
)

// Fabricate builds a pad. Every leaf position receives an independent
// random key (so wrong-path reads yield decoys, §6.1); the key at
// position `path` is the pad's real key, returned to the fabricator (the
// sender keeps it; the receiver later learns only the path string).
func Fabricate(p Params, path int, r *rng.RNG) (*Pad, []byte, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if path < 0 || path >= p.Paths() {
		return nil, nil, fmt.Errorf("otp: path %d out of range [0, %d)", path, p.Paths())
	}
	keyBytes := (p.KeyBits() + 7) / 8
	leaves := p.Paths()
	// shares[c][j] = share for copy c, leaf j
	perCopy := make([][][]byte, p.Copies)
	for c := range perCopy {
		perCopy[c] = make([][]byte, leaves)
	}
	var realKey []byte
	for j := 0; j < leaves; j++ {
		key := make([]byte, keyBytes)
		r.Bytes(key)
		if j == path {
			realKey = key
		}
		shares, err := shamir.Split(key, p.K, p.Copies, r)
		if err != nil {
			return nil, nil, err
		}
		for c := range perCopy {
			// prepend the share x-coordinate so a reader can rebuild it
			perCopy[c][j] = append([]byte{shares[c].X}, shares[c].Data...)
		}
	}
	pad := &Pad{params: p, trees: make([]*tree, p.Copies)}
	for c := range pad.trees {
		t, err := newTree(p, perCopy[c], r)
		if err != nil {
			return nil, nil, err
		}
		pad.trees[c] = t
	}
	return pad, realKey, nil
}

// Params returns the pad's engineering parameters.
func (pad *Pad) Params() Params { return pad.params }

// Retrieve performs the receiver's retrieval: traverse `path` in every
// copy, collect the surviving components, and combine at least k of them.
func (pad *Pad) Retrieve(path int, env nems.Environment) ([]byte, RetrievalStats, error) {
	stats := RetrievalStats{}
	if path < 0 || path >= pad.params.Paths() {
		return nil, stats, fmt.Errorf("otp: path %d out of range", path)
	}
	pad.used = true
	var shares []shamir.Share
	for _, t := range pad.trees {
		data, latNs := t.traverse(path, env)
		stats.LatencyNs += latNs
		stats.EnergyJ += float64(pad.params.Height) * nems.ActuationEnergyJoules
		if data == nil || len(data) < 2 {
			continue
		}
		shares = append(shares, shamir.Share{X: data[0], Data: data[1:]})
	}
	if len(shares) < pad.params.K {
		return nil, stats, fmt.Errorf("%w: %d of %d needed", ErrRetrievalFailed, len(shares), pad.params.K)
	}
	key, err := shamir.Combine(shares, pad.params.K)
	if err != nil {
		return nil, stats, err
	}
	return key, stats, nil
}

// AdversaryTrial performs one random-path trial per copy (the attack of
// Eq 12–15: the adversary has the chip but not the path string) and
// reports how many components of the *target* path were obtained, plus
// whether that reaches the threshold k.
func (pad *Pad) AdversaryTrial(targetPath int, env nems.Environment, r *rng.RNG) (rightShares int, success bool) {
	pad.used = true
	for _, t := range pad.trees {
		guess := r.Intn(pad.params.Paths())
		data, _ := t.traverse(guess, env)
		if data != nil && guess == targetPath {
			rightShares++
		}
	}
	return rightShares, rightShares >= pad.params.K
}

// Used reports whether the pad has been accessed at all (tamper evidence:
// a receiver whose fresh pad fails to retrieve can suspect interference).
func (pad *Pad) Used() bool { return pad.used }
