package otp

import (
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func TestStrategiesCannotBeatSecureDesign(t *testing.T) {
	// At the paper's secure operating point (H=8, k=8), no sweep order —
	// random, systematic, or striped — assembles the real key, even with
	// a generous sweep budget (the shared upper tree levels wear out
	// long before the 128 leaf positions are covered).
	p := Params{Dist: weibull.MustNew(10, 1), Height: 8, Copies: 64, K: 8}
	for _, s := range []Strategy{RandomStrategy{}, SystematicStrategy{}, StripedStrategy{}} {
		for seed := uint64(0); seed < 6; seed++ {
			r := rng.New(seed)
			pad, _, err := Fabricate(p, 5, r.Derive("fab"))
			if err != nil {
				t.Fatal(err)
			}
			out, err := pad.RunStrategy(s, 5, 200, nems.RoomTemp, r.Derive("adv"))
			if err != nil {
				t.Fatal(err)
			}
			if out.GotTarget {
				t.Errorf("strategy %q assembled the target key (seed %d)", s.Name(), seed)
			}
			if out.KeysObtained > 0 {
				t.Logf("strategy %q assembled %d decoy keys (seed %d)", s.Name(), out.KeysObtained, seed)
			}
		}
	}
}

func TestSystematicReadsOutWeakDesign(t *testing.T) {
	// On an insecure low tree with durable-enough switches, the
	// systematic sweep reads the whole chip out: every leaf position —
	// including the target — is assembled. This is exactly the failure
	// mode that makes low trees unsafe, and why the secure design must
	// hold against more than the paper's random-trial adversary.
	p := Params{Dist: weibull.MustNew(10, 1), Height: 3, Copies: 32, K: 4}
	gotTarget := 0
	const trials = 15
	for seed := uint64(0); seed < trials; seed++ {
		r := rng.New(seed)
		pad, _, err := Fabricate(p, 2, r.Derive("fab"))
		if err != nil {
			t.Fatal(err)
		}
		out, err := pad.RunStrategy(SystematicStrategy{}, 2, p.Paths(), nems.RoomTemp, r.Derive("adv"))
		if err != nil {
			t.Fatal(err)
		}
		if out.GotTarget {
			gotTarget++
		}
	}
	if gotTarget < trials*2/3 {
		t.Errorf("systematic readout of a weak design succeeded only %d/%d times", gotTarget, trials)
	}
}

func TestRunStrategyValidation(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 8, K: 2}
	r := rng.New(1)
	pad, _, err := Fabricate(p, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pad.RunStrategy(RandomStrategy{}, 0, -1, nems.RoomTemp, r); err == nil {
		t.Error("negative sweeps should error")
	}
	out, err := pad.RunStrategy(RandomStrategy{}, 0, 0, nems.RoomTemp, r)
	if err != nil || out.KeysObtained != 0 {
		t.Error("zero sweeps should be a no-op")
	}
	if !pad.Used() {
		t.Error("running a strategy marks the pad used")
	}
}

func TestStrategyNames(t *testing.T) {
	var (
		r  RandomStrategy
		sy SystematicStrategy
		st StripedStrategy
	)
	if r.Name() != "random" || sy.Name() != "systematic" || st.Name() != "striped" {
		t.Error("strategy names wrong")
	}
}

func TestMultiTrialBoundHolds(t *testing.T) {
	// Monte-Carlo multi-sweep campaigns must stay below the analytic
	// union bound (wearout makes later sweeps strictly weaker).
	p := Params{Dist: weibull.MustNew(10, 1), Height: 5, Copies: 32, K: 4}
	const trials = 400
	const sweeps = 5
	bound := AdversaryMultiTrialBound(p, sweeps)
	hits := 0
	for seed := uint64(0); seed < trials; seed++ {
		r := rng.New(seed)
		pad, _, err := Fabricate(p, 3, r.Derive("fab"))
		if err != nil {
			t.Fatal(err)
		}
		out, err := pad.RunStrategy(RandomStrategy{}, 3, sweeps, nems.RoomTemp, r.Derive("adv"))
		if err != nil {
			t.Fatal(err)
		}
		if out.GotTarget {
			hits++
		}
	}
	emp := float64(hits) / trials
	// allow 3 binomial sigmas of slack on the MC estimate
	sigma := 3 * 0.5 / 31.6 // conservative p(1-p)<=0.25, sqrt(400)=20 → 3*0.5/20
	if emp > bound+sigma {
		t.Errorf("empirical multi-trial success %g exceeds union bound %g", emp, bound)
	}
	if bound <= 0 || bound > 1 {
		t.Errorf("bound out of range: %g", bound)
	}
}

func TestMultiTrialBoundEdges(t *testing.T) {
	p := Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 16, K: 1}
	if AdversaryMultiTrialBound(p, 0) != 0 {
		t.Error("zero trials should bound at 0")
	}
	if AdversaryMultiTrialBound(p, 1000000) != 1 {
		t.Error("huge trial counts should clamp at 1")
	}
}
