package otp

import (
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// Adversary strategies beyond the random-path trial the paper models
// (Eqs 12–15). The paper assumes the adversary "can only do random path
// trials"; these variants check that smarter sweep orders do not beat the
// design, strengthening the security argument.

// Strategy is an adversarial read-out plan for a stolen/borrowed pad.
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// NextPath chooses the path to try in copy `copyIdx` of sweep
	// `sweep`, given the pad geometry.
	NextPath(p Params, sweep, copyIdx int, r *rng.RNG) int
}

// RandomStrategy is the paper's Eq 12–15 adversary: an independent
// uniform path per copy per sweep.
type RandomStrategy struct{}

// Name implements Strategy.
func (RandomStrategy) Name() string { return "random" }

// NextPath implements Strategy.
func (RandomStrategy) NextPath(p Params, _, _ int, r *rng.RNG) int {
	return r.Intn(p.Paths())
}

// SystematicStrategy enumerates paths in order, same path across all
// copies within a sweep — the adversary methodically reading the whole
// chip out. It maximizes per-sweep share alignment but burns the shared
// upper tree levels the fastest.
type SystematicStrategy struct{}

// Name implements Strategy.
func (SystematicStrategy) Name() string { return "systematic" }

// NextPath implements Strategy.
func (SystematicStrategy) NextPath(p Params, sweep, _ int, r *rng.RNG) int {
	return sweep % p.Paths()
}

// StripedStrategy tries a different path in each copy within one sweep,
// rotating so each sweep covers many leaves while spreading switch wear.
type StripedStrategy struct{}

// Name implements Strategy.
func (StripedStrategy) Name() string { return "striped" }

// NextPath implements Strategy.
func (StripedStrategy) NextPath(p Params, sweep, copyIdx int, r *rng.RNG) int {
	return (sweep + copyIdx) % p.Paths()
}

// SweepOutcome summarizes an adversarial campaign against one pad.
type SweepOutcome struct {
	Strategy     string
	Sweeps       int
	KeysObtained int  // candidate keys fully assembled (k+ shares at one leaf position)
	GotTarget    bool // the real key's leaf position was among them
}

// RunStrategy executes `sweeps` sweeps of the strategy against a freshly
// understood pad and reports which candidate keys the adversary fully
// assembled. The adversary does not know the target path; GotTarget
// records whether the real key fell.
func (pad *Pad) RunStrategy(s Strategy, targetPath, sweeps int, env nems.Environment, r *rng.RNG) (SweepOutcome, error) {
	if sweeps < 0 {
		return SweepOutcome{}, fmt.Errorf("otp: negative sweep count %d", sweeps)
	}
	pad.used = true
	p := pad.params
	got := make([]int, p.Paths()) // shares recovered per leaf position
	for sweep := 0; sweep < sweeps; sweep++ {
		for ci, t := range pad.trees {
			path := s.NextPath(p, sweep, ci, r)
			if data, _ := t.traverse(path, env); data != nil {
				got[path]++
			}
		}
	}
	out := SweepOutcome{Strategy: s.Name(), Sweeps: sweeps}
	for path, count := range got {
		if count >= p.K {
			out.KeysObtained++
			if path == targetPath {
				out.GotTarget = true
			}
		}
	}
	return out, nil
}

// AdversaryMultiTrialBound bounds the success probability of an adversary
// who runs `trials` full sweeps instead of the single trial Eq 15 models,
// *accumulating* recovered components across sweeps (a target share from
// sweep 3 combines with one from sweep 1 — strictly stronger than
// repeating independent Eq-15 trials).
//
// Ignoring wearout — which only hurts the adversary — each copy yields
// its target-position share at most once (the leaf is read-destructive),
// with per-sweep probability S1/2^(H-1), so across T sweeps a copy falls
// with probability at most q = 1 − (1 − S1/2^(H-1))^T, and the campaign
// succeeds with probability at most P(Binomial(n, q) ≥ k). Real sweeps
// additionally destroy the shared upper tree levels, so Monte-Carlo
// campaigns sit below this bound.
func AdversaryMultiTrialBound(p Params, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	perSweep := PathSuccess(p.Dist, p.Height) * math.Exp2(-float64(p.Height-1))
	q := 1 - math.Pow(1-perSweep, float64(trials))
	return mathx.BinomTailGE(p.Copies, p.K, q)
}
