// Package targeting implements use case 2 of the paper (§5): a limited-use
// targeting system. The launching station receives encrypted targeting
// commands over a (possibly compromised) network; each decryption of a
// command requires reading the command-decryption key through wearout
// hardware sized for the mission's expected usage (e.g. 100 commands).
// The bound both caps how many commands the station will ever execute —
// even for an adversary who fully controls the communication link — and
// throttles brute-force attacks on the command encryption.
//
// The degradation criteria here are strict: "we do not want a single
// unintentional targeting command to be executed" past the bound.
package targeting

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

var (
	// ErrExpired is returned once the station's wearout hardware is
	// exhausted: no further commands will ever execute.
	ErrExpired = errors.New("targeting: station expired (hardware worn out)")
	// ErrBadCommand is returned for commands that do not authenticate.
	ErrBadCommand = errors.New("targeting: command failed authentication")
	// ErrTransient is returned when the hardware access failed but the
	// station may recover on retry.
	ErrTransient = errors.New("targeting: transient hardware failure; retry")
)

// Command is a decrypted, authenticated targeting order.
type Command struct {
	Seq     uint64
	Payload string
}

// Station is a simulated launching station. It is safe for concurrent
// use: multiple communication links may deliver commands simultaneously,
// and the wearout budget must be consumed consistently across them.
type Station struct {
	mu       sync.Mutex
	arch     *core.Architecture
	executed []Command
}

// CommandCenter encrypts targeting commands with the mission key. It lives
// on the command-and-control side of the link.
type CommandCenter struct {
	key []byte
	seq uint64
	r   *rng.RNG
}

// NewMission provisions a command center and a station sharing a fresh
// mission key; the station's copy sits behind wearout hardware built from
// design.
func NewMission(design dse.Design, r *rng.RNG) (*CommandCenter, *Station, error) {
	key := make([]byte, 32)
	r.Bytes(key)
	arch, err := core.Build(design, key, r)
	if err != nil {
		return nil, nil, fmt.Errorf("targeting: building station hardware: %w", err)
	}
	return &CommandCenter{key: key, r: r}, &Station{arch: arch}, nil
}

// MissionSpec returns the paper's §5 design problem: an expected usage of
// `commands` orders with strict fast-degradation criteria.
func MissionSpec(dist weibull.Dist, commands int, kFrac float64) dse.Spec {
	return dse.Spec{
		Dist:        dist,
		Criteria:    reliability.Criteria{MinWork: 0.99, MaxOverrun: 0.01},
		LAB:         commands,
		KFrac:       kFrac,
		ContinuousT: true,
	}
}

// Encrypt seals a targeting order for the station.
func (c *CommandCenter) Encrypt(payload string) ([]byte, error) {
	c.seq++
	plain := fmt.Sprintf("%d|%s", c.seq, payload)
	block, err := aes.NewCipher(kdf(c.key))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	c.r.Bytes(nonce)
	return gcm.Seal(nonce, nonce, []byte(plain), nil), nil
}

// Execute decrypts and "executes" one encrypted command. Every call —
// valid or not — consumes one hardware access, which is exactly the
// throttling property §5 wants.
func (s *Station) Execute(encrypted []byte, env nems.Environment) (Command, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, err := s.arch.Access(env)
	switch {
	case errors.Is(err, core.ErrExhausted):
		return Command{}, ErrExpired
	case errors.Is(err, core.ErrTransient):
		return Command{}, ErrTransient
	case err != nil:
		return Command{}, err
	}
	block, err := aes.NewCipher(kdf(key))
	if err != nil {
		return Command{}, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return Command{}, err
	}
	if len(encrypted) < gcm.NonceSize() {
		return Command{}, ErrBadCommand
	}
	plain, err := gcm.Open(nil, encrypted[:gcm.NonceSize()], encrypted[gcm.NonceSize():], nil)
	if err != nil {
		return Command{}, ErrBadCommand
	}
	var cmd Command
	if _, err := fmt.Sscanf(string(plain), "%d|", &cmd.Seq); err != nil {
		return Command{}, ErrBadCommand
	}
	for i := 0; i < len(plain); i++ {
		if plain[i] == '|' {
			cmd.Payload = string(plain[i+1:])
			break
		}
	}
	s.executed = append(s.executed, cmd)
	return cmd, nil
}

// Executed returns a snapshot of the commands the station has carried out.
func (s *Station) Executed() []Command {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Command(nil), s.executed...)
}

// Expired reports whether the station can never execute again.
func (s *Station) Expired() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.arch.Alive()
}

// Attempts returns how many command decryptions were attempted.
func (s *Station) Attempts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	total, _ := s.arch.Accesses()
	return total
}

func kdf(key []byte) []byte {
	h := sha256.Sum256(append([]byte("lemonade-targeting-v1"), key...))
	return h[:]
}
