package targeting

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func missionDesign(t *testing.T, commands int) dse.Design {
	t.Helper()
	d, err := dse.Explore(MissionSpec(weibull.MustNew(10, 8), commands, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExecuteValidCommands(t *testing.T) {
	design := missionDesign(t, 100)
	r := rng.New(1)
	cc, st, err := NewMission(design, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		enc, err := cc.Encrypt("strike grid 42")
		if err != nil {
			t.Fatal(err)
		}
		cmd, err := st.Execute(enc, nems.RoomTemp)
		if errors.Is(err, ErrTransient) {
			// a module copy died mid-access; the protocol is to retry
			cmd, err = st.Execute(enc, nems.RoomTemp)
		}
		if err != nil {
			t.Fatalf("command %d failed: %v", i, err)
		}
		if cmd.Payload != "strike grid 42" {
			t.Errorf("payload = %q", cmd.Payload)
		}
		if cmd.Seq != uint64(i+1) {
			t.Errorf("seq = %d, want %d", cmd.Seq, i+1)
		}
	}
	if len(st.Executed()) != 20 {
		t.Errorf("executed log has %d entries", len(st.Executed()))
	}
}

func TestForgedCommandRejectedButConsumesBudget(t *testing.T) {
	design := missionDesign(t, 100)
	r := rng.New(2)
	_, st, err := NewMission(design, r)
	if err != nil {
		t.Fatal(err)
	}
	before := st.Attempts()
	forged := make([]byte, 64)
	r.Bytes(forged)
	if _, err := st.Execute(forged, nems.RoomTemp); !errors.Is(err, ErrBadCommand) {
		t.Errorf("expected ErrBadCommand, got %v", err)
	}
	if st.Attempts() != before+1 {
		t.Error("forged command must still consume hardware budget — that is the throttle")
	}
	if len(st.Executed()) != 0 {
		t.Error("forged command must not appear in the executed log")
	}
}

func TestStationExpiresNearBound(t *testing.T) {
	design := missionDesign(t, 100)
	r := rng.New(3)
	cc, st, err := NewMission(design, r)
	if err != nil {
		t.Fatal(err)
	}
	executed := 0
	for i := 0; i < 1000; i++ {
		enc, err := cc.Encrypt("fire")
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.Execute(enc, nems.RoomTemp)
		if errors.Is(err, ErrExpired) {
			break
		}
		if err == nil {
			executed++
		}
	}
	if !st.Expired() {
		t.Fatal("station never expired")
	}
	// §5 design goals: work reliably for ~100 commands, not far beyond.
	if executed < 95 {
		t.Errorf("station executed only %d commands, mission needs ~100", executed)
	}
	upper := design.MaxAllowedAccesses() + 2*design.Copies
	if executed > upper {
		t.Errorf("station executed %d commands, beyond the hard bound %d", executed, upper)
	}
	// expired means expired
	enc, _ := cc.Encrypt("one more")
	if _, err := st.Execute(enc, nems.RoomTemp); !errors.Is(err, ErrExpired) {
		t.Error("expired station executed a command")
	}
}

func TestAdversaryWithLinkCannotExceedBound(t *testing.T) {
	// §5 threat: attacker controls the link and replays/floods commands.
	// The hardware bound caps total executions regardless.
	design := missionDesign(t, 100)
	r := rng.New(4)
	cc, st, err := NewMission(design, r)
	if err != nil {
		t.Fatal(err)
	}
	enc, _ := cc.Encrypt("legit")
	total := 0
	for i := 0; i < 5000 && !st.Expired(); i++ {
		if _, err := st.Execute(enc, nems.RoomTemp); err == nil {
			total++
		}
	}
	upper := design.MaxAllowedAccesses() + 2*design.Copies
	if total > upper {
		t.Errorf("replay flood achieved %d executions, bound is %d", total, upper)
	}
}

func TestMissionSpecShape(t *testing.T) {
	spec := MissionSpec(weibull.MustNew(10, 8), 100, 0.10)
	if spec.LAB != 100 || spec.KFrac != 0.10 || !spec.ContinuousT {
		t.Error("MissionSpec fields wrong")
	}
	if err := spec.Validate(); err != nil {
		t.Error(err)
	}
	// paper: ~810 devices at α=10, β=8, k=10%·n
	d, err := dse.Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	if d.TotalDevices > 5000 {
		t.Errorf("targeting design uses %d devices, paper says ~810", d.TotalDevices)
	}
}

func TestConcurrentLinksShareTheBudget(t *testing.T) {
	// Several communication links hammer the station concurrently; the
	// wearout budget must be consumed consistently (run with -race).
	design := missionDesign(t, 100)
	r := rng.New(5)
	cc, st, err := NewMission(design, r)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := cc.Encrypt("concurrent")
	if err != nil {
		t.Fatal(err)
	}
	const links = 8
	var wg sync.WaitGroup
	var executed atomic.Int64
	for l := 0; l < links; l++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				_, err := st.Execute(enc, nems.RoomTemp)
				if errors.Is(err, ErrExpired) {
					return
				}
				if err == nil {
					executed.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	upper := int64(design.MaxAllowedAccesses() + 2*design.Copies)
	if executed.Load() > upper {
		t.Errorf("concurrent links executed %d commands, bound is %d", executed.Load(), upper)
	}
	if executed.Load() < 80 {
		t.Errorf("station under-delivered: %d", executed.Load())
	}
	if len(st.Executed()) != int(executed.Load()) {
		t.Errorf("log has %d entries, counted %d", len(st.Executed()), executed.Load())
	}
}
