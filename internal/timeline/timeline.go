// Package timeline simulates a device's whole deployment life day by day:
// a user with stochastic daily usage (Poisson unlocks, occasional typos)
// operating an M-way replicated limited-use connection over years, with
// migrations triggered automatically as modules approach exhaustion.
//
// The paper sizes its LAB from a fixed "50 times a day for 5 years"
// assumption (Eq 4); this simulator stress-tests that sizing under
// realistic usage variance: does a Poisson(50) user ever exhaust the
// budget early, and how much margin do typos consume?
package timeline

import (
	"errors"
	"fmt"

	"lemonade/internal/connection"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// UserModel describes day-to-day usage behaviour.
type UserModel struct {
	// MeanDailyUnlocks is the Poisson mean of unlocks per day.
	MeanDailyUnlocks float64
	// TypoRate is the probability any unlock attempt is preceded by one
	// mistyped passcode (which still burns a hardware access).
	TypoRate float64
}

// Validate checks the model.
func (u UserModel) Validate() error {
	if u.MeanDailyUnlocks <= 0 {
		return fmt.Errorf("timeline: MeanDailyUnlocks must be positive, got %g", u.MeanDailyUnlocks)
	}
	if u.TypoRate < 0 || u.TypoRate >= 1 {
		return fmt.Errorf("timeline: TypoRate must be in [0,1), got %g", u.TypoRate)
	}
	return nil
}

// Result summarizes one simulated deployment.
type Result struct {
	TargetDays     int
	DaysSurvived   int    // days until the last module died (or TargetDays)
	Unlocks        uint64 // successful unlocks delivered
	FailedUnlocks  uint64 // unlocks lost (transients not recovered by retry)
	TypoAttempts   uint64 // wasted hardware accesses from typos
	Migrations     int    // module migrations performed
	LockedEarly    bool   // the device died before TargetDays
	MarginAccesses int    // unused guaranteed accesses at end of life (>=0 only if survived)
}

// Simulate runs one deployment: design sizes each module; passcodes has
// one entry per module (M-way replication). Migration is triggered when
// the active module's attempts reach 95% of its guaranteed budget.
func Simulate(design dse.Design, user UserModel, passcodes []string, days int, r *rng.RNG) (Result, error) {
	if err := user.Validate(); err != nil {
		return Result{}, err
	}
	if days < 1 {
		return Result{}, fmt.Errorf("timeline: days must be >= 1, got %d", days)
	}
	if len(passcodes) == 0 {
		return Result{}, errors.New("timeline: need at least one passcode")
	}
	dev, err := connection.NewMWayDevice(design, passcodes, []byte("user data"), r.Derive("fab"))
	if err != nil {
		return Result{}, err
	}
	res := Result{TargetDays: days}
	budget := design.GuaranteedMinAccesses()
	moduleAttempts := 0
	active := 0
	usage := r.Derive("usage")

	for day := 0; day < days; day++ {
		unlocksToday := usage.Poisson(user.MeanDailyUnlocks)
		for u := 0; u < unlocksToday; u++ {
			// migrate proactively near the module budget
			if moduleAttempts >= budget*95/100 && active+1 < len(passcodes) {
				if err := dev.Migrate(passcodes[active], nems.RoomTemp, r.Derive(fmt.Sprintf("mig-%d", active))); err == nil {
					active++
					res.Migrations++
					moduleAttempts = 0
				}
			}
			if usage.Bernoulli(user.TypoRate) {
				_, _ = dev.Unlock("tpyo!", nems.RoomTemp)
				res.TypoAttempts++
				moduleAttempts++
			}
			_, err := dev.Unlock(passcodes[active], nems.RoomTemp)
			moduleAttempts++
			if errors.Is(err, connection.ErrTransient) {
				_, err = dev.Unlock(passcodes[active], nems.RoomTemp)
				moduleAttempts++
			}
			if err == nil {
				res.Unlocks++
			} else {
				res.FailedUnlocks++
				if dev.Locked() {
					res.DaysSurvived = day
					res.LockedEarly = true
					return res, nil
				}
			}
		}
	}
	res.DaysSurvived = days
	res.MarginAccesses = budget*(len(passcodes)-active) - moduleAttempts
	if res.MarginAccesses < 0 {
		res.MarginAccesses = 0
	}
	return res, nil
}
