package timeline

import (
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// weekModule sizes a module for ~7 days of 10 unlocks/day plus typo margin.
func weekModule(t *testing.T) dse.Design {
	t.Helper()
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         100,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeploymentSurvivesDesignLife(t *testing.T) {
	// 3 modules × ~100 accesses vs 7 days × Poisson(10) ≈ 70 attempts
	// plus 5% typos: ample margin, so deployments should survive.
	design := weekModule(t)
	user := UserModel{MeanDailyUnlocks: 10, TypoRate: 0.05}
	survived := 0
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		res, err := Simulate(design, user, []string{"a", "b", "c"}, 7, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if !res.LockedEarly {
			survived++
			if res.DaysSurvived != 7 {
				t.Errorf("survived but days=%d", res.DaysSurvived)
			}
		}
		if res.Unlocks == 0 {
			t.Error("no unlocks delivered")
		}
	}
	if survived < trials-1 {
		t.Errorf("only %d/%d deployments survived a comfortably-sized design", survived, trials)
	}
}

func TestOverdrivenDeploymentLocksEarly(t *testing.T) {
	// A single ~100-access module driven at Poisson(60)/day for 7 days
	// (~420 attempts) must exhaust early — the LAB sizing matters.
	design := weekModule(t)
	user := UserModel{MeanDailyUnlocks: 60, TypoRate: 0}
	locked := 0
	const trials = 8
	for seed := uint64(100); seed < 100+trials; seed++ {
		res, err := Simulate(design, user, []string{"only"}, 7, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.LockedEarly {
			locked++
			if res.DaysSurvived >= 7 {
				t.Error("locked early but survived full term?")
			}
		}
	}
	if locked < trials {
		t.Errorf("only %d/%d overdriven deployments locked early", locked, trials)
	}
}

func TestTyposConsumeBudget(t *testing.T) {
	// Same usage with heavy typos must deliver fewer unlocks before
	// exhaustion than a clean typist on a single module.
	design := weekModule(t)
	clean, err := Simulate(design, UserModel{MeanDailyUnlocks: 40, TypoRate: 0},
		[]string{"only"}, 10, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sloppy, err := Simulate(design, UserModel{MeanDailyUnlocks: 40, TypoRate: 0.4},
		[]string{"only"}, 10, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if sloppy.TypoAttempts == 0 {
		t.Fatal("no typos simulated")
	}
	if sloppy.Unlocks >= clean.Unlocks {
		t.Errorf("typos should cost unlocks: sloppy=%d clean=%d", sloppy.Unlocks, clean.Unlocks)
	}
}

func TestMigrationsHappen(t *testing.T) {
	design := weekModule(t)
	user := UserModel{MeanDailyUnlocks: 30, TypoRate: 0}
	res, err := Simulate(design, user, []string{"a", "b", "c", "d"}, 12, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Error("expected proactive migrations at this usage level")
	}
	if res.LockedEarly {
		t.Errorf("4 modules should cover 12 days of 30/day: %+v", res)
	}
}

func TestValidation(t *testing.T) {
	design := weekModule(t)
	if _, err := Simulate(design, UserModel{MeanDailyUnlocks: 0}, []string{"a"}, 7, rng.New(1)); err == nil {
		t.Error("zero usage should error")
	}
	if _, err := Simulate(design, UserModel{MeanDailyUnlocks: 10, TypoRate: 1}, []string{"a"}, 7, rng.New(1)); err == nil {
		t.Error("typo rate 1 should error")
	}
	if _, err := Simulate(design, UserModel{MeanDailyUnlocks: 10}, []string{"a"}, 0, rng.New(1)); err == nil {
		t.Error("zero days should error")
	}
	if _, err := Simulate(design, UserModel{MeanDailyUnlocks: 10}, nil, 7, rng.New(1)); err == nil {
		t.Error("no passcodes should error")
	}
}
