package timeline_test

import (
	"fmt"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/timeline"
	"lemonade/internal/weibull"
)

// ExampleSimulate runs a week of realistic usage against a small module.
func ExampleSimulate() {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         100,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		panic(err)
	}
	res, err := timeline.Simulate(design,
		timeline.UserModel{MeanDailyUnlocks: 10, TypoRate: 0.05},
		[]string{"week-one", "week-two"}, 7, rng.New(3))
	if err != nil {
		panic(err)
	}
	fmt.Println("survived the week:", !res.LockedEarly)
	fmt.Println("delivered some unlocks:", res.Unlocks > 50)
	// Output:
	// survived the week: true
	// delivered some unlocks: true
}
