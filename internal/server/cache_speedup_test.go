package server

import (
	"net/http"
	"testing"
	"time"
)

// heavySpec is an expensive design problem: a continuous-t encoded search
// over a large access budget, the kind a fleet controller would issue
// repeatedly with identical parameters.
var heavySpec = SpecRequest{
	Alpha: 14, Beta: 8, LAB: 91250, KFrac: 0.1, ContinuousT: true,
}

// TestExploreCacheSpeedup is the ISSUE acceptance criterion: a repeated
// identical explore must be at least 10x faster than the cold search.
// The cold search here costs tens of milliseconds while a cache hit is
// a map lookup, so the margin is orders of magnitude in practice.
func TestExploreCacheSpeedup(t *testing.T) {
	_, ts := testServer(t)

	cold := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/dse/explore", heavySpec)
	coldDur := time.Since(cold)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold explore: status %d: %s", resp.StatusCode, body)
	}

	const warmRuns = 5
	warm := time.Now()
	for i := 0; i < warmRuns; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/dse/explore", heavySpec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm explore %d: status %d", i, resp.StatusCode)
		}
	}
	warmDur := time.Since(warm) / warmRuns

	t.Logf("cold = %v, warm = %v (%.0fx)", coldDur, warmDur, float64(coldDur)/float64(warmDur))
	if coldDur < 10*warmDur {
		t.Errorf("cache speedup %.1fx < 10x (cold %v, warm %v)",
			float64(coldDur)/float64(warmDur), coldDur, warmDur)
	}
}

// BenchmarkExploreCold measures the uncached design search: a fresh
// server (hence a cold cache) per iteration.
func BenchmarkExploreCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(Config{})
		spec, err := specFromWire(heavySpec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.explore(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExploreCached measures the repeated identical explore that the
// cache serves. Compare against BenchmarkExploreCold for the speedup.
func BenchmarkExploreCached(b *testing.B) {
	s := New(Config{})
	spec, err := specFromWire(heavySpec)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := s.explore(spec); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.explore(spec); err != nil {
			b.Fatal(err)
		}
	}
}
