package server

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lemonade/internal/registry"
)

// testServer returns a Server with a deterministic stepping clock (1ms
// per reading) mounted on an httptest server.
func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	var ticks atomic.Int64
	s := New(Config{NowNanos: func() int64 { return ticks.Add(1_000_000) }})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// goldenSpec is the small, fast design problem every determinism test
// provisions: mean lifetime 6 cycles, LAB 30, 10% encoding.
var goldenSpec = SpecRequest{Alpha: 6, Beta: 8, LAB: 30, KFrac: 0.1, ContinuousT: true}

const goldenSecretHex = "00112233445566778899aabbccddeeff"

func provisionGolden(t *testing.T, baseURL string, seed uint64) ProvisionResponse {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: seed,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("provision: status %d: %s", resp.StatusCode, body)
	}
	var pr ProvisionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestGoldenDeterminismThroughHTTP pins that a fixed seed and a fixed
// access sequence produce bit-identical results through the full HTTP
// layer: same architecture ID, same secret on every success, and the
// same lockout point. If this fails, the serving stack has broken the
// determinism contract — treat like a golden-RNG failure, not a constant
// to bump casually.
func TestGoldenDeterminismThroughHTTP(t *testing.T) {
	// Golden values for seed 42 under goldenSpec. Derived once from the
	// deterministic simulation; any change is a breaking change.
	const (
		wantID         = "arch-000001"
		wantSuccesses  = 30
		wantTransients = 5
		wantAttempts   = 36 // successes + transients + the first exhausted probe
	)
	for run := 0; run < 2; run++ { // a fresh server replays identically
		_, ts := testServer(t)
		pr := provisionGolden(t, ts.URL, 42)
		if pr.ID != wantID {
			t.Fatalf("run %d: ID = %q, want %q", run, pr.ID, wantID)
		}
		successes, transients, attempts := 0, 0, 0
		for {
			attempts++
			resp, body := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
			if resp.StatusCode == http.StatusOK {
				var ar AccessResponse
				if err := json.Unmarshal(body, &ar); err != nil {
					t.Fatal(err)
				}
				if ar.SecretHex != goldenSecretHex {
					t.Fatalf("run %d: access %d returned secret %q, want %q",
						run, attempts, ar.SecretHex, goldenSecretHex)
				}
				successes++
				continue
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				transients++
				continue
			}
			if resp.StatusCode == http.StatusGone {
				break
			}
			t.Fatalf("run %d: unexpected status %d: %s", run, resp.StatusCode, body)
		}
		if successes != wantSuccesses || transients != wantTransients || attempts != wantAttempts {
			t.Fatalf("run %d: (successes, transients, attempts) = (%d, %d, %d), want (%d, %d, %d)",
				run, successes, transients, attempts, wantSuccesses, wantTransients, wantAttempts)
		}
		// The designed window brackets the observed lockout point.
		if successes < pr.Design.GuaranteedMinAccesses ||
			successes > pr.Design.MaxAllowedAccesses {
			t.Errorf("run %d: %d successes outside designed window [%d, %d]",
				run, successes, pr.Design.GuaranteedMinAccesses, pr.Design.MaxAllowedAccesses)
		}
		// Post-lockout the answer is 410, forever.
		for i := 0; i < 3; i++ {
			resp, _ := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
			if resp.StatusCode != http.StatusGone {
				t.Fatalf("run %d: post-lockout access %d: status %d, want 410", run, i, resp.StatusCode)
			}
		}
	}
}

// TestConcurrentAccessBudget hammers one architecture from many
// goroutines and checks the serving invariant: the hardware budget is
// consumed exactly once per success no matter how the requests race, and
// the server's counters agree with the architecture's own accounting.
func TestConcurrentAccessBudget(t *testing.T) {
	s, ts := testServer(t)
	pr := provisionGolden(t, ts.URL, 7)

	const workers = 16
	var successes, transients, lockouts atomic.Int64
	var wg sync.WaitGroup
	client := ts.Client()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				resp, err := client.Post(ts.URL+"/v1/architectures/"+pr.ID+"/access", "application/json", nil)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					successes.Add(1)
				case http.StatusServiceUnavailable:
					transients.Add(1)
				case http.StatusGone:
					lockouts.Add(1)
					return
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()

	e, ok := s.reg.Get(pr.ID)
	if !ok {
		t.Fatal("architecture vanished")
	}
	total, okCount := e.Arch.Accesses()
	if int64(okCount) != successes.Load() {
		t.Errorf("architecture counted %d successes, clients observed %d", okCount, successes.Load())
	}
	if got := int64(total); got != successes.Load()+transients.Load()+lockouts.Load() {
		t.Errorf("attempts %d != successes %d + transients %d + lockouts %d",
			got, successes.Load(), transients.Load(), lockouts.Load())
	}
	// The designed statistical window still bounds the concurrent total.
	if int(successes.Load()) > pr.Design.MaxAllowedAccesses+pr.Design.UpperT {
		t.Errorf("concurrent successes %d far exceed designed max %d",
			successes.Load(), pr.Design.MaxAllowedAccesses)
	}
	if e.Arch.Alive() {
		t.Error("architecture still alive after every worker saw lockout")
	}
	if s.mAccessSuccess.Value() != uint64(successes.Load()) {
		t.Errorf("metrics counted %d successes, clients observed %d",
			s.mAccessSuccess.Value(), successes.Load())
	}
	if s.mLockouts.Value() != uint64(lockouts.Load()) {
		t.Errorf("metrics counted %d lockouts, clients observed %d",
			s.mLockouts.Value(), lockouts.Load())
	}
}

// TestErrorStatusMapping exercises the typed-sentinel → HTTP mapping.
func TestErrorStatusMapping(t *testing.T) {
	_, ts := testServer(t)

	// Unknown architecture → 404.
	resp, _ := postJSON(t, ts.URL+"/v1/architectures/arch-999999/access", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	// Invalid spec → 400 with the offending field.
	bad := goldenSpec
	bad.KFrac = 1.5
	resp, body := postJSON(t, ts.URL+"/v1/dse/explore", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: status %d, want 400", resp.StatusCode)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Field != "KFrac" {
		t.Errorf("invalid spec: field %q, want KFrac (%s)", er.Field, body)
	}

	// Infeasible spec (criteria can never straddle) → 409.
	infeasible := SpecRequest{Alpha: 5, Beta: 0.5, LAB: 100000, KFrac: 0.9}
	resp, _ = postJSON(t, ts.URL+"/v1/dse/explore", infeasible)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("infeasible spec: status %d, want 409", resp.StatusCode)
	}

	// Exhausted architecture → 410 (drive a tiny one to lockout).
	pr := provisionGolden(t, ts.URL, 3)
	for i := 0; i < 10000; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
		if resp.StatusCode == http.StatusGone {
			break
		}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusGone {
		t.Errorf("exhausted: status %d, want 410", resp.StatusCode)
	}

	// Bad secret hex → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: "zz", Seed: 1,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad secret: status %d, want 400", resp.StatusCode)
	}

	// Empty body on a body-required route → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/dse/explore", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}
}

// TestExploreCache checks the LRU + singleflight behavior through the
// HTTP layer: the second identical request is served from cache, and
// canonically equal specs share an entry.
func TestExploreCache(t *testing.T) {
	s, ts := testServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/dse/explore", goldenSpec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: status %d: %s", resp.StatusCode, body)
	}
	var first ExploreResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first explore claims cached")
	}

	_, body = postJSON(t, ts.URL+"/v1/dse/explore", goldenSpec)
	var second ExploreResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical explore was not served from cache")
	}
	if first.Design != second.Design {
		t.Errorf("cached design differs: %+v vs %+v", first.Design, second.Design)
	}

	// A spec differing only in defaulted fields canonicalizes to the
	// same cache key: explicit UpperBound == LAB is the default.
	canon := goldenSpec
	canon.UpperBound = canon.LAB
	_, body = postJSON(t, ts.URL+"/v1/dse/explore", canon)
	var third ExploreResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("canonically-equal spec missed the cache")
	}

	if hits := s.mCacheHits.Value(); hits != 2 {
		t.Errorf("cache hits = %d, want 2", hits)
	}
	if misses := s.mCacheMisses.Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
}

// TestMetricsEndpoint provisions, accesses to lockout, and checks the
// scrape reflects it — the in-process version of the CI smoke test.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	pr := provisionGolden(t, ts.URL, 42)
	for i := 0; i < 10000; i++ {
		resp, _ := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
		if resp.StatusCode == http.StatusGone {
			break
		}
	}
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		"lemonaded_lockouts_total 1",
		`lemonaded_accesses_total{outcome="success"} 30`,
		"lemonaded_architectures_provisioned_total 1",
		"lemonaded_architectures_live 1",
		`lemonaded_requests_total{route="access"}`,
		`lemonaded_request_duration_seconds_count{route="access"}`,
		`lemonaded_responses_total{route="access",code="410"} 1`,
		"lemonaded_inflight_requests 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestStatusEndpoint checks the read-only wearout view.
func TestStatusEndpoint(t *testing.T) {
	_, ts := testServer(t)
	pr := provisionGolden(t, ts.URL, 42)
	postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	resp, body := getJSON(t, ts.URL+"/v1/architectures/"+pr.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d: %s", resp.StatusCode, body)
	}
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Alive || st.Attempts != 1 || st.Successful != 1 {
		t.Errorf("status = %+v, want alive with 1/1 accesses", st)
	}
	if st.Design.TotalDevices != pr.Design.TotalDevices {
		t.Errorf("status design diverges from provision design")
	}
	// Status does not consume wearout.
	resp, body = getJSON(t, ts.URL+"/v1/architectures/"+pr.ID)
	var st2 StatusResponse
	if err := json.Unmarshal(body, &st2); err != nil {
		t.Fatal(err)
	}
	if st2.Attempts != 1 {
		t.Errorf("status consumed an access: attempts = %d", st2.Attempts)
	}
}

// TestFrontierEndpoint checks enumeration and the limit parameter.
func TestFrontierEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req := SpecRequest{Alpha: 8, Beta: 12, LAB: 500} // unencoded: multi-point frontier
	resp, body := postJSON(t, ts.URL+"/v1/dse/frontier", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier: status %d: %s", resp.StatusCode, body)
	}
	var fr FrontierResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Count < 2 || len(fr.Designs) != fr.Count {
		t.Errorf("frontier = %d designs shown of %d, want all shown", len(fr.Designs), fr.Count)
	}
	// The limit query trims the response but reports the full count.
	resp, body = postJSON(t, ts.URL+"/v1/dse/frontier?limit=1", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("frontier limit=1: status %d: %s", resp.StatusCode, body)
	}
	var trimmed FrontierResponse
	if err := json.Unmarshal(body, &trimmed); err != nil {
		t.Fatal(err)
	}
	if trimmed.Count != fr.Count || len(trimmed.Designs) != 1 {
		t.Errorf("frontier limit=1 = %d shown of %d, want 1 of %d",
			len(trimmed.Designs), trimmed.Count, fr.Count)
	}
	for i := 1; i < len(fr.Designs); i++ {
		if fr.Designs[i].TotalDevices < fr.Designs[i-1].TotalDevices {
			t.Error("frontier not sorted by total devices")
		}
	}
}

// TestProvisionSecretRoundTrip checks arbitrary secrets survive the hex
// round trip through provisioning and access.
func TestProvisionSecretRoundTrip(t *testing.T) {
	_, ts := testServer(t)
	secret := []byte("attack at dawn — key #9")
	resp, body := postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: hex.EncodeToString(secret), Seed: 11,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("provision: %d: %s", resp.StatusCode, body)
	}
	var pr ProvisionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
		if resp.StatusCode == http.StatusServiceUnavailable {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("access %d: %d: %s", i, resp.StatusCode, body)
		}
		var ar AccessResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		got, err := hex.DecodeString(ar.SecretHex)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("access %d returned %q, want %q", i, got, secret)
		}
	}
}

// TestHealthz is the liveness probe.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

func ExampleServer() {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := http.Post(ts.URL+"/v1/dse/explore", "application/json",
		strings.NewReader(`{"alpha": 6, "beta": 8, "lab": 30, "kfrac": 0.1}`))
	fmt.Println(resp.StatusCode)
	// Output: 200
}

// flakyStore is a registry.Store whose appends can be made to fail, for
// exercising the fail-closed path through HTTP.
type flakyStore struct{ fail atomic.Bool }

func (f *flakyStore) Append([]registry.Record) (registry.Ticket, error) {
	if f.fail.Load() {
		return nil, errors.New("disk full")
	}
	return readyTicket{}, nil
}

// TestStoreFailureFailsClosed: when the durable store cannot record an
// operation, the server answers 500, consumes nothing, and counts the
// refusal — the log-ahead rule seen from the outside.
func TestStoreFailureFailsClosed(t *testing.T) {
	st := &flakyStore{}
	s := New(Config{Registry: registry.NewWithStore(0, st)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	pr := provisionGolden(t, ts.URL, 42)
	resp, _ := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy access: status %d", resp.StatusCode)
	}

	st.fail.Store(true)
	resp, body := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("access with failing store: status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "store") {
		t.Errorf("error body %q does not mention the store", er.Error)
	}
	if s.mStoreFailures.Value() != 1 {
		t.Errorf("store failures counter = %d, want 1", s.mStoreFailures.Value())
	}
	// Nothing was consumed: the architecture still reports 1 attempt.
	e, _ := s.reg.Get(pr.ID)
	if total, _ := e.Arch.Accesses(); total != 1 {
		t.Errorf("failed-closed access consumed wearout: total = %d, want 1", total)
	}

	// Provisioning fails closed the same way.
	resp, _ = postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: 9,
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("provision with failing store: status %d", resp.StatusCode)
	}
	st.fail.Store(false)
	resp, _ = postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("access after store recovers: status %d", resp.StatusCode)
	}
}

// TestWriteJSONEncodeFailure pins the marshal-failure path: a value JSON
// cannot represent yields the static 500 body and bumps the counter —
// distinguished from a client that merely went away.
func TestWriteJSONEncodeFailure(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.writeJSON(rec, http.StatusOK, math.NaN()) // JSON has no NaN
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if got := rec.Body.String(); got != encodeFailedBody {
		t.Errorf("body = %q, want the static encode-failure payload", got)
	}
	if s.mEncodeFailures.Value() != 1 {
		t.Errorf("encode failures counter = %d, want 1", s.mEncodeFailures.Value())
	}

	// A client disconnect is not an encode failure.
	s.writeJSON(&brokenWriter{}, http.StatusOK, map[string]string{"ok": "yes"})
	if s.mEncodeFailures.Value() != 1 {
		t.Errorf("client-gone write counted as encode failure")
	}
}

// brokenWriter fails every write, like a hung-up client connection.
type brokenWriter struct{ h http.Header }

func (b *brokenWriter) Header() http.Header {
	if b.h == nil {
		b.h = make(http.Header)
	}
	return b.h
}
func (b *brokenWriter) WriteHeader(int) {}
func (b *brokenWriter) Write([]byte) (int, error) {
	return 0, errors.New("broken pipe")
}

// TestListEndpoint checks pagination, ordering, and the cursor contract.
func TestListEndpoint(t *testing.T) {
	_, ts := testServer(t)
	var want []string
	for i := 0; i < 5; i++ {
		want = append(want, provisionGolden(t, ts.URL, uint64(i)).ID)
	}

	// Full listing, deterministic order.
	resp, body := getJSON(t, ts.URL+"/v1/architectures")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: status %d: %s", resp.StatusCode, body)
	}
	var all ListResponse
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all.Architectures) != 5 || all.NextAfterID != "" {
		t.Fatalf("list = %d rows, next %q; want 5 rows, no cursor", len(all.Architectures), all.NextAfterID)
	}
	for i, a := range all.Architectures {
		if a.ID != want[i] {
			t.Errorf("row %d = %q, want %q (deterministic ID order)", i, a.ID, want[i])
		}
		if !a.Alive {
			t.Errorf("row %d not alive", i)
		}
	}

	// Paged walk: limit 2 pages through everything, cursor per page.
	var got []string
	after := ""
	for pages := 0; pages < 10; pages++ {
		url := ts.URL + "/v1/architectures?limit=2"
		if after != "" {
			url += "&after_id=" + after
		}
		_, body := getJSON(t, url)
		var page ListResponse
		if err := json.Unmarshal(body, &page); err != nil {
			t.Fatal(err)
		}
		for _, a := range page.Architectures {
			got = append(got, a.ID)
		}
		if page.NextAfterID == "" {
			break
		}
		after = page.NextAfterID
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("paged walk = %v, want %v", got, want)
	}

	// Bad limit → 400.
	resp, _ = getJSON(t, ts.URL+"/v1/architectures?limit=banana")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", resp.StatusCode)
	}
}

// TestEventsEndpoint checks the recent-events ring through HTTP.
func TestEventsEndpoint(t *testing.T) {
	_, ts := testServer(t)
	pr := provisionGolden(t, ts.URL, 42)
	for i := 0; i < 7; i++ {
		postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	}
	resp, body := getJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d: %s", resp.StatusCode, body)
	}
	var evs EventsResponse
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	if evs.ID != pr.ID || len(evs.Events) != 7 {
		t.Fatalf("events = %d for %q, want 7 for %q", len(evs.Events), evs.ID, pr.ID)
	}
	for i, ev := range evs.Events {
		if ev.Attempt != uint64(i+1) {
			t.Errorf("event %d attempt = %d, want %d (oldest first)", i, ev.Attempt, i+1)
		}
		if ev.Outcome == "" || ev.Outcome == "unknown" {
			t.Errorf("event %d outcome = %q", i, ev.Outcome)
		}
	}

	// max trims to the newest events.
	_, body = getJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/events?max=3")
	var trimmed EventsResponse
	if err := json.Unmarshal(body, &trimmed); err != nil {
		t.Fatal(err)
	}
	if len(trimmed.Events) != 3 || trimmed.Events[2].Attempt != 7 {
		t.Errorf("events max=3 = %+v, want the 3 newest ending at attempt 7", trimmed.Events)
	}

	// Unknown architecture → 404.
	resp, _ = getJSON(t, ts.URL+"/v1/architectures/arch-999999/events")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id events: status %d, want 404", resp.StatusCode)
	}
}
