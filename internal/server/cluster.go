package server

import (
	"encoding/hex"
	"fmt"
	"net/http"

	"lemonade/internal/cluster"
	"lemonade/internal/core"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// The cluster endpoints let N lemonaded processes serve one logical
// lemonade: a cluster-level architecture is Shamir-split by the client,
// and each node fabricates an ordinary limited-use architecture around
// the single share placed on it. Everything downstream of the handler —
// the registry's log-ahead pipeline, the WAL, recovery, snapshots —
// treats a share architecture exactly like a local one; the only
// cluster-specific logic here is placement validation, which needs no
// peer traffic because the ring is a pure function every party computes
// independently.

// validateClusterPlacement checks the (clusterID, shareIndex,
// shareTotal) triple of a cluster request against this node's ring:
// malformed triples are 400, shares owned by another node are 421
// Misdirected Request — the client's ring disagrees with ours, and
// accepting the share would silently double-place it. Returns false
// after writing the refusal.
func (s *Server) validateClusterPlacement(w http.ResponseWriter, clusterID string, shareIndex, shareTotal int) bool {
	if clusterID == "" {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "cluster_id must be set", Field: "cluster_id"})
		return false
	}
	if shareTotal < 1 || shareTotal > s.cluster.Ring().Size() {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("share_total must be 1..%d (ring size), got %d", s.cluster.Ring().Size(), shareTotal),
			Field: "share_total",
		})
		return false
	}
	if shareIndex < 0 || shareIndex >= shareTotal {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("share_index must be 0..%d, got %d", shareTotal-1, shareIndex),
			Field: "share_index",
		})
		return false
	}
	owners, err := s.cluster.Ring().Owners(clusterID, shareTotal)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return false
	}
	if owners[shareIndex] != s.cluster.Self() {
		s.writeJSON(w, http.StatusMisdirectedRequest, ErrorResponse{
			Error: fmt.Sprintf("share %d of %q belongs to %q, not %q (ring disagreement)",
				shareIndex, clusterID, owners[shareIndex], s.cluster.Self()),
		})
		return false
	}
	return true
}

// handleClusterShare fabricates the limited-use architecture guarding
// one share of a cluster architecture. The share payload is the
// architecture's protected secret; provisioning follows the exact
// log-ahead path of a local provision, so recovery rebuilds share
// architectures with no cluster-specific machinery. A duplicate share
// ID (a retried or raced provision) is refused with 409 before
// anything is logged.
func (s *Server) handleClusterShare(w http.ResponseWriter, r *http.Request) {
	if s.refuseDegraded(w) {
		return
	}
	var req ClusterShareRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.validateClusterPlacement(w, req.ClusterID, req.ShareIndex, req.ShareTotal) {
		return
	}
	payload, err := hex.DecodeString(req.ShareHex)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "share_hex: " + err.Error(), Field: "share_hex"})
		return
	}
	if len(payload) < 2 || len(payload) > maxSecretBytes {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("share_hex must encode 2..%d bytes (x byte + data), got %d", maxSecretBytes, len(payload)),
			Field: "share_hex",
		})
		return
	}
	spec, err := specFromWire(req.Spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	design, _, err := s.explore(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	arch, err := core.Build(design, payload, rng.New(req.Seed))
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := s.reg.ProvisionShare(cluster.ShareID(req.ClusterID, req.ShareIndex), arch, req.Seed, payload)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.mProvisioned.Inc()
	s.gLive.Set(int64(s.reg.Len()))
	s.writeJSON(w, http.StatusCreated, ClusterShareResponse{
		ID:     e.ID,
		Node:   s.cluster.Self(),
		Seed:   e.Seed,
		Design: designResponse(design),
	})
}

// handleClusterAccess serves one wearout-consuming access against the
// architecture guarding one share this node owns. It is the cluster
// read path's entire server half: no peer traffic, no coordinator —
// the node's own WAL logs-ahead the wear on its share, and the global
// budget emerges from k such independent local budgets. Misrouted
// requests are 421 (ring disagreement), unknown shares 404; everything
// after the lookup is the standard access pipeline, resilience
// envelope and outcome metrics included.
func (s *Server) handleClusterAccess(w http.ResponseWriter, r *http.Request) {
	if s.refuseDegraded(w) {
		return
	}
	var req ClusterAccessRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if !s.validateClusterPlacement(w, req.ClusterID, req.ShareIndex, req.ShareTotal) {
		return
	}
	e, ok := s.reg.Get(cluster.ShareID(req.ClusterID, req.ShareIndex))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown share"})
		return
	}
	env := nems.RoomTemp
	if req.TempCelsius != 0 {
		env = nems.Environment{TempCelsius: req.TempCelsius}
	}
	ctx, done, ok := s.accessEnvelope(w, r)
	if !ok {
		return
	}
	defer done()
	payload, err := e.Access(ctx, env)
	total, okCount := e.Arch.Accesses()
	s.countAccessOutcome(err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ClusterAccessResponse{
		Node:       s.cluster.Self(),
		ShareHex:   hex.EncodeToString(payload),
		Attempts:   total,
		Successful: okCount,
	})
}

// handleClusterRing reports this node's placement configuration, so
// clients and operators can verify ring agreement before trusting
// placements.
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, RingResponse{
		Self:  s.cluster.Self(),
		Seed:  s.cluster.Ring().Seed(),
		Nodes: s.cluster.Ring().Nodes(),
	})
}
