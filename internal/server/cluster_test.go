package server

import (
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"lemonade/internal/cluster"
)

// clusterTestServer mounts a Server with a 3-node ring identity. Only
// this node is real — peer URLs point nowhere, which is fine because
// the share endpoints never call out (no read-path coordinator).
func clusterTestServer(t *testing.T, self string) (*Server, *httptest.Server) {
	t.Helper()
	node, err := cluster.NewNode(cluster.Config{
		Self: self,
		Nodes: map[string]string{
			"n0": "http://unused-n0", "n1": "http://unused-n1", "n2": "http://unused-n2",
		},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ticks atomic.Int64
	s := New(Config{NowNanos: func() int64 { return ticks.Add(1_000_000) }, Cluster: node})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// shareOn returns which share index of clusterID the given node fronts
// on the canonical test ring, or -1 if it owns none of the n shares.
func shareOn(t *testing.T, self, clusterID string, n int) int {
	t.Helper()
	ring, err := cluster.NewRing([]string{"n0", "n1", "n2"}, 42)
	if err != nil {
		t.Fatal(err)
	}
	owners, err := ring.Owners(clusterID, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range owners {
		if o == self {
			return i
		}
	}
	return -1
}

func clusterShareReq(clusterID string, idx int) ClusterShareRequest {
	return ClusterShareRequest{
		ClusterID:  clusterID,
		ShareIndex: idx,
		ShareTotal: 3,
		Spec:       goldenSpec,
		ShareHex:   goldenSecretHex, // any well-formed payload; servers don't decode shares
		Seed:       7,
	}
}

// TestClusterShareRoundTrip provisions this node's share of a 3-of-3
// split and accesses it until lockout: the per-share architecture is an
// ordinary limited-use architecture under a share-scoped ID.
func TestClusterShareRoundTrip(t *testing.T) {
	const self, clusterID = "n0", "arch-000001"
	_, ts := clusterTestServer(t, self)
	idx := shareOn(t, self, clusterID, 3)
	if idx < 0 {
		t.Fatalf("node %s owns no share of %s on the test ring", self, clusterID)
	}

	resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", clusterShareReq(clusterID, idx))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("provision: %d %s", resp.StatusCode, body)
	}
	var pr ClusterShareResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.ID != cluster.ShareID(clusterID, idx) || pr.Node != self {
		t.Fatalf("share response = %+v", pr)
	}

	reveals := 0
	for i := 0; i < pr.Design.MaxAllowedAccesses*4; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/cluster/access", ClusterAccessRequest{
			ClusterID: clusterID, ShareIndex: idx, ShareTotal: 3,
		})
		switch resp.StatusCode {
		case http.StatusOK:
			var ar ClusterAccessResponse
			if err := json.Unmarshal(body, &ar); err != nil {
				t.Fatal(err)
			}
			if ar.ShareHex != goldenSecretHex || ar.Node != self {
				t.Fatalf("access returned %+v", ar)
			}
			reveals++
		case http.StatusGone:
			if reveals == 0 {
				t.Fatal("share exhausted before serving once")
			}
			return
		case http.StatusServiceUnavailable, http.StatusUnprocessableEntity:
			// transient hardware noise / decode failure: no reveal, continue
		default:
			t.Fatalf("access: %d %s", resp.StatusCode, body)
		}
	}
	t.Fatal("share never locked out")
}

// TestClusterShareMisroute pins the 421 guard: a share posted to (or
// read from) a node the ring does not name as its owner is refused as
// misdirected — ring disagreement must fail loudly, not scatter shares.
func TestClusterShareMisroute(t *testing.T) {
	const self, clusterID = "n0", "arch-000001"
	_, ts := clusterTestServer(t, self)
	owned := shareOn(t, self, clusterID, 3)
	wrong := (owned + 1) % 3 // some index this node does not front

	resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", clusterShareReq(clusterID, wrong))
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted provision: %d %s, want 421", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/cluster/access", ClusterAccessRequest{
		ClusterID: clusterID, ShareIndex: wrong, ShareTotal: 3,
	})
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted access: %d %s, want 421", resp.StatusCode, body)
	}
}

// TestClusterShareDuplicate pins the 409 guard: re-provisioning an
// existing share ID must be refused (a second WAL provision record for
// the same ID would poison recovery).
func TestClusterShareDuplicate(t *testing.T) {
	const self, clusterID = "n0", "arch-000001"
	_, ts := clusterTestServer(t, self)
	idx := shareOn(t, self, clusterID, 3)

	if resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", clusterShareReq(clusterID, idx)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first provision: %d %s", resp.StatusCode, body)
	}
	resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", clusterShareReq(clusterID, idx))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate provision: %d %s, want 409", resp.StatusCode, body)
	}
}

// TestClusterAccessUnknownShare: accessing a share that was never
// provisioned here is 404 — the placement is right, the share is not.
func TestClusterAccessUnknownShare(t *testing.T) {
	const self, clusterID = "n0", "arch-000001"
	_, ts := clusterTestServer(t, self)
	idx := shareOn(t, self, clusterID, 3)
	resp, body := postJSON(t, ts.URL+"/v1/cluster/access", ClusterAccessRequest{
		ClusterID: clusterID, ShareIndex: idx, ShareTotal: 3,
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown share access: %d %s, want 404", resp.StatusCode, body)
	}
}

// TestClusterShareValidation sweeps the 400 guards on both endpoints.
func TestClusterShareValidation(t *testing.T) {
	const self = "n0"
	_, ts := clusterTestServer(t, self)
	bad := []ClusterShareRequest{
		func() ClusterShareRequest { r := clusterShareReq("", 0); return r }(),                               // empty cluster ID
		func() ClusterShareRequest { r := clusterShareReq("arch-000001", 0); r.ShareTotal = 0; return r }(),  // zero total
		func() ClusterShareRequest { r := clusterShareReq("arch-000001", 0); r.ShareTotal = 99; return r }(), // total > ring
		func() ClusterShareRequest { r := clusterShareReq("arch-000001", 3); return r }(),                    // index out of range
		func() ClusterShareRequest { r := clusterShareReq("arch-000001", -1); return r }(),                   // negative index
	}
	for i, req := range bad {
		if resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", req); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d: %d %s, want 400", i, resp.StatusCode, body)
		}
	}
	// Well-placed but garbage payload: hex error is 400 too.
	idx := shareOn(t, self, "arch-000001", 3)
	r := clusterShareReq("arch-000001", idx)
	r.ShareHex = "zz"
	if resp, body := postJSON(t, ts.URL+"/v1/cluster/shares", r); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage share_hex: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestClusterRingEndpoint: every node publishes its identity and
// placement inputs so operators can diff rings across a fleet.
func TestClusterRingEndpoint(t *testing.T) {
	_, ts := clusterTestServer(t, "n1")
	resp, body := getJSON(t, ts.URL+"/v1/cluster/ring")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ring: %d %s", resp.StatusCode, body)
	}
	var rr RingResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Self != "n1" || rr.Seed != 42 || len(rr.Nodes) != 3 {
		t.Fatalf("ring response = %+v", rr)
	}
}

// TestClusterRoutesAbsentOutsideClusterMode: a single-node lemonaded
// must not expose cluster endpoints at all.
func TestClusterRoutesAbsentOutsideClusterMode(t *testing.T) {
	_, ts := testServer(t)
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/cluster/shares"},
		{"POST", "/v1/cluster/access"},
		{"GET", "/v1/cluster/ring"},
	} {
		req, err := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s on a non-cluster server: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// hexLen guards the test fixture itself: the golden payload must be
// decodable or the roundtrip test tests nothing.
func TestClusterFixtureSane(t *testing.T) {
	if _, err := hex.DecodeString(goldenSecretHex); err != nil {
		t.Fatal(err)
	}
	if shareOn(t, "n0", "arch-000001", 3) < 0 {
		t.Fatal("n0 owns nothing of arch-000001; pick a different fixture ID")
	}
}
