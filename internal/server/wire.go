package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// SpecRequest is the wire form of a design problem: flat JSON, with the
// same defaulting as the CLI (99%/1% criteria when omitted).
type SpecRequest struct {
	Alpha           float64 `json:"alpha"`
	Beta            float64 `json:"beta"`
	MinWork         float64 `json:"min_work,omitempty"`
	MaxOverrun      float64 `json:"max_overrun,omitempty"`
	LAB             int     `json:"lab"`
	UpperBound      int     `json:"upper_bound,omitempty"`
	KFrac           float64 `json:"kfrac,omitempty"`
	ContinuousT     bool    `json:"continuous_t,omitempty"`
	MaxPerStructure int     `json:"max_per_structure,omitempty"`
}

// Spec converts the wire form to a validated dse.Spec. Validation happens
// here — before any search is paid for — and failures carry the offending
// field name.
func (q SpecRequest) Spec() (dse.Spec, error) {
	crit := reliability.Criteria{MinWork: q.MinWork, MaxOverrun: q.MaxOverrun}
	if crit.MinWork == 0 {
		crit.MinWork = reliability.DefaultCriteria.MinWork
	}
	if crit.MaxOverrun == 0 {
		crit.MaxOverrun = reliability.DefaultCriteria.MaxOverrun
	}
	spec := dse.Spec{
		Dist:            weibull.Dist{Alpha: q.Alpha, Beta: q.Beta},
		Criteria:        crit,
		LAB:             q.LAB,
		UpperBound:      q.UpperBound,
		KFrac:           q.KFrac,
		ContinuousT:     q.ContinuousT,
		MaxPerStructure: q.MaxPerStructure,
	}
	if err := spec.Validate(); err != nil {
		return dse.Spec{}, err
	}
	return spec, nil
}

// DesignResponse is the wire form of a solved design.
type DesignResponse struct {
	T                     int     `json:"t"`
	UpperT                int     `json:"upper_t"`
	N                     int     `json:"n"`
	K                     int     `json:"k"`
	Copies                int     `json:"copies"`
	TotalDevices          int     `json:"total_devices"`
	GuaranteedMinAccesses int     `json:"guaranteed_min_accesses"`
	MaxAllowedAccesses    int     `json:"max_allowed_accesses"`
	WorkProb              float64 `json:"work_prob"`
	OverrunProb           float64 `json:"overrun_prob"`
}

func designResponse(d dse.Design) DesignResponse {
	return DesignResponse{
		T:                     d.T,
		UpperT:                d.UpperT,
		N:                     d.N,
		K:                     d.K,
		Copies:                d.Copies,
		TotalDevices:          d.TotalDevices,
		GuaranteedMinAccesses: d.GuaranteedMinAccesses(),
		MaxAllowedAccesses:    d.MaxAllowedAccesses(),
		WorkProb:              d.WorkProb,
		OverrunProb:           d.OverrunProb,
	}
}

// ProvisionRequest fabricates an architecture. The seed is mandatory in
// spirit — omitting it means seed 0, which is still fully deterministic.
type ProvisionRequest struct {
	Spec      SpecRequest `json:"spec"`
	SecretHex string      `json:"secret_hex"`
	Seed      uint64      `json:"seed"`
}

// ProvisionResponse identifies the provisioned architecture.
type ProvisionResponse struct {
	ID     string         `json:"id"`
	Seed   uint64         `json:"seed"`
	Cached bool           `json:"design_cached"`
	Design DesignResponse `json:"design"`
}

// AccessRequest parameterizes one access; the zero value means room
// temperature (the paper's nominal environment).
type AccessRequest struct {
	TempCelsius float64 `json:"temp_celsius,omitempty"`
}

// AccessResponse reports one successful access.
type AccessResponse struct {
	SecretHex  string `json:"secret_hex"`
	Attempts   uint64 `json:"attempts"`   // total accesses attempted so far
	Successful uint64 `json:"successful"` // accesses that yielded the secret
	Copy       int    `json:"copy"`       // copy index that served this access
}

// StatusResponse reports an architecture's wearout state.
type StatusResponse struct {
	ID              string         `json:"id"`
	Alive           bool           `json:"alive"`
	Attempts        uint64         `json:"attempts"`
	Successful      uint64         `json:"successful"`
	CurrentCopy     int            `json:"current_copy"`
	ExhaustedCopies int            `json:"exhausted_copies"`
	Design          DesignResponse `json:"design"`
}

// ExploreResponse answers a cached design search.
type ExploreResponse struct {
	Cached bool           `json:"cached"`
	Design DesignResponse `json:"design"`
}

// FrontierResponse answers a frontier enumeration.
type FrontierResponse struct {
	Count   int              `json:"count"`
	Designs []DesignResponse `json:"designs"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
	Field string `json:"field,omitempty"` // set for spec validation failures
	Retry bool   `json:"retry,omitempty"` // set when retrying may succeed
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // client gone is the only failure; nothing to do
}

// writeError maps library sentinels onto HTTP status codes:
//
//	dse.ErrInvalidSpec  → 400 (with the offending field)
//	core.ErrExhausted   → 410 Gone — the budget is spent, forever
//	core.ErrDecodeFailed→ 422 — conducted but unreconstructable
//	dse.ErrInfeasible   → 409 — spec conflicts with device physics
//	core.ErrTransient   → 503 + retry — next copy takes over
//	context cancelled   → 499-style client-closed-request (as 503)
func writeError(w http.ResponseWriter, err error) {
	var fe *dse.FieldError
	switch {
	case errors.As(err, &fe):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fe.Err.Error(), Field: fe.Field})
	case errors.Is(err, dse.ErrInvalidSpec):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrExhausted):
		writeJSON(w, http.StatusGone, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrDecodeFailed):
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
	case errors.Is(err, dse.ErrInfeasible):
		writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrTransient):
		w.Header().Set("Retry-After", "0")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

// decodeJSON decodes a request body into v. An empty body decodes the
// zero value when allowEmpty is set (used by /access, where the body is
// optional).
func decodeJSON(r *http.Request, v any, allowEmpty bool) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(body) == 0 {
		if allowEmpty {
			return nil
		}
		return errors.New("empty request body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decoding JSON: %w", err)
	}
	return nil
}
