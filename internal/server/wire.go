package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"lemonade/api"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/registry"
	"lemonade/internal/reliability"
	"lemonade/internal/resilience"
	"lemonade/internal/weibull"
)

// The wire types live in the public api package — the server aliases
// them so handlers and the conversion helpers below read naturally.
// Aliases (not definitions) guarantee the server can never drift from
// the published contract.
type (
	SpecRequest         = api.SpecRequest
	DesignResponse      = api.DesignResponse
	ProvisionRequest    = api.ProvisionRequest
	ProvisionResponse   = api.ProvisionResponse
	AccessRequest       = api.AccessRequest
	AccessResponse      = api.AccessResponse
	StressRequest       = api.StressRequest
	StressResponse      = api.StressResponse
	StatusResponse      = api.StatusResponse
	WearLevelingStatus  = api.WearLevelingStatus
	ArchitectureSummary = api.ArchitectureSummary
	ListResponse        = api.ListResponse
	EventsResponse      = api.EventsResponse
	ExploreResponse     = api.ExploreResponse
	FrontierResponse    = api.FrontierResponse
	ErrorResponse       = api.ErrorResponse

	ClusterShareRequest   = api.ClusterShareRequest
	ClusterShareResponse  = api.ClusterShareResponse
	ClusterAccessRequest  = api.ClusterAccessRequest
	ClusterAccessResponse = api.ClusterAccessResponse
	RingResponse          = api.RingResponse
)

// specFromWire converts the wire form to a validated dse.Spec, applying
// the same defaulting as the CLI (99%/1% criteria when omitted).
// Validation happens here — before any search is paid for — and failures
// carry the offending field name.
func specFromWire(q SpecRequest) (dse.Spec, error) {
	crit := reliability.Criteria{MinWork: q.MinWork, MaxOverrun: q.MaxOverrun}
	if crit.MinWork == 0 {
		crit.MinWork = reliability.DefaultCriteria.MinWork
	}
	if crit.MaxOverrun == 0 {
		crit.MaxOverrun = reliability.DefaultCriteria.MaxOverrun
	}
	spec := dse.Spec{
		Dist:            weibull.Dist{Alpha: q.Alpha, Beta: q.Beta},
		Criteria:        crit,
		LAB:             q.LAB,
		UpperBound:      q.UpperBound,
		KFrac:           q.KFrac,
		ContinuousT:     q.ContinuousT,
		MaxPerStructure: q.MaxPerStructure,
	}
	if err := spec.Validate(); err != nil {
		return dse.Spec{}, err
	}
	return spec, nil
}

func designResponse(d dse.Design) DesignResponse {
	return DesignResponse{
		T:                     d.T,
		UpperT:                d.UpperT,
		N:                     d.N,
		K:                     d.K,
		Copies:                d.Copies,
		TotalDevices:          d.TotalDevices,
		GuaranteedMinAccesses: d.GuaranteedMinAccesses(),
		MaxAllowedAccesses:    d.MaxAllowedAccesses(),
		WorkProb:              d.WorkProb,
		OverrunProb:           d.OverrunProb,
	}
}

func eventResponse(ev core.AccessEvent) api.AccessEvent {
	return api.AccessEvent{
		Attempt:    ev.Attempt,
		Copy:       ev.Copy,
		Conducting: ev.Conducting,
		Outcome:    ev.Outcome.String(),
	}
}

// encodeFailedBody is the static 500 payload served when response
// marshaling itself fails — it must never need marshaling.
const encodeFailedBody = `{"error":"internal: response encoding failed"}` + "\n"

// writeJSON marshals v and writes it with the given status. The failure
// modes are deliberately distinguished: a marshal error is a server bug
// (counted in lemonaded_encode_failures_total, answered with a static
// 500), while a write error just means the client went away — the
// response is already committed, so there is nothing to serve and
// nothing to count as a server fault.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		s.mEncodeFailures.Inc()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = io.WriteString(w, encodeFailedBody)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	body = append(body, '\n')
	_, _ = w.Write(body) // client gone; nothing to do
}

// writeError maps library sentinels onto HTTP status codes:
//
//	dse.ErrInvalidSpec  → 400 (with the offending field)
//	core.ErrExhausted   → 410 Gone — the budget is spent, forever
//	core.ErrDecodeFailed→ 422 — conducted but unreconstructable
//	dse.ErrInfeasible   → 409 — spec conflicts with device physics
//	registry.ErrExists  → 409 — share ID already provisioned
//	resilience.ErrOpen  → 503 + Retry-After — breaker open, degraded mode
//	resilience.ErrShed  → 503 + Retry-After — access queue full, shed
//	registry.ErrStore   → 500 — durability failed, access refused closed
//	core.ErrTransient   → 503 + retry — next copy takes over
//	context cancelled   → 499-style client-closed-request (as 503)
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var fe *dse.FieldError
	switch {
	case errors.As(err, &fe):
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fe.Err.Error(), Field: fe.Field})
	case errors.Is(err, dse.ErrInvalidSpec):
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrExhausted):
		s.writeJSON(w, http.StatusGone, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrDecodeFailed):
		s.writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
	case errors.Is(err, dse.ErrInfeasible):
		s.writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
	case errors.Is(err, registry.ErrExists):
		s.writeJSON(w, http.StatusConflict, ErrorResponse{Error: err.Error()})
	// The resilience refusals come before ErrStore: an append the breaker
	// refused wraps both sentinels, and it is a fast, retryable 503 — not
	// a store fault (the store was never touched).
	case errors.Is(err, resilience.ErrOpen):
		w.Header().Set("Retry-After", strconv.Itoa(s.breakerRetryAfter()))
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	case errors.Is(err, resilience.ErrShed):
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	case errors.Is(err, registry.ErrStore):
		s.mStoreFailures.Inc()
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	case errors.Is(err, core.ErrTransient):
		w.Header().Set("Retry-After", "0")
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error(), Retry: true})
	default:
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

// breakerRetryAfter picks the Retry-After for a breaker-refused request:
// the breaker's remaining cooldown, or 1s when it is already probing.
func (s *Server) breakerRetryAfter() int {
	if s.breaker != nil {
		if secs, degraded := s.breaker.Degraded(); degraded {
			return secs
		}
	}
	return 1
}

// decodeJSON decodes a request body into v. An empty body decodes the
// zero value when allowEmpty is set (used by /access, where the body is
// optional).
func decodeJSON(r *http.Request, v any, allowEmpty bool) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return fmt.Errorf("reading body: %w", err)
	}
	if len(body) == 0 {
		if allowEmpty {
			return nil
		}
		return errors.New("empty request body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("decoding JSON: %w", err)
	}
	return nil
}
