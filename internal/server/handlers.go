package server

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// maxSecretBytes bounds the protected secret; the paper's use cases carry
// 128–256-bit keys, so 4 KiB is already generous.
const maxSecretBytes = 4096

// handleProvision fabricates an architecture: solve the design problem
// (through the cache — fleets provision many identical devices), build
// the simulated hardware from the explicit seed, register it.
func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	var req ProvisionRequest
	if err := decodeJSON(r, &req, false); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	secret, err := hex.DecodeString(req.SecretHex)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "secret_hex: " + err.Error(), Field: "secret_hex"})
		return
	}
	if len(secret) == 0 || len(secret) > maxSecretBytes {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("secret_hex must encode 1..%d bytes, got %d", maxSecretBytes, len(secret)),
			Field: "secret_hex",
		})
		return
	}
	spec, err := req.Spec.Spec()
	if err != nil {
		writeError(w, err)
		return
	}
	design, cached, err := s.explore(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	arch, err := core.Build(design, secret, rng.New(req.Seed))
	if err != nil {
		writeError(w, err)
		return
	}
	e := s.reg.Provision(arch, req.Seed)
	s.mProvisioned.Inc()
	s.gLive.Set(int64(s.reg.Len()))
	writeJSON(w, http.StatusCreated, ProvisionResponse{
		ID:     e.ID,
		Seed:   e.Seed,
		Cached: cached,
		Design: designResponse(design),
	})
}

// handleStatus reports wearout state without consuming an access.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	total, okCount := e.Arch.Accesses()
	writeJSON(w, http.StatusOK, StatusResponse{
		ID:              e.ID,
		Alive:           e.Arch.Alive(),
		Attempts:        total,
		Successful:      okCount,
		CurrentCopy:     e.Arch.CurrentCopy(),
		ExhaustedCopies: e.Arch.ExhaustedCopies(),
		Design:          designResponse(e.Arch.Design()),
	})
}

// handleAccess performs one real, wearout-consuming traversal of the
// architecture's switches. Concurrent requests against one architecture
// serialize inside core.Architecture — each one is a distinct physical
// access, so the sum of successes can never exceed the hardware budget.
func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	var req AccessRequest
	if err := decodeJSON(r, &req, true); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	env := nems.RoomTemp
	if req.TempCelsius != 0 {
		env = nems.Environment{TempCelsius: req.TempCelsius}
	}
	secret, err := e.Arch.AccessContext(r.Context(), env)
	total, okCount := e.Arch.Accesses()
	switch {
	case err == nil:
		s.mAccessSuccess.Inc()
		writeJSON(w, http.StatusOK, AccessResponse{
			SecretHex:  hex.EncodeToString(secret),
			Attempts:   total,
			Successful: okCount,
			Copy:       e.Arch.CurrentCopy(),
		})
	case errors.Is(err, core.ErrExhausted):
		s.mAccessExh.Inc()
		s.mLockouts.Inc()
		writeError(w, err)
	case errors.Is(err, core.ErrDecodeFailed):
		s.mAccessDecode.Inc()
		writeError(w, err)
	case errors.Is(err, core.ErrTransient):
		s.mAccessTrans.Inc()
		writeError(w, err)
	default: // context cancellation — no wearout was consumed
		writeError(w, err)
	}
}

// handleExplore answers a design search from the LRU cache; identical
// Specs (after canonicalization) never recompute, and concurrent
// identical searches collapse into one via singleflight.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeJSON(r, &req, false); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, err)
		return
	}
	design, cached, err := s.explore(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ExploreResponse{Cached: cached, Design: designResponse(design)})
}

// handleFrontier enumerates every feasible design. The enumeration is the
// expensive, cancellable path: it aborts between per-copy targets when
// the client disconnects or the server drains.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeJSON(r, &req, false); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	spec, err := req.Spec()
	if err != nil {
		writeError(w, err)
		return
	}
	spec.ContinuousT = false // the frontier enumerates integer targets
	designs, err := dse.ExploreFrontier(r.Context(), spec)
	if err != nil {
		writeError(w, err)
		return
	}
	limit := len(designs)
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "limit must be a positive integer"})
			return
		}
		if n < limit {
			limit = n
		}
	}
	out := FrontierResponse{Count: len(designs)}
	for _, d := range designs[:limit] {
		out.Designs = append(out.Designs, designResponse(d))
	}
	writeJSON(w, http.StatusOK, out)
}
