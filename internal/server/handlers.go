package server

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"lemonade/api"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

// refuseDegraded answers 503 + Retry-After when the breaker has the
// daemon in degraded read-only mode. State-changing routes call it
// first, so a sick store costs one mutex peek instead of a doomed append
// per request; reads never call it.
func (s *Server) refuseDegraded(w http.ResponseWriter) bool {
	if s.breaker == nil {
		return false
	}
	secs, degraded := s.breaker.Degraded()
	if !degraded {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
		Error: "degraded mode: durable store unavailable, state changes refused (reads still served)",
		Retry: true,
	})
	return true
}

// maxSecretBytes bounds the protected secret; the paper's use cases carry
// 128–256-bit keys, so 4 KiB is already generous.
const maxSecretBytes = 4096

// Wear-leveling provisioning bounds: maxSpares caps the per-copy spare
// complement (fabrication cost scales with it), defaultRemapEpoch is the
// rotation schedule when the client asks for spares without one.
const (
	maxSpares         = 4096
	defaultRemapEpoch = 16
)

// maxStressPulses bounds one stress burst so a single request cannot pin
// a handler on millions of actuations; campaigns issue many requests,
// which is what the per-request metrics and the shedder are for.
const maxStressPulses = 10000

// defaultListLimit pages the fleet listing when the client does not ask
// for a size; maxListLimit bounds what it may ask for.
const (
	defaultListLimit = 100
	maxListLimit     = 1000
)

// handleProvision fabricates an architecture: solve the design problem
// (through the cache — fleets provision many identical devices), build
// the simulated hardware from the explicit seed, durably record it,
// register it. A provision whose record cannot be persisted fails closed
// with 500 — an architecture the log does not know about would resurrect
// with a fresh budget after a restart.
func (s *Server) handleProvision(w http.ResponseWriter, r *http.Request) {
	if s.refuseDegraded(w) {
		return
	}
	var req ProvisionRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	secret, err := hex.DecodeString(req.SecretHex)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "secret_hex: " + err.Error(), Field: "secret_hex"})
		return
	}
	if len(secret) == 0 || len(secret) > maxSecretBytes {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("secret_hex must encode 1..%d bytes, got %d", maxSecretBytes, len(secret)),
			Field: "secret_hex",
		})
		return
	}
	spec, err := specFromWire(req.Spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	design, cached, err := s.explore(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var lv *core.Leveling
	if req.Spares != 0 || req.RemapEpoch != 0 {
		if req.Spares < 0 || req.Spares > maxSpares {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("spares must be 0..%d, got %d", maxSpares, req.Spares),
				Field: "spares",
			})
			return
		}
		epoch := req.RemapEpoch
		if epoch == 0 {
			epoch = defaultRemapEpoch
		}
		lv = &core.Leveling{Spares: req.Spares, Epoch: epoch}
	}
	var arch *core.Architecture
	if lv != nil {
		arch, err = core.BuildLeveled(design, secret, *lv, rng.New(req.Seed))
	} else {
		arch, err = core.Build(design, secret, rng.New(req.Seed))
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, err := s.reg.Provision(arch, req.Seed, secret)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.mProvisioned.Inc()
	s.gLive.Set(int64(s.reg.Len()))
	resp := ProvisionResponse{
		ID:     e.ID,
		Seed:   e.Seed,
		Cached: cached,
		Design: designResponse(design),
	}
	if lv != nil {
		resp.Spares, resp.RemapEpoch = lv.Spares, lv.Epoch
		s.updateWearGauges(e)
	}
	s.writeJSON(w, http.StatusCreated, resp)
}

// handleStatus reports wearout state without consuming an access.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	total, okCount := e.Arch.Accesses()
	resp := StatusResponse{
		ID:              e.ID,
		Alive:           e.Arch.Alive(),
		Attempts:        total,
		Successful:      okCount,
		CurrentCopy:     e.Arch.CurrentCopy(),
		ExhaustedCopies: e.Arch.ExhaustedCopies(),
		Design:          designResponse(e.Arch.Design()),
	}
	if lv, ok := e.Arch.Leveling(); ok {
		resp.WearLeveling = &WearLevelingStatus{
			Spares:          lv.Spares,
			RemapEpoch:      lv.Epoch,
			Remaps:          e.Arch.Remaps(),
			SparesRemaining: e.Arch.SparesRemaining(),
			WearSkew:        e.Arch.WearSkew(),
			Stressed:        e.Arch.Stressed(),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleAccess performs one real, wearout-consuming traversal of the
// architecture's switches, through the registry's log-ahead path: the
// access record is durably appended before any switch fires, and an
// access that cannot be recorded fails closed (500, nothing consumed,
// no key bytes revealed). Concurrent requests against one architecture
// serialize inside the entry — each one is a distinct physical access,
// so the sum of successes can never exceed the hardware budget.
func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	if s.refuseDegraded(w) {
		return
	}
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	var req AccessRequest
	if err := decodeJSON(r, &req, true); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	env := nems.RoomTemp
	if req.TempCelsius != 0 {
		env = nems.Environment{TempCelsius: req.TempCelsius}
	}
	ctx, done, ok := s.accessEnvelope(w, r)
	if !ok {
		return
	}
	defer done()
	secret, err := e.Access(ctx, env)
	total, okCount := e.Arch.Accesses()
	s.countAccessOutcome(err)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, AccessResponse{
		SecretHex:  hex.EncodeToString(secret),
		Attempts:   total,
		Successful: okCount,
		Copy:       e.Arch.CurrentCopy(),
	})
}

// accessEnvelope applies the access path's resilience envelope: a
// per-request deadline bounds how long a slow store can pin this
// handler, and the shedder bounds how many handlers a slow store can
// pin at once. Both refuse before any wearout is consumed, so shedding
// is always safe to retry. On ok the caller must defer done(); on !ok
// the refusal has already been written.
func (s *Server) accessEnvelope(w http.ResponseWriter, r *http.Request) (ctx context.Context, done func(), ok bool) {
	ctx = r.Context()
	cancel := context.CancelFunc(func() {})
	if s.accessTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.accessTimeout)
	}
	if s.shedder != nil {
		release, err := s.shedder.Acquire(ctx)
		if err != nil {
			cancel()
			s.writeError(w, err)
			return nil, nil, false
		}
		return ctx, func() { release(); cancel() }, true
	}
	return ctx, cancel, true
}

// countAccessOutcome bumps the per-outcome access counters (and the
// headline lockout counter) for one completed hardware access. Store
// failures and context cancellations consume no wearout and count
// nowhere.
func (s *Server) countAccessOutcome(err error) {
	switch {
	case err == nil:
		s.mAccessSuccess.Inc()
	case errors.Is(err, core.ErrExhausted):
		s.mAccessExh.Inc()
		s.mLockouts.Inc()
	case errors.Is(err, core.ErrDecodeFailed):
		s.mAccessDecode.Inc()
	case errors.Is(err, core.ErrTransient):
		s.mAccessTrans.Inc()
	}
}

// handleStress applies one adversarial stress burst: Pulses actuations
// of each listed share index under the request environment, through the
// registry's log-ahead path (the stress record is durable before any
// switch fires, so recovery replays the wear exactly). Stress shares the
// access path's resilience envelope — it consumes real wearout — but
// never attempts reconstruction, so the response carries no key bytes.
func (s *Server) handleStress(w http.ResponseWriter, r *http.Request) {
	if s.refuseDegraded(w) {
		return
	}
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	var req StressRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if len(req.Indices) == 0 {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "indices must name at least one share", Field: "indices"})
		return
	}
	n := e.Arch.Design().N
	for _, idx := range req.Indices {
		if idx < 0 || idx >= n {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("index %d out of range [0, %d)", idx, n),
				Field: "indices",
			})
			return
		}
	}
	pulses := req.Pulses
	if pulses == 0 {
		pulses = 1
	}
	if pulses < 0 || pulses > maxStressPulses {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("pulses must be 1..%d, got %d", maxStressPulses, req.Pulses),
			Field: "pulses",
		})
		return
	}
	env := nems.RoomTemp
	if req.TempCelsius != 0 {
		env = nems.Environment{TempCelsius: req.TempCelsius}
	}
	ctx, done, ok := s.accessEnvelope(w, r)
	if !ok {
		return
	}
	defer done()
	conducted, err := e.Stress(ctx, env, req.Indices, pulses)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.mStressPulses.Add(uint64(pulses))
	s.updateWearGauges(e)
	s.writeJSON(w, http.StatusOK, StressResponse{
		Conducted: conducted,
		Pulses:    pulses,
		Stressed:  e.Arch.Stressed(),
		Remaps:    e.Arch.Remaps(),
	})
}

// handleList pages through the fleet in deterministic ascending ID
// order. ?after_id= is the cursor (exclusive), ?limit= the page size.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := defaultListLimit
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "limit must be a positive integer"})
			return
		}
		if n > maxListLimit {
			n = maxListLimit
		}
		limit = n
	}
	afterID := r.URL.Query().Get("after_id")
	page := s.reg.List(afterID, limit)
	out := ListResponse{Architectures: make([]ArchitectureSummary, 0, len(page))}
	for _, e := range page {
		total, okCount := e.Arch.Accesses()
		out.Architectures = append(out.Architectures, ArchitectureSummary{
			ID:         e.ID,
			Alive:      e.Arch.Alive(),
			Attempts:   total,
			Successful: okCount,
		})
	}
	if len(page) == limit {
		last := page[len(page)-1].ID
		if more := s.reg.List(last, 1); len(more) > 0 {
			out.NextAfterID = last
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleEvents serves an architecture's recent access events, oldest
// first, from the entry's in-memory ring buffer. ?max= trims to the
// newest max events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	e, ok := s.reg.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown architecture"})
		return
	}
	max := 0
	if q := r.URL.Query().Get("max"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "max must be a positive integer"})
			return
		}
		max = n
	}
	evs := e.Events(max)
	out := EventsResponse{ID: e.ID, Events: make([]api.AccessEvent, 0, len(evs))}
	for _, ev := range evs {
		out.Events = append(out.Events, eventResponse(ev))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleExplore answers a design search from the LRU cache; identical
// Specs (after canonicalization) never recompute, and concurrent
// identical searches collapse into one via singleflight.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	spec, err := specFromWire(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	design, cached, err := s.explore(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, ExploreResponse{Cached: cached, Design: designResponse(design)})
}

// handleFrontier enumerates every feasible design. The enumeration is the
// expensive, cancellable path: it aborts between per-copy targets when
// the client disconnects or the server drains.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	var req SpecRequest
	if err := decodeJSON(r, &req, false); err != nil {
		s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	spec, err := specFromWire(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	spec.ContinuousT = false // the frontier enumerates integer targets
	designs, err := dse.ExploreFrontier(r.Context(), spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	limit := len(designs)
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			s.writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "limit must be a positive integer"})
			return
		}
		if n < limit {
			limit = n
		}
	}
	out := FrontierResponse{Count: len(designs)}
	for _, d := range designs[:limit] {
		out.Designs = append(out.Designs, designResponse(d))
	}
	s.writeJSON(w, http.StatusOK, out)
}
