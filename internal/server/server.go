// Package server implements lemonaded's HTTP API: a concurrent
// key-access service over the paper's limited-use architectures.
//
// The service provisions simulated architectures into a sharded registry
// and serves wearout-consuming accesses against them — the paper's two
// deployment stories (a smartphone unlock path, §4, and a targeting
// system answering repeated key-retrieval requests, §5) are both
// "many concurrent readers racing a hardware budget", which is exactly
// what the API exposes:
//
//	POST /v1/architectures             provision from a dse spec (explicit seed)
//	GET  /v1/architectures/{id}        wearout status
//	POST /v1/architectures/{id}/access one real access (consumes wearout)
//	POST /v1/dse/explore               cached design-space exploration
//	POST /v1/dse/frontier              full frontier (cancellable)
//	GET  /metrics                      Prometheus text exposition
//	GET  /healthz                      liveness
//
// Determinism through the HTTP layer is a feature, not an accident: every
// provision takes an explicit seed, registry IDs are sequential, and the
// design cache is keyed by canonicalized Specs whose searches are pure —
// so a fixed request sequence produces bit-identical responses, lockout
// points included (pinned by TestGoldenDeterminismThroughHTTP).
//
// The package never reads the wall clock (the lemonvet determinism
// contract): request latencies are measured against an injected
// nanosecond clock, supplied by the daemon from time.Now and by tests
// from a deterministic counter.
package server

import (
	"net/http"
	"strconv"
	"time"

	"lemonade/internal/cache"
	"lemonade/internal/cluster"
	"lemonade/internal/dse"
	"lemonade/internal/metrics"
	"lemonade/internal/registry"
	"lemonade/internal/resilience"
)

// Config parameterizes a Server. The zero value is usable: default
// striping, default cache size, and a null clock (all latencies observed
// as zero).
type Config struct {
	// Registry, when non-nil, is the architecture registry to serve from —
	// the daemon builds one over a WAL-backed store and recovers it before
	// the listener opens. Nil builds an in-memory registry (no
	// durability), which is what tests and ephemeral deployments want.
	Registry *registry.Registry
	// Shards is the registry stripe count when Registry is nil
	// (0 → registry.DefaultShards).
	Shards int
	// Metrics, when non-nil, is the metric registry to register into and
	// serve at /metrics — the daemon shares one registry between the WAL
	// store (opened before the server exists) and the server. Nil builds
	// a fresh registry.
	Metrics *metrics.Registry
	// CacheSize caps the DSE design cache (0 → 256 designs).
	CacheSize int
	// NowNanos is the clock used for latency histograms, in nanoseconds
	// from an arbitrary origin. The daemon injects a monotonic wall
	// clock; tests inject a counter. Nil disables latency measurement.
	NowNanos func() int64
	// MaxBodyBytes caps request bodies (0 → 1 MiB).
	MaxBodyBytes int64
	// Breaker, when non-nil, is the circuit breaker wrapped around the
	// registry's durable store. The server consults it to refuse
	// state-changing requests fast while the store is sick (degraded
	// read-only mode: 503 + Retry-After) and to report "degraded" from
	// /healthz. The daemon builds it; nil means no degraded mode.
	Breaker *resilience.Breaker
	// Shedder, when non-nil, bounds concurrent access traffic; excess
	// requests are shed with 503 + Retry-After instead of queueing
	// without limit. Nil means no shedding.
	Shedder *resilience.Shedder
	// AccessTimeout, when > 0, is the per-request deadline applied to the
	// access path (queue wait included) so a slow store bounds latency
	// instead of pinning handlers forever.
	AccessTimeout time.Duration
	// Cluster, when non-nil, is this node's cluster identity — its name,
	// the placement ring, and the peer table. Setting it mounts the
	// cluster share endpoints (provision/access/ring); nil serves a
	// single-node lemonade with those routes absent.
	Cluster *cluster.Node
}

// Server is the lemonaded HTTP service. Create with New; it is an
// http.Handler via Handler().
type Server struct {
	reg     *registry.Registry
	designs *cache.Cache[dse.Design]
	met     *metrics.Registry // metric registry (reg is the architecture registry)
	now     func() int64
	maxBody int64
	mux     *http.ServeMux

	breaker       *resilience.Breaker
	shedder       *resilience.Shedder
	accessTimeout time.Duration
	cluster       *cluster.Node // nil outside cluster mode

	// Access outcomes, by terminal classification of one hardware access.
	mAccessSuccess *metrics.Counter
	mAccessTrans   *metrics.Counter
	mAccessExh     *metrics.Counter
	mAccessDecode  *metrics.Counter
	// Headline counter for the paper's security event: an access refused
	// because the hardware budget is spent.
	mLockouts *metrics.Counter
	// DSE cache effectiveness.
	mCacheHits, mCacheMisses *metrics.Counter
	// Fleet size.
	mProvisioned *metrics.Counter
	gLive        *metrics.Gauge
	// HTTP-level traffic.
	gInflight *metrics.Gauge
	// Server faults: responses that failed to marshal (a server bug, never
	// the client's) and operations refused because the durable store
	// could not record them (the log-ahead rule failing closed).
	mEncodeFailures *metrics.Counter
	mStoreFailures  *metrics.Counter
	// Adversarial wearout and the wear-leveling defense.
	mStressPulses  *metrics.Counter
	mRemaps        *metrics.Counter
	mRemapFailures *metrics.Counter
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.MaxBodyBytes == 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	now := cfg.NowNanos
	if now == nil {
		now = func() int64 { return 0 }
	}
	reg := cfg.Registry
	if reg == nil {
		reg = registry.New(cfg.Shards)
	}
	m := cfg.Metrics
	if m == nil {
		m = metrics.NewRegistry()
	}
	s := &Server{
		reg:     reg,
		designs: cache.New[dse.Design](cfg.CacheSize),
		met:     m,
		now:     now,
		maxBody: cfg.MaxBodyBytes,

		breaker:       cfg.Breaker,
		shedder:       cfg.Shedder,
		accessTimeout: cfg.AccessTimeout,
		cluster:       cfg.Cluster,

		mAccessSuccess:  m.Counter("lemonaded_accesses_total", `outcome="success"`, "hardware accesses by outcome"),
		mAccessTrans:    m.Counter("lemonaded_accesses_total", `outcome="transient"`, "hardware accesses by outcome"),
		mAccessExh:      m.Counter("lemonaded_accesses_total", `outcome="exhausted"`, "hardware accesses by outcome"),
		mAccessDecode:   m.Counter("lemonaded_accesses_total", `outcome="decode_failed"`, "hardware accesses by outcome"),
		mLockouts:       m.Counter("lemonaded_lockouts_total", "", "accesses refused because the wearout budget is exhausted"),
		mCacheHits:      m.Counter("lemonaded_dse_cache_hits_total", "", "design searches served from cache"),
		mCacheMisses:    m.Counter("lemonaded_dse_cache_misses_total", "", "design searches computed"),
		mProvisioned:    m.Counter("lemonaded_architectures_provisioned_total", "", "architectures fabricated over process lifetime"),
		gLive:           m.Gauge("lemonaded_architectures_live", "", "architectures currently registered"),
		gInflight:       m.Gauge("lemonaded_inflight_requests", "", "HTTP requests currently being served"),
		mEncodeFailures: m.Counter("lemonaded_encode_failures_total", "", "responses that failed to marshal (server bug)"),
		mStoreFailures:  m.Counter("lemonaded_store_failures_total", "", "operations refused because the durable store failed (failed closed)"),
		mStressPulses:   m.Counter("lemonaded_stress_pulses_total", "", "adversarial stress pulses applied across the fleet"),
		mRemaps:         m.Counter("lemonaded_wearout_remaps_total", "", "wear-leveling rotations durably applied"),
		mRemapFailures:  m.Counter("lemonaded_wearout_remap_failures_total", "", "wear-leveling rotations refused because the durable store failed"),
	}
	// Wear-leveling maintenance happens inside the registry's access path;
	// the observer is how its outcomes reach operators. Success refreshes
	// the per-architecture wear gauges; failure is a store fault that did
	// NOT fail the triggering operation (the rotation retries after the
	// next one), so it gets its own counter.
	reg.SetRemapObserver(func(ev registry.RemapEvent) {
		if ev.Err != nil {
			s.mRemapFailures.Inc()
			return
		}
		s.mRemaps.Inc()
		if e, ok := s.reg.Get(ev.ID); ok {
			s.updateWearGauges(e)
		}
	})
	s.mux = http.NewServeMux()
	s.route("POST /v1/architectures", "provision", s.handleProvision)
	s.route("GET /v1/architectures", "list", s.handleList)
	s.route("GET /v1/architectures/{id}", "status", s.handleStatus)
	s.route("POST /v1/architectures/{id}/access", "access", s.handleAccess)
	s.route("POST /v1/architectures/{id}/stress", "stress", s.handleStress)
	s.route("GET /v1/architectures/{id}/events", "events", s.handleEvents)
	s.route("POST /v1/dse/explore", "explore", s.handleExplore)
	s.route("POST /v1/dse/frontier", "frontier", s.handleFrontier)
	if s.cluster != nil {
		s.route("POST /v1/cluster/shares", "cluster_share", s.handleClusterShare)
		s.route("POST /v1/cluster/access", "cluster_access", s.handleClusterAccess)
		s.route("GET /v1/cluster/ring", "cluster_ring", s.handleClusterRing)
	}
	s.mux.Handle("GET /metrics", m)
	// healthz reports "degraded" with 200 while the breaker is open —
	// the process is alive and serving reads, and an orchestrator that
	// kills it for a sick disk would only lose the in-memory fleet.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.breaker != nil && s.breaker.State() != resilience.StateClosed {
			_, _ = w.Write([]byte("degraded\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	return s
}

// Handler returns the root handler; mount it on an http.Server. Request
// draining on shutdown comes from http.Server.Shutdown, which stops the
// listener and waits for handlers to return.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the metric registry (the /metrics handler), mainly for
// the daemon to add process-level gauges and the WAL's instrumentation.
func (s *Server) Metrics() *metrics.Registry { return s.met }

// Registry exposes the architecture registry, for the daemon's snapshot
// loop (a snapshot captures the registry through the store's barrier).
func (s *Server) Registry() *registry.Registry { return s.reg }

// updateWearGauges refreshes the per-architecture wear-leveling gauges:
// remaining spare switches and wear skew (max−min wear over the active
// copy's serviceable pool, in milli-units because gauges are integral).
// Only leveled architectures export them; plain ones have no rotation
// story to observe.
func (s *Server) updateWearGauges(e *registry.Entry) {
	if _, ok := e.Arch.Leveling(); !ok {
		return
	}
	label := `arch="` + e.ID + `"`
	s.met.Gauge("lemonaded_spares_remaining", label,
		"usable unassigned spare switches, by architecture").Set(int64(e.Arch.SparesRemaining()))
	s.met.Gauge("lemonaded_wear_skew_millis", label,
		"wear skew (max-min wear over the serviceable pool, x1000), by architecture").Set(int64(e.Arch.WearSkew() * 1000))
}

// route mounts an instrumented handler: per-route request counter and
// latency histogram, per-code response counter, global in-flight gauge.
func (s *Server) route(pattern, name string, h http.HandlerFunc) {
	reqs := s.met.Counter("lemonaded_requests_total", `route="`+name+`"`, "HTTP requests by route")
	dur := s.met.Histogram("lemonaded_request_duration_seconds", `route="`+name+`"`,
		"request latency by route", nil)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		s.gInflight.Inc()
		defer s.gInflight.Dec()
		reqs.Inc()
		start := s.now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		h(rec, r)
		dur.Observe(float64(s.now()-start) / 1e9)
		s.met.Counter("lemonaded_responses_total",
			`route="`+name+`",code="`+strconv.Itoa(rec.code)+`"`,
			"HTTP responses by route and status code").Inc()
	})
}

// statusRecorder captures the response status for the per-code counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// explore runs a validated spec through the design cache: identical Specs
// never recompute, and a stampede of identical in-flight searches
// collapses into one (singleflight).
func (s *Server) explore(spec dse.Spec) (dse.Design, bool, error) {
	d, hit, err := s.designs.Do(spec.CacheKey(), func() (dse.Design, error) {
		return dse.Explore(spec)
	})
	if hit {
		s.mCacheHits.Inc()
	} else {
		s.mCacheMisses.Inc()
	}
	return d, hit, err
}
