package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/registry"
	"lemonade/internal/resilience"
)

// deadStore always fails, for tripping a breaker deterministically.
type deadStore struct{}

func (deadStore) Append([]registry.Record) (registry.Ticket, error) {
	return nil, errors.New("disk unplugged")
}

// TestErrorTaxonomy is the complete error→HTTP contract, one row per
// sentinel the stack can surface, asserting status code, the wire
// ErrorResponse fields, and the Retry-After header. A new sentinel that
// reaches writeError unmapped lands in the default 500 row — this table
// is where adding its mapping becomes a conscious decision.
func TestErrorTaxonomy(t *testing.T) {
	var ticks atomic.Int64
	clock := func() int64 { return ticks.Add(1_000_000) }

	// A breaker tripped by a dead store, so the ErrOpen row exercises the
	// real cooldown-derived Retry-After instead of the fallback.
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		Store:            deadStore{},
		FailureThreshold: 1,
		Cooldown:         30 * time.Second,
		NowNanos:         clock,
	})
	if _, err := breaker.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}}); err == nil {
		t.Fatal("dead store append succeeded")
	}
	if _, degraded := breaker.Degraded(); !degraded {
		t.Fatal("breaker did not trip on the first failure at threshold 1")
	}

	s := New(Config{NowNanos: clock, Breaker: breaker})

	cases := []struct {
		name       string
		err        error
		status     int
		field      string // ErrorResponse.Field
		retry      bool   // ErrorResponse.Retry
		retryAfter string // Retry-After header; "" = must be absent, "*" = any value
	}{
		{
			name:   "spec field error -> 400 naming the field",
			err:    &dse.FieldError{Field: "LAB", Err: errors.New("must be positive")},
			status: http.StatusBadRequest, field: "LAB",
		},
		{
			name:   "invalid spec -> 400",
			err:    fmt.Errorf("validating: %w", dse.ErrInvalidSpec),
			status: http.StatusBadRequest,
		},
		{
			name:   "exhausted -> 410 Gone",
			err:    fmt.Errorf("arch-000001: %w", core.ErrExhausted),
			status: http.StatusGone,
		},
		{
			name:   "decode failed -> 422",
			err:    fmt.Errorf("arch-000001: %w", core.ErrDecodeFailed),
			status: http.StatusUnprocessableEntity,
		},
		{
			name:   "infeasible design -> 409 Conflict",
			err:    fmt.Errorf("exploring: %w", dse.ErrInfeasible),
			status: http.StatusConflict,
		},
		{
			name:   "duplicate share provision -> 409 Conflict",
			err:    fmt.Errorf("%w: %q", registry.ErrExists, "arch-000001@s0"),
			status: http.StatusConflict,
		},
		{
			name:   "breaker open -> 503 with cooldown Retry-After",
			err:    fmt.Errorf("appending: %w", resilience.ErrOpen),
			status: http.StatusServiceUnavailable, retry: true, retryAfter: "*",
		},
		{
			// The breaker wraps both sentinels when it refuses an append;
			// the retryable 503 must win over the 500 store-fault row
			// (the store was never touched).
			name:   "breaker open wrapping ErrStore -> still 503",
			err:    fmt.Errorf("%w: %w", registry.ErrStore, resilience.ErrOpen),
			status: http.StatusServiceUnavailable, retry: true, retryAfter: "*",
		},
		{
			name:   "load shed -> 503 Retry-After 1",
			err:    fmt.Errorf("access: %w", resilience.ErrShed),
			status: http.StatusServiceUnavailable, retry: true, retryAfter: "1",
		},
		{
			name:   "store fault -> 500",
			err:    fmt.Errorf("%w: %w", registry.ErrStore, errors.New("fsync: input/output error")),
			status: http.StatusInternalServerError,
		},
		{
			name:   "transient access failure -> 503 Retry-After 0",
			err:    fmt.Errorf("arch-000001: %w", core.ErrTransient),
			status: http.StatusServiceUnavailable, retry: true, retryAfter: "0",
		},
		{
			name:   "canceled request -> 503",
			err:    context.Canceled,
			status: http.StatusServiceUnavailable, retry: true,
		},
		{
			name:   "deadline exceeded -> 503",
			err:    context.DeadlineExceeded,
			status: http.StatusServiceUnavailable, retry: true,
		},
		{
			name:   "unclassified error -> 500",
			err:    errors.New("something nobody mapped"),
			status: http.StatusInternalServerError,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.writeError(rec, tc.err)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d", rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			var body ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("error body is not JSON: %v\n%s", err, rec.Body.Bytes())
			}
			if body.Error == "" {
				t.Fatal("wire error message is empty")
			}
			if body.Field != tc.field {
				t.Fatalf("Field = %q, want %q", body.Field, tc.field)
			}
			if body.Retry != tc.retry {
				t.Fatalf("Retry = %v, want %v", body.Retry, tc.retry)
			}
			got := rec.Header().Get("Retry-After")
			switch tc.retryAfter {
			case "":
				if got != "" {
					t.Fatalf("unexpected Retry-After %q", got)
				}
			case "*":
				if got == "" {
					t.Fatal("Retry-After header missing")
				}
			default:
				if got != tc.retryAfter {
					t.Fatalf("Retry-After = %q, want %q", got, tc.retryAfter)
				}
			}
		})
	}
}

// TestBreakerOpenOverHTTP drives the breaker-open row end to end: with
// the breaker open, a real POST /v1/architectures through the handler
// stack must surface 503 + Retry-After, not 500.
func TestBreakerOpenOverHTTP(t *testing.T) {
	var ticks atomic.Int64
	clock := func() int64 { return ticks.Add(1_000_000) }
	breaker := resilience.NewBreaker(resilience.BreakerConfig{
		Store:            deadStore{},
		FailureThreshold: 1,
		Cooldown:         30 * time.Second,
		NowNanos:         clock,
	})
	if _, err := breaker.Append([]registry.Record{{Access: &registry.AccessRecord{ID: "arch-000001"}}}); err == nil {
		t.Fatal("dead store append succeeded")
	}

	s := New(Config{
		NowNanos: clock,
		Registry: registry.NewWithStore(1, breaker),
		Breaker:  breaker,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, body := postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: 42,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker-open response lacks Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !er.Retry {
		t.Fatalf("breaker-open wire error not retryable: %s", body)
	}
}
