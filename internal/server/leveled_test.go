package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// provisionLeveled provisions the golden spec with a spare complement and
// an explicit rotation epoch.
func provisionLeveled(t *testing.T, baseURL string, seed uint64, spares int, epoch uint64) ProvisionResponse {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: seed,
		Spares: spares, RemapEpoch: epoch,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("leveled provision: status %d: %s", resp.StatusCode, body)
	}
	var pr ProvisionResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	return pr
}

// TestLeveledProvisionEcho: the provision response echoes the leveling
// actually applied, including the server's epoch default, while a plain
// provision's wire encoding stays byte-for-byte free of leveling fields
// (the golden-JSON compatibility contract).
func TestLeveledProvisionEcho(t *testing.T) {
	_, ts := testServer(t)

	pr := provisionLeveled(t, ts.URL, 42, 4, 6)
	if pr.Spares != 4 || pr.RemapEpoch != 6 {
		t.Errorf("echo = (spares %d, epoch %d), want (4, 6)", pr.Spares, pr.RemapEpoch)
	}

	// Spares without an epoch gets the server default.
	pr = provisionLeveled(t, ts.URL, 43, 2, 0)
	if pr.RemapEpoch != defaultRemapEpoch {
		t.Errorf("defaulted epoch = %d, want %d", pr.RemapEpoch, defaultRemapEpoch)
	}

	// A plain provision must not leak leveling fields into its JSON.
	resp, body := postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: 44,
	})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("plain provision: status %d: %s", resp.StatusCode, body)
	}
	for _, forbidden := range []string{"spares", "remap_epoch", "wear_leveling"} {
		if strings.Contains(string(body), forbidden) {
			t.Errorf("plain provision JSON contains %q: %s", forbidden, body)
		}
	}

	// Negative and absurd spare counts are refused with the field named.
	for _, spares := range []int{-1, maxSpares + 1} {
		resp, body := postJSON(t, ts.URL+"/v1/architectures", ProvisionRequest{
			Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: 45, Spares: spares,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spares=%d: status %d, want 400: %s", spares, resp.StatusCode, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Field != "spares" {
			t.Errorf("spares=%d: field %q, want spares", spares, er.Field)
		}
	}
}

// TestLeveledStatusBlock: leveled architectures report the wear-leveling
// block; plain ones omit it entirely from the wire encoding.
func TestLeveledStatusBlock(t *testing.T) {
	_, ts := testServer(t)
	pr := provisionLeveled(t, ts.URL, 42, 4, 6)
	postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)

	_, body := getJSON(t, ts.URL+"/v1/architectures/"+pr.ID)
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.WearLeveling == nil {
		t.Fatalf("leveled status has no wear_leveling block: %s", body)
	}
	wl := st.WearLeveling
	if wl.Spares != 4 || wl.RemapEpoch != 6 {
		t.Errorf("wear_leveling = (spares %d, epoch %d), want (4, 6)", wl.Spares, wl.RemapEpoch)
	}
	if wl.SparesRemaining < 0 || wl.WearSkew < 0 {
		t.Errorf("wear_leveling reports negative state: %+v", wl)
	}

	plain := provisionGolden(t, ts.URL, 7)
	_, body = getJSON(t, ts.URL+"/v1/architectures/"+plain.ID)
	if strings.Contains(string(body), "wear_leveling") {
		t.Errorf("plain status JSON contains wear_leveling: %s", body)
	}
}

// TestStressEndpoint drives the adversarial stress route: validation with
// named fields, a hot burst that consumes wear without revealing key
// bytes, rotation visible in the response counters, and the wear metrics
// present in the scrape.
func TestStressEndpoint(t *testing.T) {
	s, ts := testServer(t)
	pr := provisionLeveled(t, ts.URL, 42, 4, 3)
	stressURL := ts.URL + "/v1/architectures/" + pr.ID + "/stress"

	// Unknown architecture → 404.
	resp, _ := postJSON(t, ts.URL+"/v1/architectures/arch-999999/stress", StressRequest{Indices: []int{0}})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", resp.StatusCode)
	}

	// A stress body is mandatory — there is no harmless default burst.
	resp, _ = postJSON(t, stressURL, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty body: status %d, want 400", resp.StatusCode)
	}

	// Field validation names the offending field.
	for _, tc := range []struct {
		req   StressRequest
		field string
	}{
		{StressRequest{Indices: nil, Pulses: 1}, "indices"},
		{StressRequest{Indices: []int{-1}}, "indices"},
		{StressRequest{Indices: []int{pr.Design.N}}, "indices"},
		{StressRequest{Indices: []int{0}, Pulses: maxStressPulses + 1}, "pulses"},
		{StressRequest{Indices: []int{0}, Pulses: -3}, "pulses"},
	} {
		resp, body := postJSON(t, stressURL, tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400: %s", tc.req, resp.StatusCode, body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Field != tc.field {
			t.Errorf("%+v: field %q, want %q", tc.req, er.Field, tc.field)
		}
	}

	// A hot targeted burst: wear consumed, no key material in the body.
	var last StressResponse
	for i := 0; i < 8; i++ {
		resp, body := postJSON(t, stressURL, StressRequest{
			TempCelsius: 400, Indices: []int{0, 1}, Pulses: 2,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stress %d: status %d: %s", i, resp.StatusCode, body)
		}
		if strings.Contains(string(body), "secret") || strings.Contains(string(body), goldenSecretHex) {
			t.Fatalf("stress response leaks key material: %s", body)
		}
		if err := json.Unmarshal(body, &last); err != nil {
			t.Fatal(err)
		}
		if last.Pulses != 2 {
			t.Errorf("stress %d: pulses = %d, want 2", i, last.Pulses)
		}
	}
	if last.Stressed != 16 {
		t.Errorf("lifetime stressed = %d, want 16 (8 bursts x 2 pulses)", last.Stressed)
	}
	if last.Remaps == 0 {
		t.Error("sustained hot stress never triggered a wear-leveling rotation")
	}
	if got := s.mStressPulses.Value(); got != 16 {
		t.Errorf("lemonaded_stress_pulses_total = %d, want 16", got)
	}

	// Stress does not consume the access budget or reveal through status.
	_, body := getJSON(t, ts.URL+"/v1/architectures/"+pr.ID)
	var st StatusResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Attempts != 0 {
		t.Errorf("stress consumed %d accesses", st.Attempts)
	}
	if st.WearLeveling == nil || st.WearLeveling.Stressed != 16 {
		t.Errorf("status wear_leveling = %+v, want 16 stressed", st.WearLeveling)
	}

	// The wear metrics are in the scrape, with the per-arch labels.
	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		"lemonaded_stress_pulses_total 16",
		"lemonaded_wearout_remaps_total",
		`lemonaded_spares_remaining{arch="` + pr.ID + `"}`,
		`lemonaded_wear_skew_millis{arch="` + pr.ID + `"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestStressPlainArchitecture: stress works against unleveled hardware
// too (the attack does not require the defense), it just never remaps.
func TestStressPlainArchitecture(t *testing.T) {
	_, ts := testServer(t)
	pr := provisionGolden(t, ts.URL, 42)
	resp, body := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/stress", StressRequest{
		TempCelsius: 400, Indices: []int{0}, Pulses: 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stress plain: status %d: %s", resp.StatusCode, body)
	}
	var sr StressResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Remaps != 0 {
		t.Errorf("plain architecture reported %d remaps", sr.Remaps)
	}
	if sr.Stressed != 3 {
		t.Errorf("stressed = %d, want 3", sr.Stressed)
	}
	// No per-arch wear gauges for unleveled hardware.
	_, body = getJSON(t, ts.URL+"/metrics")
	if strings.Contains(string(body), `lemonaded_spares_remaining{arch="`+pr.ID+`"}`) {
		t.Errorf("plain architecture exported a spares gauge")
	}
}
