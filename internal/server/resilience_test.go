package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lemonade/internal/metrics"
	"lemonade/internal/registry"
	"lemonade/internal/resilience"
)

// switchableStore is a registry.Store that fails on demand — the "disk"
// the breaker test turns off and on. No sleeps anywhere: time is the
// injected clock below.
type switchableStore struct {
	failing atomic.Bool
	calls   atomic.Int64
}

var errStoreDown = errors.New("store down")

type readyTicket struct{}

func (readyTicket) Wait() error { return nil }
func (readyTicket) Done()       {}

func (f *switchableStore) Append([]registry.Record) (registry.Ticket, error) {
	f.calls.Add(1)
	if f.failing.Load() {
		return nil, errStoreDown
	}
	return readyTicket{}, nil
}

// degradedHarness is a full HTTP server whose registry writes through a
// breaker over a switchable store, with an injected clock shared by the
// server and the breaker.
type degradedHarness struct {
	ts      *httptest.Server
	store   *switchableStore
	breaker *resilience.Breaker
	clock   *atomic.Int64
}

func newDegradedHarness(t *testing.T, threshold int, cooldown time.Duration) *degradedHarness {
	t.Helper()
	var clock atomic.Int64
	st := &switchableStore{}
	m := metrics.NewRegistry()
	br := resilience.NewBreaker(resilience.BreakerConfig{
		Store:            st,
		FailureThreshold: threshold,
		Cooldown:         cooldown,
		NowNanos:         clock.Load,
		Metrics:          m,
	})
	reg := registry.NewWithStore(4, br)
	s := New(Config{
		Registry: reg,
		Metrics:  m,
		NowNanos: func() int64 { return clock.Add(1_000_000) },
		Breaker:  br,
		Shedder:  resilience.NewShedder(resilience.ShedderConfig{Metrics: m}),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return &degradedHarness{ts: ts, store: st, breaker: br, clock: &clock}
}

// TestBreakerDegradedModeThroughHTTP drives the full degradation arc at
// the HTTP layer: sustained store failure → 500s → breaker opens → fast
// 503 + Retry-After with reads (status/list/events/metrics/healthz)
// still served → cooldown elapses on the injected clock → half-open
// probe against the healed store → full service restored.
func TestBreakerDegradedModeThroughHTTP(t *testing.T) {
	const threshold = 3
	h := newDegradedHarness(t, threshold, time.Minute)
	pr := provisionGolden(t, h.ts.URL, 42)
	accessURL := h.ts.URL + "/v1/architectures/" + pr.ID + "/access"

	// Sustained store failure: each append fails closed (500, ErrStore)
	// until the threshold trips the breaker.
	h.store.failing.Store(true)
	for i := 0; i < threshold; i++ {
		resp, body := postJSON(t, accessURL, nil)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d (%s), want 500", i, resp.StatusCode, body)
		}
	}
	if got := h.breaker.State(); got != resilience.StateOpen {
		t.Fatalf("breaker state = %v, want open", got)
	}

	// Open: access and provision are refused fast, without touching the
	// store, and with a Retry-After hint.
	calls := h.store.calls.Load()
	resp, body := postJSON(t, accessURL, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded access: status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("degraded access: Retry-After = %q, want a positive hint", ra)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || !er.Retry {
		t.Fatalf("degraded access body not retryable: %s (err %v)", body, err)
	}
	resp, _ = postJSON(t, h.ts.URL+"/v1/architectures", ProvisionRequest{
		Spec: goldenSpec, SecretHex: goldenSecretHex, Seed: 43,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded provision: status %d, want 503", resp.StatusCode)
	}
	if h.store.calls.Load() != calls {
		t.Fatal("degraded mode still touched the store")
	}

	// Degraded READ-ONLY: every read keeps serving.
	for _, path := range []string{
		"/v1/architectures/" + pr.ID,
		"/v1/architectures",
		"/v1/architectures/" + pr.ID + "/events",
		"/metrics",
	} {
		if resp, body := getJSON(t, h.ts.URL+path); resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded read %s: status %d (%s), want 200", path, resp.StatusCode, body)
		}
	}
	resp, body = getJSON(t, h.ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "degraded\n" {
		t.Fatalf("healthz while degraded = %d %q, want 200 \"degraded\"", resp.StatusCode, body)
	}
	resp, body = getJSON(t, h.ts.URL+"/metrics")
	for _, want := range []string{"lemonaded_breaker_state 2", "lemonaded_degraded_mode 1"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics while degraded missing %q", want)
		}
	}
	_ = resp

	// Cooldown elapses on the injected clock; the store has healed. The
	// next access is the half-open probe and succeeds for real.
	h.clock.Add(int64(time.Minute))
	h.store.failing.Store(false)
	resp, body = postJSON(t, accessURL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cooldown probe: status %d (%s), want 200", resp.StatusCode, body)
	}
	if got := h.breaker.State(); got != resilience.StateClosed {
		t.Fatalf("breaker state after probe = %v, want closed", got)
	}
	resp, body = getJSON(t, h.ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz after recovery = %d %q, want 200 \"ok\"", resp.StatusCode, body)
	}
}

// TestBreakerFailedProbeRestartsCooldownThroughHTTP pins the other arc:
// the store is still sick when the probe goes through, so the breaker
// re-opens and subsequent requests are refused without touching it.
func TestBreakerFailedProbeRestartsCooldownThroughHTTP(t *testing.T) {
	h := newDegradedHarness(t, 2, time.Minute)
	pr := provisionGolden(t, h.ts.URL, 42)
	accessURL := h.ts.URL + "/v1/architectures/" + pr.ID + "/access"

	h.store.failing.Store(true)
	for i := 0; i < 2; i++ {
		postDiscard(t, accessURL)
	}
	h.clock.Add(int64(time.Minute))
	// Probe runs, store still down → 500, breaker re-opens.
	resp, _ := postJSON(t, accessURL, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("probe against sick store: status %d, want 500", resp.StatusCode)
	}
	calls := h.store.calls.Load()
	resp, _ = postJSON(t, accessURL, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("after failed probe: status %d, want 503", resp.StatusCode)
	}
	if h.store.calls.Load() != calls {
		t.Fatal("store touched during restarted cooldown")
	}
}

func postDiscard(t *testing.T, url string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

// TestAccessShedsUnderOverload pins the shedder's HTTP mapping: with a
// single slot held and no queue, the next access is shed with 503 +
// Retry-After, and the shed counter shows up in /metrics.
func TestAccessShedsUnderOverload(t *testing.T) {
	var ticks atomic.Int64
	m := metrics.NewRegistry()
	shed := resilience.NewShedder(resilience.ShedderConfig{MaxConcurrent: 1, MaxQueue: -1, Metrics: m})
	s := New(Config{Metrics: m, NowNanos: func() int64 { return ticks.Add(1_000_000) }, Shedder: shed})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	pr := provisionGolden(t, ts.URL, 42)

	// Occupy the only slot from outside a request; the next access must
	// be shed without consuming wearout.
	release, err := shed.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded access: status %d (%s), want 503", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("shed response missing Retry-After")
	}
	release()

	// With the slot free the same request succeeds — nothing was consumed
	// by the shed attempt.
	resp, body = postJSON(t, ts.URL+"/v1/architectures/"+pr.ID+"/access", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-shed access: status %d (%s), want 200", resp.StatusCode, body)
	}
	var ar AccessResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (shed request must not consume wearout)", ar.Attempts)
	}

	_, metricsBody := getJSON(t, ts.URL+"/metrics")
	if !strings.Contains(string(metricsBody), "lemonaded_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", metricsBody)
	}
}
