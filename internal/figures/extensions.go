package figures

// Extension experiments beyond the paper's published exhibits: ablations
// of design choices the paper makes implicitly (continuous-time targets,
// the k-fraction, module replication, the series-chain rejection) and the
// fabrication-cost trade-off its introduction raises but never quantifies.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"lemonade/internal/attack"
	"lemonade/internal/baselines"
	"lemonade/internal/connection"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/fabrication"
	"lemonade/internal/nems"
	"lemonade/internal/password"
	"lemonade/internal/registry"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// AblationContinuousT compares the paper's continuous-time per-copy
// targets with physically-integer targets: integer quantization can cost
// an order of magnitude when a k-fraction lands near an integer access
// boundary.
func AblationContinuousT() Table {
	t := Table{
		ID:     "Ablation A1",
		Title:  "Continuous vs integer per-copy targets (connection, k=10%·n)",
		Header: []string{"(α, β)", "integer-T devices", "continuous-T devices", "ratio"},
	}
	for _, p := range []struct{ alpha, beta float64 }{
		{12, 8}, {14, 8}, {16, 8}, {20, 8}, {14, 12},
	} {
		intSpec := connectionSpec(p.alpha, p.beta, 0.10, reliability.DefaultCriteria)
		intSpec.ContinuousT = false
		contSpec := connectionSpec(p.alpha, p.beta, 0.10, reliability.DefaultCriteria)
		intCell, contCell, ratio := "infeasible", "infeasible", "-"
		di, errI := dse.Explore(intSpec)
		dc, errC := dse.Explore(contSpec)
		if errI == nil {
			intCell = fmt.Sprintf("%d", di.TotalDevices)
		}
		if errC == nil {
			contCell = fmt.Sprintf("%d", dc.TotalDevices)
		}
		if errI == nil && errC == nil {
			ratio = fmt.Sprintf("%.2f", float64(di.TotalDevices)/float64(dc.TotalDevices))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("(%g, %g)", p.alpha, p.beta), intCell, contCell, ratio,
		})
	}
	t.Notes = "integer targets are physically exact but quantize the design space; the paper's smooth curves imply continuous targets"
	return t
}

// AblationKFraction sweeps the encoding threshold fraction at α=14, β=8,
// extending the paper's {10, 20, 30}% to a full curve.
func AblationKFraction() Figure {
	f := Figure{
		ID:     "Ablation A2",
		Title:  "Encoding threshold fraction sweep (connection, α=14, β=8)",
		XLabel: "k/n",
		YLabel: "total NEMS switches",
	}
	s := Series{Name: "total devices"}
	for _, kf := range []float64{0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60} {
		d, err := dse.Explore(connectionSpec(14, 8, kf, reliability.DefaultCriteria))
		if err != nil {
			continue
		}
		s.X = append(s.X, kf)
		s.Y = append(s.Y, float64(d.TotalDevices))
	}
	f.Series = []Series{s}
	f.Notes = "§4.3.2: gains flatten beyond k=20–30%; very high fractions stretch the window again"
	return f
}

// AblationReplication tabulates §4.1.5's M-way replication planning for a
// range of daily-usage requirements.
func AblationReplication() Table {
	t := Table{
		ID:     "Ablation A3",
		Title:  "M-way replication plans (5-year lifetime, α=14, β=8 module)",
		Header: []string{"daily usage", "modules M", "migrate every", "total devices"},
	}
	design, err := dse.Explore(connectionSpec(14, 8, 0.10, reliability.DefaultCriteria))
	if err != nil {
		t.Rows = append(t.Rows, []string{"error", err.Error(), "", ""})
		return t
	}
	fiveYears := 5 * 365 * 24 * time.Hour
	for _, daily := range []int{50, 100, 250, 500, 1000} {
		plan, err := connection.PlanMWay(design, daily, fiveYears)
		if err != nil {
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", daily),
			fmt.Sprintf("%d", plan.Modules),
			fmt.Sprintf("%.1f months", plan.MigrateEvery.Hours()/24/30),
			fmt.Sprintf("%d", plan.TotalDevices),
		})
	}
	t.Notes = "paper's example: 500/day needs M=10 with a re-encryption every 6 months"
	return t
}

// SeriesRejection quantifies §4.1.2's rejection of series chains: the
// number of chained devices needed to scale the effective α down by 2x
// explodes as y^β.
func SeriesRejection() Table {
	t := Table{
		ID:     "Ablation A4",
		Title:  "Series-chain blowup: devices to halve effective α (Eq 5)",
		Header: []string{"β", "devices for α/2", "devices for α/4"},
	}
	for _, beta := range []float64{4, 8, 12, 16} {
		d := weibull.MustNew(20, beta)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", beta),
			fmt.Sprintf("%.0f", structure.SeriesDevicesForAlphaScale(d, 2)),
			fmt.Sprintf("%.0f", structure.SeriesDevicesForAlphaScale(d, 4)),
		})
	}
	t.Notes = "β=12 needs 4096 chained devices per halving — the explosion that makes the paper discard Fig 2b"
	return t
}

// FabricationTradeoff quantifies the intro's third question: process
// consistency (β) vs architectural redundancy, under the synthetic cost
// model of internal/fabrication.
func FabricationTradeoff() Table {
	t := Table{
		ID:     "Extension E1",
		Title:  "Fabrication vs architecture cost (connection, k=10%·n, synthetic pricing)",
		Header: []string{"β", "total devices", "device cost", "area cost", "total"},
	}
	spec := connectionSpec(14, 8, 0.10, reliability.DefaultCriteria)
	points, err := fabrication.Sweep(spec, fabrication.DefaultCostModel, []float64{4, 6, 8, 10, 12, 14, 16})
	if err != nil {
		t.Rows = append(t.Rows, []string{"error", err.Error(), "", "", ""})
		return t
	}
	for _, p := range points {
		if !p.Feasible {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", p.Beta), "infeasible", "", "", ""})
			continue
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", p.Beta),
			fmt.Sprintf("%d", p.TotalDevices),
			fmt.Sprintf("%.3f", p.DeviceCost),
			fmt.Sprintf("%.3f", p.AreaCost),
			fmt.Sprintf("%.3f", p.TotalCost),
		})
	}
	if opt, ok := fabrication.Optimum(points); ok {
		t.Notes = fmt.Sprintf("cost-optimal process: β=%g (%d devices, total %.3f)",
			opt.Beta, opt.TotalDevices, opt.TotalCost)
	}
	return t
}

// InvasiveAttack quantifies the §4.2 "buried key" argument: delayering
// success probability vs burial depth for the paper's 141-switch
// structure, across per-layer share-survival assumptions.
func InvasiveAttack() Figure {
	f := Figure{
		ID:     "Extension E2",
		Title:  "Invasive (delayering) attack vs burial depth (n=141, k=15)",
		XLabel: "share burial depth (layers)",
		YLabel: "P(adversary recovers secret)",
	}
	for _, surv := range []float64{0.9, 0.8, 0.7, 0.5} {
		s := Series{Name: fmt.Sprintf("per-layer survival %.0f%%", surv*100)}
		for depth := 0; depth <= 16; depth++ {
			layout := attack.ChipLayout{Layers: 17, ShareDepth: depth, SurvivalPerLayer: surv}
			p, err := attack.DelayeringSuccess(layout, 141, 15)
			if err != nil {
				continue
			}
			s.X = append(s.X, float64(depth))
			s.Y = append(s.Y, p)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = fmt.Sprintf("minimum depth for <1e-6 at 70%% survival: %d layers",
		attack.MinDepthFor(1e-6, 0.7, 141, 15, 30))
	return f
}

// wearAttackResult is one run of the targeted-wearout workload: the
// attacked architecture's observable security posture at lockout.
type wearAttackResult struct {
	reveals        int     // legitimate accesses that yielded the secret (min-use under attack)
	firstTransient int     // op index of the first degradation signal, -1 if none
	lockout        int     // op index of lockout, -1 if the run cap hit first
	remaps         uint64  // wear-leveling rotations the defense performed
	peakSkew       float64 // worst wear skew observed before lockout
}

// wearAttackRun drives a deterministic attacked workload through the
// registry's durable path: each round is one adversarial stress burst
// (hot/cold cycled, concentrated on shares 0–2) followed by one
// legitimate room-temperature access, until lockout. Sequential and
// fully seeded, so the run is bit-identical across invocations.
func wearAttackRun(design dse.Design, spares int) (wearAttackResult, error) {
	res := wearAttackResult{firstTransient: -1, lockout: -1}
	secret := []byte("extension-e4-key")
	var (
		arch *core.Architecture
		err  error
	)
	if spares > 0 {
		arch, err = core.BuildLeveled(design, secret, core.Leveling{Spares: spares, Epoch: 8}, rng.New(4242))
	} else {
		arch, err = core.Build(design, secret, rng.New(4242))
	}
	if err != nil {
		return res, err
	}
	e, err := registry.New(1).Provision(arch, 4242, secret)
	if err != nil {
		return res, err
	}
	//lemonvet:allow ctxflow offline figure generator: no caller ctx exists and the run must not be cancellable mid-trajectory (bit-identical tables)
	ctx := context.Background()
	ops := 0
	for round := 0; res.lockout < 0 && round < 5000; round++ {
		// Attacker burst: 400 °C heat-gun phases alternating with −40 °C
		// cold soaks in blocks of four rounds, two pulses per share.
		temp := 400.0
		if (round/4)%2 == 1 {
			temp = -40
		}
		ops++
		_, _ = e.Stress(ctx, nems.Environment{TempCelsius: temp}, []int{0, 1, 2}, 2)
		if s := e.Arch.WearSkew(); s > res.peakSkew {
			res.peakSkew = s
		}
		// The legitimate owner uses the device normally.
		ops++
		_, err := e.Access(ctx, nems.RoomTemp)
		switch {
		case err == nil:
			res.reveals++
		case errors.Is(err, core.ErrExhausted):
			res.lockout = ops
		case errors.Is(err, core.ErrTransient), errors.Is(err, core.ErrDecodeFailed):
			if res.firstTransient < 0 {
				res.firstTransient = ops
			}
		default:
			return res, err
		}
	}
	res.remaps = e.Arch.Remaps()
	return res, nil
}

// WearLevelingDefense — Extension E4: the targeted-wearout attack of the
// live daemon (hot/cold cycling concentrated on chosen shares) against
// identically-designed architectures with growing spare complements. The
// unleveled column is the attack succeeding — the owner's min-use
// guarantee collapses; the leveled columns show WoLFRaM-style rotation
// (arXiv:2010.02825) absorbing the same attack budget: more reveals,
// tighter wear skew, a wider warning window.
func WearLevelingDefense() Table {
	t := Table{
		ID:     "Extension E4",
		Title:  "Targeted wearout attack vs wear-leveling spares (α=6, β=8, LAB 30, epoch 8)",
		Header: []string{"spares", "reveals (min-use)", "first transient op", "lockout op", "window", "remaps", "peak wear skew"},
	}
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(6, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         30,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Rows = append(t.Rows, []string{"error", err.Error(), "", "", "", "", ""})
		return t
	}
	var unleveled, best wearAttackResult
	for _, spares := range []int{0, 2, 4, 8} {
		res, err := wearAttackRun(design, spares)
		if err != nil {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", spares), "error: " + err.Error(), "", "", "", "", ""})
			continue
		}
		cell := func(v int) string {
			if v < 0 {
				return "-"
			}
			return fmt.Sprintf("%d", v)
		}
		window := "-"
		if res.firstTransient >= 0 && res.lockout >= 0 {
			window = fmt.Sprintf("%d", res.lockout-res.firstTransient)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", spares),
			fmt.Sprintf("%d", res.reveals),
			cell(res.firstTransient),
			cell(res.lockout),
			window,
			fmt.Sprintf("%d", res.remaps),
			fmt.Sprintf("%.2f", res.peakSkew),
		})
		if spares == 0 {
			unleveled = res
		}
		best = res
	}
	t.Notes = fmt.Sprintf(
		"designed min-use %d; under attack 8 spares yield %d reveals vs %d unleveled, with %.1fx tighter peak skew and a wider warning window",
		design.GuaranteedMinAccesses(), best.reveals, unleveled.reveals,
		safeRatio(unleveled.peakSkew, best.peakSkew))
	return t
}

// safeRatio is a/b guarding the b=0 edge for display.
func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// DefenseComparison executes the §8 related-work taxonomy: each defense
// mechanism is run against the attack that defines its weakness, and the
// observed outcome fills the table. "attempt budget" is what a patient
// attacker with physical access ultimately gets.
func DefenseComparison() Table {
	t := Table{
		ID:     "Extension E3",
		Title:  "Defense mechanisms vs a patient physical attacker (executed, not asserted)",
		Header: []string{"mechanism", "bound type", "needs trigger", "observed attempt budget"},
	}
	r := rng.New(8383)

	// 1. Software retry counter, bypassed by NAND mirroring.
	soft := attack.NewSoftwareCounterDevice(password.PasswordString(1<<30), 10)
	_, softGuesses := attack.MirrorBruteForce(soft, 50_000)
	t.Rows = append(t.Rows, []string{
		"software counter (iOS-style)", "attempts (bypassable)", "no",
		fmt.Sprintf("unbounded (mirroring reached %d and counting)", softGuesses),
	})

	// 2. TARDIS-style decay throttle: patient attacker waits out cooldowns.
	tardis := baselines.NewTARDIS(4096, time.Hour, 30*time.Minute, r.Derive("tardis"))
	attempts := 0
	for i := 0; i < 200; i++ {
		tardis.Advance(time.Hour)
		if tardis.Attempt() {
			attempts++
		}
	}
	t.Rows = append(t.Rows, []string{
		"SRAM-decay throttle (TARDIS)", "rate per time", "no",
		fmt.Sprintf("unbounded (%d attempts in %d simulated hours)", attempts, 200),
	})

	// 3. Remotely triggered self-destruction with a blocked channel.
	chip := baselines.NewSelfDestructChip([]byte("secret"))
	chip.BlockChannel()
	chip.Trigger()
	reads := 0
	for i := 0; i < 10_000; i++ {
		if _, err := chip.Read(); err == nil {
			reads++
		}
	}
	t.Rows = append(t.Rows, []string{
		"triggered self-destruct chip", "none without trigger", "YES",
		fmt.Sprintf("unbounded (%d reads with the trigger channel blocked)", reads),
	})

	// 4. Wearout architecture: drive it to death.
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         100,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err == nil {
		if dep, err := attack.Depletion(design, r.Derive("wearout")); err == nil {
			t.Rows = append(t.Rows, []string{
				"wearout architecture (this paper)", "total attempts", "no",
				fmt.Sprintf("bounded: locked after %d attempts (designed ≤%d)",
					dep.AttemptsToLock, design.MaxAllowedAccesses()+2*design.Copies),
			})
		}
	}
	t.Notes = "PUFs are omitted from the budget column: their gap is unshareability (two chips cannot hold the same pad), executed in the baselines tests"
	return t
}
