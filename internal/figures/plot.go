package figures

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure as an ASCII chart so the *shape* of a
// reproduced curve — who wins, where the knee is, exponential vs linear —
// can be inspected straight from a terminal. Log-scale is applied to the
// y axis automatically when the data spans more than three decades.
// width and height are the plot area in characters (sensible minimums are
// enforced).
func (f Figure) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var xmin, xmax, ymin, ymax float64
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) || math.IsInf(s.Y[i], 0) {
				continue
			}
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if first {
		return f.ID + ": (no data)\n"
	}
	logY := ymin > 0 && ymax/math.Max(ymin, math.SmallestNonzeroFloat64) > 1e3
	ty := func(y float64) float64 {
		if logY {
			return math.Log10(y)
		}
		return y
	}
	pymin, pymax := ty(ymin), ty(ymax)
	if pymax == pymin { //lemonvet:allow floateq exact equality is the degenerate range being guarded against
		pymax = pymin + 1
	}
	if xmax == xmin { //lemonvet:allow floateq exact equality is the degenerate range being guarded against
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+o#x%@&"
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for i := range s.X {
			y := s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) || (logY && y <= 0) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := int(math.Round((ty(y) - pymin) / (pymax - pymin) * float64(height-1)))
			row = height - 1 - row
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	scale := ""
	if logY {
		scale = " (log y)"
	}
	fmt.Fprintf(&b, "%s — %s%s\n", f.ID, f.Title, scale)
	fmt.Fprintf(&b, "%11.4g ┤%s\n", ymax, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%11s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%11.4g ┤%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&b, "%11s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%12s%-*g%*g\n", "", width/2, xmin, width-width/2, xmax)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}
