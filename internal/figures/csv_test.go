package figures

import (
	"strings"
	"testing"
)

func TestFigureCSV(t *testing.T) {
	f := Figure{
		ID: "Fig X", XLabel: "x", YLabel: "y",
		Series: []Series{{Name: `has,comma "and quotes"`, X: []float64{1, 2}, Y: []float64{3.5, 4.25}}},
	}
	out := f.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "figure,series,x,y") {
		t.Errorf("header: %q", lines[0])
	}
	// the comma-containing series name must be quoted, not split
	if !strings.Contains(lines[1], `"has,comma ""and quotes"""`) {
		t.Errorf("CSV escaping broken: %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], "2,4.25") {
		t.Errorf("row 2: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tab := Table{ID: "Table X", Header: []string{"a", "b"}, Rows: [][]string{{"1", "two,three"}}}
	out := tab.CSV()
	if !strings.Contains(out, `"two,three"`) {
		t.Errorf("table CSV escaping broken: %q", out)
	}
	if !strings.HasPrefix(out, "table,a,b") {
		t.Errorf("table header: %q", out)
	}
}

func TestSlug(t *testing.T) {
	cases := map[string]string{
		"Fig 4a":       "fig-4a",
		"Table 1":      "table-1",
		"§6.5.2":       "6-5-2",
		"Ablation A1":  "ablation-a1",
		"Extension E1": "extension-e1",
	}
	for in, want := range cases {
		if got := Slug(in); got != want {
			t.Errorf("Slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPlot(t *testing.T) {
	f := Figure{
		ID: "Fig T", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "linear", X: []float64{0, 1, 2, 3}, Y: []float64{1, 2, 3, 4}},
			{Name: "steep", X: []float64{0, 1, 2, 3}, Y: []float64{1, 10, 100, 10000}},
		},
	}
	out := f.Plot(40, 10)
	if !strings.Contains(out, "(log y)") {
		t.Error("4-decade spread should trigger log scale")
	}
	if !strings.Contains(out, "linear") || !strings.Contains(out, "steep") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("marks missing")
	}
	// small linear figure: no log scale
	lin := Figure{ID: "L", Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{1, 2}}}}
	if strings.Contains(lin.Plot(30, 6), "(log y)") {
		t.Error("small spread should stay linear")
	}
	// degenerate cases must not panic
	empty := Figure{ID: "E"}
	if !strings.Contains(empty.Plot(30, 6), "no data") {
		t.Error("empty figure should say so")
	}
	flat := Figure{ID: "F", Series: []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	if flat.Plot(3, 2) == "" {
		t.Error("flat/min-size plot should render")
	}
}
