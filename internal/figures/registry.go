package figures

// Exhibit is one regenerable paper (or extension) exhibit: an ID and a
// generator producing its renderable blocks.
type Exhibit struct {
	ID  string
	Gen func() []Renderable
}

// Renderable is anything an exhibit produces — Figure or Table.
type Renderable interface {
	Render() string
	CSV() string
}

// Exhibits returns the complete registry, in presentation order: every
// table and figure of the paper's evaluation, the machine-checked
// summary, then this repo's ablation and extension exhibits.
func Exhibits() []Exhibit {
	one := func(r Renderable) []Renderable { return []Renderable{r} }
	return []Exhibit{
		{"Fig 1", func() []Renderable { return one(Figure1()) }},
		{"Fig 3a", func() []Renderable { return one(Figure3a()) }},
		{"Fig 3b", func() []Renderable { return one(Figure3b()) }},
		{"Fig 3c", func() []Renderable { return one(Figure3c()) }},
		{"Fig 4a", func() []Renderable { return one(Figure4a()) }},
		{"Fig 4b", func() []Renderable { return one(Figure4b()) }},
		{"Fig 4c", func() []Renderable {
			f, t := Figure4c()
			return []Renderable{f, t}
		}},
		{"Fig 4d", func() []Renderable { return one(Figure4d()) }},
		{"Table 1", func() []Renderable { return one(Table1()) }},
		{"Fig 5a", func() []Renderable { return one(Figure5a()) }},
		{"Fig 5b", func() []Renderable { return one(Figure5b()) }},
		{"Fig 8", func() []Renderable {
			r, a := Figure8()
			return []Renderable{r, a}
		}},
		{"Fig 9", func() []Renderable {
			r, a := Figure9()
			return []Renderable{r, a}
		}},
		{"Fig 10", func() []Renderable { return one(Figure10()) }},
		{"§6.5.2", func() []Renderable { return one(OTPLatencyEnergy()) }},
		{"§4.3.2", func() []Renderable { return one(ConnectionEnergyLatency()) }},
		{"Abstract", func() []Renderable { return one(HeadlineReduction()) }},
		{"Summary", func() []Renderable { return one(PaperComparisonTable()) }},
		{"Ablation A1", func() []Renderable { return one(AblationContinuousT()) }},
		{"Ablation A2", func() []Renderable { return one(AblationKFraction()) }},
		{"Ablation A3", func() []Renderable { return one(AblationReplication()) }},
		{"Ablation A4", func() []Renderable { return one(SeriesRejection()) }},
		{"Extension E1", func() []Renderable { return one(FabricationTradeoff()) }},
		{"Extension E2", func() []Renderable { return one(InvasiveAttack()) }},
		{"Extension E3", func() []Renderable { return one(DefenseComparison()) }},
		{"Extension E4", func() []Renderable { return one(WearLevelingDefense()) }},
	}
}
