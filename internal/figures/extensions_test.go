package figures

import (
	"strings"
	"testing"
)

func TestAblationContinuousT(t *testing.T) {
	tab := AblationContinuousT()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// continuous targets should never be worse; at least one point should
	// show a material integer-quantization penalty (>1.5x)
	sawPenalty := false
	for _, row := range tab.Rows {
		if row[3] == "-" {
			continue
		}
		var ratio float64
		if _, err := sscan(row[3], &ratio); err != nil {
			t.Fatal(err)
		}
		if ratio < 0.99 {
			t.Errorf("continuous-T worse than integer-T at %s: ratio %g", row[0], ratio)
		}
		if ratio > 1.5 {
			sawPenalty = true
		}
	}
	if !sawPenalty {
		t.Error("expected at least one point with a material quantization penalty")
	}
}

func TestAblationKFraction(t *testing.T) {
	f := AblationKFraction()
	s := f.Series[0]
	if len(s.X) < 6 {
		t.Fatalf("too few feasible k-fractions: %d", len(s.X))
	}
	// the curve flattens: moving 10% → 30% changes far less than 2% → 10%
	y := func(x float64) float64 {
		for i := range s.X {
			if s.X[i] == x {
				return s.Y[i]
			}
		}
		return -1
	}
	if y(0.02) > 0 && y(0.10) > 0 && y(0.30) > 0 {
		early := y(0.02) / y(0.10)
		late := y(0.10) / y(0.30)
		if late > early {
			t.Errorf("returns should diminish: 2→10%% gain %.2fx, 10→30%% gain %.2fx", early, late)
		}
	}
}

func TestAblationReplication(t *testing.T) {
	tab := AblationReplication()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	// 500/day must be the paper's M=10
	for _, row := range tab.Rows {
		if row[0] == "500" && row[1] != "10" {
			t.Errorf("500/day plan has M=%s, paper says 10", row[1])
		}
	}
	// M grows with usage
	prev := 0.0
	for _, row := range tab.Rows {
		var m float64
		if _, err := sscan(row[1], &m); err != nil {
			t.Fatal(err)
		}
		if m < prev {
			t.Error("M should grow with daily usage")
		}
		prev = m
	}
}

func TestSeriesRejection(t *testing.T) {
	tab := SeriesRejection()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// β=12 halving needs 4096 devices (2^12)
	for _, row := range tab.Rows {
		if row[0] == "12" && row[1] != "4096" {
			t.Errorf("β=12 halving = %s, want 4096", row[1])
		}
	}
}

func TestFabricationTradeoff(t *testing.T) {
	tab := FabricationTradeoff()
	if len(tab.Rows) != 7 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Notes, "cost-optimal process") {
		t.Errorf("missing optimum note: %q", tab.Notes)
	}
	// device counts fall with β throughout
	prev := 1e18
	for _, row := range tab.Rows {
		var dev float64
		if _, err := sscan(row[1], &dev); err != nil {
			t.Fatal(err)
		}
		if dev > prev {
			t.Errorf("device count rose with β at row %v", row)
		}
		prev = dev
	}
}

func TestInvasiveAttack(t *testing.T) {
	f := InvasiveAttack()
	if len(f.Series) != 4 {
		t.Fatalf("series: %d", len(f.Series))
	}
	for _, s := range f.Series {
		// monotone decreasing in depth, starting at 1 (surface = exposed)
		if s.Y[0] != 1 {
			t.Errorf("%s: surface probability should be 1, got %g", s.Name, s.Y[0])
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-12 {
				t.Fatalf("%s: probability rose with depth", s.Name)
			}
		}
	}
	// fragile layers (50%) must kill the attack far shallower than robust
	// ones (90%)
	depthTo := func(si int) int {
		for i, y := range f.Series[si].Y {
			if y < 1e-6 {
				return i
			}
		}
		return 1 << 30
	}
	if depthTo(3) >= depthTo(0) {
		t.Error("fragile layers should need shallower burial than robust ones")
	}
	if !strings.Contains(f.Notes, "minimum depth") {
		t.Errorf("notes: %q", f.Notes)
	}
}

func TestWearLevelingDefense(t *testing.T) {
	tab := WearLevelingDefense()
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 spare levels, got %d: %v", len(tab.Rows), tab.Rows)
	}
	parse := func(row []string) (reveals, window float64, remaps, skew float64) {
		for i, dst := range map[int]*float64{1: &reveals, 4: &window, 5: &remaps, 6: &skew} {
			if row[i] == "-" {
				*dst = -1
				continue
			}
			if _, err := sscan(row[i], dst); err != nil {
				t.Fatalf("row %v col %d: %v", row, i, err)
			}
		}
		return
	}
	baseReveals, baseWindow, baseRemaps, baseSkew := parse(tab.Rows[0])
	if tab.Rows[0][0] != "0" {
		t.Fatalf("first row should be unleveled: %v", tab.Rows[0])
	}
	if baseRemaps != 0 {
		t.Errorf("unleveled row reports %g remaps", baseRemaps)
	}
	// The acceptance invariants: every leveled variant holds min-use at
	// least as high as the attacked unleveled device, with strictly
	// tighter peak wear skew and rotations actually performed.
	for _, row := range tab.Rows[1:] {
		reveals, window, remaps, skew := parse(row)
		if reveals < baseReveals {
			t.Errorf("spares=%s: min-use %g under attack below unleveled %g", row[0], reveals, baseReveals)
		}
		if skew >= baseSkew {
			t.Errorf("spares=%s: peak skew %g not strictly tighter than unleveled %g", row[0], skew, baseSkew)
		}
		if remaps == 0 {
			t.Errorf("spares=%s: defense never rotated", row[0])
		}
		if window >= 0 && baseWindow >= 0 && window < baseWindow {
			t.Errorf("spares=%s: warning window %g narrower than unleveled %g", row[0], window, baseWindow)
		}
	}
	// The experiment is deterministic: regenerating yields the identical
	// table, bit for bit.
	if again := WearLevelingDefense(); again.Render() != tab.Render() {
		t.Error("Extension E4 is not bit-identical across regenerations")
	}
}

func TestDefenseComparison(t *testing.T) {
	tab := DefenseComparison()
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 mechanisms, got %d", len(tab.Rows))
	}
	// the first three mechanisms must read "unbounded"; the wearout row
	// must read "bounded"
	for i, row := range tab.Rows[:3] {
		if !strings.Contains(row[3], "unbounded") {
			t.Errorf("row %d (%s) should be unbounded: %q", i, row[0], row[3])
		}
	}
	last := tab.Rows[3]
	if !strings.Contains(last[0], "wearout") || !strings.Contains(last[3], "bounded:") {
		t.Errorf("wearout row wrong: %v", last)
	}
	// only the triggered chip needs a trigger
	for i, row := range tab.Rows {
		wantTrigger := i == 2
		if (row[2] == "YES") != wantTrigger {
			t.Errorf("trigger column wrong at row %d: %v", i, row)
		}
	}
}
