// Package figures regenerates every table and figure of the paper's
// evaluation as plain data (series of points or rows of cells). The same
// generators back the cmd/experiments binary, the root benchmark suite and
// EXPERIMENTS.md: one generator per paper exhibit, named after it.
package figures

import (
	"fmt"
	"strings"
)

// Series is one named curve: y(x) over the sweep variable.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one regenerated paper figure.
type Figure struct {
	ID     string // e.g. "Fig 4a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  string
}

// Table is one regenerated paper table (or scalar-results exhibit).
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  string
}

// Render formats the figure's series as aligned text columns.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  series %q:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "    %12.6g  %14.8g\n", s.X[i], s.Y[i])
		}
	}
	if f.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", f.Notes)
	}
	return b.String()
}

// Render formats the table as aligned text.
func (t Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "  %-*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}
