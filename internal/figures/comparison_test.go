package figures

import "testing"

// TestPaperComparisonAllWithinTolerance is the reproduction's regression
// guard: every headline quantity must stay within its tolerance band of
// the paper's published value.
func TestPaperComparisonAllWithinTolerance(t *testing.T) {
	rows := PaperComparison()
	if len(rows) < 14 {
		t.Fatalf("expected at least 14 comparison rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Within() {
			t.Errorf("%s / %s: measured %.4g vs paper %.4g (ratio %.3f, tol 10^±%.2f)",
				r.Exhibit, r.Quantity, r.Measured, r.Paper, r.Ratio(), r.Tolerance)
		}
	}
}

func TestComparisonRowHelpers(t *testing.T) {
	exact := ComparisonRow{Paper: 10, Measured: 10, Tolerance: 0}
	if !exact.Within() || exact.Ratio() != 1 {
		t.Error("exact row should pass")
	}
	off := ComparisonRow{Paper: 10, Measured: 25, Tolerance: 0.3}
	if off.Within() {
		t.Error("2.5x should exceed a 2x band")
	}
	in := ComparisonRow{Paper: 10, Measured: 18, Tolerance: 0.3}
	if !in.Within() {
		t.Error("1.8x should pass a 2x band")
	}
	neg := ComparisonRow{Paper: 10, Measured: -1, Tolerance: 1}
	if neg.Within() {
		t.Error("negative measured should fail")
	}
	zeroBoth := ComparisonRow{Paper: 0, Measured: 0, Tolerance: 0}
	if !zeroBoth.Within() {
		t.Error("0 vs 0 should pass")
	}
	tab := PaperComparisonTable()
	if len(tab.Rows) != len(PaperComparison()) {
		t.Error("table should mirror the rows")
	}
	if tab.Render() == "" || tab.CSV() == "" {
		t.Error("renderings empty")
	}
}
