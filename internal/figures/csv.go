package figures

import (
	"encoding/csv"
	"strconv"
	"strings"
)

// CSV renders the figure as CSV: one row per (series, x, y) triple, with a
// header. Safe for spreadsheet import and the usual plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{"figure", "series", f.XLabel, f.YLabel})
	for _, s := range f.Series {
		for i := range s.X {
			_ = w.Write([]string{
				f.ID,
				s.Name,
				strconv.FormatFloat(s.X[i], 'g', -1, 64),
				strconv.FormatFloat(s.Y[i], 'g', -1, 64),
			})
		}
	}
	w.Flush()
	return b.String()
}

// CSV renders the table as CSV.
func (t Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(append([]string{"table"}, t.Header...))
	for _, row := range t.Rows {
		_ = w.Write(append([]string{t.ID}, row...))
	}
	w.Flush()
	return b.String()
}

// Slug returns a filesystem-friendly name for the exhibit ID
// ("Fig 4a" → "fig-4a").
func Slug(id string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(id) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case b.Len() > 0 && !strings.HasSuffix(b.String(), "-"):
			b.WriteByte('-')
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
