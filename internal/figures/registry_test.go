package figures

import (
	"strings"
	"testing"
)

func TestRegistryStructure(t *testing.T) {
	ex := Exhibits()
	if len(ex) < 25 {
		t.Fatalf("registry has %d exhibits, expected 25+", len(ex))
	}
	seenID := map[string]bool{}
	seenSlug := map[string]bool{}
	for _, e := range ex {
		if e.ID == "" || e.Gen == nil {
			t.Fatalf("malformed exhibit: %+v", e)
		}
		if seenID[e.ID] {
			t.Errorf("duplicate exhibit ID %q", e.ID)
		}
		seenID[e.ID] = true
		slug := Slug(e.ID)
		if slug == "" {
			t.Errorf("empty slug for %q", e.ID)
		}
		if seenSlug[slug] {
			t.Errorf("slug collision for %q", e.ID)
		}
		seenSlug[slug] = true
	}
}

func TestEveryExhibitRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full exhibit regeneration is slow")
	}
	for _, e := range Exhibits() {
		e := e
		t.Run(Slug(e.ID), func(t *testing.T) {
			t.Parallel()
			blocks := e.Gen()
			if len(blocks) == 0 {
				t.Fatal("no blocks")
			}
			for _, b := range blocks {
				text := b.Render()
				if !strings.Contains(text, e.ID) {
					t.Errorf("rendered block does not carry its ID %q", e.ID)
				}
				if len(b.CSV()) == 0 {
					t.Error("empty CSV")
				}
			}
		})
	}
}
