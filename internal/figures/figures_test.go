package figures

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestFigure1Shapes(t *testing.T) {
	f := Figure1()
	if len(f.Series) != 6 {
		t.Fatalf("expected 6 series (pdf+rel × 3 betas), got %d", len(f.Series))
	}
	// reliability curves start at 1 and end near 0
	for _, s := range f.Series {
		if !strings.HasPrefix(s.Name, "Reliability") {
			continue
		}
		if s.Y[0] != 1 {
			t.Errorf("%s should start at 1, got %g", s.Name, s.Y[0])
		}
		if s.Y[len(s.Y)-1] > 0.4 {
			t.Errorf("%s should have decayed by 2e6 cycles, got %g", s.Name, s.Y[len(s.Y)-1])
		}
	}
	if f.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure3aWindow(t *testing.T) {
	f := Figure3a()
	// the note records R(1)≈1, R(2)≈0
	if !strings.Contains(f.Notes, "R(1)=0.99") && !strings.Contains(f.Notes, "R(1)=1.00") {
		t.Errorf("unexpected note: %s", f.Notes)
	}
}

func TestFigure3bMonotoneInN(t *testing.T) {
	f := Figure3b()
	if len(f.Series) != 4 {
		t.Fatalf("expected 4 series, got %d", len(f.Series))
	}
	// at every x, more devices → higher reliability
	for i := range f.Series[0].X {
		for j := 1; j < len(f.Series); j++ {
			if f.Series[j].Y[i]+1e-12 < f.Series[j-1].Y[i] {
				t.Fatalf("series %d below series %d at x=%g", j, j-1, f.Series[0].X[i])
			}
		}
	}
}

func TestFigure3cOrdering(t *testing.T) {
	f := Figure3c()
	if len(f.Series) != 5 {
		t.Fatalf("expected 5 series, got %d", len(f.Series))
	}
	// higher k → lower reliability at every x
	for i := range f.Series[0].X {
		for j := 1; j < len(f.Series); j++ {
			if f.Series[j].Y[i] > f.Series[j-1].Y[i]+1e-12 {
				t.Fatalf("k ordering violated at x=%g", f.Series[0].X[i])
			}
		}
	}
}

func TestFigure4aExponentialInAlpha(t *testing.T) {
	f := Figure4a()
	if len(f.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range f.Series {
		if len(s.X) < 5 {
			t.Errorf("series %s mostly infeasible (%d points)", s.Name, len(s.X))
			continue
		}
		// exponential sensitivity: low-β curves explode (>100x over the
		// sweep); even the most consistent devices (β=16) grow >20x
		want := 100.0
		if strings.Contains(s.Name, "β=14") || strings.Contains(s.Name, "β=16") {
			want = 20
		}
		if s.Y[len(s.Y)-1] < want*s.Y[0] {
			t.Errorf("series %s should grow >%.0fx over the α sweep, got %.3g→%.3g",
				s.Name, want, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	// larger β needs fewer devices at matching α
	b8, b16 := f.Series[0], f.Series[4]
	if b8.Y[0] < b16.Y[0] {
		t.Error("β=8 should cost at least as much as β=16")
	}
}

func TestFigure4bLinearInAlpha(t *testing.T) {
	f := Figure4b()
	for _, s := range f.Series {
		if len(s.X) < 5 {
			t.Errorf("series %s mostly infeasible", s.Name)
			continue
		}
		growth := s.Y[len(s.Y)-1] / s.Y[0]
		if growth > 30 {
			t.Errorf("series %s grew %.0fx — should be roughly linear in α", s.Name, growth)
		}
	}
}

func TestFigure4bVsFigure4aHeadline(t *testing.T) {
	h := HeadlineReduction()
	if len(h.Rows) != 3 {
		t.Fatalf("headline rows: %v", h.Rows)
	}
	var orders float64
	if _, err := sscan(h.Rows[2][1], &orders); err != nil {
		t.Fatalf("cannot parse reduction %q", h.Rows[2][1])
	}
	// paper: 4e9 → 0.8e6, i.e. 5000x = 3.7 orders, rounded to "4 orders"
	if orders < 3.5 {
		t.Errorf("headline reduction = %.1f orders, paper says ~4", orders)
	}
	var noEnc, enc float64
	if _, err := sscan(h.Rows[0][1], &noEnc); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(h.Rows[1][1], &enc); err != nil {
		t.Fatal(err)
	}
	if noEnc < 1e9 || noEnc > 2e10 {
		t.Errorf("no-encoding total = %g, paper says ~4e9", noEnc)
	}
	if enc < 4e5 || enc > 2e6 {
		t.Errorf("encoded total = %g, paper says ~8e5", enc)
	}
}

// sscan parses the leading numeric token of a cell.
func sscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// fmtSscanf parses the leading token of a cell into v (the third argument
// exists only for call-site symmetry and is ignored).
func fmtSscanf(s string, v interface{}, _ interface{}) (int, error) {
	return fmt.Sscan(s, v)
}

func TestFigure4cRelaxationMonotone(t *testing.T) {
	f, tab := Figure4c()
	if len(f.Series) != 6 {
		t.Fatalf("expected 6 series, got %d", len(f.Series))
	}
	// at α=14 (x index), device counts should not increase as p relaxes
	if len(tab.Rows) < 2 {
		t.Fatal("bounds table empty")
	}
	var prevDevices, prevMean float64 = math.Inf(1), 0
	for _, row := range tab.Rows {
		var dev, mean float64
		if _, err := fmtSscanf(row[1], &dev, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := fmtSscanf(row[2], &mean, nil); err != nil {
			t.Fatal(err)
		}
		if dev > prevDevices {
			t.Errorf("device count rose when relaxing p: %v", row)
		}
		if mean < prevMean {
			t.Errorf("expected accesses fell when relaxing p: %v", row)
		}
		prevDevices, prevMean = dev, mean
	}
	// paper: expected accesses stay just above the LAB
	var firstMean float64
	if _, err := fmtSscanf(tab.Rows[0][2], &firstMean, nil); err != nil {
		t.Fatal(err)
	}
	// the expected total sits within ~1% of the LAB (copies deliver their
	// targets with 99% probability each, so the mean dips slightly below)
	if firstMean < float64(ConnectionLAB)*0.99 || firstMean > float64(ConnectionLAB)*1.02 {
		t.Errorf("expected accesses %g should be within ~1%% of LAB %d", firstMean, ConnectionLAB)
	}
}

func TestFigure4dMonotone(t *testing.T) {
	tab := Figure4d()
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(tab.Rows))
	}
	// for each β, device counts must fall as the upper bound loosens
	for _, beta := range []string{"4", "8"} {
		var prev float64 = math.Inf(1)
		for _, row := range tab.Rows {
			if row[2] != beta || row[3] == "infeasible" {
				continue
			}
			var dev float64
			if _, err := fmtSscanf(row[3], &dev, nil); err != nil {
				t.Fatal(err)
			}
			if dev > prev {
				t.Errorf("β=%s: device count rose with looser bound: %v", beta, row)
			}
			prev = dev
		}
	}
}

func TestTable1Shape(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "infeasible" {
			t.Errorf("encoded design should be feasible for %s", row[0])
			continue
		}
		var noEnc, enc float64
		ok1, _ := fmtSscanf(row[1], &noEnc, nil)
		ok2, _ := fmtSscanf(row[2], &enc, nil)
		if ok1 == 1 && ok2 == 1 && enc > noEnc {
			t.Errorf("encoding should not cost more area: %v", row)
		}
	}
	if tab.Render() == "" {
		t.Error("empty render")
	}
}

func TestFigure5Shapes(t *testing.T) {
	a := Figure5a()
	b := Figure5b()
	if len(a.Series) == 0 || len(b.Series) == 0 {
		t.Fatal("empty targeting sweeps")
	}
	// encoded targeting needs far fewer devices than unencoded at β=8
	minB := math.Inf(1)
	for _, s := range b.Series {
		for _, y := range s.Y {
			if y < minB {
				minB = y
			}
		}
	}
	if minB > 5000 {
		t.Errorf("best encoded targeting design = %.0f devices, paper says ~810", minB)
	}
	// and everything is far below the connection scale
	maxB := 0.0
	for _, s := range b.Series {
		for _, y := range s.Y {
			if y > maxB {
				maxB = y
			}
		}
	}
	if maxB > 1e6 {
		t.Errorf("encoded targeting should stay below 1e6 devices, got %.3g", maxB)
	}
}

func TestFigure8Properties(t *testing.T) {
	recv, adv := Figure8()
	if len(recv.Series) != len(adv.Series) {
		t.Fatal("mismatched grids")
	}
	// receiver success is non-increasing in k for every H
	for _, s := range recv.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1]+1e-9 {
				t.Fatalf("%s: receiver success rose with k", s.Name)
			}
		}
	}
	// Paper: "when the tree height is 8 or more, the adversaries' success
	// probability reduces to zero". Checked against Eq 15 this holds at
	// the paper's operating redundancy k >= 8 (at k=1 the exact equations
	// give 0.36 — below their heatmap's color resolution but not zero).
	for _, s := range adv.Series {
		var h int
		if _, err := fmtSscanf(strings.TrimPrefix(s.Name, "H="), &h, nil); err != nil {
			t.Fatal(err)
		}
		if h >= 8 {
			for i, y := range s.Y {
				if s.X[i] >= 8 && y > 1e-6 {
					t.Errorf("H=%d k=%g: adversary success %g should be ~0", h, s.X[i], y)
				}
			}
		}
	}
	// and adversary success falls monotonically with H at fixed k
	for i := range adv.Series[0].X {
		for j := 1; j < len(adv.Series); j++ {
			if adv.Series[j].Y[i] > adv.Series[j-1].Y[i]+1e-9 {
				t.Fatalf("adversary success rose with H at k=%g", adv.Series[0].X[i])
			}
		}
	}
}

func TestFigure9Properties(t *testing.T) {
	recv, adv := Figure9()
	// receiver success is non-decreasing in α for every H
	for _, s := range recv.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1]-1e-9 {
				t.Fatalf("%s: receiver success fell with α", s.Name)
			}
		}
	}
	// adversary stays ~0 for H >= 8 across all α at the paper's k=8
	// (the largest exact value on the grid is ~4e-6 at α=80, far below
	// the paper heatmap's color resolution)
	for _, s := range adv.Series {
		var h int
		if _, err := fmtSscanf(strings.TrimPrefix(s.Name, "H="), &h, nil); err != nil {
			t.Fatal(err)
		}
		if h >= 8 {
			for _, y := range s.Y {
				if y > 1e-4 {
					t.Errorf("H=%d: adversary success %g should be ~0", h, y)
				}
			}
		}
	}
}

func TestFigure10Density(t *testing.T) {
	f := Figure10()
	s := f.Series[0]
	if len(s.X) != 10 {
		t.Fatalf("expected H=2..11, got %d points", len(s.X))
	}
	// paper endpoints: ~5e6 at H=2, ~2e3 at H=11
	if s.Y[0] < 3e6 || s.Y[0] > 8e6 {
		t.Errorf("H=2 density = %g, paper says ~5e6", s.Y[0])
	}
	if s.Y[9] < 1e3 || s.Y[9] > 4e3 {
		t.Errorf("H=11 density = %g, paper says ~2e3", s.Y[9])
	}
	for i := 1; i < len(s.Y); i++ {
		if s.Y[i] >= s.Y[i-1] {
			t.Error("density must fall with height")
		}
	}
}

func TestScalarTables(t *testing.T) {
	lat := OTPLatencyEnergy()
	if len(lat.Rows) != 4 {
		t.Fatalf("§6.5.2 rows: %d", len(lat.Rows))
	}
	if lat.Rows[0][1] != "0.08512" {
		t.Errorf("retrieval latency = %s, want 0.08512", lat.Rows[0][1])
	}
	conn := ConnectionEnergyLatency()
	if len(conn.Rows) != 4 {
		t.Fatalf("§4.3.2 rows: %d (%v)", len(conn.Rows), conn.Rows)
	}
	var n float64
	if _, err := fmtSscanf(conn.Rows[0][1], &n, nil); err != nil {
		t.Fatal(err)
	}
	if n < 110 || n > 180 {
		t.Errorf("devices per structure = %g, paper says 141", n)
	}
}
