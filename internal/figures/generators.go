package figures

import (
	"fmt"
	"math"

	"lemonade/internal/cost"
	"lemonade/internal/dse"
	"lemonade/internal/mathx"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// ConnectionLAB is the paper's legitimate access bound for the smartphone
// use case: 5 years × 365 days × 50 unlocks (Eq 4).
const ConnectionLAB = 5 * 365 * 50

// TargetingLAB is the §5 mission usage bound.
const TargetingLAB = 100

// connectionSpec is the base design problem for Figs 4a–4d and Table 1.
func connectionSpec(alpha, beta, kFrac float64, criteria reliability.Criteria) dse.Spec {
	return dse.Spec{
		Dist:        weibull.MustNew(alpha, beta),
		Criteria:    criteria,
		LAB:         ConnectionLAB,
		KFrac:       kFrac,
		ContinuousT: true,
	}
}

// Figure1 regenerates the Weibull wearout model curves: failure PDF and
// reliability for β ∈ {1, 6, 12} at α = 1e6 cycles.
func Figure1() Figure {
	f := Figure{
		ID:     "Fig 1",
		Title:  "Weibull wearout model with different shape parameters",
		XLabel: "time to failure (cycles)",
		YLabel: "PDF / reliability",
	}
	xs := mathx.Linspace(0, 2e6, 81)
	for _, beta := range []float64{1, 6, 12} {
		d := weibull.MustNew(1e6, beta)
		pdf := Series{Name: fmt.Sprintf("PDF β=%g", beta)}
		rel := Series{Name: fmt.Sprintf("Reliability β=%g", beta)}
		for _, x := range xs {
			pdf.X = append(pdf.X, x)
			pdf.Y = append(pdf.Y, d.PDF(x))
			rel.X = append(rel.X, x)
			rel.Y = append(rel.Y, d.Reliability(x))
		}
		f.Series = append(f.Series, pdf, rel)
	}
	f.Notes = "β=12 matches the MEMS lifetime plots of Slack et al. with geometrical variations"
	return f
}

// Figure3a regenerates the scaled-α degradation window: α=1.7, β=12 gives
// reliability ≈1 at t=1 and ≈0 at t=2.
func Figure3a() Figure {
	d := weibull.MustNew(1.7, 12)
	f := Figure{
		ID:     "Fig 3a",
		Title:  "Scaling α down creates a sub-cycle degradation window",
		XLabel: "time to failure (cycles)",
		YLabel: "PDF / reliability",
	}
	xs := mathx.Linspace(0, 3, 61)
	pdf := Series{Name: "PDF β=12"}
	rel := Series{Name: "Reliability β=12"}
	for _, x := range xs {
		pdf.X = append(pdf.X, x)
		pdf.Y = append(pdf.Y, d.PDF(x))
		rel.X = append(rel.X, x)
		rel.Y = append(rel.Y, d.Reliability(x))
	}
	f.Series = append(f.Series, pdf, rel)
	f.Notes = fmt.Sprintf("R(1)=%.4f R(2)=%.4g", d.Reliability(1), d.Reliability(2))
	return f
}

// Figure3b regenerates the parallel-structure reliability curves: α=9.3,
// β=12, n ∈ {1, 20, 40, 60} devices, 1-out-of-n.
func Figure3b() Figure {
	d := weibull.MustNew(9.3, 12)
	f := Figure{
		ID:     "Fig 3b",
		Title:  "Parallel devices push the high-reliability threshold toward the degradation edge",
		XLabel: "time to failure (cycles)",
		YLabel: "reliability",
	}
	xs := mathx.Linspace(7, 14, 71)
	for _, n := range []int{1, 20, 40, 60} {
		s := Series{Name: fmt.Sprintf("%d devices", n)}
		for _, x := range xs {
			s.X = append(s.X, x)
			s.Y = append(s.Y, structure.ParallelReliability(d, n, 1, x))
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = fmt.Sprintf("40 devices: R(10)=%.4f R(11)=%.4f (paper: ~0.98 / ~0.022)",
		structure.ParallelReliability(d, 40, 1, 10), structure.ParallelReliability(d, 40, 1, 11))
	return f
}

// Figure3c regenerates the Reed-Solomon k-out-of-60 curves: α=20, β=12,
// k ∈ {1, 10, 20, 30, 60}.
func Figure3c() Figure {
	d := weibull.MustNew(20, 12)
	f := Figure{
		ID:     "Fig 3c",
		Title:  "Redundant encoding (k-out-of-60) accelerates degradation",
		XLabel: "time to failure (cycles)",
		YLabel: "reliability",
	}
	xs := mathx.Linspace(8, 32, 97)
	for _, k := range []int{1, 10, 20, 30, 60} {
		s := Series{Name: fmt.Sprintf("k=%d", k)}
		for _, x := range xs {
			s.X = append(s.X, x)
			s.Y = append(s.Y, structure.ParallelReliability(d, 60, k, x))
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = fmt.Sprintf("k=30: R(19)=%.3f R(20)=%.3f (paper quotes ~0.92 / ~0.02 for the 20th/21st access)",
		structure.ParallelReliability(d, 60, 30, 19), structure.ParallelReliability(d, 60, 30, 20))
	return f
}

// figure4Alphas is the sweep range of Figs 4a–4c.
func figure4Alphas() []float64 { return mathx.Linspace(10, 20, 21) }

// Figure4a regenerates the no-encoding device-count sweep: total NEMS
// switches vs α for β ∈ {8, 10, 12, 14, 16} (log-scale y in the paper).
func Figure4a() Figure {
	f := Figure{
		ID:     "Fig 4a",
		Title:  "Limited-use connection without redundant encoding",
		XLabel: "α (cycles)",
		YLabel: "total NEMS switches (log scale in paper)",
	}
	for _, beta := range []float64{8, 10, 12, 14, 16} {
		s := Series{Name: fmt.Sprintf("β=%g", beta)}
		pts := dse.SweepAlpha(connectionSpec(10, beta, 0, reliability.DefaultCriteria), figure4Alphas())
		for _, p := range pts {
			if !p.Feasible {
				continue
			}
			s.X = append(s.X, p.Alpha)
			s.Y = append(s.Y, float64(p.Design.TotalDevices))
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = "device count grows exponentially with α and explodes as β falls"
	return f
}

// Figure4b regenerates the encoded sweep: k ∈ {10, 20, 30}%·n for
// β ∈ {4, 8}.
func Figure4b() Figure {
	f := Figure{
		ID:     "Fig 4b",
		Title:  "Limited-use connection with redundant encoding",
		XLabel: "α (cycles)",
		YLabel: "total NEMS switches",
	}
	for _, kf := range []float64{0.10, 0.20, 0.30} {
		for _, beta := range []float64{8, 4} {
			s := Series{Name: fmt.Sprintf("k=%d%%·n, β=%g", int(kf*100), beta)}
			pts := dse.SweepAlpha(connectionSpec(10, beta, kf, reliability.DefaultCriteria), figure4Alphas())
			for _, p := range pts {
				if !p.Feasible {
					continue
				}
				s.X = append(s.X, p.Alpha)
				s.Y = append(s.Y, float64(p.Design.TotalDevices))
			}
			f.Series = append(f.Series, s)
		}
	}
	f.Notes = "linear α-scaling; ~4 orders of magnitude below Fig 4a at α=14, β=8"
	return f
}

// Figure4c regenerates the relaxed-criteria sweep: overrun probability
// p ∈ {1, 2, 4, 6, 8, 10}% with k = 10%·n, β = 8, plus the empirical
// access upper bounds the relaxation buys.
func Figure4c() (Figure, Table) {
	f := Figure{
		ID:     "Fig 4c",
		Title:  "Relaxed degradation criteria reduce device count",
		XLabel: "α (cycles)",
		YLabel: "total NEMS switches",
	}
	t := Table{
		ID:     "Fig 4c (bounds)",
		Title:  "Empirical access bounds vs degradation criterion p (α=14)",
		Header: []string{"p", "total switches", "expected accesses", "99.9% quantile"},
	}
	for _, p := range []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10} {
		crit := reliability.Criteria{MinWork: 0.99, MaxOverrun: p}
		s := Series{Name: fmt.Sprintf("p=%d%%", int(p*100+0.5))}
		pts := dse.SweepAlpha(connectionSpec(10, 8, 0.10, crit), figure4Alphas())
		for _, pt := range pts {
			if !pt.Feasible {
				continue
			}
			s.X = append(s.X, pt.Alpha)
			s.Y = append(s.Y, float64(pt.Design.TotalDevices))
		}
		f.Series = append(f.Series, s)
		d, err := dse.Explore(connectionSpec(14, 8, 0.10, crit))
		if err == nil {
			mean, _ := d.System().ExpectedTotalAccesses()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d%%", int(p*100+0.5)),
				fmt.Sprintf("%d", d.TotalDevices),
				fmt.Sprintf("%.0f", mean),
				fmt.Sprintf("%.0f", d.System().UpperBoundQuantile(0.999)),
			})
		}
	}
	f.Notes = "paper: raising p from 1% to 10% cuts devices ~40% and raises the empirical bound 91,326→92,028"
	return f, t
}

// Figure4d regenerates the stronger-passcode comparison: upper-bound
// targets of the baseline LAB, 100k (popular 1% rejected) and 200k
// (popular 2% rejected), for β ∈ {4, 8}, k = 10%·n, α = 10.
func Figure4d() Table {
	t := Table{
		ID:     "Fig 4d",
		Title:  "Stronger passcodes: device count vs upper-bound target (α=10, k=10%·n)",
		Header: []string{"passcode policy", "upper-bound target", "β", "total switches"},
	}
	curve := password.UrEtAl()
	policies := []struct {
		name   string
		reject float64
	}{
		{"baseline", 0},
		{"reject most popular 1%", 0.01},
		{"reject most popular 2%", 0.02},
	}
	for _, pol := range policies {
		upper := ConnectionLAB
		if pol.reject > 0 {
			// §4.3.3: with the popular head rejected in software, the
			// hardware upper bound extends to "the minimum guesses needed
			// to crack the passcode" — the guess budget at which the
			// rejected fraction of the original population falls
			// (100,000 for 1%, 200,000 for 2%).
			upper = int(curve.MinGuessesToCrackProb(pol.reject))
		}
		for _, beta := range []float64{4, 8} {
			spec := connectionSpec(10, beta, 0.10, reliability.DefaultCriteria)
			if upper > spec.LAB {
				spec.UpperBound = upper
			}
			d, err := dse.Explore(spec)
			cell := "infeasible"
			if err == nil {
				cell = fmt.Sprintf("%d", d.TotalDevices)
			}
			t.Rows = append(t.Rows, []string{pol.name, fmt.Sprintf("%d", upper), fmt.Sprintf("%g", beta), cell})
		}
	}
	t.Notes = "paper (β=8): 675,250 baseline → 38,325 @100k → 29,200 @200k"
	return t
}

// Table1 regenerates the area-cost table for the four (α, β) device
// points, with and without encoding.
func Table1() Table {
	t := Table{
		ID:     "Table 1",
		Title:  "Area cost of the limited-use connection",
		Header: []string{"(α, β)", "without encoding (mm²)", "with encoding k=10%·n (mm²)"},
	}
	const keyBits = 256
	points := []struct{ alpha, beta float64 }{
		{10.51, 16}, {10.21, 10}, {19.68, 16}, {18.69, 10},
	}
	for _, p := range points {
		noEnc := "infeasible"
		if d, err := dse.Explore(connectionSpec(p.alpha, p.beta, 0, reliability.DefaultCriteria)); err == nil {
			noEnc = fmt.Sprintf("%.3g", d.Area(keyBits).Mm2())
		}
		enc := "infeasible"
		if d, err := dse.Explore(connectionSpec(p.alpha, p.beta, 0.10, reliability.DefaultCriteria)); err == nil {
			enc = fmt.Sprintf("%.3g", d.Area(keyBits).Mm2())
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("(%g, %g)", p.alpha, p.beta), noEnc, enc})
	}
	t.Notes = "paper: 1.27e-4/2.03e-3/2.03e-3/0.52 without, 3.2e-5/1.3e-4/1.3e-4/1.3e-4 with"
	return t
}

// Figure5a regenerates the targeting-system no-encoding sweep.
func Figure5a() Figure {
	f := Figure{
		ID:     "Fig 5a",
		Title:  "Limited-use targeting system without redundant encoding",
		XLabel: "α (cycles)",
		YLabel: "total NEMS switches (log scale in paper)",
	}
	for _, beta := range []float64{8, 10, 12, 14, 16} {
		s := Series{Name: fmt.Sprintf("β=%g", beta)}
		spec := connectionSpec(10, beta, 0, reliability.DefaultCriteria)
		spec.LAB = TargetingLAB
		pts := dse.SweepAlpha(spec, figure4Alphas())
		for _, p := range pts {
			if !p.Feasible {
				continue
			}
			s.X = append(s.X, p.Alpha)
			s.Y = append(s.Y, float64(p.Design.TotalDevices))
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = "orders of magnitude below the connection use case (paper: 8,855 best, 842,941 worst)"
	return f
}

// Figure5b regenerates the targeting-system encoded sweep.
func Figure5b() Figure {
	f := Figure{
		ID:     "Fig 5b",
		Title:  "Limited-use targeting system with redundant encoding",
		XLabel: "α (cycles)",
		YLabel: "total NEMS switches",
	}
	for _, kf := range []float64{0.10, 0.20, 0.30} {
		for _, beta := range []float64{8, 4} {
			s := Series{Name: fmt.Sprintf("k=%d%%·n, β=%g", int(kf*100), beta)}
			spec := connectionSpec(10, beta, kf, reliability.DefaultCriteria)
			spec.LAB = TargetingLAB
			pts := dse.SweepAlpha(spec, figure4Alphas())
			for _, p := range pts {
				if !p.Feasible {
					continue
				}
				s.X = append(s.X, p.Alpha)
				s.Y = append(s.Y, float64(p.Design.TotalDevices))
			}
			f.Series = append(f.Series, s)
		}
	}
	f.Notes = "paper: down to ~810 switches at k=10%·n, α=10, β=8; jagged curves from the small usage target"
	return f
}

// otpDist is the §6.4 default device: α=10, β=1.
func otpDist() weibull.Dist { return weibull.MustNew(10, 1) }

// Figure8 regenerates the (k, H) success grids: receiver (8a) and
// adversary (8b) success probability, α=10, β=1, n=128.
func Figure8() (recv, adv Figure) {
	ks := []int{1, 2, 4, 8, 16, 24, 32, 48, 64, 96, 128}
	hs := []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 120}
	d := otpDist()
	recv = Figure{ID: "Fig 8a", Title: "Receiver success probability (α=10, β=1, n=128)",
		XLabel: "k", YLabel: "S_recv"}
	adv = Figure{ID: "Fig 8b", Title: "Adversary success probability (α=10, β=1, n=128)",
		XLabel: "k", YLabel: "S_adv"}
	for _, h := range hs {
		r := Series{Name: fmt.Sprintf("H=%d", h)}
		a := Series{Name: fmt.Sprintf("H=%d", h)}
		for _, k := range ks {
			r.X = append(r.X, float64(k))
			r.Y = append(r.Y, otp.ReceiverSuccessProb(d, h, 128, k))
			a.X = append(a.X, float64(k))
			a.Y = append(a.Y, otp.AdversarySuccessProb(d, h, 128, k))
		}
		recv.Series = append(recv.Series, r)
		adv.Series = append(adv.Series, a)
	}
	adv.Notes = "paper: H ≥ 8 drives adversary success to ~0 at any redundancy"
	return recv, adv
}

// Figure9 regenerates the (α, H) success grids at β=1, k=8, n=128.
func Figure9() (recv, adv Figure) {
	alphas := []float64{1, 2, 4, 8, 10, 16, 24, 32, 48, 64, 80}
	hs := []int{1, 2, 4, 6, 7, 8, 12, 16, 24, 32, 64, 120}
	recv = Figure{ID: "Fig 9a", Title: "Receiver success probability (β=1, k=8, n=128)",
		XLabel: "α", YLabel: "S_recv"}
	adv = Figure{ID: "Fig 9b", Title: "Adversary success probability (β=1, k=8, n=128)",
		XLabel: "α", YLabel: "S_adv"}
	for _, h := range hs {
		r := Series{Name: fmt.Sprintf("H=%d", h)}
		a := Series{Name: fmt.Sprintf("H=%d", h)}
		for _, alpha := range alphas {
			d := weibull.MustNew(alpha, 1)
			r.X = append(r.X, alpha)
			r.Y = append(r.Y, otp.ReceiverSuccessProb(d, h, 128, 8))
			a.X = append(a.X, alpha)
			a.Y = append(a.Y, otp.AdversarySuccessProb(d, h, 128, 8))
		}
		recv.Series = append(recv.Series, r)
		adv.Series = append(adv.Series, a)
	}
	recv.Notes = "higher α helps both parties; H ≤ 7 trades against wearout bounds, H ≥ 8 blocks adversaries outright"
	return recv, adv
}

// Figure10 regenerates the one-time-pad density estimate: decision trees
// per 1 mm² chip for H = 2..11.
func Figure10() Figure {
	f := Figure{
		ID:     "Fig 10",
		Title:  "Density estimate of one-time pads (1 mm² chip)",
		XLabel: "tree height H",
		YLabel: "decision trees per chip",
	}
	s := Series{Name: "trees per 1 mm²"}
	for h := 2; h <= 11; h++ {
		s.X = append(s.X, float64(h))
		s.Y = append(s.Y, float64(cost.TreesPerChip(h, 1)))
	}
	f.Series = []Series{s}
	f.Notes = "paper: 5e6 at H=2 down to 2e3 at H=11; H=4 with N=128 copies → ~4,687 pads"
	return f
}

// OTPLatencyEnergy regenerates the §6.5.2 scalar results.
func OTPLatencyEnergy() Table {
	p := otp.Params{Dist: otpDist(), Height: 4, Copies: 128, K: 8}
	t := Table{
		ID:     "§6.5.2",
		Title:  "One-time pad retrieval cost (H=4, N=128)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Rows = [][]string{
		{"retrieval latency (ms)", fmt.Sprintf("%.5f", p.RetrievalLatency().Ms()), "0.08512"},
		{"path traversal latency (ms)", fmt.Sprintf("%.5f", 10e-9*4*128*1e3), "0.00512"},
		{"register readout (ms)", fmt.Sprintf("%.5f", 20e-9*4000*1e3), "0.08"},
		{"worst-case path energy (J)", fmt.Sprintf("%.3g", float64(p.RetrievalEnergy())), "5.12e-18"},
	}
	return t
}

// ConnectionEnergyLatency regenerates the §4.3.2 scalar results for the
// α=14, β=8, k=10%·n design point.
func ConnectionEnergyLatency() Table {
	t := Table{
		ID:     "§4.3.2",
		Title:  "Connection access cost (α=14, β=8, k=10%·n)",
		Header: []string{"metric", "measured", "paper"},
	}
	d, err := dse.Explore(connectionSpec(14, 8, 0.10, reliability.DefaultCriteria))
	if err != nil {
		t.Rows = [][]string{{"error", err.Error(), ""}}
		return t
	}
	t.Rows = [][]string{
		{"devices per structure", fmt.Sprintf("%d", d.N), "141"},
		{"total devices", fmt.Sprintf("%d", d.TotalDevices), "~800,000"},
		{"energy per access (J)", fmt.Sprintf("%.3g", float64(d.EnergyPerAccess())), "1.41e-18"},
		{"switching latency (ns)", fmt.Sprintf("%.0f", d.LatencyPerAccess().Ns()), "10"},
	}
	return t
}

// HeadlineReduction computes the abstract's headline: the device-count
// reduction redundant encoding buys at α=14, β=8.
func HeadlineReduction() Table {
	t := Table{
		ID:     "Abstract",
		Title:  "Redundant encoding reduction at α=14, β=8",
		Header: []string{"variant", "total switches", "paper"},
	}
	noEnc, err1 := dse.Explore(connectionSpec(14, 8, 0, reliability.DefaultCriteria))
	enc, err2 := dse.Explore(connectionSpec(14, 8, 0.10, reliability.DefaultCriteria))
	if err1 != nil || err2 != nil {
		t.Rows = append(t.Rows, []string{"error", fmt.Sprint(err1, err2), ""})
		return t
	}
	t.Rows = [][]string{
		{"no encoding", fmt.Sprintf("%d", noEnc.TotalDevices), "~4e9"},
		{"k=10%·n encoding", fmt.Sprintf("%d", enc.TotalDevices), "~8e5"},
		{"reduction", fmt.Sprintf("%.1f orders of magnitude",
			math.Log10(float64(noEnc.TotalDevices)/float64(enc.TotalDevices))), "4 orders"},
	}
	return t
}
