package figures

import (
	"fmt"
	"math"

	"lemonade/internal/dse"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// ComparisonRow is one paper-vs-measured check with an explicit tolerance:
// the machine-readable core of EXPERIMENTS.md. Ratio is measured/paper.
type ComparisonRow struct {
	Exhibit   string
	Quantity  string
	Paper     float64
	Measured  float64
	Tolerance float64 // allowed |log10 ratio|, e.g. 0.3 ≈ within 2x
}

// Ratio returns measured/paper.
func (r ComparisonRow) Ratio() float64 { return r.Measured / r.Paper }

// Within reports whether the measured value is inside the tolerance band.
func (r ComparisonRow) Within() bool {
	if r.Paper == 0 {
		return r.Measured == 0
	}
	ratio := r.Ratio()
	if ratio <= 0 {
		return false
	}
	return math.Abs(math.Log10(ratio)) <= r.Tolerance
}

// PaperComparison evaluates every headline quantity of the paper against
// this library and returns the rows. The test suite asserts all rows are
// within tolerance, so a regression in the reproduction fails CI.
func PaperComparison() []ComparisonRow {
	var rows []ComparisonRow
	add := func(exhibit, quantity string, paper, measured, tol float64) {
		rows = append(rows, ComparisonRow{Exhibit: exhibit, Quantity: quantity,
			Paper: paper, Measured: measured, Tolerance: tol})
	}

	// Fig 3b: α=9.3, β=12, 40 parallel devices.
	d3b := weibull.MustNew(9.3, 12)
	add("Fig 3b", "R(10) with 40 devices", 0.98, structure.ParallelReliability(d3b, 40, 1, 10), 0.01)
	add("Fig 3b", "R(11) with 40 devices", 0.022, structure.ParallelReliability(d3b, 40, 1, 11), 0.05)

	// Fig 3c: α=20, β=12, k=30 of 60 (paper's access counting is offset
	// by one; see DESIGN.md).
	d3c := weibull.MustNew(20, 12)
	add("Fig 3c", "R(20th access) k=30/60", 0.92, structure.ParallelReliability(d3c, 60, 30, 19), 0.02)
	add("Fig 3c", "R(21st access) k=30/60", 0.02, structure.ParallelReliability(d3c, 60, 30, 20), 0.15)

	// Abstract / §4.3.2: the headline device counts.
	noEnc, errA := dse.Explore(connectionSpec(14, 8, 0, reliability.DefaultCriteria))
	enc, errB := dse.Explore(connectionSpec(14, 8, 0.10, reliability.DefaultCriteria))
	if errA == nil {
		add("Abstract", "no-encoding devices (α=14, β=8)", 4e9, float64(noEnc.TotalDevices), 0.30)
	}
	if errB == nil {
		add("Abstract", "encoded devices (α=14, β=8)", 8e5, float64(enc.TotalDevices), 0.15)
		add("§4.3.2", "devices per structure", 141, float64(enc.N), 0.10)
		add("§4.3.2", "energy per access (J)", 1.41e-18, float64(enc.EnergyPerAccess()), 0.10)
	}

	// Fig 4c: relaxing p from 1% to 10% cuts devices by ~40%.
	relaxed := connectionSpec(14, 8, 0.10, reliability.Criteria{MinWork: 0.99, MaxOverrun: 0.10})
	if dr, err := dse.Explore(relaxed); err == nil && errB == nil {
		saving := 1 - float64(dr.TotalDevices)/float64(enc.TotalDevices)
		add("Fig 4c", "device saving at p=10%", 0.40, saving, 0.10)
	}

	// Fig 5b: targeting best encoded point α=10, β=8.
	tgt := connectionSpec(10, 8, 0.10, reliability.DefaultCriteria)
	tgt.LAB = TargetingLAB
	if dt, err := dse.Explore(tgt); err == nil {
		add("Fig 5b", "targeting devices (α=10, β=8)", 810, float64(dt.TotalDevices), 0.20)
	}

	// Fig 10 / §6.5: OTP density, latency, energy.
	add("Fig 10", "trees per mm² at H=2", 5e6, float64(otpDensity(2)), 0.05)
	add("Fig 10", "trees per mm² at H=11", 2e3, float64(otpDensity(11)), 0.15)
	p652 := otp.Params{Dist: otpDist(), Height: 4, Copies: 128, K: 8}
	add("§6.5.2", "retrieval latency (ms)", 0.08512, p652.RetrievalLatency().Ms(), 0.001)
	add("§6.5.2", "path energy (J)", 5.12e-18, float64(p652.RetrievalEnergy()), 0.001)
	add("Fig 10", "pads at H=4, N=128", 4687, float64(p652.PadsPerChip(1)), 0.05)

	// §4.1: the crack probability at the hardware bound stays under 1%.
	curve := password.UrEtAl()
	add("§4.1", "crack probability at 91,250", 0.009, curve.SuccessProb(91_250), 0.05)

	// §4.1.5: the M-way example (500/day over 5y → M=10) is checked in
	// the connection tests; here the per-module budget identity.
	add("Eq 4", "legitimate access bound", 91_250, float64(ConnectionLAB), 0)
	return rows
}

// PaperComparisonTable renders the comparison as an exhibit table.
func PaperComparisonTable() Table {
	t := Table{
		ID:     "Summary",
		Title:  "Paper vs measured (machine-checked)",
		Header: []string{"exhibit", "quantity", "paper", "measured", "ratio", "ok"},
	}
	for _, r := range PaperComparison() {
		t.Rows = append(t.Rows, []string{
			r.Exhibit, r.Quantity,
			fmt.Sprintf("%.4g", r.Paper),
			fmt.Sprintf("%.4g", r.Measured),
			fmt.Sprintf("%.2f", r.Ratio()),
			fmt.Sprintf("%v", r.Within()),
		})
	}
	t.Notes = "tolerances are |log10 ratio| bands per row; the test suite fails if any row drifts out"
	return t
}

func otpDensity(h int) int {
	f := Figure10()
	for i, x := range f.Series[0].X {
		if int(x) == h {
			return int(f.Series[0].Y[i])
		}
	}
	return 0
}
