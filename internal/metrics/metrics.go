// Package metrics is a minimal, stdlib-only instrumentation library for
// the lemonaded server: counters, gauges and latency histograms collected
// into a Registry that renders the Prometheus text exposition format.
//
// The package never reads the wall clock — durations are observed by the
// caller and passed in as seconds. The daemon times requests with a real
// clock (commands may); library tests inject a fake one, so histogram
// contents stay deterministic under test. All metric operations are safe
// for concurrent use and lock-free on the hot paths (counters and gauges
// are single atomics; histograms take a short mutex).
package metrics

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefLatencyBuckets spans 10µs to 10s — wide enough for an in-process
// architecture access (~µs) and a full design-space exploration (~s).
var DefLatencyBuckets = []float64{
	1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets with fixed upper
// bounds, Prometheus-style.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds, immutable after construction; an implicit +Inf bucket follows
	counts []uint64  // guarded by mu; len(bounds)+1
	sum    float64   // guarded by mu
	count  uint64    // guarded by mu
}

// Observe records one value (for latency histograms, in seconds).
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// metric is anything that can render its sample lines.
type metric interface {
	writeSamples(w io.Writer, name, labels string) error
}

func (c *Counter) writeSamples(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), c.Value())
	return err
}

func (g *Gauge) writeSamples(w io.Writer, name, labels string) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, braced(labels), g.Value())
	return err
}

func (h *Histogram) writeSamples(w io.Writer, name, labels string) error {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	var cum uint64
	for i, b := range bounds {
		cum += counts[i]
		le := fmt.Sprintf(`le="%g"`, b)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(join(labels, le)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(bounds)]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, braced(join(labels, `le="+Inf"`)), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, braced(labels), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(labels), count)
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func join(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// series is one labeled instance of a metric family.
type series struct {
	labels string
	m      metric
}

// family groups the series sharing a metric name.
type family struct {
	name, help, typ string
	series          []*series
}

// Registry holds metric families and renders them in registration order,
// so scrapes are stable and the smoke tests can grep deterministically.
// It serves itself over HTTP as the /metrics handler.
type Registry struct {
	mu       sync.Mutex
	families []*family          // guarded by mu; registration order
	byName   map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the series for (name, labels), creating family and series
// through mk on first registration. Registering the same (name, labels)
// twice returns the original metric, so handlers can grab metrics lazily.
func (r *Registry) lookup(name, labels, help, typ string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	for _, s := range f.series {
		if s.labels == labels {
			return s.m
		}
	}
	s := &series{labels: labels, m: mk()}
	f.series = append(f.series, s)
	return s.m
}

// Counter registers (or retrieves) a counter. labels is a raw Prometheus
// label list like `outcome="success"`, or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	return r.lookup(name, labels, help, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	return r.lookup(name, labels, help, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or retrieves) a histogram with the given bucket
// upper bounds (nil means DefLatencyBuckets). Bounds are sorted; the +Inf
// bucket is implicit.
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	return r.lookup(name, labels, help, "histogram", func() metric {
		if bounds == nil {
			bounds = DefLatencyBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	}).(*Histogram)
}

// WriteText renders every family in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	// Snapshot the families AND their series lists under the lock:
	// lookup appends to f.series concurrently, so iterating the live
	// slice outside r.mu would race with registration.
	type famSnapshot struct {
		name, help, typ string
		series          []*series
	}
	r.mu.Lock()
	fams := make([]famSnapshot, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, famSnapshot{
			name: f.name, help: f.help, typ: f.typ,
			series: append([]*series(nil), f.series...),
		})
	}
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := s.m.writeSamples(w, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// ServeHTTP implements http.Handler: the registry is its own /metrics
// endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, sb.String())
}
