package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "", "total requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("inflight", "", "in-flight requests")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Errorf("gauge = %d, want 1", got)
	}
	// Re-registering the same (name, labels) returns the same metric.
	if r.Counter("requests_total", "", "total requests") != c {
		t.Error("re-registration returned a different counter")
	}
}

func TestLabeledSeries(t *testing.T) {
	r := NewRegistry()
	ok := r.Counter("accesses_total", `outcome="success"`, "accesses by outcome")
	bad := r.Counter("accesses_total", `outcome="exhausted"`, "accesses by outcome")
	if ok == bad {
		t.Fatal("distinct label sets must be distinct series")
	}
	ok.Add(3)
	bad.Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE accesses_total counter",
		`accesses_total{outcome="success"} 3`,
		`accesses_total{outcome="exhausted"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// One family header, not one per series.
	if strings.Count(out, "# TYPE accesses_total") != 1 {
		t.Errorf("family header duplicated:\n%s", out)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "", "request latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.05 + 0.5 + 0.5 + 5 + 50; h.Sum() != want {
		t.Errorf("sum = %g, want %g", h.Sum(), want)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBoundaryValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", "", []float64{1, 2})
	h.Observe(1) // exactly on a bound counts into that bucket (le semantics)
	h.Observe(2)
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `h_bucket{le="1"} 1`) || !strings.Contains(out, `h_bucket{le="2"} 2`) {
		t.Errorf("le boundary semantics wrong:\n%s", out)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "", "")
	h := r.Histogram("h", "", "", nil)
	g := r.Gauge("g", "", "")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 || g.Value() != 8000 {
		t.Errorf("lost updates: c=%d h=%d g=%d", c.Value(), h.Count(), g.Value())
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "", "1 if up").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "up 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}
