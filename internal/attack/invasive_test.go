package attack

import (
	"math"
	"testing"

	"lemonade/internal/rng"
)

func TestChipLayoutValidation(t *testing.T) {
	bad := []ChipLayout{
		{Layers: 0, ShareDepth: 0, SurvivalPerLayer: 0.9},
		{Layers: 5, ShareDepth: 5, SurvivalPerLayer: 0.9},
		{Layers: 5, ShareDepth: -1, SurvivalPerLayer: 0.9},
		{Layers: 5, ShareDepth: 2, SurvivalPerLayer: 1.1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should be invalid: %+v", i, c)
		}
	}
	good := ChipLayout{Layers: 10, ShareDepth: 6, SurvivalPerLayer: 0.8}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSurfaceSharesAreExposed(t *testing.T) {
	// Shares at the surface (depth 0) survive any "dig" trivially: the
	// architecture is only as safe as its burial.
	layout := ChipLayout{Layers: 10, ShareDepth: 0, SurvivalPerLayer: 0.5}
	p, err := DelayeringSuccess(layout, 141, 15)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("surface shares should always fall: %g", p)
	}
}

func TestBurialDepthKillsTheAttack(t *testing.T) {
	// The §4.2 claim quantified: deep burial with fragile layers drives
	// the invasive success probability to ~0 — and monotonically.
	prev := 2.0
	for depth := 0; depth <= 12; depth++ {
		layout := ChipLayout{Layers: 16, ShareDepth: depth, SurvivalPerLayer: 0.7}
		p, err := DelayeringSuccess(layout, 141, 15)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-12 {
			t.Fatalf("success probability rose with depth at %d", depth)
		}
		prev = p
	}
	if prev > 1e-6 {
		t.Errorf("12-layer burial should kill the attack, got %g", prev)
	}
}

func TestDelayeringAnalyticMatchesSimulation(t *testing.T) {
	layout := ChipLayout{Layers: 10, ShareDepth: 3, SurvivalPerLayer: 0.8}
	const n, k = 60, 10
	want, err := DelayeringSuccess(layout, n, k)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(88)
	hits := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		ok, _, err := SimulateDelayering(layout, n, k, r)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			hits++
		}
	}
	emp := float64(hits) / trials
	if math.Abs(emp-want) > 0.03 {
		t.Errorf("MC %g vs analytic %g", emp, want)
	}
}

func TestMinDepthFor(t *testing.T) {
	// Find the burial depth that keeps invasive success below 1e-6 for
	// the paper's 141/15 structure with 70% per-layer survival.
	depth := MinDepthFor(1e-6, 0.7, 141, 15, 30)
	if depth > 30 {
		t.Fatal("no feasible depth found")
	}
	layout := ChipLayout{Layers: 31, ShareDepth: depth, SurvivalPerLayer: 0.7}
	p, _ := DelayeringSuccess(layout, 141, 15)
	if p > 1e-6 {
		t.Errorf("depth %d gives %g, above target", depth, p)
	}
	if depth > 0 {
		shallower := ChipLayout{Layers: 31, ShareDepth: depth - 1, SurvivalPerLayer: 0.7}
		p2, _ := DelayeringSuccess(shallower, 141, 15)
		if p2 <= 1e-6 {
			t.Errorf("depth %d is not minimal (%d also works: %g)", depth, depth-1, p2)
		}
	}
	// a perfectly survivable process can never be protected by burial
	if d := MinDepthFor(1e-6, 1.0, 141, 15, 30); d <= 30 {
		t.Errorf("survival=1 should have no safe depth, got %d", d)
	}
}

func TestDelayeringErrors(t *testing.T) {
	layout := ChipLayout{Layers: 10, ShareDepth: 3, SurvivalPerLayer: 0.8}
	if _, err := DelayeringSuccess(layout, 10, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := DelayeringSuccess(layout, 10, 11); err == nil {
		t.Error("k>n should error")
	}
	bad := ChipLayout{Layers: 0}
	if _, err := DelayeringSuccess(bad, 10, 2); err == nil {
		t.Error("invalid layout should error")
	}
	if _, _, err := SimulateDelayering(bad, 10, 2, rng.New(1)); err == nil {
		t.Error("invalid layout should error in simulation")
	}
}
