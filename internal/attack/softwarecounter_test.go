package attack

import (
	"errors"
	"testing"

	"lemonade/internal/password"
	"lemonade/internal/rng"
)

func TestSoftwareCounterWipes(t *testing.T) {
	d := NewSoftwareCounterDevice("right", 10)
	for i := 0; i < 9; i++ {
		ok, err := d.Unlock("wrong")
		if ok || err != nil {
			t.Fatalf("attempt %d: ok=%v err=%v", i, ok, err)
		}
	}
	if _, err := d.Unlock("wrong"); !errors.Is(err, ErrWiped) {
		t.Error("10th failure should wipe")
	}
	if _, err := d.Unlock("right"); !errors.Is(err, ErrWiped) {
		t.Error("wiped device should refuse even the right passcode")
	}
}

func TestSoftwareCounterResetsOnSuccess(t *testing.T) {
	d := NewSoftwareCounterDevice("right", 10)
	for i := 0; i < 9; i++ {
		_, _ = d.Unlock("wrong")
	}
	if ok, _ := d.Unlock("right"); !ok {
		t.Fatal("right passcode failed")
	}
	// counter reset: nine more failures allowed
	for i := 0; i < 9; i++ {
		if _, err := d.Unlock("wrong"); err != nil {
			t.Fatalf("counter did not reset: %v", err)
		}
	}
}

func TestNANDMirroringBypassesCounter(t *testing.T) {
	// The Skorobogatov attack: with snapshot/restore the attacker gets
	// unlimited attempts. A passcode at rank 5000 falls even though the
	// wipe threshold is 10.
	pass := password.PasswordString(5000)
	d := NewSoftwareCounterDevice(pass, 10)
	cracked, guesses := MirrorBruteForce(d, 10_000)
	if !cracked {
		t.Fatal("mirroring attack failed to crack")
	}
	if guesses != 5000 {
		t.Errorf("cracked at guess %d, want 5000", guesses)
	}
}

func TestPowerCutBypassesCounter(t *testing.T) {
	pass := password.PasswordString(777)
	d := NewSoftwareCounterDevice(pass, 10)
	cracked, guesses := PowerCutBruteForce(d, 1000)
	if !cracked || guesses != 777 {
		t.Errorf("power-cut attack: cracked=%v guesses=%d", cracked, guesses)
	}
}

func TestSoftwareVsWearoutComparison(t *testing.T) {
	// The paper's core comparison: a mirrored software counter gives the
	// attacker an offline-scale budget (say 1e8 guesses → ~45% of
	// passwords); the wearout bound caps them at ~91k (<1%).
	curve := password.UrEtAl()
	soft, hard := SoftwareVsWearout(curve, 100_000_000, 91_250, rng.New(7), 4000)
	if soft < 0.35 || soft > 0.55 {
		t.Errorf("software-counter crack rate = %g, expected ~0.45", soft)
	}
	if hard > 0.02 {
		t.Errorf("wearout crack rate = %g, expected <1%%", hard)
	}
	if soft < 20*hard {
		t.Errorf("wearout should dominate: soft=%g hard=%g", soft, hard)
	}
}
