package attack

import (
	"fmt"
	"math"

	"lemonade/internal/mathx"
	"lemonade/internal/rng"
)

// This file quantifies the §4.2 system-integration security argument. The
// paper buries the secret "many layers below the surface of the chip" and
// argues qualitatively that the deep connections "are difficult to access
// and thus provide a level of physical security". Here that argument is
// made quantitative with a delayering model: an invasive adversary
// (FIB/polishing) removes layers to reach the share stores, but each
// removed layer destroys fragile structures — NEMS switches are mechanical
// and shatter, and charge-based stores bleed — so each buried share
// survives the dig with a per-layer probability. The adversary needs k of
// n shares to survive.

// ChipLayout describes where the architecture's pieces sit in the stack.
type ChipLayout struct {
	// Layers is the total metal/device layer count.
	Layers int
	// ShareDepth is the layer index (from the surface) at which the share
	// stores sit. Deeper is safer but costs fabrication complexity.
	ShareDepth int
	// SurvivalPerLayer is the probability one share store survives the
	// removal of one layer above it intact enough to image.
	SurvivalPerLayer float64
}

// Validate checks the layout.
func (c ChipLayout) Validate() error {
	if c.Layers < 1 {
		return fmt.Errorf("attack: chip needs at least one layer, got %d", c.Layers)
	}
	if c.ShareDepth < 0 || c.ShareDepth >= c.Layers {
		return fmt.Errorf("attack: share depth %d outside [0, %d)", c.ShareDepth, c.Layers)
	}
	if c.SurvivalPerLayer < 0 || c.SurvivalPerLayer > 1 {
		return fmt.Errorf("attack: survival probability %g outside [0,1]", c.SurvivalPerLayer)
	}
	return nil
}

// ShareSurvival returns the probability a single share survives a dig to
// its depth: SurvivalPerLayer^ShareDepth.
func (c ChipLayout) ShareSurvival() float64 {
	return math.Pow(c.SurvivalPerLayer, float64(c.ShareDepth))
}

// DelayeringSuccess returns the analytic probability an invasive
// adversary recovers the secret: at least k of the n buried shares must
// survive the dig and be imaged.
func DelayeringSuccess(layout ChipLayout, n, k int) (float64, error) {
	if err := layout.Validate(); err != nil {
		return 0, err
	}
	if k < 1 || k > n {
		return 0, fmt.Errorf("attack: k=%d outside [1, %d]", k, n)
	}
	return mathx.BinomTailGE(n, k, layout.ShareSurvival()), nil
}

// SimulateDelayering Monte-Carlos one dig: each share independently
// survives each removed layer.
func SimulateDelayering(layout ChipLayout, n, k int, r *rng.RNG) (gotSecret bool, survivingShares int, err error) {
	if err := layout.Validate(); err != nil {
		return false, 0, err
	}
	for i := 0; i < n; i++ {
		alive := true
		for l := 0; l < layout.ShareDepth; l++ {
			if !r.Bernoulli(layout.SurvivalPerLayer) {
				alive = false
				break
			}
		}
		if alive {
			survivingShares++
		}
	}
	return survivingShares >= k, survivingShares, nil
}

// MinDepthFor returns the smallest share depth at which the delayering
// success probability drops below target, for the given structure and
// per-layer survival. It returns maxDepth+1 if no depth in range works.
func MinDepthFor(target, survivalPerLayer float64, n, k, maxDepth int) int {
	return mathx.MinIntSearch(0, maxDepth, func(depth int) bool {
		layout := ChipLayout{Layers: maxDepth + 1, ShareDepth: depth, SurvivalPerLayer: survivalPerLayer}
		p, err := DelayeringSuccess(layout, n, k)
		return err == nil && p <= target
	})
}
