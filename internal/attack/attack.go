// Package attack simulates the paper's threat model (§3) against the
// simulated hardware:
//
//   - BruteForce: a professional cracker with physical access guesses
//     passcodes in popularity order (Ur et al.), racing the wearout of the
//     limited-use connection.
//   - EvilMaid: an adversary with temporary possession of a one-time-pad
//     chip tries to read out key material via random path trials before
//     returning it, then the legitimate receiver tries to use the pad.
//   - Depletion: an attacker deliberately consumes the legitimate usage
//     bound (§7) — confidentiality must survive even though availability
//     is destroyed.
package attack

import (
	"context"
	"errors"

	"lemonade/internal/connection"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/rng"
)

// BruteForceOutcome is the result of one brute-force race.
type BruteForceOutcome struct {
	Cracked  bool   // attacker recovered the storage before lockout
	Attempts uint64 // guesses made before the race ended
	UserRank uint64 // the rank of the user's passcode in the attacker's ordering
}

// BruteForce fabricates a device whose user picked a passcode according to
// the guessability curve, then lets a popularity-ordered attacker guess
// until the hardware locks, the passcode falls, or the caller's context
// ends. The guess loop is otherwise unbounded — strong passcodes on large
// budgets take millions of iterations — so cancellation is the caller's
// only early exit; a ctx.Err() return reports the attempts made so far.
func BruteForce(ctx context.Context, design dse.Design, curve *password.GuessCurve, r *rng.RNG) (BruteForceOutcome, error) {
	rank := uint64(curve.SampleRank(r.Derive("user")))
	pass := password.PasswordString(rank)
	dev, err := connection.NewDevice(design, pass, []byte("user data"), r.Derive("fab"))
	if err != nil {
		return BruteForceOutcome{}, err
	}
	out := BruteForceOutcome{UserRank: rank}
	for guess := uint64(1); ; guess++ {
		if err := ctx.Err(); err != nil {
			out.Attempts = guess - 1
			return out, err
		}
		_, err := dev.Unlock(password.PasswordString(guess), nems.RoomTemp)
		switch {
		case err == nil:
			out.Cracked = true
			out.Attempts = guess
			return out, nil
		case errors.Is(err, connection.ErrLocked):
			out.Attempts = guess
			return out, nil
		case errors.Is(err, connection.ErrWrongPasscode),
			errors.Is(err, connection.ErrTransient):
			// keep guessing
		default:
			return out, err
		}
	}
}

// BruteForceAnalytic returns the analytic probability that the brute-force
// race ends in a crack: the chance the user's passcode rank falls within
// the hardware's maximum access bound. This is the paper's core security
// metric for the connection use case.
func BruteForceAnalytic(design dse.Design, curve *password.GuessCurve) float64 {
	return curve.SuccessProb(float64(design.MaxAllowedAccesses()))
}

// --- Evil maid ---------------------------------------------------------------------

// EvilMaidOutcome is the result of one evil-maid episode against a pad.
type EvilMaidOutcome struct {
	AdversaryGotKey  bool // the maid assembled >= k right-path components
	ReceiverGotKey   bool // the legitimate retrieval still succeeded afterwards
	TamperSuspicious bool // receiver failed on a fresh-looking pad: evidence of interference
}

// EvilMaid runs one episode: the adversary performs `trials` random-path
// sweeps over the pad (one traversal per copy per sweep) and returns the
// chip; the receiver then performs the legitimate retrieval.
func EvilMaid(p otp.Params, trials int, r *rng.RNG) (EvilMaidOutcome, error) {
	path := r.Intn(p.Paths())
	pad, _, err := otp.Fabricate(p, path, r.Derive("fab"))
	if err != nil {
		return EvilMaidOutcome{}, err
	}
	var out EvilMaidOutcome
	advRNG := r.Derive("maid")
	for i := 0; i < trials; i++ {
		if _, ok := pad.AdversaryTrial(path, nems.RoomTemp, advRNG); ok {
			out.AdversaryGotKey = true
		}
	}
	if _, _, err := pad.Retrieve(path, nems.RoomTemp); err == nil {
		out.ReceiverGotKey = true
	} else {
		// A fresh pad retrieves with probability ReceiverSuccess() ≈ 1;
		// failure right after the device was out of sight is tamper
		// evidence.
		out.TamperSuspicious = true
	}
	return out, nil
}

// --- Availability depletion (§7) ------------------------------------------------

// DepletionOutcome is the result of deliberately burning the usage bound.
type DepletionOutcome struct {
	AttemptsToLock uint64 // wrong-passcode attempts needed to lock the device
	DataExposed    bool   // whether any attempt decrypted the storage
	OwnerLockedOut bool   // availability destroyed for the legitimate user
}

// Depletion has the attacker spam a single wrong passcode until the
// hardware wears out, then the owner tries the right passcode.
func Depletion(design dse.Design, r *rng.RNG) (DepletionOutcome, error) {
	const ownerPass = "owner-passcode"
	dev, err := connection.NewDevice(design, ownerPass, []byte("confidential"), r)
	if err != nil {
		return DepletionOutcome{}, err
	}
	var out DepletionOutcome
	for !dev.Locked() {
		out.AttemptsToLock++
		_, err := dev.Unlock("attacker-spam", nems.RoomTemp)
		if err == nil {
			out.DataExposed = true // cannot happen: wrong passcode
		}
		if errors.Is(err, connection.ErrLocked) {
			break
		}
	}
	if _, err := dev.Unlock(ownerPass, nems.RoomTemp); errors.Is(err, connection.ErrLocked) {
		out.OwnerLockedOut = true
	}
	return out, nil
}
