package attack

import (
	"context"
	"errors"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/otp"
	"lemonade/internal/password"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func smallDesign(t *testing.T, lab int) dse.Design {
	t.Helper()
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         lab,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// weakCurve is a deliberately crackable password population, so the
// "cracked" path of the race is exercised in few attempts.
func weakCurve(t *testing.T) *password.GuessCurve {
	t.Helper()
	c, err := password.NewCurve([]password.Anchor{
		{Guesses: 2, Prob: 0.3},
		{Guesses: 20, Prob: 0.8},
		{Guesses: 1000, Prob: 0.999},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBruteForceRaceEndsEitherWay(t *testing.T) {
	design := smallDesign(t, 60)
	curve := weakCurve(t)
	cracked, locked := 0, 0
	for seed := uint64(0); seed < 20; seed++ {
		out, err := BruteForce(context.Background(), design, curve, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.Cracked {
			cracked++
			if out.Attempts != out.UserRank {
				t.Errorf("cracked at attempt %d but user rank is %d", out.Attempts, out.UserRank)
			}
		} else {
			locked++
			// the hardware must have capped the attempts near its bound
			limit := uint64(design.MaxAllowedAccesses() + 3*design.Copies)
			if out.Attempts > limit {
				t.Errorf("lockout after %d attempts, bound is %d", out.Attempts, limit)
			}
		}
	}
	if cracked == 0 {
		t.Error("weak curve should produce some cracks")
	}
	if locked == 0 {
		t.Error("strong ranks should produce some lockouts")
	}
}

// TestBruteForceHonorsContext: the guess loop is unbounded by design —
// cancellation must end the race promptly, reporting the attempts made
// and the context's own error.
func TestBruteForceHonorsContext(t *testing.T) {
	design := smallDesign(t, 60)
	// A pre-cancelled context stops before the first guess.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := BruteForce(ctx, design, weakCurve(t), rng.New(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Attempts != 0 {
		t.Errorf("cancelled race reported %d attempts, want 0", out.Attempts)
	}
	// A curve whose mass sits beyond any feasible guess count would spin
	// forever; cancelling from another goroutine must break the loop.
	strong, err := password.NewCurve([]password.Anchor{
		{Guesses: 1e15, Prob: 0.5},
		{Guesses: 1e18, Prob: 0.999},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	done := make(chan BruteForceOutcome, 1)
	go func() {
		out, _ := BruteForce(ctx2, design, strong, rng.New(2))
		done <- out
	}()
	cancel2()
	out = <-done
	// The race ended; whatever progress it made is reported faithfully.
	if out.Cracked {
		t.Error("cancelled race against an uncrackable curve reports a crack")
	}
}

func TestBruteForceStrongPopulationRarelyCracks(t *testing.T) {
	// With the realistic Ur et al. curve, a 60-access budget cracks almost
	// nobody: the analytic crack probability is the curve at the bound.
	design := smallDesign(t, 60)
	p := BruteForceAnalytic(design, password.UrEtAl())
	if p > 1e-3 {
		t.Errorf("analytic crack probability %g should be tiny for a 60-access budget", p)
	}
	// Paper headline: even at the full smartphone budget the crack
	// probability stays below 1%.
	conn := smallDesign(t, 91_250)
	pFull := BruteForceAnalytic(conn, password.UrEtAl())
	if pFull >= 0.01 {
		t.Errorf("crack probability at the 91,250 budget = %g, paper says <1%%", pFull)
	}
}

func TestEvilMaidHighTreeBlocksAdversary(t *testing.T) {
	// H=8: adversary success ~0 analytically; the maid's sweeps should
	// essentially never assemble the key, and frequently leave tamper
	// evidence (worn switches / consumed leaves).
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 8, Copies: 64, K: 8}
	gotKey := 0
	receiverOK := 0
	for seed := uint64(0); seed < 15; seed++ {
		out, err := EvilMaid(p, 3, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.AdversaryGotKey {
			gotKey++
		}
		if out.ReceiverGotKey {
			receiverOK++
		}
	}
	if gotKey > 0 {
		t.Errorf("evil maid obtained the key %d/15 times at H=8", gotKey)
	}
	// A light sweep must not break the legitimate channel (redundancy
	// absorbs it).
	if receiverOK < 12 {
		t.Errorf("receiver succeeded only %d/15 times after a light sweep", receiverOK)
	}
}

func TestEvilMaidAggressiveSweepLeavesTamperEvidence(t *testing.T) {
	// 50 sweeps hammer the shared upper tree levels (the root actuates on
	// every sweep, and mean lifetime is 10 cycles), destroying the pad: the
	// maid still gets nothing, and the receiver sees unmistakable tamper
	// evidence.
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 8, Copies: 64, K: 8}
	suspicious, gotKey := 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		out, err := EvilMaid(p, 50, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.TamperSuspicious {
			suspicious++
		}
		if out.AdversaryGotKey {
			gotKey++
		}
	}
	if gotKey > 0 {
		t.Errorf("aggressive maid obtained the key %d/10 times", gotKey)
	}
	if suspicious < 8 {
		t.Errorf("aggressive sweep left tamper evidence only %d/10 times", suspicious)
	}
}

func TestEvilMaidLowTreeIsDangerous(t *testing.T) {
	// The paper's warning case: a low tree with high redundancy lets the
	// maid assemble the key with non-trivial probability.
	p := otp.Params{Dist: weibull.MustNew(10, 1), Height: 2, Copies: 64, K: 4}
	gotKey := 0
	for seed := uint64(100); seed < 112; seed++ {
		out, err := EvilMaid(p, 1, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.AdversaryGotKey {
			gotKey++
		}
	}
	if gotKey == 0 {
		t.Error("H=2 with generous k should be crackable — the insecure region of Fig 8b")
	}
}

func TestDepletion(t *testing.T) {
	design := smallDesign(t, 40)
	out, err := Depletion(design, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if out.DataExposed {
		t.Error("depletion must never expose data (§7: confidentiality survives)")
	}
	if !out.OwnerLockedOut {
		t.Error("depletion should destroy availability (§7's acknowledged cost)")
	}
	if out.AttemptsToLock == 0 {
		t.Error("lockout should require some attempts")
	}
	limit := uint64(design.MaxAllowedAccesses() + 3*design.Copies)
	if out.AttemptsToLock > limit {
		t.Errorf("lock took %d attempts, bound is %d", out.AttemptsToLock, limit)
	}
}
