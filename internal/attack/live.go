package attack

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"lemonade/api"
)

// live.go aims the paper's §3 adversaries at a RUNNING daemon instead of
// a bare simulated device: every attack below speaks the public HTTP API
// through api.Client, so it exercises the full serving stack — the
// log-ahead durability path, the resilience envelope, and the
// wear-leveling defense — exactly as a network-position attacker would.
//
// Two live attack modes:
//
//   - StressPattern: a wearout accelerator. The attacker cannot read the
//     secret (the /stress route never reconstructs), but can concentrate
//     actuations on chosen share indices under hostile environments —
//     heat-gun hot phases and cold-soak phases cycled per burst — to
//     burn the budget far faster than legitimate use would.
//   - Campaign: availability depletion at scale (§7). N deterministic
//     attackers race M legitimate users on one architecture; the report
//     captures the degradation window (first transient → lockout) and
//     the confidentiality invariants: the attacker sees zero key bytes,
//     and total reveals never exceed the designed budget.

// StressPlan shapes one attacker's burst sequence. The zero value is not
// runnable: Bursts and Indices are required.
type StressPlan struct {
	Indices []int // share indices to concentrate wear on
	// HotTemp/ColdTemp are the cycled environments; zero means room
	// temperature for that phase (a pure hot attack sets only HotTemp).
	HotTemp  float64
	ColdTemp float64
	// Period is the phase length in bursts: bursts [0,Period) run hot,
	// [Period,2·Period) cold, and so on. Period 0 runs every burst hot.
	Period int
	Pulses int // actuations per index per burst (0 = 1)
	Bursts int // bursts to send
}

// Temperature returns the environment override for burst i — the
// deterministic hot/cold cycle, so a replayed attack sends the identical
// request sequence.
func (p StressPlan) Temperature(i int) float64 {
	if p.Period <= 0 {
		return p.HotTemp
	}
	if (i/p.Period)%2 == 0 {
		return p.HotTemp
	}
	return p.ColdTemp
}

// StressReport summarizes one StressPattern run.
type StressReport struct {
	Bursts     int    // bursts the daemon accepted
	PulsesSent int    // total pulses across accepted bursts
	Conducted  int    // actuations that found a still-working switch
	Stressed   uint64 // daemon's lifetime stress count afterwards
	Remaps     uint64 // wear-leveling rotations the defense performed
	Transients int    // 503 refusals absorbed (no wear consumed)
	// LockedOutAt is the burst index at which the daemon answered 410 —
	// the architecture died under the attack — or -1 if it survived.
	LockedOutAt int
}

// maxStressTransients bounds how many consecutive 503s a stress attacker
// absorbs before concluding the daemon is wedged rather than busy.
const maxStressTransients = 1000

// StressPattern runs one attacker's full burst sequence against the
// architecture. It stops early at lockout (the attack killed the device)
// or when ctx ends; other API failures abort with the error.
func StressPattern(ctx context.Context, c *api.Client, id string, plan StressPlan) (StressReport, error) {
	rep := StressReport{LockedOutAt: -1}
	if plan.Bursts <= 0 {
		return rep, errors.New("attack: stress plan needs at least one burst")
	}
	pulses := plan.Pulses
	if pulses <= 0 {
		pulses = 1
	}
	streak := 0
	for i := 0; i < plan.Bursts; i++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		resp, err := c.Stress(ctx, id, api.StressRequest{
			TempCelsius: plan.Temperature(i),
			Indices:     plan.Indices,
			Pulses:      pulses,
		})
		switch {
		case err == nil:
			streak = 0
			rep.Bursts++
			rep.PulsesSent += resp.Pulses
			rep.Conducted += resp.Conducted
			rep.Stressed = resp.Stressed
			rep.Remaps = resp.Remaps
		case api.IsExhausted(err):
			rep.LockedOutAt = i
			return rep, nil
		case api.IsTransient(err):
			rep.Transients++
			streak++
			if streak >= maxStressTransients {
				return rep, fmt.Errorf("attack: %d consecutive transients, daemon wedged: %w", streak, err)
			}
			i-- // the burst was refused before any wear; resend it
		default:
			return rep, err
		}
	}
	return rep, nil
}

// CampaignConfig parameterizes a depletion campaign: Attackers stress
// workers each running Plan, racing Users legitimate access workers.
type CampaignConfig struct {
	Attackers int        // concurrent stress attackers (default 1)
	Users     int        // concurrent legitimate users (default 1)
	Plan      StressPlan // per-attacker burst sequence
	// MaxUserOps bounds each user's access attempts, a safety valve for
	// configurations that never reach lockout (default 10000).
	MaxUserOps int
	// SecretHex, when set, is the provisioned secret: successful user
	// accesses are checked against it, and every attacker-visible
	// response is scanned for it.
	SecretHex string
}

// CampaignReport is the outcome of one depletion campaign. Operation
// indices come from a single atomic counter stamped across all workers,
// so FirstTransientOp and LockoutOp order attacker and user traffic on
// one global timeline.
type CampaignReport struct {
	AttackerBursts  int    // stress bursts the daemon accepted
	AttackerPulses  int    // total stress pulses landed
	AttackerRemaps  uint64 // defense rotations observed by the attackers
	AttackerReveals int    // attacker-visible responses carrying key bytes — MUST be 0
	UserSuccesses   int    // legitimate reveals (bounded by the design budget)
	UserTransients  int    // 503s users absorbed
	UserDecodeFails int    // 422s users absorbed (conducted but unreconstructable)
	WrongSecrets    int    // successful accesses returning wrong bytes — MUST be 0

	// FirstTransientOp is the global op index of the first degradation
	// signal a user saw; LockoutOp the first 410 anyone saw; -1 if never.
	FirstTransientOp int64
	LockoutOp        int64
}

// DegradationWindow is the number of operations between the first
// user-visible transient and lockout — how much warning the legitimate
// owner gets that an attack is burning their budget. -1 when the
// campaign never exhibited both endpoints.
func (r CampaignReport) DegradationWindow() int64 {
	if r.FirstTransientOp < 0 || r.LockoutOp < 0 {
		return -1
	}
	return r.LockoutOp - r.FirstTransientOp
}

// Campaign races cfg.Attackers stress workers against cfg.Users
// legitimate access workers on one architecture until every worker
// finishes (lockout, plan complete, or op budget spent). The first
// error other than the expected refusals aborts the campaign.
func Campaign(ctx context.Context, c *api.Client, id string, cfg CampaignConfig) (CampaignReport, error) {
	attackers := max(cfg.Attackers, 1)
	users := max(cfg.Users, 1)
	maxUserOps := cfg.MaxUserOps
	if maxUserOps <= 0 {
		maxUserOps = 10000
	}

	var (
		ops            atomic.Int64 // global operation timeline
		firstTransient atomic.Int64
		lockout        atomic.Int64
		bursts         atomic.Int64
		pulses         atomic.Int64
		remaps         atomic.Uint64
		reveals        atomic.Int64
		successes      atomic.Int64
		transients     atomic.Int64
		decodeFails    atomic.Int64
		wrongSecrets   atomic.Int64
	)
	firstTransient.Store(-1)
	lockout.Store(-1)
	noteFirst := func(slot *atomic.Int64, op int64) {
		for {
			cur := slot.Load()
			if cur >= 0 && cur <= op {
				return
			}
			if slot.CompareAndSwap(cur, op) {
				return
			}
		}
	}
	// leaked reports whether an attacker-visible payload carries the
	// provisioned key bytes — the confidentiality invariant, checked
	// against the JSON the attacker actually received.
	leaked := func(v any) bool {
		if cfg.SecretHex == "" {
			return false
		}
		b, err := json.Marshal(v)
		return err == nil && strings.Contains(strings.ToLower(string(b)), strings.ToLower(cfg.SecretHex))
	}

	var wg sync.WaitGroup
	var firstErr atomic.Pointer[error]
	fail := func(err error) {
		if err == nil || errors.Is(err, context.Canceled) {
			return
		}
		e := err
		firstErr.CompareAndSwap(nil, &e)
	}

	pulsesPerBurst := cfg.Plan.Pulses
	if pulsesPerBurst <= 0 {
		pulsesPerBurst = 1
	}
	for a := 0; a < attackers; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			streak := 0
			for i := 0; i < cfg.Plan.Bursts; i++ {
				if ctx.Err() != nil {
					return
				}
				op := ops.Add(1)
				resp, err := c.Stress(ctx, id, api.StressRequest{
					TempCelsius: cfg.Plan.Temperature(i),
					Indices:     cfg.Plan.Indices,
					Pulses:      pulsesPerBurst,
				})
				switch {
				case err == nil:
					streak = 0
					bursts.Add(1)
					pulses.Add(int64(resp.Pulses))
					remaps.Store(resp.Remaps)
					if leaked(resp) {
						reveals.Add(1)
					}
				case api.IsExhausted(err):
					noteFirst(&lockout, op)
					return
				case api.IsTransient(err):
					streak++
					if streak >= maxStressTransients {
						fail(fmt.Errorf("attack: attacker wedged on transients: %w", err))
						return
					}
					i--
				default:
					fail(err)
					return
				}
			}
		}()
	}
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < maxUserOps; n++ {
				if ctx.Err() != nil {
					return
				}
				op := ops.Add(1)
				resp, err := c.Access(ctx, id, api.AccessRequest{})
				switch {
				case err == nil:
					successes.Add(1)
					if cfg.SecretHex != "" && resp.SecretHex != cfg.SecretHex {
						wrongSecrets.Add(1)
					}
				case api.IsExhausted(err):
					noteFirst(&lockout, op)
					return
				case api.IsTransient(err):
					transients.Add(1)
					noteFirst(&firstTransient, op)
				case isDecodeFailed(err):
					decodeFails.Add(1)
					noteFirst(&firstTransient, op)
				default:
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	rep := CampaignReport{
		AttackerBursts:   int(bursts.Load()),
		AttackerPulses:   int(pulses.Load()),
		AttackerRemaps:   remaps.Load(),
		AttackerReveals:  int(reveals.Load()),
		UserSuccesses:    int(successes.Load()),
		UserTransients:   int(transients.Load()),
		UserDecodeFails:  int(decodeFails.Load()),
		WrongSecrets:     int(wrongSecrets.Load()),
		FirstTransientOp: firstTransient.Load(),
		LockoutOp:        lockout.Load(),
	}
	if p := firstErr.Load(); p != nil {
		return rep, *p
	}
	return rep, ctx.Err()
}

// isDecodeFailed reports a 422: the access conducted (wear consumed) but
// reconstruction failed — a degradation signal short of lockout.
func isDecodeFailed(err error) bool {
	var ae *api.Error
	return errors.As(err, &ae) && ae.StatusCode == 422
}
