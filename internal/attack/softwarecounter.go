package attack

import (
	"crypto/sha256"
	"errors"

	"lemonade/internal/password"
	"lemonade/internal/rng"
)

// This file models the software guarding mechanisms the paper's §4 opens
// with — and the published attacks that defeat them — so the wearout
// architecture can be compared against the defense it replaces:
//
//   - iOS-style retry counter that wipes the device after 10 consecutive
//     failures;
//   - the MDSec power-cut attack (cut power before the counter
//     increments but after the validation result leaks);
//   - the Skorobogatov NAND-mirroring attack (snapshot the counter state
//     and restore it every few attempts).
//
// Both attacks reduce the counter to a no-op, which is exactly why the
// paper argues for physically enforced bounds.

// SoftwareCounterDevice is a passcode-guarded device whose only
// brute-force defense is a software retry counter held in NAND.
type SoftwareCounterDevice struct {
	passHash  [32]byte
	failures  int
	wipeAfter int
	wiped     bool
}

// ErrWiped is returned after the retry counter triggers the wipe.
var ErrWiped = errors.New("attack: device wiped by retry counter")

// NewSoftwareCounterDevice builds the iOS-style defense: wipe after
// wipeAfter consecutive failures.
func NewSoftwareCounterDevice(passcode string, wipeAfter int) *SoftwareCounterDevice {
	return &SoftwareCounterDevice{passHash: sha256.Sum256([]byte(passcode)), wipeAfter: wipeAfter}
}

// Unlock validates the passcode, maintaining the retry counter.
func (d *SoftwareCounterDevice) Unlock(passcode string) (bool, error) {
	if d.wiped {
		return false, ErrWiped
	}
	ok := sha256.Sum256([]byte(passcode)) == d.passHash
	if ok {
		d.failures = 0
		return true, nil
	}
	d.failures++
	if d.failures >= d.wipeAfter {
		d.wiped = true
		return false, ErrWiped
	}
	return false, nil
}

// CounterSnapshot is the NAND image an attacker mirrors.
type CounterSnapshot struct{ failures int }

// Snapshot mirrors the counter state (the Skorobogatov attack's copy).
func (d *SoftwareCounterDevice) Snapshot() CounterSnapshot {
	return CounterSnapshot{failures: d.failures}
}

// Restore writes a mirrored NAND image back. The wipe flag is cleared too:
// the "wiped" state lives in the same storage the attacker restores.
func (d *SoftwareCounterDevice) Restore(s CounterSnapshot) {
	d.failures = s.failures
	d.wiped = false
}

// UnlockWithPowerCut is the MDSec attack: the validation result is
// observed but power is cut before the counter write lands, so the
// counter never advances.
func (d *SoftwareCounterDevice) UnlockWithPowerCut(passcode string) (bool, error) {
	if d.wiped {
		return false, ErrWiped
	}
	return sha256.Sum256([]byte(passcode)) == d.passHash, nil
}

// MirrorBruteForce cracks a software-counter device by NAND mirroring:
// snapshot, burn the retry budget, restore, repeat. It returns the number
// of guesses needed. maxGuesses bounds the search.
func MirrorBruteForce(d *SoftwareCounterDevice, maxGuesses uint64) (cracked bool, guesses uint64) {
	snap := d.Snapshot()
	for g := uint64(1); g <= maxGuesses; g++ {
		ok, err := d.Unlock(password.PasswordString(g))
		if ok {
			return true, g
		}
		if err != nil { // wiped: restore the mirrored image and continue
			d.Restore(snap)
		}
	}
	return false, maxGuesses
}

// PowerCutBruteForce cracks via the power-cut primitive: the counter
// simply never increments.
func PowerCutBruteForce(d *SoftwareCounterDevice, maxGuesses uint64) (cracked bool, guesses uint64) {
	for g := uint64(1); g <= maxGuesses; g++ {
		if ok, _ := d.UnlockWithPowerCut(password.PasswordString(g)); ok {
			return true, g
		}
	}
	return false, maxGuesses
}

// SoftwareVsWearout compares defenses for the same user population: the
// probability the attacker cracks a software-counter device (with
// mirroring, effectively unlimited attempts up to its budget) vs the
// wearout architecture (physically capped at hardwareBound attempts).
func SoftwareVsWearout(curve *password.GuessCurve, mirrorBudget uint64, hardwareBound int, r *rng.RNG, trials int) (softCracked, hardCracked float64) {
	var soft, hard int
	for i := 0; i < trials; i++ {
		rank := uint64(curve.SampleRank(r.Derive("user")))
		if rank <= mirrorBudget {
			soft++
		}
		if rank <= uint64(hardwareBound) {
			hard++
		}
		r = r.Split()
	}
	return float64(soft) / float64(trials), float64(hard) / float64(trials)
}
