package attack

import (
	"context"
	"net/http/httptest"
	"testing"

	"lemonade/api"
	"lemonade/internal/server"
)

// liveDaemon boots the real serving stack on an httptest listener and
// returns a typed client for it — the live attacks run the same HTTP
// path an external adversary would.
func liveDaemon(t *testing.T) *api.Client {
	t.Helper()
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c, err := api.NewClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// liveSpec matches the server tests' golden spec: a small, fast design.
var liveSpec = api.SpecRequest{Alpha: 6, Beta: 8, LAB: 30, KFrac: 0.1, ContinuousT: true}

const liveSecretHex = "00112233445566778899aabbccddeeff"

func provisionLive(t *testing.T, c *api.Client, seed uint64, spares int, epoch uint64) *api.ProvisionResponse {
	t.Helper()
	pr, err := c.Provision(context.Background(), api.ProvisionRequest{
		Spec: liveSpec, SecretHex: liveSecretHex, Seed: seed,
		Spares: spares, RemapEpoch: epoch,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

// drainAccesses performs legitimate accesses until lockout and returns
// the number of successful reveals.
func drainAccesses(t *testing.T, c *api.Client, id string) int {
	t.Helper()
	reveals := 0
	for i := 0; i < 10000; i++ {
		resp, err := c.Access(context.Background(), id, api.AccessRequest{})
		switch {
		case err == nil:
			if resp.SecretHex != liveSecretHex {
				t.Fatalf("access revealed wrong bytes: %q", resp.SecretHex)
			}
			reveals++
		case api.IsExhausted(err):
			return reveals
		case api.IsTransient(err), isDecodeFailed(err):
			// degradation; keep going
		default:
			t.Fatal(err)
		}
	}
	t.Fatal("architecture never locked out")
	return reveals
}

// TestStressPlanTemperatureCycle pins the deterministic hot/cold
// schedule: a replayed attack sends bit-identical requests.
func TestStressPlanTemperatureCycle(t *testing.T) {
	p := StressPlan{HotTemp: 400, ColdTemp: -40, Period: 3}
	want := []float64{400, 400, 400, -40, -40, -40, 400}
	for i, w := range want {
		if got := p.Temperature(i); got != w {
			t.Errorf("Temperature(%d) = %g, want %g", i, got, w)
		}
	}
	// Period 0: every burst hot.
	always := StressPlan{HotTemp: 400, ColdTemp: -40}
	for i := 0; i < 5; i++ {
		if got := always.Temperature(i); got != 400 {
			t.Errorf("period-0 Temperature(%d) = %g, want 400", i, got)
		}
	}
}

// TestStressPatternAcceleratesWearout is the attack working as designed:
// a hot-phase stress accelerator aimed at the whole active copy burns
// budget the legitimate owner never gets back. Two identically-seeded
// architectures — one attacked, one left alone — must reveal the secret
// a strictly different number of times, attacked strictly fewer.
func TestStressPatternAcceleratesWearout(t *testing.T) {
	c := liveDaemon(t)
	victim := provisionLive(t, c, 42, 0, 0)
	control := provisionLive(t, c, 42, 0, 0)

	n := victim.Design.N
	indices := make([]int, n)
	for i := range indices {
		indices[i] = i
	}
	// 400 °C runs the wear clock 10×: a short burst sequence kills the
	// active copy's switches outright.
	plan := StressPlan{Indices: indices, HotTemp: 400, Pulses: 5, Bursts: 4}
	rep, err := StressPattern(context.Background(), c, victim.ID, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bursts != plan.Bursts {
		t.Errorf("accepted %d bursts, want %d", rep.Bursts, plan.Bursts)
	}
	if rep.PulsesSent != plan.Bursts*plan.Pulses {
		t.Errorf("pulses sent = %d, want %d", rep.PulsesSent, plan.Bursts*plan.Pulses)
	}
	// Stress never reconstructs and never advances the copy, so the
	// attack alone cannot observe a lockout.
	if rep.LockedOutAt != -1 {
		t.Errorf("stress-only run reported lockout at burst %d", rep.LockedOutAt)
	}
	if rep.Stressed != uint64(rep.PulsesSent) {
		t.Errorf("daemon counted %d stress pulses, attacker sent %d", rep.Stressed, rep.PulsesSent)
	}

	attacked := drainAccesses(t, c, victim.ID)
	baseline := drainAccesses(t, c, control.ID)
	if attacked >= baseline {
		t.Errorf("attacked architecture revealed %d times, unattacked twin %d — the accelerator did nothing",
			attacked, baseline)
	}
	// Confidentiality: fewer reveals, never more — the attack costs the
	// owner availability, not the designer's overrun bound.
	if attacked > victim.Design.MaxAllowedAccesses {
		t.Errorf("attacked reveals %d exceed the designed max %d", attacked, victim.Design.MaxAllowedAccesses)
	}
}

// TestStressPatternDefenseRotates: against the leveled variant the same
// targeted attack triggers wear-leveling rotations, visible in the
// attacker's own responses — the defense does not hide, it outlasts.
func TestStressPatternDefenseRotates(t *testing.T) {
	c := liveDaemon(t)
	pr := provisionLive(t, c, 42, 4, 3)
	plan := StressPlan{Indices: []int{0, 1}, HotTemp: 400, ColdTemp: -40, Period: 2, Pulses: 2, Bursts: 8}
	rep, err := StressPattern(context.Background(), c, pr.ID, plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Remaps == 0 {
		t.Error("targeted stress against the leveled variant never rotated the remap table")
	}
	st, err := c.Status(context.Background(), pr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.WearLeveling == nil {
		t.Fatal("leveled architecture reports no wear_leveling block")
	}
	if st.WearLeveling.Remaps != rep.Remaps {
		t.Errorf("status reports %d remaps, attacker observed %d", st.WearLeveling.Remaps, rep.Remaps)
	}
}

// TestCampaignDepletionInvariants is the at-scale depletion campaign
// (§7) against the wear-leveled daemon: concurrent deterministic
// attackers race legitimate users. Whatever the interleaving, the
// security invariants must hold — the attacker reads zero key bytes,
// reveals never exceed the designed budget, and the degradation window
// (first transient → lockout) is observable on the global op timeline.
func TestCampaignDepletionInvariants(t *testing.T) {
	c := liveDaemon(t)
	pr := provisionLive(t, c, 42, 4, 8)

	cfg := CampaignConfig{
		Attackers: 3,
		Users:     3,
		Plan: StressPlan{
			Indices: []int{0, 1, 2},
			HotTemp: 400, ColdTemp: -40, Period: 4,
			Pulses: 2, Bursts: 120,
		},
		SecretHex: liveSecretHex,
	}
	rep, err := Campaign(context.Background(), c, pr.ID, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Confidentiality intact: no attacker-visible payload carried key
	// bytes, and every legitimate reveal carried the right ones.
	if rep.AttackerReveals != 0 {
		t.Errorf("attacker saw key bytes %d times, want 0", rep.AttackerReveals)
	}
	if rep.WrongSecrets != 0 {
		t.Errorf("%d reveals returned wrong bytes", rep.WrongSecrets)
	}
	// Reveals bounded by the leveled design: spares extend each copy's
	// physical pool from N to N+spares switches, scaling the designed
	// ceiling by (N+spares)/N. Concurrent slack on top: each in-flight
	// access may land after lockout was first observed.
	budget := pr.Design.MaxAllowedAccesses*(pr.Design.N+pr.Spares)/pr.Design.N + cfg.Users
	if rep.UserSuccesses > budget {
		t.Errorf("reveals %d exceed leveled budget %d", rep.UserSuccesses, budget)
	}
	// Availability destroyed: the campaign drove the device to lockout.
	if rep.LockoutOp < 0 {
		t.Errorf("campaign never reached lockout: %+v", rep)
	}
	// The owner got a measurable warning: a transient preceded lockout.
	if rep.FirstTransientOp < 0 {
		t.Errorf("no degradation signal before lockout: %+v", rep)
	}
	if w := rep.DegradationWindow(); w < 0 {
		t.Errorf("degradation window = %d, want >= 0 (%+v)", w, rep)
	}
	// The defense engaged while under fire.
	if rep.AttackerRemaps == 0 {
		t.Error("wear-leveling never rotated during the campaign")
	}
	// Post-lockout, the answer stays 410 forever.
	if _, err := c.Access(context.Background(), pr.ID, api.AccessRequest{}); !api.IsExhausted(err) {
		t.Errorf("post-campaign access = %v, want exhausted", err)
	}
}

// TestCampaignAgainstPlainArchitecture: the campaign also runs against
// unleveled hardware (the attack predates the defense) — same
// confidentiality invariants, no rotations.
func TestCampaignAgainstPlainArchitecture(t *testing.T) {
	c := liveDaemon(t)
	pr := provisionLive(t, c, 7, 0, 0)
	rep, err := Campaign(context.Background(), c, pr.ID, CampaignConfig{
		Attackers: 2,
		Users:     2,
		Plan:      StressPlan{Indices: []int{0}, HotTemp: 400, Pulses: 2, Bursts: 80},
		SecretHex: liveSecretHex,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AttackerReveals != 0 || rep.WrongSecrets != 0 {
		t.Errorf("confidentiality violated: %+v", rep)
	}
	if rep.AttackerRemaps != 0 {
		t.Errorf("unleveled architecture reported %d remaps", rep.AttackerRemaps)
	}
	if rep.LockoutOp < 0 {
		t.Errorf("depletion never locked the device: %+v", rep)
	}
	if rep.UserSuccesses > pr.Design.MaxAllowedAccesses+2 {
		t.Errorf("reveals %d exceed designed max %d", rep.UserSuccesses, pr.Design.MaxAllowedAccesses)
	}
}
