package shamir_test

import (
	"fmt"

	"lemonade/internal/rng"
	"lemonade/internal/shamir"
)

// ExampleSplit shows the (k, n) threshold sharing used by the encoded
// architectures: 3 of 5 shares reconstruct, 2 reveal nothing.
func ExampleSplit() {
	r := rng.New(42)
	shares, err := shamir.Split([]byte("storage key"), 3, 5, r)
	if err != nil {
		panic(err)
	}
	secret, err := shamir.Combine(shares[1:4], 3) // any 3 of the 5
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", secret)

	_, err = shamir.Combine(shares[:2], 3) // 2 are never enough
	fmt.Println(err != nil)
	// Output:
	// storage key
	// true
}
