// Package shamir implements Shamir's (k, n) threshold secret-sharing scheme
// over GF(2^8), the redundant-encoding mechanism of §4.1.4 of the paper.
//
// A secret byte string is encoded into n component shares such that any k
// shares reconstruct the secret exactly, while k-1 or fewer shares reveal
// no information about it. The paper stores each component in a
// read-destructive memory behind a NEMS structure; device failures show up
// as share *erasures*, which the scheme tolerates by design.
//
// Share x-coordinates are 1..n (x = 0 would leak the secret directly, since
// the secret is the constant coefficient q(0)).
package shamir

import (
	"errors"
	"fmt"

	"lemonade/internal/gf256"
	"lemonade/internal/rng"
)

// MaxShares is the largest supported n: the field has 255 usable nonzero
// x-coordinates.
const MaxShares = 255

// Share is one component of a split secret.
type Share struct {
	X    byte   // evaluation point, 1..n
	Data []byte // q_i(X) for each secret byte i
}

// Clone returns a deep copy of the share.
func (s Share) Clone() Share {
	d := make([]byte, len(s.Data))
	copy(d, s.Data)
	return Share{X: s.X, Data: d}
}

var (
	// ErrTooFewShares is returned by Combine when fewer than the threshold
	// number of distinct shares are supplied.
	ErrTooFewShares = errors.New("shamir: not enough shares to reconstruct")
	// ErrInconsistent is returned when shares disagree on length.
	ErrInconsistent = errors.New("shamir: shares have inconsistent lengths")
)

// Split encodes secret into n shares with threshold k. Every byte of the
// secret is embedded as the constant term of an independent random
// polynomial of degree k-1 (Eq 7 of the paper), evaluated at x = 1..n.
func Split(secret []byte, k, n int, r *rng.RNG) ([]Share, error) {
	if k < 1 {
		return nil, fmt.Errorf("shamir: threshold k must be >= 1, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("shamir: n (%d) must be >= k (%d)", n, k)
	}
	if n > MaxShares {
		return nil, fmt.Errorf("shamir: n must be <= %d, got %d", MaxShares, n)
	}
	if len(secret) == 0 {
		return nil, errors.New("shamir: empty secret")
	}
	shares := make([]Share, n)
	for i := range shares {
		shares[i] = Share{X: byte(i + 1), Data: make([]byte, len(secret))}
	}
	coeffs := make(gf256.Polynomial, k)
	for b, s := range secret {
		coeffs[0] = s
		for j := 1; j < k; j++ {
			coeffs[j] = byte(r.Intn(256))
		}
		for i := range shares {
			shares[i].Data[b] = coeffs.Eval(shares[i].X)
		}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k distinct shares.
// Extra shares beyond k are ignored (the first k distinct ones are used),
// mirroring a receiver that stops reading components once enough paths
// succeeded.
func Combine(shares []Share, k int) ([]byte, error) {
	if k < 1 {
		return nil, fmt.Errorf("shamir: threshold k must be >= 1, got %d", k)
	}
	distinct := make([]Share, 0, k)
	seen := map[byte]bool{}
	for _, s := range shares {
		if s.X == 0 {
			return nil, errors.New("shamir: share with x=0 is invalid")
		}
		if seen[s.X] {
			continue
		}
		seen[s.X] = true
		distinct = append(distinct, s)
		if len(distinct) == k {
			break
		}
	}
	if len(distinct) < k {
		return nil, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShares, len(distinct), k)
	}
	length := len(distinct[0].Data)
	for _, s := range distinct {
		if len(s.Data) != length {
			return nil, ErrInconsistent
		}
	}
	xs := make([]byte, k)
	for i, s := range distinct {
		xs[i] = s.X
	}
	secret := make([]byte, length)
	ys := make([]byte, k)
	for b := 0; b < length; b++ {
		for i, s := range distinct {
			ys[i] = s.Data[b]
		}
		v, err := gf256.Interpolate(xs, ys, 0)
		if err != nil {
			return nil, err
		}
		secret[b] = v
	}
	return secret, nil
}
