// Package shamir implements Shamir's (k, n) threshold secret-sharing scheme
// over GF(2^8), the redundant-encoding mechanism of §4.1.4 of the paper.
//
// A secret byte string is encoded into n component shares such that any k
// shares reconstruct the secret exactly, while k-1 or fewer shares reveal
// no information about it. The paper stores each component in a
// read-destructive memory behind a NEMS structure; device failures show up
// as share *erasures*, which the scheme tolerates by design.
//
// Share x-coordinates are 1..n (x = 0 would leak the secret directly, since
// the secret is the constant coefficient q(0)).
package shamir

import (
	"errors"

	"lemonade/internal/rng"
)

// MaxShares is the largest supported n: the field has 255 usable nonzero
// x-coordinates.
const MaxShares = 255

// Share is one component of a split secret.
type Share struct {
	X    byte   // evaluation point, 1..n
	Data []byte // q_i(X) for each secret byte i
}

// Clone returns a deep copy of the share.
func (s Share) Clone() Share {
	d := make([]byte, len(s.Data))
	copy(d, s.Data)
	return Share{X: s.X, Data: d}
}

var (
	// ErrTooFewShares is returned by Combine when fewer than the threshold
	// number of distinct shares are supplied.
	ErrTooFewShares = errors.New("shamir: not enough shares to reconstruct")
	// ErrInconsistent is returned when shares disagree on length.
	ErrInconsistent = errors.New("shamir: shares have inconsistent lengths")
)

// Split encodes secret into n shares with threshold k. Every byte of the
// secret is embedded as the constant term of an independent random
// polynomial of degree k-1 (Eq 7 of the paper), evaluated at x = 1..n.
// It is the allocating wrapper around SplitInto.
func Split(secret []byte, k, n int, r *rng.RNG) ([]Share, error) {
	var shares []Share
	if k >= 1 && n >= k && n <= MaxShares {
		shares = make([]Share, n)
	}
	if err := SplitInto(secret, shares, k, n, r); err != nil {
		return nil, err
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k distinct shares.
// Extra shares beyond k are ignored (the first k distinct ones are used),
// mirroring a receiver that stops reading components once enough paths
// succeeded. It is the allocating wrapper around CombineInto; the first
// share's length sizes the destination, which CombineInto's consistency
// check then holds every used share to.
func Combine(shares []Share, k int) ([]byte, error) {
	var dst []byte
	if len(shares) > 0 {
		dst = make([]byte, len(shares[0].Data))
	}
	n, err := CombineInto(shares, k, dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}
