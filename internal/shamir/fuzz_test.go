package shamir

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

// FuzzShamirReconstruct attacks Combine from the receiver's side: valid
// share subsets must round-trip, while corrupted inputs — duplicated
// x-coordinates, truncated share data, flipped bytes, an x=0 share —
// must produce a clean error or a wrong secret, never a panic. The
// paper's receiver consumes shares read from half-dead hardware, so
// Combine's failure mode under damage is part of the security surface.
func FuzzShamirReconstruct(f *testing.F) {
	f.Add([]byte("limited-use secret"), uint8(3), uint8(6), uint64(1), uint8(0), uint8(0))
	f.Add([]byte{0xff}, uint8(1), uint8(3), uint64(2), uint8(1), uint8(7))
	f.Add([]byte("0123456789abcdef"), uint8(5), uint8(12), uint64(3), uint8(2), uint8(255))
	f.Fuzz(func(t *testing.T, secret []byte, k8, n8 uint8, seed uint64, mode, corrupt uint8) {
		k := int(k8%16) + 1
		n := k + int(n8%32)
		if len(secret) == 0 || len(secret) > 128 {
			return
		}
		r := rng.New(seed)
		shares, err := Split(secret, k, n, r)
		if err != nil {
			t.Fatalf("Split(k=%d, n=%d): %v", k, n, err)
		}
		subset := make([]Share, k)
		for i, idx := range r.Perm(n)[:k] {
			subset[i] = shares[idx].Clone()
		}

		switch mode % 4 {
		case 0: // pristine subset must round-trip
			got, err := Combine(subset, k)
			if err != nil {
				t.Fatalf("Combine on valid shares: %v", err)
			}
			if !bytes.Equal(got, secret) {
				t.Fatalf("valid shares reconstructed %x, want %x", got, secret)
			}
		case 1: // duplicate x-coordinate: k distinct no longer available
			if k < 2 {
				return
			}
			subset[0].X = subset[1].X
			if _, err := Combine(subset, k); err == nil {
				t.Fatal("Combine succeeded with a duplicated share coordinate")
			}
		case 2: // truncated share data must error cleanly, not panic
			// (k=1 is exempt: a lone share has no sibling to disagree with)
			if k < 2 {
				return
			}
			subset[int(corrupt)%k].Data = subset[int(corrupt)%k].Data[:len(secret)/2]
			if _, err := Combine(subset, k); err == nil {
				t.Fatal("Combine succeeded with truncated share data")
			}
		case 3: // flipped share byte: reconstruction proceeds but must not
			// return the true secret when the damage is inside the used
			// subset (Lagrange has no integrity check; callers layer one)
			s := &subset[int(corrupt)%k]
			s.Data[int(seed)%len(s.Data)] ^= 1 + corrupt%255
			got, err := Combine(subset, k)
			if err != nil {
				return
			}
			if k > 1 && bytes.Equal(got, secret) {
				t.Fatal("corrupted share subset still reconstructed the true secret")
			}
		}
	})
}

func FuzzSplitCombine(f *testing.F) {
	f.Add([]byte("seed secret"), uint8(3), uint8(5), uint64(1))
	f.Add([]byte{0}, uint8(1), uint8(1), uint64(2))
	f.Add([]byte{255, 0, 127}, uint8(8), uint8(128), uint64(3))
	f.Fuzz(func(t *testing.T, secret []byte, k8, n8 uint8, seed uint64) {
		k := int(k8%32) + 1
		n := k + int(n8%64)
		if len(secret) == 0 || len(secret) > 256 {
			return
		}
		r := rng.New(seed)
		shares, err := Split(secret, k, n, r)
		if err != nil {
			t.Fatalf("Split(k=%d, n=%d): %v", k, n, err)
		}
		// combine from the last k shares (any subset must work)
		got, err := Combine(shares[n-k:], k)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("round trip failed: %x != %x", got, secret)
		}
		// k-1 shares must never reconstruct
		if k > 1 {
			if _, err := Combine(shares[:k-1], k); err == nil {
				t.Fatal("below-threshold reconstruction succeeded")
			}
		}
	})
}
