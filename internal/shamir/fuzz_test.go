package shamir

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

func FuzzSplitCombine(f *testing.F) {
	f.Add([]byte("seed secret"), uint8(3), uint8(5), uint64(1))
	f.Add([]byte{0}, uint8(1), uint8(1), uint64(2))
	f.Add([]byte{255, 0, 127}, uint8(8), uint8(128), uint64(3))
	f.Fuzz(func(t *testing.T, secret []byte, k8, n8 uint8, seed uint64) {
		k := int(k8%32) + 1
		n := k + int(n8%64)
		if len(secret) == 0 || len(secret) > 256 {
			return
		}
		r := rng.New(seed)
		shares, err := Split(secret, k, n, r)
		if err != nil {
			t.Fatalf("Split(k=%d, n=%d): %v", k, n, err)
		}
		// combine from the last k shares (any subset must work)
		got, err := Combine(shares[n-k:], k)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if !bytes.Equal(got, secret) {
			t.Fatalf("round trip failed: %x != %x", got, secret)
		}
		// k-1 shares must never reconstruct
		if k > 1 {
			if _, err := Combine(shares[:k-1], k); err == nil {
				t.Fatal("below-threshold reconstruction succeeded")
			}
		}
	})
}
