package shamir

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

func TestSplitIntoMatchesSplit(t *testing.T) {
	secret := make([]byte, 48)
	for i := range secret {
		secret[i] = byte(i * 5)
	}
	want, err := Split(secret, 6, 19, rng.New(77))
	if err != nil {
		t.Fatal(err)
	}
	// Destination with stale X values and a mix of nil, short, and
	// oversized dirty Data buffers.
	shares := make([]Share, 19)
	for i := range shares {
		shares[i].X = 0xEE
		if i%2 == 0 {
			shares[i].Data = bytes.Repeat([]byte{0xDB}, 8+i*7)
		}
	}
	if err := SplitInto(secret, shares, 6, 19, rng.New(77)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if shares[i].X != want[i].X || !bytes.Equal(shares[i].Data, want[i].Data) {
			t.Fatalf("share %d differs between Split and SplitInto", i)
		}
	}
}

func TestCombineIntoMatchesCombine(t *testing.T) {
	secret := make([]byte, 31)
	for i := range secret {
		secret[i] = byte(i*11 + 3)
	}
	shares, err := Split(secret, 5, 12, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	pick := []Share{shares[11], shares[3], shares[11], shares[7], shares[0], shares[9], shares[2]}
	want, err := Combine(pick, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, secret) {
		t.Fatal("Combine did not round-trip")
	}
	dst := bytes.Repeat([]byte{0xDB}, len(secret)+9)
	n, err := CombineInto(pick, 5, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(dst[:n], want) {
		t.Fatalf("CombineInto differs from Combine (n=%d)", n)
	}
	for i := n; i < len(dst); i++ {
		if dst[i] != 0xDB {
			t.Fatalf("CombineInto wrote past its return length at %d", i)
		}
	}
}

func TestIntoErrors(t *testing.T) {
	secret := []byte{1, 2, 3}
	if err := SplitInto(secret, make([]Share, 4), 2, 5, rng.New(1)); err == nil {
		t.Error("SplitInto accepted a destination shorter than n")
	}
	shares, err := Split(secret, 3, 5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CombineInto(shares, 3, make([]byte, 2)); err == nil {
		t.Error("CombineInto accepted a too-short dst")
	}
	if _, err := CombineInto(shares[:2], 3, make([]byte, 3)); err == nil {
		t.Error("CombineInto accepted too few shares")
	}
}

func TestIntoNoAllocsSteadyState(t *testing.T) {
	secret := make([]byte, 64)
	for i := range secret {
		secret[i] = byte(i)
	}
	const k, n = 8, 24
	shares := make([]Share, n)
	r := rng.New(99)
	if err := SplitInto(secret, shares, k, n, r); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(secret))
	if a := testing.AllocsPerRun(200, func() {
		if err := SplitInto(secret, shares, k, n, r); err != nil {
			t.Fatal(err)
		}
	}); a >= 1 {
		t.Errorf("SplitInto steady state allocates %v times per call", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if _, err := CombineInto(shares, k, dst); err != nil {
			t.Fatal(err)
		}
	}); a >= 1 {
		t.Errorf("CombineInto steady state allocates %v times per call", a)
	}
}

// FuzzSplitCombineInto cross-checks the destination-buffer paths against
// the allocating wrappers: equal RNG states and inputs must produce
// identical shares and reconstructions.
func FuzzSplitCombineInto(f *testing.F) {
	f.Add(uint8(3), uint8(7), uint64(42), []byte("secret material"))
	f.Add(uint8(1), uint8(1), uint64(0), []byte{0})
	f.Add(uint8(40), uint8(90), uint64(7), []byte("x"))
	f.Fuzz(func(t *testing.T, kb, nb uint8, seed uint64, secret []byte) {
		k := int(kb)%32 + 1
		n := k + int(nb)%32
		if len(secret) == 0 {
			secret = []byte{0x42}
		}
		want, err := Split(secret, k, n, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		shares := make([]Share, n)
		if err := SplitInto(secret, shares, k, n, rng.New(seed)); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if shares[i].X != want[i].X || !bytes.Equal(shares[i].Data, want[i].Data) {
				t.Fatalf("share %d differs between Split and SplitInto", i)
			}
		}
		// Reconstruct from a rotated window of k shares plus a duplicate.
		pick := make([]Share, 0, k+1)
		for i := 0; i < k; i++ {
			pick = append(pick, shares[(i+int(seed))%n])
		}
		pick = append(pick, pick[0])
		wantSecret, wantErr := Combine(pick, k)
		dst := make([]byte, len(secret))
		gotN, gotErr := CombineInto(pick, k, dst)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("Combine err=%v, CombineInto err=%v", wantErr, gotErr)
		}
		if wantErr == nil {
			if gotN != len(wantSecret) || !bytes.Equal(dst[:gotN], wantSecret) {
				t.Fatal("CombineInto output differs from Combine")
			}
			if !bytes.Equal(wantSecret, secret) {
				t.Fatal("round-trip failed")
			}
		}
	})
}
