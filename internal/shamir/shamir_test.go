package shamir

import (
	"bytes"
	"errors"
	"testing"

	"lemonade/internal/rng"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	r := rng.New(1)
	secret := []byte("the storage decryption key 12345")
	for _, kc := range []struct{ k, n int }{{1, 1}, {1, 5}, {2, 3}, {3, 5}, {8, 128}, {30, 60}} {
		shares, err := Split(secret, kc.k, kc.n, r)
		if err != nil {
			t.Fatalf("Split(k=%d,n=%d): %v", kc.k, kc.n, err)
		}
		if len(shares) != kc.n {
			t.Fatalf("got %d shares, want %d", len(shares), kc.n)
		}
		got, err := Combine(shares[:kc.k], kc.k)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if !bytes.Equal(got, secret) {
			t.Errorf("k=%d n=%d: reconstructed %q, want %q", kc.k, kc.n, got, secret)
		}
	}
}

func TestCombineAnySubset(t *testing.T) {
	r := rng.New(2)
	secret := []byte{0x00, 0xFF, 0x42, 0x17}
	const k, n = 3, 7
	shares, err := Split(secret, k, n, r)
	if err != nil {
		t.Fatal(err)
	}
	// every 3-subset must reconstruct
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for l := j + 1; l < n; l++ {
				got, err := Combine([]Share{shares[i], shares[j], shares[l]}, k)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, secret) {
					t.Fatalf("subset (%d,%d,%d) failed to reconstruct", i, j, l)
				}
			}
		}
	}
}

func TestCombineWithErasures(t *testing.T) {
	// This is the paper's usage: device failures erase shares; any k of n
	// surviving shares suffice.
	r := rng.New(3)
	secret := []byte("one-time pad random key material")
	shares, err := Split(secret, 8, 128, r)
	if err != nil {
		t.Fatal(err)
	}
	// drop 120 of 128 shares (keep an arbitrary scattered 8)
	survivors := []Share{shares[0], shares[13], shares[42], shares[60], shares[77], shares[99], shares[101], shares[127]}
	got, err := Combine(survivors, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Error("erasure recovery failed")
	}
}

func TestTooFewShares(t *testing.T) {
	r := rng.New(4)
	shares, _ := Split([]byte("secret"), 3, 5, r)
	_, err := Combine(shares[:2], 3)
	if !errors.Is(err, ErrTooFewShares) {
		t.Errorf("expected ErrTooFewShares, got %v", err)
	}
}

func TestDuplicateSharesDontCount(t *testing.T) {
	r := rng.New(5)
	shares, _ := Split([]byte("secret"), 3, 5, r)
	_, err := Combine([]Share{shares[0], shares[0], shares[0]}, 3)
	if !errors.Is(err, ErrTooFewShares) {
		t.Errorf("duplicates should not satisfy the threshold, got %v", err)
	}
	// but duplicates alongside enough distinct shares are fine
	got, err := Combine([]Share{shares[0], shares[0], shares[1], shares[2]}, 3)
	if err != nil || !bytes.Equal(got, []byte("secret")) {
		t.Errorf("duplicates+distinct failed: %v %q", err, got)
	}
}

func TestKMinusOneSharesRevealNothing(t *testing.T) {
	// Information-theoretic check: with k-1 shares fixed, every candidate
	// secret byte is consistent with some polynomial. We verify the weaker
	// statistical property that the share bytes of two different secrets
	// are identically distributed by comparing byte histograms.
	const trials = 2000
	counts0 := make([]int, 256)
	counts1 := make([]int, 256)
	r0, r1 := rng.New(42), rng.New(42)
	for i := 0; i < trials; i++ {
		s0, _ := Split([]byte{0x00}, 2, 3, r0)
		s1, _ := Split([]byte{0xFF}, 2, 3, r1)
		counts0[s0[0].Data[0]]++
		counts1[s1[0].Data[0]]++
	}
	// chi-square-ish: no byte value should dominate for either secret
	for v := 0; v < 256; v++ {
		if counts0[v] > trials/16 || counts1[v] > trials/16 {
			t.Fatalf("share byte value %d appears too often (secret leak?)", v)
		}
	}
}

func TestSplitValidation(t *testing.T) {
	r := rng.New(6)
	if _, err := Split([]byte("x"), 0, 5, r); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Split([]byte("x"), 6, 5, r); err == nil {
		t.Error("n<k should error")
	}
	if _, err := Split([]byte("x"), 2, 300, r); err == nil {
		t.Error("n>255 should error")
	}
	if _, err := Split(nil, 2, 5, r); err == nil {
		t.Error("empty secret should error")
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine([]Share{{X: 1, Data: []byte{1}}}, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Combine([]Share{{X: 0, Data: []byte{1}}}, 1); err == nil {
		t.Error("x=0 share should error")
	}
	bad := []Share{{X: 1, Data: []byte{1, 2}}, {X: 2, Data: []byte{1}}}
	if _, err := Combine(bad, 2); !errors.Is(err, ErrInconsistent) {
		t.Errorf("inconsistent lengths should error, got %v", err)
	}
}

func TestShareClone(t *testing.T) {
	s := Share{X: 3, Data: []byte{1, 2, 3}}
	c := s.Clone()
	c.Data[0] = 99
	if s.Data[0] != 1 {
		t.Error("Clone aliases the original data")
	}
}

func TestK1IsReplication(t *testing.T) {
	// With k=1 the polynomial is constant: every share equals the secret.
	r := rng.New(7)
	secret := []byte{9, 8, 7}
	shares, err := Split(secret, 1, 4, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shares {
		if !bytes.Equal(s.Data, secret) {
			t.Errorf("k=1 share %d differs from secret", s.X)
		}
	}
}
