package shamir

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lemonade/internal/rng"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// The golden file pins the exact output bytes of Split and Combine for a
// grid of (secret, k, n) scenarios at fixed RNG seeds. It was generated
// from the pre-kernel scalar implementation; the slice-kernel rewrite
// must reproduce it bit for bit (field arithmetic is exact, so any
// divergence is a bug, not rounding).
func goldenDigests(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	scenarios := []struct {
		secretLen, k, n int
		seed            uint64
	}{
		{1, 1, 1, 1},
		{1, 2, 3, 2},
		{32, 2, 3, 42},
		{32, 15, 141, 42},
		{33, 5, 5, 7},
		{64, 8, 20, 99},
		{7, 255, 255, 13},
	}
	for _, sc := range scenarios {
		secret := make([]byte, sc.secretLen)
		for i := range secret {
			secret[i] = byte(i*37 + 11)
		}
		r := rng.New(sc.seed)
		shares, err := Split(secret, sc.k, sc.n, r)
		if err != nil {
			t.Fatalf("Split(%d,%d,%d): %v", sc.secretLen, sc.k, sc.n, err)
		}
		h := sha256.New()
		for _, s := range shares {
			h.Write([]byte{s.X})
			h.Write(s.Data)
		}
		// Post-split RNG state is part of the contract: the rewrite must
		// draw exactly the same number of values in the same order.
		for _, w := range r.State() {
			fmt.Fprintf(h, "%016x", w)
		}
		fmt.Fprintf(&b, "split/%d/%d/%d/%d %s\n", sc.secretLen, sc.k, sc.n, sc.seed, hex.EncodeToString(h.Sum(nil)))

		// Combine from the LAST k shares, reversed, with a duplicate of
		// the first picked share appended (dedup must ignore it).
		pick := make([]Share, 0, sc.k+1)
		for i := len(shares) - 1; i >= len(shares)-sc.k; i-- {
			pick = append(pick, shares[i])
		}
		pick = append(pick, shares[len(shares)-1])
		got, err := Combine(pick, sc.k)
		if err != nil {
			t.Fatalf("Combine(%d,%d,%d): %v", sc.secretLen, sc.k, sc.n, err)
		}
		sum := sha256.Sum256(got)
		fmt.Fprintf(&b, "combine/%d/%d/%d/%d %s\n", sc.secretLen, sc.k, sc.n, sc.seed, hex.EncodeToString(sum[:]))
	}
	return b.String()
}

func TestGoldenSplitCombine(t *testing.T) {
	got := goldenDigests(t)
	path := filepath.Join("testdata", "shamir.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
