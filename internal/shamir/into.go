package shamir

import (
	"errors"
	"fmt"
	"sync"

	"lemonade/internal/gf256"
	"lemonade/internal/rng"
)

// scratch is the per-call working set of SplitInto/CombineInto: the random
// coefficient rows for a split, and the survivor bookkeeping for a combine.
// Instances cycle through scratchPool; every field is length-set and fully
// written before it is read, so whether a call gets a recycled or a fresh
// instance never influences output bytes.
type scratch struct {
	arena  []byte
	rows   [][]byte
	xs     []byte
	coeffs []byte
	dist   []int
}

// scratchPool recycles scratch across calls. The New field is the
// deterministic fallback lemonvet's nodeterminism pass insists on: a pool
// miss constructs a zero-value scratch whose buffers are grown on demand,
// making Get-hit and Get-miss behaviorally identical.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// growBytes returns b resized to n bytes, reusing its backing array when
// the capacity allows. Contents are unspecified; callers overwrite fully.
func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

func growInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

// rowBuf carves rows slices of width bytes each out of the arena.
func (s *scratch) rowBuf(rows, width int) [][]byte {
	s.arena = growBytes(s.arena, rows*width)
	if cap(s.rows) < rows {
		s.rows = make([][]byte, rows)
	}
	rs := s.rows[:rows]
	for i := range rs {
		rs[i] = s.arena[i*width : (i+1)*width]
	}
	return rs
}

// SplitInto is the destination-buffer form of Split: it encodes secret into
// shares, which must have length n. Share Data arrays are reused when they
// have capacity and reallocated otherwise; X coordinates are (re)assigned
// to 1..n. It draws from r in exactly Split's order — one coefficient per
// (secret byte, degree) pair, degree-major within each byte — so Split and
// SplitInto emit bit-identical shares from equal RNG states.
func SplitInto(secret []byte, shares []Share, k, n int, r *rng.RNG) error {
	if k < 1 {
		return fmt.Errorf("shamir: threshold k must be >= 1, got %d", k)
	}
	if n < k {
		return fmt.Errorf("shamir: n (%d) must be >= k (%d)", n, k)
	}
	if n > MaxShares {
		return fmt.Errorf("shamir: n must be <= %d, got %d", MaxShares, n)
	}
	if len(secret) == 0 {
		return errors.New("shamir: empty secret")
	}
	if len(shares) != n {
		return fmt.Errorf("shamir: destination holds %d shares, need n=%d", len(shares), n)
	}
	for i := range shares {
		shares[i].X = byte(i + 1)
		shares[i].Data = growBytes(shares[i].Data, len(secret))
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	// Random coefficients land in per-degree rows (rows[j-1][b] is the
	// degree-j coefficient of secret byte b) so each share is produced by
	// k-1 MulSliceAdd passes instead of a per-byte Horner loop. The
	// power-sum Σ c_j·x^j it computes equals Horner's evaluation exactly —
	// field arithmetic has no rounding to reorder.
	rows := sc.rowBuf(k-1, len(secret))
	for b := range secret {
		for j := 1; j < k; j++ {
			rows[j-1][b] = byte(r.Intn(256))
		}
	}
	for i := range shares {
		d := shares[i].Data
		copy(d, secret)
		x := shares[i].X
		pw := x
		for j := 0; j < k-1; j++ {
			gf256.MulSliceAdd(d, rows[j], pw)
			pw = gf256.Mul(pw, x)
		}
	}
	return nil
}

// CombineInto reconstructs the secret from at least k distinct shares into
// dst, returning the number of bytes written (the shares' data length).
// dst must be at least that long and must not alias any share's Data.
// Share selection matches Combine: the first k distinct X win, later
// duplicates are ignored, x = 0 is rejected on sight.
func CombineInto(shares []Share, k int, dst []byte) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("shamir: threshold k must be >= 1, got %d", k)
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	dist := growInts(sc.dist, k)[:0]
	var seen [MaxShares + 1]bool
	for si := range shares {
		x := shares[si].X
		if x == 0 {
			return 0, errors.New("shamir: share with x=0 is invalid")
		}
		if seen[x] {
			continue
		}
		seen[x] = true
		dist = append(dist, si)
		if len(dist) == k {
			break
		}
	}
	sc.dist = dist
	if len(dist) < k {
		return 0, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShares, len(dist), k)
	}
	length := len(shares[dist[0]].Data)
	for _, si := range dist {
		if len(shares[si].Data) != length {
			return 0, ErrInconsistent
		}
	}
	if len(dst) < length {
		return 0, fmt.Errorf("shamir: dst holds %d bytes, need %d", len(dst), length)
	}
	sc.xs = growBytes(sc.xs, k)
	sc.coeffs = growBytes(sc.coeffs, k)
	for i, si := range dist {
		sc.xs[i] = shares[si].X
	}
	// The secret is q(0) = Σ_i L_i(0)·share_i — k scalar Lagrange weights,
	// then one MulSliceAdd sweep per share.
	if err := gf256.LagrangeCoeffs(sc.xs, 0, sc.coeffs); err != nil {
		return 0, err
	}
	out := dst[:length]
	for i := range out {
		out[i] = 0
	}
	for i, si := range dist {
		gf256.MulSliceAdd(out, shares[si].Data, sc.coeffs[i])
	}
	return length, nil
}
