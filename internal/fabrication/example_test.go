package fabrication_test

import (
	"fmt"

	"lemonade/internal/dse"
	"lemonade/internal/fabrication"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// ExampleSweep answers the paper's third design question for a concrete
// pricing model: which process consistency minimizes total cost?
func ExampleSweep() {
	spec := dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	}
	points, err := fabrication.Sweep(spec, fabrication.DefaultCostModel,
		[]float64{4, 8, 12, 16})
	if err != nil {
		panic(err)
	}
	opt, ok := fabrication.Optimum(points)
	fmt.Println("feasible:", ok)
	fmt.Println("optimal process is interior:", opt.Beta > 4 && opt.Beta < 16)
	// Output:
	// feasible: true
	// optimal process is interior: true
}
