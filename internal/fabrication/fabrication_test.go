package fabrication

import (
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

func connSpec() dse.Spec {
	return dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	}
}

func TestUnitCostShape(t *testing.T) {
	m := DefaultCostModel
	if m.UnitCost(2) != m.BaseDeviceCost {
		t.Error("below base beta, unit cost should be flat")
	}
	if m.UnitCost(4) != m.BaseDeviceCost {
		t.Error("at base beta, unit cost should equal base")
	}
	if !(m.UnitCost(8) > m.UnitCost(6) && m.UnitCost(6) > m.UnitCost(4)) {
		t.Error("unit cost should grow with consistency")
	}
	// power-law exponent: doubling beta costs 2^2.2 ≈ 4.6x
	if got, want := m.UnitCost(8)/m.UnitCost(4), 4.59; got < want*0.99 || got > want*1.01 {
		t.Errorf("power-law scaling broken: %g", got)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultCostModel.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultCostModel
	bad.BaseDeviceCost = 0
	if bad.Validate() == nil {
		t.Error("zero device cost should be invalid")
	}
	bad = DefaultCostModel
	bad.KeyBits = 4
	if bad.Validate() == nil {
		t.Error("tiny KeyBits should be invalid")
	}
	bad = DefaultCostModel
	bad.ConsistencyExponent = -1
	if bad.Validate() == nil {
		t.Error("negative exponent should be invalid")
	}
}

func TestSweepTradeoff(t *testing.T) {
	betas := []float64{4, 6, 8, 10, 12, 14, 16}
	points, err := Sweep(connSpec(), DefaultCostModel, betas)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(betas) {
		t.Fatalf("got %d points", len(points))
	}
	// device count must fall as beta rises (the paper's consistency story)
	var prevDevices int = 1 << 60
	for _, p := range points {
		if !p.Feasible {
			t.Fatalf("β=%g infeasible with encoding", p.Beta)
		}
		if p.TotalDevices > prevDevices {
			t.Errorf("β=%g needs more devices (%d) than a less consistent process (%d)",
				p.Beta, p.TotalDevices, prevDevices)
		}
		prevDevices = p.TotalDevices
		if p.TotalCost <= 0 || p.DeviceCost <= 0 {
			t.Errorf("β=%g: non-positive costs %+v", p.Beta, p)
		}
	}
	// under the default model the optimum is interior: neither the
	// cheapest process (huge device count) nor the most consistent one
	// (very expensive devices) wins.
	opt, ok := Optimum(points)
	if !ok {
		t.Fatal("no feasible optimum")
	}
	if opt.Beta == betas[0] || opt.Beta == betas[len(betas)-1] {
		t.Errorf("optimum at boundary β=%g — trade-off degenerate", opt.Beta)
	}
	t.Logf("optimum at β=%g: %d devices, total cost %.4f", opt.Beta, opt.TotalDevices, opt.TotalCost)
}

func TestOptimumEmpty(t *testing.T) {
	if _, ok := Optimum([]Point{{Feasible: false}}); ok {
		t.Error("no feasible points should yield no optimum")
	}
}

func TestSweepRejectsBadModel(t *testing.T) {
	bad := DefaultCostModel
	bad.BaseBeta = 0
	if _, err := Sweep(connSpec(), bad, []float64{8}); err == nil {
		t.Error("invalid model should be rejected")
	}
}

func TestExtremePricingMovesOptimum(t *testing.T) {
	betas := []float64{4, 8, 12, 16}
	// silicon nearly free, consistency very expensive → low-β process wins
	cheapArea := DefaultCostModel
	cheapArea.AreaCostPerMm2 = 0
	cheapArea.ConsistencyExponent = 6
	pts, err := Sweep(connSpec(), cheapArea, betas)
	if err != nil {
		t.Fatal(err)
	}
	optA, _ := Optimum(pts)
	// consistency free → high-β process wins (fewer devices, less area)
	freeConsistency := DefaultCostModel
	freeConsistency.ConsistencyExponent = 0
	pts, err = Sweep(connSpec(), freeConsistency, betas)
	if err != nil {
		t.Fatal(err)
	}
	optB, _ := Optimum(pts)
	if !(optA.Beta < optB.Beta) {
		t.Errorf("pricing should move the optimum: expensive-consistency β=%g, free-consistency β=%g",
			optA.Beta, optB.Beta)
	}
}
