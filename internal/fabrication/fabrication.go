// Package fabrication explores the paper's third design question (§1):
// "How do we balance the fabrication cost of more consistent devices (in
// terms of wearout) with the area cost of architectural techniques to
// achieve consistency (eg. redundancy and encoding)?"
//
// The paper raises the question and qualitatively answers it through its
// β sweeps (device count explodes as β falls, so cheap inconsistent
// devices cost area). This package makes the trade explicit with a
// parametric fabrication-cost model: process consistency (higher β) costs
// more per wafer, architectural redundancy costs silicon area. Given both
// prices, sweep β and report the total-cost-minimizing process point.
//
// The fabrication cost model is synthetic (no foundry publishes
// consistency pricing for NEMS); its shape — superlinear growth in β — is
// the conservative assumption under which the trade-off is non-trivial in
// both directions.
package fabrication

import (
	"fmt"
	"math"

	"lemonade/internal/dse"
	"lemonade/internal/weibull"
)

// CostModel prices a fabricated architecture.
type CostModel struct {
	// BaseDeviceCost is the unit cost of a device at BaseBeta consistency
	// (arbitrary currency units).
	BaseDeviceCost float64
	// BaseBeta is the process consistency included in the base price.
	BaseBeta float64
	// ConsistencyExponent controls how fast unit cost grows with β:
	// unit(β) = BaseDeviceCost · (β/BaseBeta)^ConsistencyExponent for
	// β > BaseBeta (tightening a process is expensive), flat below.
	ConsistencyExponent float64
	// AreaCostPerMm2 prices the silicon the architecture occupies.
	AreaCostPerMm2 float64
	// KeyBits sizes the share storage in the area model.
	KeyBits int
}

// DefaultCostModel is a reasonable synthetic operating point: consistency
// is costly (quadratic in β) and silicon is cheap but not free. Under this
// pricing the optimum sits at an interior β — inconsistent processes pay
// in redundancy area, ultra-consistent ones in unit cost.
var DefaultCostModel = CostModel{
	BaseDeviceCost:      1e-6,
	BaseBeta:            4,
	ConsistencyExponent: 2.2,
	AreaCostPerMm2:      5_000,
	KeyBits:             256,
}

// Validate checks the model.
func (m CostModel) Validate() error {
	if m.BaseDeviceCost <= 0 || m.BaseBeta <= 0 || m.AreaCostPerMm2 < 0 {
		return fmt.Errorf("fabrication: non-positive cost parameters: %+v", m)
	}
	if m.ConsistencyExponent < 0 {
		return fmt.Errorf("fabrication: negative consistency exponent")
	}
	if m.KeyBits < 8 {
		return fmt.Errorf("fabrication: KeyBits must be >= 8")
	}
	return nil
}

// UnitCost returns the per-device cost at process consistency beta.
func (m CostModel) UnitCost(beta float64) float64 {
	if beta <= m.BaseBeta {
		return m.BaseDeviceCost
	}
	return m.BaseDeviceCost * math.Pow(beta/m.BaseBeta, m.ConsistencyExponent)
}

// Point is one evaluated process choice.
type Point struct {
	Beta         float64
	Design       dse.Design
	Feasible     bool
	DeviceCost   float64 // devices × unit cost
	AreaCost     float64 // silicon
	TotalCost    float64
	TotalDevices int
}

// Sweep evaluates the design problem across process-consistency choices.
// The spec's Dist.Beta is overridden by each sweep value; Dist.Alpha is
// kept (the paper treats α as a lifetime target orthogonal to process
// consistency).
func Sweep(spec dse.Spec, model CostModel, betas []float64) ([]Point, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	out := make([]Point, 0, len(betas))
	for _, beta := range betas {
		s := spec
		s.Dist = weibull.Dist{Alpha: spec.Dist.Alpha, Beta: beta}
		p := Point{Beta: beta}
		d, err := dse.Explore(s)
		if err == nil {
			p.Feasible = true
			p.Design = d
			p.TotalDevices = d.TotalDevices
			p.DeviceCost = float64(d.TotalDevices) * model.UnitCost(beta)
			p.AreaCost = d.Area(model.KeyBits).Mm2() * model.AreaCostPerMm2
			p.TotalCost = p.DeviceCost + p.AreaCost
		}
		out = append(out, p)
	}
	return out, nil
}

// Optimum returns the feasible point with minimum total cost, or false if
// none is feasible.
func Optimum(points []Point) (Point, bool) {
	best := Point{}
	found := false
	for _, p := range points {
		if !p.Feasible {
			continue
		}
		if !found || p.TotalCost < best.TotalCost {
			best = p
			found = true
		}
	}
	return best, found
}
