// Package dse implements the engineering/design-space exploration of
// §4.3, §5 and §6.4 of the paper: given a device wearout model (α, β), a
// legitimate access bound (LAB), an optional higher upper-bound target, and
// fast-degradation criteria, find the cheapest architecture —
//
//	N copies × (k-out-of-n parallel structure)
//
// — that statistically guarantees the system-level usage window.
//
// Construction (§4.1.1–§4.1.4): the LAB is divided across Copies serially
// used structures; each structure must work through its per-copy target T
// with probability ≥ MinWork and be dead by access UpperT+1 with
// probability ≥ 1−MaxOverrun. Without redundant encoding the structure is
// 1-out-of-n (Eq 6); with encoding it is k-out-of-n with k = ⌈KFrac·n⌉
// (Eq 8, realized by Shamir/Reed-Solomon shares).
//
// The search minimizes the total device count Copies·n over the per-copy
// target T. Feasibility uses exact binomial tails, so no-encoding designs
// with n ~ 1e9 and encoded designs with n ~ 1e2 are handled uniformly.
package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"lemonade/internal/cost"
	"lemonade/internal/mathx"
	"lemonade/internal/reliability"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// ErrInfeasible is returned when no architecture meets the criteria for any
// per-copy target.
var ErrInfeasible = errors.New("dse: no feasible design for the given device model and criteria")

// Spec is a design problem.
type Spec struct {
	// Dist is the device wearout model.
	Dist weibull.Dist
	// Criteria are the per-structure fast-degradation criteria.
	Criteria reliability.Criteria
	// LAB is the system-level legitimate access bound (minimum usage).
	LAB int
	// UpperBound is the system-level maximum usage target. Zero means
	// "wear out as quickly as possible after LAB" (UpperBound = LAB).
	// Fig 4d uses 100,000 / 200,000 here (stronger-passcode targets).
	UpperBound int
	// KFrac selects redundant encoding: 0 means no encoding (1-out-of-n);
	// otherwise k = max(1, ceil(KFrac·n)) components are required per
	// access (§4.1.4). Must be < 1.
	KFrac float64
	// MaxPerStructure caps n for encoded searches (default 4,000,000).
	MaxPerStructure int
	// ContinuousT evaluates the degradation criteria at continuous access
	// times, matching the paper's numerical-simulation methodology and
	// producing smooth sweep curves. The default (false) restricts
	// per-copy targets to whole accesses, which is physically exact but
	// quantizes the design space (visible as jagged sweeps, cf. the
	// paper's own remark about Fig 5's "less smooth" curves).
	ContinuousT bool
}

// FieldError is a validation failure attributed to one Spec field, so API
// surfaces (the lemonaded request decoder, CLI flag handlers) can report
// which field to fix without parsing error strings. It unwraps to the
// underlying cause and, like every validation error, satisfies
// errors.Is(err, ErrInvalidSpec).
type FieldError struct {
	Field string // Spec field, e.g. "Dist", "LAB", "KFrac"
	Err   error
}

// Error implements the error interface.
func (e *FieldError) Error() string { return fmt.Sprintf("dse: invalid %s: %v", e.Field, e.Err) }

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *FieldError) Unwrap() error { return e.Err }

// Is reports ErrInvalidSpec so callers can class-match without errors.As.
func (e *FieldError) Is(target error) bool { return target == ErrInvalidSpec }

// ErrInvalidSpec classifies every Spec validation failure.
var ErrInvalidSpec = errors.New("dse: invalid spec")

func fieldErrf(field, format string, args ...any) *FieldError {
	return &FieldError{Field: field, Err: fmt.Errorf(format, args...)}
}

// Validate checks the spec field by field, returning a *FieldError naming
// the first offending field. Callers reject bad Specs up front — before
// paying for a search — with a message they can attribute to an input.
func (s Spec) Validate() error {
	if err := s.Dist.Validate(); err != nil {
		return &FieldError{Field: "Dist", Err: err}
	}
	if err := s.Criteria.Validate(); err != nil {
		return &FieldError{Field: "Criteria", Err: err}
	}
	if s.LAB < 1 {
		return fieldErrf("LAB", "must be >= 1, got %d", s.LAB)
	}
	if s.UpperBound != 0 && s.UpperBound < s.LAB {
		return fieldErrf("UpperBound", "%d below LAB %d", s.UpperBound, s.LAB)
	}
	if s.KFrac < 0 || s.KFrac >= 1 {
		return fieldErrf("KFrac", "must be in [0, 1), got %g", s.KFrac)
	}
	if s.MaxPerStructure < 0 {
		return fieldErrf("MaxPerStructure", "must be >= 0, got %d", s.MaxPerStructure)
	}
	return nil
}

// CacheKey returns a canonical string identifying the design problem: two
// Specs that denote the same search — including ones that differ only in
// defaulted fields (UpperBound 0 vs LAB, MaxPerStructure 0 vs the default
// cap) — share a key. The lemonaded DSE cache uses it so identical
// searches never recompute; it is only meaningful for valid Specs.
func (s Spec) CacheKey() string {
	return fmt.Sprintf("a=%g|b=%g|mw=%g|mo=%g|lab=%d|ub=%d|kf=%g|max=%d|ct=%t",
		s.Dist.Alpha, s.Dist.Beta,
		s.Criteria.MinWork, s.Criteria.MaxOverrun,
		s.LAB, s.upperBound(), s.KFrac, s.maxPerStructure(), s.ContinuousT)
}

func (s Spec) upperBound() int {
	if s.UpperBound == 0 {
		return s.LAB
	}
	return s.UpperBound
}

func (s Spec) maxPerStructure() int {
	if s.MaxPerStructure > 0 {
		return s.MaxPerStructure
	}
	return 4_000_000
}

// Design is a concrete feasible architecture.
type Design struct {
	Spec Spec

	T      int // per-copy reliable access target
	UpperT int // per-copy access bound the copy must be dead past
	N      int // devices per parallel structure
	K      int // survivors required per access (1 = no encoding)
	Copies int // serially used structures

	// TReal and UpperTReal are the continuous per-copy targets when
	// Spec.ContinuousT is set; otherwise they equal float64(T) and
	// float64(UpperT).
	TReal      float64
	UpperTReal float64

	TotalDevices int

	// Analytic guarantees of the chosen design:
	WorkProb    float64 // P(one copy works through T accesses)
	OverrunProb float64 // P(one copy still works at access UpperT+1)
}

// model returns the reliability model of one copy.
func (d Design) model() reliability.Model {
	return reliability.Model{Dist: d.Spec.Dist, N: d.N, K: d.K}
}

// System returns the serial-copies composition for system-level analysis.
func (d Design) System() reliability.System {
	return reliability.System{Copy: d.model(), Copies: d.Copies}
}

// GuaranteedMinAccesses returns the system-level minimum usage this design
// supports: ⌊Copies · TReal⌋ ≥ LAB by construction (accesses are spread
// unevenly across copies, so the per-copy target need not be integral).
func (d Design) GuaranteedMinAccesses() int {
	return int(float64(d.Copies) * d.TReal)
}

// MaxAllowedAccesses returns the system-level maximum usage bound
// ⌈Copies · UpperTReal⌉ — like the paper's "empirical access upper bound"
// it slightly overshoots the LAB (91,326 vs 91,250 in their baseline).
func (d Design) MaxAllowedAccesses() int {
	return int(math.Ceil(float64(d.Copies) * d.UpperTReal))
}

// Area returns the silicon area of the design: switches plus, for encoded
// designs, the component-key storage. The share set is stored once and
// reused across the serial copies, so the storage is proportional to one
// parallel structure (§4.3.2: "proportional to the size of the parallel
// structure"); each of the n shares holds the keyBits-bit component plus
// an 8-bit share index.
func (d Design) Area(keyBits int) cost.Area {
	a := cost.SwitchArea(d.TotalDevices)
	if d.K > 1 {
		a += cost.ShareStorageArea(d.N, keyBits+8)
	}
	return a
}

// EnergyPerAccess returns the switching energy of one access (§4.3.2).
func (d Design) EnergyPerAccess() cost.Energy { return cost.AccessEnergy(d.N) }

// LatencyPerAccess returns the access latency (§4.3.2).
func (d Design) LatencyPerAccess() cost.Latency { return cost.ParallelAccessLatency() }

// Replicate returns the M-way replicated design of §4.1.5: M modules used
// serially (each with its own password), multiplying every usage bound and
// the device count by M.
func (d Design) Replicate(m int) Design {
	if m <= 1 {
		return d
	}
	r := d
	r.Copies *= m
	r.TotalDevices *= m
	r.Spec.LAB *= m
	if r.Spec.UpperBound != 0 {
		r.Spec.UpperBound *= m
	}
	return r
}

// String implements fmt.Stringer.
func (d Design) String() string {
	enc := "no encoding"
	if d.K > 1 {
		enc = fmt.Sprintf("k=%d-of-n encoding", d.K)
	}
	return fmt.Sprintf("Design{%s, %s: %d copies × %d devices (T=%d), total %d}",
		d.Spec.Dist, enc, d.Copies, d.N, d.T, d.TotalDevices)
}

// --- Exploration -------------------------------------------------------------------

// Explore finds the design minimizing total device count over the per-copy
// target T.
func Explore(spec Spec) (Design, error) {
	if err := spec.Validate(); err != nil {
		return Design{}, err
	}
	var (
		best  Design
		found bool
	)
	consider := func(cand Design, ok bool) {
		if ok && (!found || cand.TotalDevices < best.TotalDevices) {
			best = cand
			found = true
		}
	}
	upper := spec.upperBound()
	tMax := 4*spec.Dist.Alpha + 8
	if tMax > float64(upper) {
		tMax = float64(upper)
	}
	if spec.ContinuousT {
		// Coarse grid, then two refinement passes around the best point —
		// the paper's numerical-simulation methodology, where per-copy
		// targets are effectively continuous because accesses can be
		// apportioned unevenly across thousands of copies.
		lo, hi := 1.0, tMax
		for pass := 0; pass < 3; pass++ {
			const steps = 400
			step := (hi - lo) / steps
			if step <= 0 {
				break
			}
			bestT := lo
			for i := 0; i <= steps; i++ {
				t := lo + float64(i)*step
				cand, ok := designAt(spec, t, upper)
				if ok && (!found || cand.TotalDevices < best.TotalDevices) {
					bestT = t
				}
				consider(cand, ok)
			}
			lo = math.Max(1, bestT-2*step)
			hi = math.Min(tMax, bestT+2*step)
		}
	} else {
		for t := 1; float64(t) <= tMax; t++ {
			consider(designAt(spec, float64(t), upper))
		}
	}
	if !found {
		return Design{}, fmt.Errorf("%w: %s", ErrInfeasible, spec.Dist)
	}
	return best, nil
}

// designAt solves the cheapest structure for per-copy target t, returning
// false if infeasible.
func designAt(spec Spec, t float64, upper int) (Design, bool) {
	if t < 1 {
		return Design{}, false
	}
	copies := int(math.Ceil(float64(spec.LAB) / t))
	if copies < 1 {
		copies = 1
	}
	// Per-copy upper bound: each copy must die by upperT+1 so the system
	// stays near `upper` total accesses. With Copies·T already overshooting
	// LAB by up to T−1 (the paper's own baseline upper bound is 91,326 for
	// LAB 91,250), the tightest possible per-copy bound is T itself; a
	// larger explicit UpperBound widens it.
	upperT := t
	if u := float64(upper / copies); u > upperT {
		upperT = u
	}
	rLo := spec.Dist.Reliability(t)          // device survives target
	rHi := spec.Dist.Reliability(upperT + 1) // device survives past bound
	c := spec.Criteria
	var (
		n, k int
		ok   bool
	)
	if spec.KFrac == 0 {
		k = 1
		n, ok = solveUnencoded(rLo, rHi, c)
	} else {
		n, k, ok = solveEncoded(rLo, rHi, c, spec.KFrac, spec.maxPerStructure())
	}
	if !ok {
		return Design{}, false
	}
	total := float64(copies) * float64(n)
	if total > 1e15 {
		// Beyond any physically meaningful device count; treat as
		// infeasible rather than risking integer overflow.
		return Design{}, false
	}
	return Design{
		Spec:         spec,
		T:            int(t),
		UpperT:       int(upperT),
		TReal:        t,
		UpperTReal:   upperT,
		N:            n,
		K:            k,
		Copies:       copies,
		TotalDevices: copies * n,
		WorkProb:     structure.ParallelReliability(spec.Dist, n, k, t),
		OverrunProb:  structure.ParallelReliability(spec.Dist, n, k, upperT+1),
	}, true
}

// solveUnencoded finds minimal n for a 1-out-of-n structure:
//
//	(1-rLo)^n <= 1-MinWork   (works through T)
//	1-(1-rHi)^n <= MaxOverrun (dead past UpperT)
//
// Both bounds are closed-form in log space.
func solveUnencoded(rLo, rHi float64, c reliability.Criteria) (int, bool) {
	if rLo <= 0 {
		return 0, false // no device count can make the structure reliable
	}
	var nMin int
	if rLo >= 1 {
		nMin = 1
	} else {
		nMinF := math.Ceil(math.Log(1-c.MinWork) / math.Log1p(-rLo))
		if !(nMinF <= 1e15) {
			return 0, false // physically meaningless device count
		}
		nMin = int(nMinF)
		if nMin < 1 {
			nMin = 1
		}
	}
	if rHi <= 0 {
		return nMin, true // devices never overrun; any n works
	}
	if rHi >= 1 {
		return 0, false
	}
	nMaxF := math.Log(1-c.MaxOverrun) / math.Log1p(-rHi)
	if float64(nMin) > nMaxF {
		return 0, false
	}
	return nMin, true
}

// solveEncoded finds minimal n (and its k = ceil(kFrac·n)) for a
// k-out-of-n structure meeting both binomial-tail criteria. Feasibility
// requires the device survival probabilities to straddle the threshold
// fraction: rHi < kFrac < rLo.
func solveEncoded(rLo, rHi float64, c reliability.Criteria, kFrac float64, nCap int) (n, k int, ok bool) {
	if !(rHi < kFrac && kFrac < rLo) {
		return 0, 0, false
	}
	kOf := func(n int) int {
		k := int(math.Ceil(kFrac * float64(n)))
		if k < 1 {
			k = 1
		}
		return k
	}
	feasible := func(n int) bool {
		k := kOf(n)
		if k > n {
			return false
		}
		return mathx.BinomTailGE(n, k, rLo) >= c.MinWork &&
			mathx.BinomTailGE(n, k, rHi) <= c.MaxOverrun
	}
	// The feasibility predicate is monotone in n up to ceil-jitter in k.
	// Binary-search a candidate, then locally scan downward to absorb the
	// jitter.
	n = mathx.MinIntSearch(1, nCap, feasible)
	if n > nCap {
		return 0, 0, false
	}
	for cand := n - 1; cand >= 1 && cand >= n-64; cand-- {
		if feasible(cand) {
			n = cand
		}
	}
	return n, kOf(n), true
}

// ExploreFrontier returns every feasible design across integer per-copy
// targets, sorted by total device count — the trade space between many
// small copies (frequent handovers, fine-grained bounds) and few large
// structures (simpler provisioning). Explore returns frontier[0].
// Continuous-T specs are evaluated at integer targets here, since the
// frontier's purpose is to enumerate physically distinct architectures.
//
// The context cancels the sweep between per-copy targets (a server drops
// the search when its client disconnects or it is draining for shutdown);
// with context.Background() no cancellation checks are made and behavior
// is identical to the pre-context API.
//
// Note that encoded specs (KFrac > 0) usually admit exactly one integer
// target: device reliability is monotone in access count, so the straddle
// condition R(T) > KFrac > R(UpperT+1) singles out the crossing point.
// The interesting multi-point frontiers belong to unencoded designs.
func ExploreFrontier(ctx context.Context, spec Spec) ([]Design, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	upper := spec.upperBound()
	tMax := 4*spec.Dist.Alpha + 8
	if tMax > float64(upper) {
		tMax = float64(upper)
	}
	// Largest integer target to evaluate; clamped before conversion since
	// float-to-int overflow is implementation-defined.
	var points int
	if tMax >= math.MaxInt64 {
		points = math.MaxInt64
	} else {
		points = int(math.Floor(tMax))
	}
	var out []Design
	if points < frontierParallelThreshold || runtime.GOMAXPROCS(0) == 1 {
		// Sequential path: paper-scale sweeps (tMax = 4α+8 with α in the
		// tens) fit here, where worker startup would cost more than the
		// whole sweep.
		cancellable := ctx.Done() != nil
		for t := 1; t <= points; t++ {
			if cancellable && t%64 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if d, ok := designAt(spec, float64(t), upper); ok {
				out = append(out, d)
			}
		}
	} else {
		out = exploreFrontierParallel(ctx, spec, upper, points)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrInfeasible, spec.Dist)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalDevices < out[j].TotalDevices })
	return out, nil
}

// frontierParallelThreshold is the point count below which ExploreFrontier
// stays sequential.
const frontierParallelThreshold = 256

// exploreFrontierParallel evaluates the per-copy targets 1..points across
// a bounded worker pool. designAt is a pure function of (spec, t), so
// parallel evaluation is trivially deterministic; the ordering contract is
// preserved by collecting results into a slice indexed by t-1 and merging
// in index order — exactly the append order of the sequential loop, fed to
// the same sort. Workers claim chunks of consecutive targets from an
// atomic counter; cancellation stops chunk claims and the caller reports
// ctx.Err() as usual.
func exploreFrontierParallel(ctx context.Context, spec Spec, upper, points int) []Design {
	const chunk = 32
	results := make([]Design, points)
	oks := make([]bool, points)
	workers := runtime.GOMAXPROCS(0)
	maxWorkers := (points + chunk - 1) / chunk
	if workers > maxWorkers {
		workers = maxWorkers
	}
	done := ctx.Done()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(chunk)) - chunk
				if start >= points {
					return
				}
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				end := start + chunk
				if end > points {
					end = points
				}
				for i := start; i < end; i++ {
					results[i], oks[i] = designAt(spec, float64(i+1), upper)
				}
			}
		}()
	}
	wg.Wait()
	var out []Design
	for i, ok := range oks {
		if ok {
			out = append(out, results[i])
		}
	}
	return out
}

// --- Sweeps (figure generators build on these) ---------------------------------------

// SweepPoint is one (α, total devices) result of a parameter sweep.
type SweepPoint struct {
	Alpha    float64
	Design   Design
	Feasible bool
}

// SweepAlpha runs Explore across a range of scale parameters with fixed
// shape, criteria and encoding — the x-axis of Figs 4a, 4b, 4c, 5a, 5b.
func SweepAlpha(base Spec, alphas []float64) []SweepPoint {
	out := make([]SweepPoint, len(alphas))
	for i, a := range alphas {
		s := base
		s.Dist = weibull.Dist{Alpha: a, Beta: base.Dist.Beta}
		d, err := Explore(s)
		out[i] = SweepPoint{Alpha: a, Design: d, Feasible: err == nil}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
