package dse_test

import (
	"fmt"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// ExampleExplore sizes the paper's running design point: the α=14, β=8
// limited-use connection with 10% redundant encoding.
func ExampleExplore() {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("structure: %d devices, k=%d\n", design.N, design.K)
	fmt.Printf("copies: %d\n", design.Copies)
	fmt.Printf("total devices: %d\n", design.TotalDevices)
	// Output:
	// structure: 140 devices, k=14
	// copies: 6057
	// total devices: 847980
}

// ExampleDesign_Replicate applies the §4.1.5 M-way replication.
func ExampleDesign_Replicate() {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		panic(err)
	}
	tenWay := design.Replicate(10)
	fmt.Printf("10-way: %d total devices for %d lifetime accesses\n",
		tenWay.TotalDevices, tenWay.Spec.LAB)
	// Output:
	// 10-way: 8479800 total devices for 912500 lifetime accesses
}
