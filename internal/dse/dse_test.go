package dse

import (
	"context"
	"errors"
	"math"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

func connSpec(alpha, beta, kFrac float64) Spec {
	return Spec{
		Dist:     weibull.MustNew(alpha, beta),
		Criteria: reliability.DefaultCriteria,
		LAB:      91_250,
		KFrac:    kFrac,
	}
}

func TestSpecValidation(t *testing.T) {
	s := connSpec(14, 8, 0.1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.LAB = 0
	if bad.Validate() == nil {
		t.Error("LAB=0 should be invalid")
	}
	bad = s
	bad.KFrac = 1
	if bad.Validate() == nil {
		t.Error("KFrac=1 should be invalid")
	}
	bad = s
	bad.UpperBound = 100
	if bad.Validate() == nil {
		t.Error("UpperBound < LAB should be invalid")
	}
	bad = s
	bad.Criteria = reliability.Criteria{}
	if bad.Validate() == nil {
		t.Error("zero criteria should be invalid")
	}
}

func TestExplorePaperAnchor141(t *testing.T) {
	// §4.3.2: α=14, β=8, k=10%·n → "each parallel structure has 141 NEMS
	// switches" and "the total number of NEMS switches is 0.8 million".
	d, err := Explore(connSpec(14, 8, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	if d.N < 110 || d.N > 180 {
		t.Errorf("per-structure n = %d, paper says 141", d.N)
	}
	if d.TotalDevices < 600_000 || d.TotalDevices > 1_100_000 {
		t.Errorf("total devices = %d, paper says ~0.8 million", d.TotalDevices)
	}
	if d.K != int(math.Ceil(0.10*float64(d.N))) {
		t.Errorf("k = %d inconsistent with 10%% of n=%d", d.K, d.N)
	}
}

func TestDesignMeetsItsOwnGuarantees(t *testing.T) {
	d, err := Explore(connSpec(14, 8, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	if d.WorkProb < d.Spec.Criteria.MinWork {
		t.Errorf("WorkProb %g below MinWork", d.WorkProb)
	}
	if d.OverrunProb > d.Spec.Criteria.MaxOverrun {
		t.Errorf("OverrunProb %g above MaxOverrun", d.OverrunProb)
	}
	if d.GuaranteedMinAccesses() < d.Spec.LAB {
		t.Errorf("guaranteed %d accesses < LAB %d", d.GuaranteedMinAccesses(), d.Spec.LAB)
	}
	if d.MaxAllowedAccesses() < d.GuaranteedMinAccesses() {
		t.Error("max allowed below guaranteed min")
	}
}

func TestEncodingReducesDevicesByOrdersOfMagnitude(t *testing.T) {
	// The abstract's headline: encoding turns exponential α-sensitivity
	// into linear, cutting device count by ≥4 orders of magnitude at
	// α=14, β=8.
	noEnc, err := Explore(connSpec(14, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Explore(connSpec(14, 8, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(noEnc.TotalDevices) / float64(enc.TotalDevices)
	if ratio < 1e4 {
		t.Errorf("encoding saves only %.1fx, paper says ≥4 orders of magnitude (noEnc=%d, enc=%d)",
			ratio, noEnc.TotalDevices, enc.TotalDevices)
	}
}

func TestUnencodedExponentialVsEncodedLinear(t *testing.T) {
	alphas := []float64{10, 12, 14, 16, 18, 20}
	noEnc := SweepAlpha(connSpec(10, 8, 0), alphas)
	enc := SweepAlpha(connSpec(10, 8, 0.10), alphas)
	// growth factor over the sweep
	growth := func(pts []SweepPoint) float64 {
		var first, last float64
		for _, p := range pts {
			if p.Feasible {
				if first == 0 {
					first = float64(p.Design.TotalDevices)
				}
				last = float64(p.Design.TotalDevices)
			}
		}
		if first == 0 {
			return 0
		}
		return last / first
	}
	gNo, gEnc := growth(noEnc), growth(enc)
	if gNo < 100 {
		t.Errorf("unencoded growth over α∈[10,20] = %.1fx, expected exponential (>100x)", gNo)
	}
	if gEnc > 20 {
		t.Errorf("encoded growth over α∈[10,20] = %.1fx, expected roughly linear (<20x)", gEnc)
	}
	if gEnc <= 0 {
		t.Fatal("no feasible encoded designs in the sweep")
	}
}

func TestLargerBetaNeedsFewerDevices(t *testing.T) {
	// Fig 4a: with large β devices are consistent, so small structures
	// suffice; small β needs dramatically more.
	var prev int = -1
	for _, beta := range []float64{16, 12, 10, 8} {
		d, err := Explore(connSpec(14, beta, 0))
		if err != nil {
			t.Fatalf("β=%g infeasible: %v", beta, err)
		}
		if prev > 0 && d.TotalDevices < prev {
			t.Errorf("β=%g needs fewer devices (%d) than a larger β (%d)", beta, d.TotalDevices, prev)
		}
		prev = d.TotalDevices
	}
}

func TestEncodingToleratesLowBeta(t *testing.T) {
	// Fig 4b includes β=4 — only tractable with encoding.
	d, err := Explore(connSpec(14, 4, 0.10))
	if err != nil {
		t.Fatalf("encoded β=4 should be feasible: %v", err)
	}
	if d.TotalDevices <= 0 {
		t.Error("bogus design")
	}
	// and it costs more devices than β=8 (more variation to control)
	d8, _ := Explore(connSpec(14, 8, 0.10))
	if d.TotalDevices <= d8.TotalDevices {
		t.Errorf("β=4 (%d devices) should cost more than β=8 (%d)", d.TotalDevices, d8.TotalDevices)
	}
}

func TestHigherKFracDiminishingReturns(t *testing.T) {
	// §4.3.2: moving k from 10% to 20% helps; 30% is negligible further.
	// Integer per-copy targets quantize this comparison badly (a k-fraction
	// can land with almost no margin to the nearest integer access), so use
	// the paper's continuous-time methodology here.
	cont := func(kFrac float64) Spec {
		s := connSpec(14, 8, kFrac)
		s.ContinuousT = true
		return s
	}
	d10, err1 := Explore(cont(0.10))
	d20, err2 := Explore(cont(0.20))
	d30, err3 := Explore(cont(0.30))
	if err1 != nil || err2 != nil || err3 != nil {
		t.Fatal(err1, err2, err3)
	}
	// all should be within a small factor of each other
	lo := math.Min(float64(d10.TotalDevices), math.Min(float64(d20.TotalDevices), float64(d30.TotalDevices)))
	hi := math.Max(float64(d10.TotalDevices), math.Max(float64(d20.TotalDevices), float64(d30.TotalDevices)))
	if hi/lo > 3 {
		t.Errorf("k-fraction choices vary too much: 10%%=%d 20%%=%d 30%%=%d",
			d10.TotalDevices, d20.TotalDevices, d30.TotalDevices)
	}
}

func TestRelaxedCriteriaReduceDevices(t *testing.T) {
	// Fig 4c: relaxing overrun p from 1% to 10% cuts the device count
	// (paper: by ~40%) and raises the empirical upper bound.
	strict := connSpec(14, 8, 0.10)
	relaxed := strict
	relaxed.Criteria = reliability.Criteria{MinWork: 0.99, MaxOverrun: 0.10}
	ds, err := Explore(strict)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Explore(relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if dr.TotalDevices >= ds.TotalDevices {
		t.Errorf("relaxed criteria should need fewer devices: %d vs %d", dr.TotalDevices, ds.TotalDevices)
	}
	meanS, _ := ds.System().ExpectedTotalAccesses()
	meanR, _ := dr.System().ExpectedTotalAccesses()
	if meanR < meanS {
		t.Errorf("relaxed design should allow more expected accesses: %g vs %g", meanR, meanS)
	}
}

func TestStrongerPasscodeTargetsReduceDevices(t *testing.T) {
	// Fig 4d: upper-bound targets of 100k/200k (software rejects popular
	// passwords) dramatically cut the device count vs the 91,250 baseline.
	base := connSpec(14, 8, 0.10)
	up100 := base
	up100.UpperBound = 100_000
	up200 := base
	up200.UpperBound = 200_000
	d0, err0 := Explore(base)
	d1, err1 := Explore(up100)
	d2, err2 := Explore(up200)
	if err0 != nil || err1 != nil || err2 != nil {
		t.Fatal(err0, err1, err2)
	}
	if !(d2.TotalDevices <= d1.TotalDevices && d1.TotalDevices < d0.TotalDevices) {
		t.Errorf("looser upper bounds should monotonically cut devices: base=%d 100k=%d 200k=%d",
			d0.TotalDevices, d1.TotalDevices, d2.TotalDevices)
	}
	if d2.MaxAllowedAccesses() > 200_000 {
		t.Errorf("design exceeds its upper-bound target: %d", d2.MaxAllowedAccesses())
	}
}

func TestTargetingSystemSmallBound(t *testing.T) {
	// §5: LAB=100. Encoded designs need orders of magnitude fewer devices
	// than the connection use case.
	spec := Spec{
		Dist:        weibull.MustNew(10, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         100,
		KFrac:       0.10,
		ContinuousT: true,
	}
	d, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	// paper: ~810 switches at α=10, β=8, k=10%·n
	if d.TotalDevices < 200 || d.TotalDevices > 5000 {
		t.Errorf("targeting total = %d, paper says ~810", d.TotalDevices)
	}
	conn, _ := Explore(connSpec(10, 8, 0.10))
	if d.TotalDevices*50 > conn.TotalDevices {
		t.Error("targeting should be far cheaper than the connection")
	}
}

func TestInfeasibleReturnsError(t *testing.T) {
	// β=1 (huge variation) without encoding and strict criteria is
	// infeasible: single-device reliability cannot cliff.
	spec := Spec{
		Dist:     weibull.MustNew(10, 1),
		Criteria: reliability.DefaultCriteria,
		LAB:      1000,
		KFrac:    0,
	}
	_, err := Explore(spec)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestReplicate(t *testing.T) {
	d, err := Explore(connSpec(14, 8, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	r := d.Replicate(10)
	if r.TotalDevices != 10*d.TotalDevices || r.Copies != 10*d.Copies {
		t.Error("Replicate should multiply devices and copies by M")
	}
	if r.Spec.LAB != 10*d.Spec.LAB {
		t.Error("Replicate should multiply the usage bound")
	}
	if same := d.Replicate(1); same.TotalDevices != d.TotalDevices {
		t.Error("Replicate(1) should be identity")
	}
}

func TestDesignCostAccessors(t *testing.T) {
	d, err := Explore(connSpec(14, 8, 0.10))
	if err != nil {
		t.Fatal(err)
	}
	if d.Area(256) <= 0 {
		t.Error("area should be positive")
	}
	// §4.3.2: 141-device structure → ~1.41e-18 J per access
	e := float64(d.EnergyPerAccess())
	if e < 1e-18 || e > 2e-18 {
		t.Errorf("energy per access = %g J, paper says ~1.41e-18", e)
	}
	if d.LatencyPerAccess().Ns() != 10 {
		t.Errorf("latency = %g ns", d.LatencyPerAccess().Ns())
	}
	if d.String() == "" {
		t.Error("String empty")
	}
	noEnc, _ := Explore(connSpec(14, 12, 0))
	if noEnc.Area(256) <= 0 {
		t.Error("unencoded area should be positive")
	}
}

func TestMonteCarloValidatesDesign(t *testing.T) {
	// Build the actual simulated hardware for a small design and check the
	// per-copy empirical guarantees.
	spec := Spec{
		Dist:     weibull.MustNew(12, 10),
		Criteria: reliability.DefaultCriteria,
		LAB:      100,
		KFrac:    0.10,
	}
	d, err := Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2029)
	const trials = 2000
	okAtT, aliveAtOver := 0, 0
	for i := 0; i < trials; i++ {
		p, err := structure.NewParallel(spec.Dist, d.N, d.K, r)
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for a := 0; a < d.T; a++ {
			if !p.Access(nems.RoomTemp) {
				ok = false
				break
			}
		}
		if ok {
			okAtT++
			// continue to the overrun access
			over := true
			for a := d.T; a < d.UpperT+1; a++ {
				if !p.Access(nems.RoomTemp) {
					over = false
					break
				}
			}
			if over {
				aliveAtOver++
			}
		}
	}
	workFrac := float64(okAtT) / trials
	overFrac := float64(aliveAtOver) / trials
	// The simulator's ceil-discretization only makes devices live slightly
	// longer than the continuous model, so the reliability guarantee must
	// hold with margin; the overrun should stay small (allow 3x).
	if workFrac < d.Spec.Criteria.MinWork-0.02 {
		t.Errorf("empirical work fraction %g below designed %g", workFrac, d.WorkProb)
	}
	if overFrac > 3*d.Spec.Criteria.MaxOverrun+0.02 {
		t.Errorf("empirical overrun %g far above designed %g", overFrac, d.OverrunProb)
	}
}

func TestExploreFrontier(t *testing.T) {
	// Unencoded specs admit a spread of per-copy targets; encoded ones
	// collapse to the straddle point (checked below).
	spec := connSpec(14, 12, 0)
	spec.LAB = 500
	frontier, err := ExploreFrontier(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) < 2 {
		t.Fatalf("expected several feasible targets, got %d", len(frontier))
	}
	// sorted by total devices, all meeting criteria and the LAB
	prev := 0
	seenT := map[int]bool{}
	for _, d := range frontier {
		if d.TotalDevices < prev {
			t.Fatal("frontier not sorted")
		}
		prev = d.TotalDevices
		if d.WorkProb < spec.Criteria.MinWork-1e-9 || d.OverrunProb > spec.Criteria.MaxOverrun+1e-9 {
			t.Errorf("frontier design violates criteria: %+v", d)
		}
		if d.GuaranteedMinAccesses() < spec.LAB {
			t.Errorf("frontier design misses LAB: %+v", d)
		}
		if seenT[d.T] {
			t.Errorf("duplicate per-copy target %d", d.T)
		}
		seenT[d.T] = true
	}
	// frontier[0] matches the integer-T Explore optimum
	intSpec := spec
	intSpec.ContinuousT = false
	best, err := Explore(intSpec)
	if err != nil {
		t.Fatal(err)
	}
	if frontier[0].TotalDevices != best.TotalDevices {
		t.Errorf("frontier[0] = %d devices, Explore = %d", frontier[0].TotalDevices, best.TotalDevices)
	}
	// encoded specs collapse to the single straddle target
	encSpec := connSpec(14, 8, 0.10)
	encSpec.LAB = 500
	encFrontier, err := ExploreFrontier(context.Background(), encSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(encFrontier) != 1 {
		t.Errorf("encoded frontier should be the straddle point, got %d designs", len(encFrontier))
	}
	// infeasible spec errors
	bad := Spec{Dist: weibull.MustNew(10, 1), Criteria: reliability.DefaultCriteria, LAB: 1000}
	if _, err := ExploreFrontier(context.Background(), bad); !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}
