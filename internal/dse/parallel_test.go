package dse

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// wideFrontierSpec is an unencoded spec whose sweep spans 4α+8 = 408
// integer targets — past frontierParallelThreshold, so ExploreFrontier
// takes the parallel path when GOMAXPROCS > 1 — and whose relaxed
// criteria admit several feasible designs, exercising the index-order
// merge with a multi-element frontier.
func wideFrontierSpec() Spec {
	return Spec{
		Dist:     weibull.MustNew(100, 30),
		Criteria: reliability.Criteria{MinWork: 0.90, MaxOverrun: 0.10},
		LAB:      91_250,
	}
}

// TestExploreFrontierWorkerCountInvariance pins the determinism contract
// of the parallel sweep at the GOMAXPROCS ∈ {1, 2, 8} matrix the bench
// suite also asserts: designAt is a pure function of (spec, t) and the
// parallel path merges results in index order, so the frontier must be
// bit-identical to the sequential loop at any worker count. The spec is
// unencoded with a large α so the sweep crosses
// frontierParallelThreshold and the parallel path actually executes.
func TestExploreFrontierWorkerCountInvariance(t *testing.T) {
	spec := wideFrontierSpec()
	prev := runtime.GOMAXPROCS(1)
	want, err := ExploreFrontier(context.Background(), spec)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) < 2 {
		t.Fatalf("want a multi-design frontier to exercise the merge, got %d", len(want))
	}
	for _, workers := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(workers)
		got, err := ExploreFrontier(context.Background(), spec)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: frontier diverges from sequential sweep (%d vs %d designs)",
				workers, len(got), len(want))
		}
	}
}

// TestExploreFrontierParallelCancellation: a pre-cancelled context must
// surface ctx.Err() from the parallel path too, not a partial frontier.
func TestExploreFrontierParallelCancellation(t *testing.T) {
	spec := wideFrontierSpec()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	prev := runtime.GOMAXPROCS(8)
	_, err := ExploreFrontier(ctx, spec)
	runtime.GOMAXPROCS(prev)
	if err == nil || err != context.Canceled {
		t.Fatalf("cancelled sweep returned err=%v, want context.Canceled", err)
	}
}
