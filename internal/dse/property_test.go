package dse

import (
	"math"
	"testing"
	"testing/quick"

	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// TestExploredDesignsAlwaysMeetCriteria is the DSE's core contract as a
// property: whatever parameters it is given, a returned design satisfies
// its own criteria and covers the LAB.
func TestExploredDesignsAlwaysMeetCriteria(t *testing.T) {
	f := func(a, b float64, labSeed uint16, kf uint8, cont bool) bool {
		alpha := 8 + math.Abs(math.Mod(a, 14)) // 8..22
		beta := 4 + math.Abs(math.Mod(b, 12))  // 4..16
		lab := int(labSeed%5000) + 10          // 10..5009
		kFrac := 0.05 + float64(kf%4)*0.05     // 0.05..0.20
		spec := Spec{
			Dist:        weibull.MustNew(alpha, beta),
			Criteria:    reliability.DefaultCriteria,
			LAB:         lab,
			KFrac:       kFrac,
			ContinuousT: cont,
		}
		d, err := Explore(spec)
		if err != nil {
			return true // infeasible points are allowed to error
		}
		if d.WorkProb < spec.Criteria.MinWork-1e-9 {
			t.Logf("work prob %g below criteria at %+v", d.WorkProb, spec)
			return false
		}
		if d.OverrunProb > spec.Criteria.MaxOverrun+1e-9 {
			t.Logf("overrun prob %g above criteria at %+v", d.OverrunProb, spec)
			return false
		}
		if d.GuaranteedMinAccesses() < lab {
			t.Logf("guarantee %d below LAB %d at %+v", d.GuaranteedMinAccesses(), lab, spec)
			return false
		}
		if d.K != int(math.Ceil(kFrac*float64(d.N))) {
			t.Logf("k=%d inconsistent with frac %g of n=%d", d.K, kFrac, d.N)
			return false
		}
		if d.TotalDevices != d.N*d.Copies {
			t.Logf("device accounting broken: %+v", d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUpperBoundNeverBelowLAB: the design's maximum can overshoot the LAB
// slightly (the paper's 91,326 vs 91,250) but never undershoot it.
func TestUpperBoundNeverBelowLAB(t *testing.T) {
	f := func(a float64, labSeed uint16) bool {
		alpha := 10 + math.Abs(math.Mod(a, 10))
		lab := int(labSeed%2000) + 20
		spec := Spec{
			Dist:        weibull.MustNew(alpha, 8),
			Criteria:    reliability.DefaultCriteria,
			LAB:         lab,
			KFrac:       0.10,
			ContinuousT: true,
		}
		d, err := Explore(spec)
		if err != nil {
			return true
		}
		return d.MaxAllowedAccesses() >= lab
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
