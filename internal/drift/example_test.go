package drift_test

import (
	"fmt"

	"lemonade/internal/drift"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// ExampleMonitor_CheckLot qualifies a process and alarms on a drifted lot.
func ExampleMonitor_CheckLot() {
	ref := weibull.MustNew(14, 8)
	mon, err := drift.NewMonitor(ref, 0.10, 0.25, 0.001)
	if err != nil {
		panic(err)
	}
	r := rng.New(7)
	good, _ := mon.CheckLot(ref.SampleN(r, 2000))
	fmt.Println("healthy lot alarms:", good.Alarm)

	drifted := weibull.MustNew(18, 8) // +29% lifetime: devices outlive the design
	bad, _ := mon.CheckLot(drifted.SampleN(r, 2000))
	fmt.Println("drifted lot alarms:", bad.Alarm)
	fmt.Println("consecutive alarms:", mon.ConsecutiveAlarms())
	// Output:
	// healthy lot alarms: false
	// drifted lot alarms: true
	// consecutive alarms: 1
}
