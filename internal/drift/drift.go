// Package drift monitors a manufacturing line for wearout-parameter
// drift. The security of every architecture in this library rests on the
// fabricated devices actually following the qualified Weibull model
// (§7: "device parameters must still fall within a specific range to make
// system use targets practical"), so a production deployment needs
// statistical process control on incoming lots: refit (α, β) per lot and
// alarm when the process has moved enough to invalidate the designed
// usage window.
package drift

import (
	"fmt"
	"math"

	"lemonade/internal/montecarlo"
	"lemonade/internal/structure"
	"lemonade/internal/weibull"
)

// Monitor tracks lots against a qualified reference model.
type Monitor struct {
	// Reference is the qualified process model designs were sized from.
	Reference weibull.Dist
	// AlphaTolerance and BetaTolerance are the allowed relative drifts
	// before a lot alarms (e.g. 0.10 = ±10%).
	AlphaTolerance float64
	BetaTolerance  float64
	// KSAlpha is the significance level of the distribution-shape test
	// (e.g. 0.01): lots whose lifetimes reject the *fitted* Weibull at
	// this level alarm as "not Weibull at all".
	KSAlpha float64

	lots []LotReport
}

// NewMonitor returns a monitor with the given qualification.
func NewMonitor(ref weibull.Dist, alphaTol, betaTol, ksAlpha float64) (*Monitor, error) {
	if err := ref.Validate(); err != nil {
		return nil, err
	}
	if alphaTol <= 0 || betaTol <= 0 {
		return nil, fmt.Errorf("drift: tolerances must be positive, got %g/%g", alphaTol, betaTol)
	}
	if ksAlpha <= 0 || ksAlpha >= 1 {
		return nil, fmt.Errorf("drift: KSAlpha must be in (0,1), got %g", ksAlpha)
	}
	return &Monitor{Reference: ref, AlphaTolerance: alphaTol, BetaTolerance: betaTol, KSAlpha: ksAlpha}, nil
}

// LotReport is the verdict on one incoming lot.
type LotReport struct {
	Fitted     weibull.Dist
	AlphaDrift float64 // relative drift of α from reference
	BetaDrift  float64 // relative drift of β from reference
	KSPValue   float64 // goodness of fit of the lot to its own fitted model
	Alarm      bool
	Reason     string
}

// CheckLot fits the lot's lifetimes and compares against the reference.
// At least ~200 uncensored lifetimes are recommended for a stable fit.
func (m *Monitor) CheckLot(lifetimes []float64) (LotReport, error) {
	fitted, err := weibull.FitLifetimes(lifetimes)
	if err != nil {
		return LotReport{}, fmt.Errorf("drift: fitting lot: %w", err)
	}
	rep := LotReport{
		Fitted:     fitted,
		AlphaDrift: math.Abs(fitted.Alpha-m.Reference.Alpha) / m.Reference.Alpha,
		BetaDrift:  math.Abs(fitted.Beta-m.Reference.Beta) / m.Reference.Beta,
	}
	if _, p, err := montecarlo.KolmogorovSmirnov(lifetimes, fitted.CDF); err == nil {
		rep.KSPValue = p
	} else {
		rep.KSPValue = math.NaN()
	}
	switch {
	case rep.AlphaDrift > m.AlphaTolerance:
		rep.Alarm = true
		rep.Reason = fmt.Sprintf("alpha drifted %.1f%% (tolerance %.1f%%)", 100*rep.AlphaDrift, 100*m.AlphaTolerance)
	case rep.BetaDrift > m.BetaTolerance:
		rep.Alarm = true
		rep.Reason = fmt.Sprintf("beta drifted %.1f%% (tolerance %.1f%%)", 100*rep.BetaDrift, 100*m.BetaTolerance)
	case !math.IsNaN(rep.KSPValue) && rep.KSPValue < m.KSAlpha:
		rep.Alarm = true
		rep.Reason = fmt.Sprintf("lifetimes reject Weibull shape (KS p=%.2g)", rep.KSPValue)
	}
	m.lots = append(m.lots, rep)
	return rep, nil
}

// History returns all checked lots in order.
func (m *Monitor) History() []LotReport { return m.lots }

// ConsecutiveAlarms returns the current run of alarming lots — the
// line-stop trigger in SPC practice.
func (m *Monitor) ConsecutiveAlarms() int {
	run := 0
	for i := len(m.lots) - 1; i >= 0; i-- {
		if !m.lots[i].Alarm {
			break
		}
		run++
	}
	return run
}

// ImpactOnDesign quantifies what a drifted process does to an existing
// design: the per-copy work probability and overrun probability under the
// drifted model, for a structure sized with the reference model. A
// security review fails the lot if the overrun probability exceeds
// maxOverrun (the attack budget grows) or the work probability falls
// below minWork (legitimate users suffer).
func ImpactOnDesign(n, k, targetT int, drifted weibull.Dist, minWork, maxOverrun float64) (workProb, overrunProb float64, acceptable bool) {
	workProb = structure.ParallelReliability(drifted, n, k, float64(targetT))
	overrunProb = structure.ParallelReliability(drifted, n, k, float64(targetT+1))
	return workProb, overrunProb, workProb >= minWork && overrunProb <= maxOverrun
}
