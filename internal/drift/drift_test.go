package drift

import (
	"strings"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func TestNewMonitorValidation(t *testing.T) {
	ref := weibull.MustNew(14, 8)
	if _, err := NewMonitor(ref, 0, 0.1, 0.01); err == nil {
		t.Error("zero alpha tolerance should error")
	}
	if _, err := NewMonitor(ref, 0.1, -1, 0.01); err == nil {
		t.Error("negative beta tolerance should error")
	}
	if _, err := NewMonitor(ref, 0.1, 0.1, 1); err == nil {
		t.Error("KSAlpha=1 should error")
	}
	if _, err := NewMonitor(weibull.Dist{}, 0.1, 0.1, 0.01); err == nil {
		t.Error("invalid reference should error")
	}
}

func TestOnTargetLotsPass(t *testing.T) {
	ref := weibull.MustNew(14, 8)
	m, err := NewMonitor(ref, 0.10, 0.20, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for lot := 0; lot < 5; lot++ {
		rep, err := m.CheckLot(ref.SampleN(r, 2000))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Alarm {
			t.Errorf("on-target lot %d alarmed: %s", lot, rep.Reason)
		}
	}
	if m.ConsecutiveAlarms() != 0 {
		t.Error("no alarms expected")
	}
	if len(m.History()) != 5 {
		t.Error("history length wrong")
	}
}

func TestDriftedAlphaAlarms(t *testing.T) {
	ref := weibull.MustNew(14, 8)
	m, _ := NewMonitor(ref, 0.10, 0.20, 0.001)
	drifted := weibull.MustNew(17, 8) // +21% alpha
	r := rng.New(2)
	rep, err := m.CheckLot(drifted.SampleN(r, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm || !strings.Contains(rep.Reason, "alpha") {
		t.Errorf("drifted alpha should alarm: %+v", rep)
	}
}

func TestDriftedBetaAlarms(t *testing.T) {
	ref := weibull.MustNew(14, 8)
	m, _ := NewMonitor(ref, 0.50, 0.20, 0.001)
	drifted := weibull.MustNew(14, 5) // -37% beta, inside alpha tolerance
	r := rng.New(3)
	rep, err := m.CheckLot(drifted.SampleN(r, 2000))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Alarm || !strings.Contains(rep.Reason, "beta") {
		t.Errorf("drifted beta should alarm: %+v", rep)
	}
}

func TestConsecutiveAlarmRun(t *testing.T) {
	ref := weibull.MustNew(14, 8)
	m, _ := NewMonitor(ref, 0.05, 0.10, 0.001)
	r := rng.New(4)
	good := ref.SampleN(r, 1000)
	bad := weibull.MustNew(20, 8).SampleN(r, 1000)
	_, _ = m.CheckLot(good)
	_, _ = m.CheckLot(bad)
	_, _ = m.CheckLot(bad)
	if got := m.ConsecutiveAlarms(); got != 2 {
		t.Errorf("run = %d, want 2", got)
	}
	_, _ = m.CheckLot(good)
	if got := m.ConsecutiveAlarms(); got != 0 {
		t.Errorf("run after good lot = %d, want 0", got)
	}
}

func TestImpactOnDesign(t *testing.T) {
	// Size a design for the reference, then evaluate drifted lots.
	ref := weibull.MustNew(14, 8)
	d, err := dse.Explore(dse.Spec{
		Dist:        ref,
		Criteria:    reliability.DefaultCriteria,
		LAB:         1000,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// the reference process itself is acceptable
	w, o, ok := ImpactOnDesign(d.N, d.K, d.T, ref, 0.98, 0.05)
	if !ok {
		t.Errorf("reference process unacceptable: work=%g overrun=%g", w, o)
	}
	// a longer-lived process blows the security bound (overrun explodes)
	_, oLong, okLong := ImpactOnDesign(d.N, d.K, d.T, weibull.MustNew(20, 8), 0.98, 0.05)
	if okLong {
		t.Errorf("α=20 lot should fail the security review (overrun=%g)", oLong)
	}
	if oLong < 0.5 {
		t.Errorf("longer-lived devices should overrun massively, got %g", oLong)
	}
	// a shorter-lived process destroys reliability
	wShort, _, okShort := ImpactOnDesign(d.N, d.K, d.T, weibull.MustNew(10, 8), 0.98, 0.05)
	if okShort {
		t.Errorf("α=10 lot should fail the reliability review (work=%g)", wShort)
	}
}
