package registry

import (
	"fmt"
	"sync"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func buildArch(t *testing.T, seed uint64) *core.Architecture {
	t.Helper()
	spec := dse.Spec{
		Dist:     weibull.MustNew(8, 8),
		Criteria: reliability.DefaultCriteria,
		LAB:      10,
		KFrac:    0.1,
	}
	d, err := dse.Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Build(d, []byte("secret"), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestProvisionGetRemove(t *testing.T) {
	r := New(0)
	a := buildArch(t, 1)
	e := r.Provision(a, 1)
	if e.ID != "arch-000001" {
		t.Errorf("first ID = %q, want arch-000001 (IDs must be deterministic)", e.ID)
	}
	got, ok := r.Get(e.ID)
	if !ok || got.Arch != a || got.Seed != 1 {
		t.Fatalf("Get(%q) = (%v, %t)", e.ID, got, ok)
	}
	if _, ok := r.Get("arch-999999"); ok {
		t.Error("Get of unknown ID succeeded")
	}
	if !r.Remove(e.ID) {
		t.Error("Remove returned false for existing entry")
	}
	if r.Remove(e.ID) {
		t.Error("second Remove returned true")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after removal", r.Len())
	}
}

func TestDeterministicIDSequence(t *testing.T) {
	a := buildArch(t, 1)
	r1, r2 := New(4), New(4)
	for i := 0; i < 5; i++ {
		id1 := r1.Provision(a, 0).ID
		id2 := r2.Provision(a, 0).ID
		if id1 != id2 {
			t.Fatalf("provision %d: IDs diverge (%q vs %q)", i, id1, id2)
		}
	}
}

func TestConcurrentProvisionAndLookup(t *testing.T) {
	r := New(8)
	a := buildArch(t, 1)
	const workers, perWorker = 8, 50
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e := r.Provision(a, uint64(w))
				ids[w] = append(ids[w], e.ID)
				if _, ok := r.Get(e.ID); !ok {
					t.Errorf("just-provisioned %q not found", e.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*perWorker)
	}
	// Every assigned ID is unique.
	seen := map[string]bool{}
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate ID %q", id)
			}
			seen[id] = true
		}
	}
	// Range visits everything exactly once.
	visited := 0
	r.Range(func(e *Entry) bool { visited++; return true })
	if visited != workers*perWorker {
		t.Errorf("Range visited %d, want %d", visited, workers*perWorker)
	}
}

func TestShardDistribution(t *testing.T) {
	r := New(8)
	counts := make(map[*shard]int)
	for i := 0; i < 1000; i++ {
		counts[r.shardFor(fmt.Sprintf("arch-%06d", i))]++
	}
	if len(counts) < 6 {
		t.Errorf("1000 sequential IDs landed on only %d/8 shards", len(counts))
	}
}
