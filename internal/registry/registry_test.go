package registry

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func buildArch(t *testing.T, seed uint64) *core.Architecture {
	t.Helper()
	spec := dse.Spec{
		Dist:     weibull.MustNew(8, 8),
		Criteria: reliability.DefaultCriteria,
		LAB:      10,
		KFrac:    0.1,
	}
	d, err := dse.Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Build(d, []byte("secret"), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustProvision(t *testing.T, r *Registry, a *core.Architecture, seed uint64) *Entry {
	t.Helper()
	e, err := r.Provision(a, seed, []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestProvisionGetRemove(t *testing.T) {
	r := New(0)
	a := buildArch(t, 1)
	e := mustProvision(t, r, a, 1)
	if e.ID != "arch-000001" {
		t.Errorf("first ID = %q, want arch-000001 (IDs must be deterministic)", e.ID)
	}
	got, ok := r.Get(e.ID)
	if !ok || got.Arch != a || got.Seed != 1 {
		t.Fatalf("Get(%q) = (%v, %t)", e.ID, got, ok)
	}
	if _, ok := r.Get("arch-999999"); ok {
		t.Error("Get of unknown ID succeeded")
	}
	if !r.Remove(e.ID) {
		t.Error("Remove returned false for existing entry")
	}
	if r.Remove(e.ID) {
		t.Error("second Remove returned true")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d after removal", r.Len())
	}
}

func TestDeterministicIDSequence(t *testing.T) {
	a := buildArch(t, 1)
	r1, r2 := New(4), New(4)
	for i := 0; i < 5; i++ {
		id1 := mustProvision(t, r1, a, 0).ID
		id2 := mustProvision(t, r2, a, 0).ID
		if id1 != id2 {
			t.Fatalf("provision %d: IDs diverge (%q vs %q)", i, id1, id2)
		}
	}
}

func TestConcurrentProvisionAndLookup(t *testing.T) {
	r := New(8)
	a := buildArch(t, 1)
	const workers, perWorker = 8, 50
	ids := make([][]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e, err := r.Provision(a, uint64(w), []byte("secret"))
				if err != nil {
					t.Error(err)
					return
				}
				ids[w] = append(ids[w], e.ID)
				if _, ok := r.Get(e.ID); !ok {
					t.Errorf("just-provisioned %q not found", e.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", r.Len(), workers*perWorker)
	}
	// Every assigned ID is unique.
	seen := map[string]bool{}
	for _, batch := range ids {
		for _, id := range batch {
			if seen[id] {
				t.Fatalf("duplicate ID %q", id)
			}
			seen[id] = true
		}
	}
	// Range visits everything exactly once.
	visited := 0
	r.Range(func(e *Entry) bool { visited++; return true })
	if visited != workers*perWorker {
		t.Errorf("Range visited %d, want %d", visited, workers*perWorker)
	}
}

func TestShardDistribution(t *testing.T) {
	r := New(8)
	counts := make(map[*shard]int)
	for i := 0; i < 1000; i++ {
		counts[r.shardFor(fmt.Sprintf("arch-%06d", i))]++
	}
	if len(counts) < 6 {
		t.Errorf("1000 sequential IDs landed on only %d/8 shards", len(counts))
	}
}

// recordingStore captures appended records and can be told to fail —
// either synchronously at Append or asynchronously at Ticket.Wait.
type recordingStore struct {
	mu         sync.Mutex
	provisions []ProvisionRecord
	accesses   []AccessRecord
	stresses   []StressRecord
	remaps     []RemapRecord
	retires    []RetireRecord
	batches    [][]Record // every successful Append call, in order
	failNext   error      // next Append returns this error
	failSkip   int        // appends to let through before failNext/failWait applies
	failWait   error      // next ticket's Wait returns this error
	doneCalls  int
}

type recordedTicket struct {
	s   *recordingStore
	err error
}

func (t recordedTicket) Wait() error { return t.err }

func (t recordedTicket) Done() {
	t.s.mu.Lock()
	t.s.doneCalls++
	t.s.mu.Unlock()
}

func (s *recordingStore) Append(recs []Record) (Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failSkip > 0 {
		s.failSkip--
	} else {
		if s.failNext != nil {
			err := s.failNext
			s.failNext = nil
			return nil, err
		}
		if s.failWait != nil {
			err := s.failWait
			s.failWait = nil
			return recordedTicket{s: s, err: err}, nil
		}
	}
	for _, rec := range recs {
		if rec.Provision != nil {
			s.provisions = append(s.provisions, *rec.Provision)
		}
		if rec.Access != nil {
			s.accesses = append(s.accesses, *rec.Access)
		}
		if rec.Stress != nil {
			s.stresses = append(s.stresses, *rec.Stress)
		}
		if rec.Remap != nil {
			s.remaps = append(s.remaps, *rec.Remap)
		}
		if rec.Retire != nil {
			s.retires = append(s.retires, *rec.Retire)
		}
	}
	s.batches = append(s.batches, append([]Record(nil), recs...))
	return recordedTicket{s: s}, nil
}

// TestLogAheadOrdering checks the Store contract: the provision record
// lands before the entry is visible, every access appends its record
// before the hardware fires, and a failed append fails the operation
// closed (no wearout consumed, no secret returned).
func TestLogAheadOrdering(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(4, st)
	e := mustProvision(t, r, buildArch(t, 7), 7)
	if len(st.provisions) != 1 || st.provisions[0].ID != e.ID || st.provisions[0].Seed != 7 {
		t.Fatalf("provision record = %+v", st.provisions)
	}
	if string(st.provisions[0].Secret) != "secret" {
		t.Errorf("provision record secret = %q", st.provisions[0].Secret)
	}

	secret, err := e.Access(context.Background(), nems.RoomTemp)
	if err != nil {
		t.Fatal(err)
	}
	if string(secret) != "secret" {
		t.Fatalf("access returned %q", secret)
	}
	if len(st.accesses) != 1 || st.accesses[0].ID != e.ID || st.accesses[0].TempCelsius != 25 {
		t.Fatalf("access record = %+v", st.accesses)
	}

	// Failed append: fail closed, consume nothing.
	totalBefore, okBefore := e.Arch.Accesses()
	st.failNext = errors.New("disk full")
	if _, err := e.Access(context.Background(), nems.RoomTemp); !errors.Is(err, ErrStore) {
		t.Fatalf("access with failing store: err = %v, want ErrStore", err)
	}
	totalAfter, okAfter := e.Arch.Accesses()
	if totalAfter != totalBefore || okAfter != okBefore {
		t.Errorf("failed append consumed wearout: (%d,%d) -> (%d,%d)",
			totalBefore, okBefore, totalAfter, okAfter)
	}

	// Failed commit (the append enqueued but its ticket resolved with an
	// error — the group-commit fsync failed): same fail-closed outcome.
	st.failWait = errors.New("fsync failed")
	if _, err := e.Access(context.Background(), nems.RoomTemp); !errors.Is(err, ErrStore) {
		t.Fatalf("access with failing commit: err = %v, want ErrStore", err)
	}
	totalAfter, okAfter = e.Arch.Accesses()
	if totalAfter != totalBefore || okAfter != okBefore {
		t.Errorf("failed commit consumed wearout: (%d,%d) -> (%d,%d)",
			totalBefore, okBefore, totalAfter, okAfter)
	}
	// And the failed commit must not wedge the entry's apply stage: the
	// next access takes the next turn and succeeds.
	if _, err := e.Access(context.Background(), nems.RoomTemp); err != nil {
		t.Fatalf("access after failed commit: %v", err)
	}

	// Failed provision append registers nothing.
	st.failNext = errors.New("disk full")
	if _, err := r.Provision(buildArch(t, 8), 8, []byte("x")); !errors.Is(err, ErrStore) {
		t.Fatalf("provision with failing store: err = %v, want ErrStore", err)
	}
	// Failed provision commit registers nothing either.
	st.failWait = errors.New("fsync failed")
	if _, err := r.Provision(buildArch(t, 9), 9, []byte("x")); !errors.Is(err, ErrStore) {
		t.Fatalf("provision with failing commit: err = %v, want ErrStore", err)
	}
	if r.Len() != 1 {
		t.Errorf("failed provision left %d entries, want 1", r.Len())
	}

	if st.doneCalls != len(st.provisions)+len(st.accesses) {
		t.Errorf("done called %d times for %d appends", st.doneCalls, len(st.provisions)+len(st.accesses))
	}
}

// TestAccessCancelledBeforeAppend: a context already done must not reach
// the store or the hardware.
func TestAccessCancelledBeforeAppend(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(1, st)
	e := mustProvision(t, r, buildArch(t, 1), 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Access(ctx, nems.RoomTemp); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(st.accesses) != 0 {
		t.Error("cancelled access reached the store")
	}
	if total, _ := e.Arch.Accesses(); total != 0 {
		t.Error("cancelled access consumed wearout")
	}
}

// TestRestoreAdvancesSequence: recovered IDs must never be reassigned.
func TestRestoreAdvancesSequence(t *testing.T) {
	r := New(2)
	a := buildArch(t, 3)
	if _, err := r.Restore("arch-000005", a, 3, []byte("s")); err != nil {
		t.Fatal(err)
	}
	e := mustProvision(t, r, buildArch(t, 4), 4)
	if e.ID != "arch-000006" {
		t.Errorf("post-restore provision ID = %q, want arch-000006", e.ID)
	}
	if _, err := r.Restore("arch-000005", a, 3, nil); err == nil {
		t.Error("duplicate restore succeeded")
	}
}

// TestListPagination checks deterministic order and the after_id cursor.
func TestListPagination(t *testing.T) {
	r := New(4)
	a := buildArch(t, 1)
	var want []string
	for i := 0; i < 7; i++ {
		want = append(want, mustProvision(t, r, a, uint64(i)).ID)
	}
	var got []string
	after := ""
	for {
		page := r.List(after, 3)
		if len(page) == 0 {
			break
		}
		for _, e := range page {
			got = append(got, e.ID)
		}
		after = page[len(page)-1].ID
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paginated List = %v, want %v", got, want)
	}
	if n := len(r.List("", 0)); n != 7 {
		t.Errorf("List with no limit returned %d", n)
	}
	if n := len(r.List(want[6], 0)); n != 0 {
		t.Errorf("List after last ID returned %d", n)
	}
}

// TestEventsRing checks the per-entry ring buffer: ordering, capacity,
// and the max parameter.
func TestEventsRing(t *testing.T) {
	r := New(1)
	e := mustProvision(t, r, buildArch(t, 5), 5)
	var want []core.AccessEvent
	for i := 0; i < EventRingSize+40; i++ {
		_, err := e.Access(context.Background(), nems.RoomTemp)
		if err != nil && !errors.Is(err, core.ErrTransient) && !errors.Is(err, core.ErrExhausted) {
			t.Fatal(err)
		}
		want = append(want, core.AccessEvent{}) // placeholder; length checked below
	}
	evs := e.Events(0)
	if len(evs) != EventRingSize {
		t.Fatalf("Events(0) returned %d, want %d (ring capacity)", len(evs), EventRingSize)
	}
	// Oldest-first and contiguous: attempts strictly increase by one.
	for i := 1; i < len(evs); i++ {
		if evs[i].Attempt != evs[i-1].Attempt+1 {
			t.Fatalf("events not contiguous at %d: %d then %d", i, evs[i-1].Attempt, evs[i].Attempt)
		}
	}
	if evs[len(evs)-1].Attempt != uint64(len(want)) {
		t.Errorf("newest event attempt = %d, want %d", evs[len(evs)-1].Attempt, len(want))
	}
	if got := e.Events(5); len(got) != 5 || got[4].Attempt != evs[len(evs)-1].Attempt {
		t.Errorf("Events(5) = %d events ending at %d", len(got), got[len(got)-1].Attempt)
	}
}
