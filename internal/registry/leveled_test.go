package registry

import (
	"context"
	"errors"
	"sync"
	"testing"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func buildLeveledArch(t *testing.T, seed uint64, lv core.Leveling) *core.Architecture {
	t.Helper()
	spec := dse.Spec{
		Dist:     weibull.MustNew(8, 8),
		Criteria: reliability.DefaultCriteria,
		LAB:      10,
		KFrac:    0.1,
	}
	d, err := dse.Explore(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.BuildLeveled(d, []byte("secret"), lv, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestStressLogAhead pins the stress pipeline to the same contract as
// Access: the record lands before the hardware fires, and a failed append
// or commit fails closed — the attacker's burst consumes nothing.
func TestStressLogAhead(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(4, st)
	e := mustProvision(t, r, buildArch(t, 21), 21)
	ctx := context.Background()

	hot := nems.Environment{TempCelsius: 400}
	// Room temperature for the conduction check: a hot pulse can kill a
	// short-lived switch on its very first actuation, and the killing
	// actuation does not conduct.
	conducted, err := e.Stress(ctx, nems.RoomTemp, []int{0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if conducted == 0 {
		t.Fatal("stress on a fresh architecture conducted nothing")
	}
	if len(st.stresses) != 1 {
		t.Fatalf("stress records = %+v, want exactly 1", st.stresses)
	}
	rec := st.stresses[0]
	if rec.ID != e.ID || rec.TempCelsius != 25 || rec.Pulses != 3 ||
		len(rec.Indices) != 2 || rec.Indices[0] != 0 || rec.Indices[1] != 1 {
		t.Fatalf("stress record = %+v", rec)
	}

	before := e.Arch.Stressed()
	st.failNext = errors.New("disk full")
	if _, err := e.Stress(ctx, hot, []int{0}, 1); !errors.Is(err, ErrStore) {
		t.Fatalf("stress with failing store: err = %v, want ErrStore", err)
	}
	st.failWait = errors.New("fsync failed")
	if _, err := e.Stress(ctx, hot, []int{0}, 1); !errors.Is(err, ErrStore) {
		t.Fatalf("stress with failing commit: err = %v, want ErrStore", err)
	}
	if got := e.Arch.Stressed(); got != before {
		t.Errorf("failed stress consumed budget: %d -> %d", before, got)
	}
	// A failed commit must not wedge the turn queue.
	if _, err := e.Stress(ctx, hot, []int{0}, 1); err != nil {
		t.Fatalf("stress after failed commit: %v", err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	appends := len(st.batches)
	if _, err := e.Stress(canceled, hot, []int{0}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("stress on canceled ctx = %v", err)
	}
	if len(st.batches) != appends {
		t.Error("canceled stress reached the store")
	}
}

// TestProvisionRecordCarriesLeveling: the provision record of a leveled
// architecture pins (spares, epoch) so recovery rebuilds the same variant.
func TestProvisionRecordCarriesLeveling(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(4, st)
	lv := core.Leveling{Spares: 3, Epoch: 5}
	mustProvision(t, r, buildLeveledArch(t, 31, lv), 31)
	if len(st.provisions) != 1 {
		t.Fatalf("provisions = %+v", st.provisions)
	}
	if got := st.provisions[0]; got.Spares != 3 || got.RemapEpoch != 5 {
		t.Fatalf("provision record leveling = (%d, %d), want (3, 5)", got.Spares, got.RemapEpoch)
	}

	// Unleveled provisioning keeps the zero values (and, per omitempty,
	// the pre-leveling wire encoding).
	mustProvision(t, r, buildArch(t, 32), 32)
	if got := st.provisions[1]; got.Spares != 0 || got.RemapEpoch != 0 {
		t.Fatalf("unleveled provision record leveling = (%d, %d), want (0, 0)", got.Spares, got.RemapEpoch)
	}
}

// TestMaintenanceLogsAtomicPlan drives a leveled entry past its remap
// epoch and checks the maintenance contract: the whole plan (retirements
// then the full assignment) is appended as ONE batch, the rotation is
// applied live, and the remap observer sees a success event.
func TestMaintenanceLogsAtomicPlan(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(4, st)
	lv := core.Leveling{Spares: 4, Epoch: 2}
	e := mustProvision(t, r, buildLeveledArch(t, 41, lv), 41)

	var mu sync.Mutex
	var events []RemapEvent
	r.SetRemapObserver(func(ev RemapEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})

	ctx := context.Background()
	hot := nems.Environment{TempCelsius: 400}
	for i := 0; i < 30 && e.Arch.Remaps() == 0; i++ {
		if _, err := e.Stress(ctx, hot, []int{0}, 1); err != nil {
			t.Fatalf("stress %d: %v", i, err)
		}
	}
	if e.Arch.Remaps() == 0 {
		t.Fatal("maintenance never rotated a leveled entry past its epoch")
	}
	if len(st.remaps) == 0 {
		t.Fatal("no remap record appended")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("remap observer saw nothing")
	}
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("maintenance reported error: %v", ev.Err)
		}
		if ev.ID != e.ID {
			t.Fatalf("remap event for %q, want %q", ev.ID, e.ID)
		}
	}
	// Every batch containing a remap or retire record is a pure
	// maintenance batch: retires (if any) strictly before its remap, and
	// exactly one remap per batch.
	for _, batch := range st.batches {
		remapAt := -1
		for i, rec := range batch {
			switch {
			case rec.Remap != nil:
				if remapAt != -1 {
					t.Fatalf("batch has two remap records: %+v", batch)
				}
				remapAt = i
			case rec.Retire != nil:
				if remapAt != -1 {
					t.Fatalf("retire after remap in batch: %+v", batch)
				}
			case rec.Access != nil || rec.Stress != nil || rec.Provision != nil:
				if remapAt != -1 {
					t.Fatalf("maintenance batch mixes op records: %+v", batch)
				}
			}
		}
		if remapAt != -1 && remapAt != len(batch)-1 {
			t.Fatalf("remap record not last in its batch: %+v", batch)
		}
	}
}

// TestMaintenanceFailureDoesNotFailTheAccess: a store that dies during
// maintenance leaves the access result intact and surfaces the failure
// through the observer; the rotation simply retries after the next op.
func TestMaintenanceFailureDoesNotFailTheAccess(t *testing.T) {
	st := &recordingStore{}
	r := NewWithStore(4, st)
	lv := core.Leveling{Spares: 4, Epoch: 1}
	e := mustProvision(t, r, buildLeveledArch(t, 51, lv), 51)

	var mu sync.Mutex
	var errs []error
	r.SetRemapObserver(func(ev RemapEvent) {
		mu.Lock()
		if ev.Err != nil {
			errs = append(errs, ev.Err)
		}
		mu.Unlock()
	})

	ctx := context.Background()
	// Age slot 0 so the epoch-1 schedule has a real rotation to do, then
	// make the append AFTER the stress's own — the maintenance batch —
	// fail.
	if _, err := e.Stress(ctx, nems.RoomTemp, []int{0}, 1); err != nil {
		t.Fatal(err)
	}
	st.mu.Lock()
	st.failSkip, st.failNext = 1, errors.New("disk full")
	st.mu.Unlock()
	if _, err := e.Stress(ctx, nems.RoomTemp, []int{1}, 1); err != nil {
		t.Fatalf("stress failed because maintenance failed: %v", err)
	}
	mu.Lock()
	n := len(errs)
	mu.Unlock()
	if n == 0 {
		t.Fatal("maintenance store failure never reached the observer")
	}
	// The schedule is still pending; the next op retries and succeeds.
	remapsBefore := e.Arch.Remaps()
	if _, err := e.Stress(ctx, nems.RoomTemp, []int{1}, 1); err != nil {
		t.Fatal(err)
	}
	if e.Arch.Remaps() <= remapsBefore {
		t.Fatal("maintenance did not retry after a store failure")
	}
}

// TestLeveledEntryOutlivesTargetedStress is the end-to-end defense check
// at the registry layer: with durable maintenance in the loop, a leveled
// entry under a targeted hot-stress pattern keeps revealing strictly
// longer than an unleveled entry under the identical pattern.
func TestLeveledEntryOutlivesTargetedStress(t *testing.T) {
	ctx := context.Background()
	hot := nems.Environment{TempCelsius: 400}

	survive := func(e *Entry) int {
		ok := 0
		for i := 0; i < 3000; i++ {
			if _, err := e.Stress(ctx, hot, []int{0, 1}, 1); errors.Is(err, core.ErrExhausted) {
				return ok
			}
			_, err := e.Access(ctx, nems.RoomTemp)
			if errors.Is(err, core.ErrExhausted) {
				return ok
			}
			if err == nil {
				ok++
			}
		}
		return ok
	}

	// A full spare complement (spares = n): the buildArch spec explores a
	// wide structure, so a token spare count would vanish into natural
	// wear — the defense claim needs pool headroom proportional to n.
	rPlain := NewWithStore(2, &recordingStore{})
	plain := mustProvision(t, rPlain, buildArch(t, 61), 61)
	n := plain.Arch.Design().N
	rLvl := NewWithStore(2, &recordingStore{})
	lvl := mustProvision(t, rLvl, buildLeveledArch(t, 61, core.Leveling{Spares: n, Epoch: 2}), 61)

	plainOK := survive(plain)
	leveledOK := survive(lvl)
	if leveledOK <= plainOK {
		t.Fatalf("leveled entry served %d reveals under attack, unleveled %d; want strictly more",
			leveledOK, plainOK)
	}
}
