package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"lemonade/internal/core"
)

// TestProvisionShare covers the share-scoped provisioning path: caller
// IDs outside the minted namespace, duplicate refusal, and independence
// from the mint counter.
func TestProvisionShare(t *testing.T) {
	r := New(0)

	e, err := r.ProvisionShare("arch-000007@s2", buildArch(t, 1), 1, []byte("share"))
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "arch-000007@s2" {
		t.Fatalf("share entry ID = %q", e.ID)
	}
	if got, ok := r.Get("arch-000007@s2"); !ok || got != e {
		t.Fatal("share entry not retrievable under its ID")
	}

	// Duplicates are refused with the typed sentinel (a second WAL
	// provision record for one ID would poison recovery).
	if _, err := r.ProvisionShare("arch-000007@s2", buildArch(t, 2), 2, []byte("other")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate ProvisionShare err = %v, want ErrExists", err)
	}
	if got, _ := r.Get("arch-000007@s2"); got != e {
		t.Fatal("losing duplicate displaced the original entry")
	}

	// An empty ID is a caller bug, not a mint request.
	if _, err := r.ProvisionShare("", buildArch(t, 3), 3, []byte("x")); err == nil {
		t.Fatal("empty share ID accepted")
	}

	// Share provisioning must not advance the mint counter: the next
	// minted architecture is still arch-000001.
	minted := mustProvision(t, r, buildArch(t, 4), 4)
	if minted.ID != "arch-000001" {
		t.Fatalf("mint after share provision = %q, want arch-000001", minted.ID)
	}
}

// TestProvisionShareConcurrentDuplicates races N goroutines onto one
// share ID: exactly one must win, the rest must all see ErrExists, and
// the registry must hold exactly one entry afterward.
func TestProvisionShareConcurrentDuplicates(t *testing.T) {
	r := New(0)
	const racers = 16
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		wins   int
		exists int
	)
	built := make([]*core.Architecture, racers) // build outside the race; Build is the slow part
	for i := range built {
		built[i] = buildArch(t, uint64(i+1))
	}
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := r.ProvisionShare("arch-000001@s0", built[i], uint64(i), []byte(fmt.Sprintf("s%d", i)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				wins++
			case errors.Is(err, ErrExists):
				exists++
			default:
				t.Errorf("racer %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if wins != 1 || exists != racers-1 {
		t.Fatalf("wins=%d exists=%d, want exactly 1 winner of %d", wins, exists, racers)
	}
	if r.Len() != 1 {
		t.Fatalf("registry holds %d entries, want 1", r.Len())
	}
}
