// Package registry holds the provisioned architectures of a lemonaded
// process: a sharded, mutex-striped map from architecture ID to the live
// core.Architecture serving accesses, backed by a pluggable durability
// Store.
//
// Striping keeps registry lookups off each other's locks — the paper's
// serving scenarios (a fleet of phones unlocking, a targeting system
// answering key requests) are many independent architectures hammered
// concurrently, so the registry must never serialize traffic across
// unrelated architectures. Access serialization *within* one architecture
// is the architecture's own job (its accesses are mutex-ordered, mirroring
// the single physical structure); the registry only guards the map.
//
// IDs are assigned from a process-local counter, so a fixed provisioning
// sequence yields a fixed ID sequence — the golden HTTP determinism test
// relies on it. Recovery re-inserts entries under their original IDs and
// advances the counter past them, so IDs never collide across restarts.
//
// # Durability and the log-ahead rule
//
// The paper's security argument is that hardware wearout enforces a
// maximum number of uses. A simulator that forgets consumed accesses on
// restart hands an adversary a fresh budget — exactly the "reset the
// counter" attack wearout exists to prevent. The registry therefore
// routes every state-changing operation through its Store *before* the
// operation takes effect:
//
//   - Provision: the provisioning record (design, seed, secret) is
//     durably appended before the architecture becomes visible.
//   - Access: Entry.Access appends the access-intent record and only then
//     fires the hardware. If the append fails, the access fails closed:
//     no wearout is consumed and no key bytes are revealed. Once the
//     record is durable the access runs to completion even if the client
//     has gone — the log is the commitment point, so a crash replays the
//     access and the budget can only ever be consumed, never refunded.
//
// The default NullStore keeps the pre-durability behaviour (everything in
// memory, nothing survives a restart); internal/wal provides the
// disk-backed implementation.
package registry

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
)

// DefaultShards is the stripe count used by New when given 0. 32 stripes
// keep contention negligible for hundreds of concurrent handlers while
// costing only a few hundred bytes.
const DefaultShards = 32

// EventRingSize is the per-architecture capacity of the recent-access
// event buffer served by GET /v1/architectures/{id}/events.
const EventRingSize = 128

// ErrStore wraps every durability failure surfaced by a Store, so the
// HTTP layer can classify fail-closed refusals without knowing the store
// implementation.
var ErrStore = errors.New("registry: durable store append failed")

// ErrExists reports a caller-named provision (ProvisionShare) whose ID is
// already registered. Minted IDs never collide; only the cluster share
// path, where the ID is derived from placement, can race itself.
var ErrExists = errors.New("registry: id already provisioned")

// ProvisionRecord is the durable description of one provisioned
// architecture: everything needed to rebuild the identical simulated
// hardware (core.Build is deterministic in these three inputs).
type ProvisionRecord struct {
	ID     string     `json:"id"`
	Seed   uint64     `json:"seed"`
	Secret []byte     `json:"secret"`
	Design dse.Design `json:"design"`
	// Wear-leveling configuration; both zero for the unleveled variant, so
	// pre-leveling records decode (and re-encode) unchanged. A leveled
	// architecture rebuilds via core.BuildLeveled with these parameters.
	Spares     int    `json:"spares,omitempty"`
	RemapEpoch uint64 `json:"remap_epoch,omitempty"`
}

// AccessRecord is the durable intent to fire one access. The environment
// is part of the record because wear acceleration depends on it; with the
// per-architecture record order this pins the full wear trajectory.
type AccessRecord struct {
	ID          string  `json:"id"`
	TempCelsius float64 `json:"temp_celsius"`
}

// StressRecord is the durable intent to serve one adversarial stress
// burst: Pulses actuations of each targeted logical share index under the
// recorded environment. Stress consumes wearout without revealing key
// bytes, but it is wear all the same — it must be logged ahead exactly
// like an access, or a crash would refund the attacker's damage.
type StressRecord struct {
	ID          string  `json:"id"`
	TempCelsius float64 `json:"temp_celsius"`
	Indices     []int   `json:"indices"`
	Pulses      int     `json:"pulses"`
}

// RetireRecord durably removes one physical switch of a copy from
// wear-leveling service. Replay is idempotent (retiring twice is a no-op).
type RetireRecord struct {
	ID       string `json:"id"`
	Copy     int    `json:"copy"`
	Physical int    `json:"physical"`
}

// RemapRecord durably installs a complete remap assignment on a copy. The
// record carries the full table, not a delta: the planning decision is
// advisory and may race concurrent wear, but the recorded effect replays
// verbatim, so live apply order (= turn order = log order) and recovery
// produce bit-identical tables.
type RemapRecord struct {
	ID     string `json:"id"`
	Copy   int    `json:"copy"`
	Assign []int  `json:"assign"`
}

// Record is one registry mutation submitted to a Store: exactly one of
// the pointer fields is set. Batching is first-class — a Store may frame
// many Records (from many callers) into a single durable write, and the
// wear-leveling maintenance path relies on it to commit a retire+remap
// plan atomically.
type Record struct {
	Provision *ProvisionRecord `json:"p,omitempty"`
	Access    *AccessRecord    `json:"a,omitempty"`
	Stress    *StressRecord    `json:"s,omitempty"`
	Remap     *RemapRecord     `json:"r,omitempty"`
	Retire    *RetireRecord    `json:"x,omitempty"`
}

// Ticket is the durability handle returned by Store.Append. The records
// of one Append call always commit (or fail) together, and possibly
// alongside other calls' records in the same commit group.
//
//   - Wait blocks until the containing commit group is durably on disk
//     (fsynced), returning nil, or the group's failure — in which case
//     the caller must fail closed: none of the submitted records may
//     take in-memory effect.
//   - Done MUST be called exactly once after Wait returned nil and the
//     records' in-memory effect has been applied. The WAL store uses it
//     to hold its snapshot barrier open so a snapshot can never capture
//     a state its log position is ahead of, or behind. After a non-nil
//     Wait, Done must not be called.
//
// Wait is idempotent; calling it again returns the same result.
type Ticket interface {
	Wait() error
	Done()
}

// Store is the registry's durability backend. Append stages recs for a
// durable write and returns a Ticket that resolves when the containing
// commit group is fsynced; Append itself only fails on malformed input
// or a store that cannot accept work (closed, unrecovered, poisoned).
// The log-ahead rule lives in the caller: Ticket.Wait is the commit
// barrier that must be crossed before any wear-state mutation fires.
type Store interface {
	Append(recs []Record) (Ticket, error)
}

// readyTicket is the already-durable Ticket used by NullStore (and any
// store whose appends complete synchronously).
type readyTicket struct{}

func (readyTicket) Wait() error { return nil }
func (readyTicket) Done()       {}

// NullStore is the in-memory Store: appends succeed instantly and nothing
// survives a restart. It is the default for tests and for deployments
// that explicitly opt out of persistence.
type NullStore struct{}

// Append implements Store as a no-op: the ticket is immediately durable.
func (NullStore) Append([]Record) (Ticket, error) { return readyTicket{}, nil }

// Entry is one provisioned architecture.
type Entry struct {
	ID   string
	Arch *core.Architecture
	Seed uint64 // provisioning seed, echoed for reproducibility audits
	// Secret is retained for snapshotting: a snapshot must be able to
	// rebuild the architecture from (design, secret, seed). The WAL
	// already carries it — the simulated hardware "physically stores" the
	// secret, and the data directory is that hardware's flash.
	Secret []byte

	store Store
	reg   *Registry // owning registry; carries the remap observer
	// seqMu orders append submission within the entry: holding it across
	// the Store.Append call and the turn claim makes the WAL's
	// per-architecture record order equal the turn order — the property
	// that makes replay bit-identical. It is NOT held across the fsync
	// wait, so an entry's encode work overlaps other entries' commits.
	seqMu    sync.Mutex
	nextTurn uint64 // guarded by seqMu; next apply-stage turn to hand out

	// applyMu orders the apply stage: turn k's in-memory effect fires
	// only after turns 0..k-1 have applied (or been skipped by a failed
	// commit), matching the durable record order exactly.
	applyMu   sync.Mutex
	applyCond sync.Cond // signals applied advancing; shares applyMu
	applied   uint64    // guarded by applyMu; turns applied or skipped so far

	evMu    sync.Mutex
	events  []core.AccessEvent // guarded by evMu; ring of the EventRingSize most recent events
	evCount uint64             // guarded by evMu; events ever observed; write cursor is evCount % size
}

// Access durably records then performs one wearout-consuming access.
//
// The sequence is the log-ahead rule, pipelined: check the context,
// stage the access record with the store, claim an apply turn, then
// block on the commit ticket — the barrier that proves the record is
// fsynced — and only then fire the hardware, in turn order. If staging
// or the commit fails, the access fails closed: no wearout is consumed
// and no key bytes are revealed. After the commit succeeds the access
// runs to completion even if ctx is cancelled mid-flight, because a
// durable record with no matching wear would replay into *extra*
// consumed budget on recovery, never less, and the architecture must
// agree with its log.
//
// Decoupling the ticket wait from seqMu is what lets independent
// requests pipeline: request B's record is encoded and staged while
// request A's group is still inside its fsync.
//
// After the access completes, wear-leveling maintenance runs: if the
// rotation schedule calls for a remap, the plan is appended (log-ahead,
// one atomic batch) and applied under its own turn. Maintenance failures
// never affect the access result — they surface through the registry's
// remap observer.
func (e *Entry) Access(ctx context.Context, env nems.Environment) ([]byte, error) {
	secret, err := e.accessLogged(ctx, env)
	e.maintainRemap()
	return secret, err
}

// accessLogged is the log-ahead access pipeline described on Access.
func (e *Entry) accessLogged(ctx context.Context, env nems.Environment) ([]byte, error) {
	e.seqMu.Lock()
	if err := ctx.Err(); err != nil {
		e.seqMu.Unlock()
		return nil, err
	}
	tkt, err := e.store.Append([]Record{{Access: &AccessRecord{ID: e.ID, TempCelsius: env.TempCelsius}}})
	if err != nil {
		e.seqMu.Unlock()
		// Double-wrap so callers can classify both the fact that the store
		// failed (ErrStore) and why (e.g. resilience.ErrOpen ⇒ 503, not 500).
		return nil, fmt.Errorf("%w: %w", ErrStore, err)
	}
	turn := e.nextTurn
	e.nextTurn++
	e.seqMu.Unlock()

	if werr := tkt.Wait(); werr != nil {
		// The commit group failed: the record never became durable, so the
		// access fails closed — but the turn was claimed and must be
		// skipped, or every later access on this entry would wait forever.
		e.skipTurn(turn)
		return nil, fmt.Errorf("%w: %w", ErrStore, werr)
	}
	e.beginTurn(turn)
	// Deferred, not inline: a panic inside Arch.Access must still retire
	// the turn (or every later access on this entry blocks in beginTurn
	// forever) and release the ticket's snapshot-barrier share (or every
	// future Snapshot wedges on a hold nobody can drop).
	defer e.endTurn()
	defer tkt.Done()
	return e.Arch.Access(env)
}

// Stress durably records then serves one adversarial stress burst against
// the entry's architecture: pulses actuations of each targeted share
// index under env. It follows the exact log-ahead pipeline of Access —
// stress consumes wearout, so a crash must replay it, never refund it —
// and, like Access, it triggers wear-leveling maintenance afterwards. The
// returned count is how many actuations conducted; no key bytes are ever
// derived on this path.
func (e *Entry) Stress(ctx context.Context, env nems.Environment, indices []int, pulses int) (int, error) {
	conducted, err := e.stressLogged(ctx, env, indices, pulses)
	e.maintainRemap()
	return conducted, err
}

// stressLogged is the log-ahead stress pipeline; see Access for the
// stage-by-stage rationale.
func (e *Entry) stressLogged(ctx context.Context, env nems.Environment, indices []int, pulses int) (int, error) {
	e.seqMu.Lock()
	if err := ctx.Err(); err != nil {
		e.seqMu.Unlock()
		return 0, err
	}
	dup := make([]int, len(indices))
	copy(dup, indices)
	tkt, err := e.store.Append([]Record{{Stress: &StressRecord{
		ID: e.ID, TempCelsius: env.TempCelsius, Indices: dup, Pulses: pulses,
	}}})
	if err != nil {
		e.seqMu.Unlock()
		return 0, fmt.Errorf("%w: %w", ErrStore, err)
	}
	turn := e.nextTurn
	e.nextTurn++
	e.seqMu.Unlock()

	if werr := tkt.Wait(); werr != nil {
		e.skipTurn(turn)
		return 0, fmt.Errorf("%w: %w", ErrStore, werr)
	}
	e.beginTurn(turn)
	defer e.endTurn()
	defer tkt.Done()
	return e.Arch.Stress(env, indices, pulses)
}

// RemapEvent reports one wear-leveling maintenance attempt to the
// registry's remap observer. Err is nil when the plan was durably
// recorded and applied.
type RemapEvent struct {
	ID   string
	Plan core.RemapPlan
	Err  error
}

// maintainRemap runs the wear-leveling schedule after a wear-consuming
// op: if the architecture reports a pending rotation, the full plan
// (retirements, then the complete new assignment) is appended to the
// store as one atomic batch, and applied under its own turn once the
// commit ticket resolves — so the durable record order equals the live
// apply order, and recovery replays the rotation bit-identically.
//
// The plan decision itself is advisory: it may be computed against state
// that concurrent ops immediately age further. That is safe, because the
// record carries the decision's full effect, not its inputs. Failures are
// reported to the remap observer and otherwise swallowed — maintenance
// must never turn a served access into an error after the fact.
func (e *Entry) maintainRemap() {
	plan, ok := e.Arch.PendingRemap()
	if !ok {
		return
	}
	recs := make([]Record, 0, len(plan.Retire)+1)
	for _, p := range plan.Retire {
		recs = append(recs, Record{Retire: &RetireRecord{ID: e.ID, Copy: plan.Copy, Physical: p}})
	}
	recs = append(recs, Record{Remap: &RemapRecord{ID: e.ID, Copy: plan.Copy, Assign: plan.Assign}})

	e.seqMu.Lock()
	tkt, err := e.store.Append(recs)
	if err != nil {
		e.seqMu.Unlock()
		e.emitRemap(RemapEvent{ID: e.ID, Plan: plan, Err: fmt.Errorf("%w: %w", ErrStore, err)})
		return
	}
	turn := e.nextTurn
	e.nextTurn++
	e.seqMu.Unlock()

	if werr := tkt.Wait(); werr != nil {
		e.skipTurn(turn)
		e.emitRemap(RemapEvent{ID: e.ID, Plan: plan, Err: fmt.Errorf("%w: %w", ErrStore, werr)})
		return
	}
	e.beginTurn(turn)
	defer e.endTurn()
	defer tkt.Done()
	var applyErr error
	for _, p := range plan.Retire {
		if err := e.Arch.Retire(plan.Copy, p); err != nil {
			applyErr = err
			break
		}
	}
	if applyErr == nil {
		applyErr = e.Arch.ApplyRemap(plan.Copy, plan.Assign)
	}
	e.emitRemap(RemapEvent{ID: e.ID, Plan: plan, Err: applyErr})
}

// emitRemap delivers ev to the registry's remap observer, if any.
func (e *Entry) emitRemap(ev RemapEvent) {
	if e.reg == nil {
		return
	}
	e.reg.remapMu.RLock()
	fn := e.reg.remapObs
	e.reg.remapMu.RUnlock()
	if fn != nil {
		fn(ev)
	}
}

// beginTurn blocks until every earlier turn has applied (or been
// skipped). It returns with applyMu released: turns are unique, so only
// the goroutine holding turn == applied proceeds — mutual exclusion for
// the in-memory effect comes from the turn order itself (a ticket
// lock), ending at the matching endTurn.
func (e *Entry) beginTurn(turn uint64) {
	e.applyMu.Lock()
	for e.applied != turn {
		e.applyCond.Wait()
	}
	e.applyMu.Unlock()
}

// endTurn marks the current turn applied and wakes the next one.
func (e *Entry) endTurn() {
	e.applyMu.Lock()
	e.applied++
	e.applyCond.Broadcast()
	e.applyMu.Unlock()
}

// skipTurn retires a turn whose commit failed without applying anything.
func (e *Entry) skipTurn(turn uint64) {
	e.beginTurn(turn)
	e.endTurn()
}

// observe appends ev to the entry's ring buffer; installed as the
// architecture's observer, so it runs under the architecture lock.
func (e *Entry) observe(ev core.AccessEvent) {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	if e.events == nil {
		e.events = make([]core.AccessEvent, EventRingSize)
	}
	e.events[e.evCount%EventRingSize] = ev
	e.evCount++
}

// Events returns up to max recent access events, oldest first. max <= 0
// means all buffered events. The buffer is in-memory telemetry: after a
// restart it holds only the events replayed since the last snapshot.
func (e *Entry) Events(max int) []core.AccessEvent {
	e.evMu.Lock()
	defer e.evMu.Unlock()
	n := e.evCount
	if n > EventRingSize {
		n = EventRingSize
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]core.AccessEvent, 0, n)
	for i := e.evCount - n; i < e.evCount; i++ {
		out = append(out, e.events[i%EventRingSize])
	}
	return out
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Entry // guarded by mu
}

// Registry is a sharded architecture store, safe for concurrent use.
type Registry struct {
	shards []shard
	seq    atomic.Uint64
	store  Store

	// provMu serializes caller-named provisions (ProvisionShare) across
	// the exists-check, the durable append and the insert: without it two
	// racing provisions of the same share ID could both log a
	// ProvisionRecord, and recovery — which refuses duplicate IDs — would
	// fail on a log the live process accepted. Minted-ID provisions don't
	// take it; their IDs are unique by construction.
	provMu sync.Mutex

	remapMu  sync.RWMutex
	remapObs func(RemapEvent) // guarded by remapMu
}

// SetRemapObserver installs a callback invoked after every wear-leveling
// maintenance attempt (successful or failed) on any entry. A nil observer
// disables it. The callback may run concurrently from many entries and
// must not call back into the entry that emitted it.
func (r *Registry) SetRemapObserver(fn func(RemapEvent)) {
	r.remapMu.Lock()
	defer r.remapMu.Unlock()
	r.remapObs = fn
}

// New returns a registry with the given stripe count (0 → DefaultShards)
// and no durability (NullStore).
func New(shards int) *Registry { return NewWithStore(shards, nil) }

// NewWithStore returns a registry whose mutations are made durable
// through st (nil → NullStore).
func NewWithStore(shards int, st Store) *Registry {
	if shards < 1 {
		shards = DefaultShards
	}
	if st == nil {
		st = NullStore{}
	}
	r := &Registry{shards: make([]shard, shards), store: st}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*Entry)
	}
	return r
}

// shardFor picks the stripe for id by FNV-1a.
func (r *Registry) shardFor(id string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &r.shards[h%uint64(len(r.shards))]
}

// idNum extracts the numeric suffix of a registry ID ("arch-000042" → 42);
// ok is false for foreign IDs.
func idNum(id string) (uint64, bool) {
	rest, found := strings.CutPrefix(id, "arch-")
	if !found {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Provision durably records then stores a freshly built architecture,
// returning its entry with a newly assigned ID. If staging or the commit
// fails, the architecture is not registered (fail closed) and the
// assigned ID is burned — gaps in the sequence are acceptable, replayed
// IDs are not.
func (r *Registry) Provision(arch *core.Architecture, seed uint64, secret []byte) (*Entry, error) {
	id := fmt.Sprintf("arch-%06d", r.seq.Add(1))
	return r.provisionLogged(id, arch, seed, secret)
}

// ProvisionShare durably records then stores an architecture under a
// caller-supplied ID — the cluster share path, where the ID encodes the
// placement (cluster.ShareID) instead of being minted here. IDs outside
// the minted arch-%06d namespace leave the ID counter untouched; a
// duplicate ID fails with ErrExists before anything is logged.
func (r *Registry) ProvisionShare(id string, arch *core.Architecture, seed uint64, secret []byte) (*Entry, error) {
	if id == "" {
		return nil, fmt.Errorf("registry: empty share id")
	}
	r.provMu.Lock()
	defer r.provMu.Unlock()
	if _, ok := r.Get(id); ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, id)
	}
	return r.provisionLogged(id, arch, seed, secret)
}

// provisionLogged is the shared log-ahead tail of Provision and
// ProvisionShare: append the provisioning record, cross the commit
// barrier, then make the architecture visible. If staging or the commit
// fails, the architecture is not registered (fail closed); a burned
// minted ID leaves an acceptable gap in the sequence.
func (r *Registry) provisionLogged(id string, arch *core.Architecture, seed uint64, secret []byte) (*Entry, error) {
	dup := make([]byte, len(secret))
	copy(dup, secret)
	rec := &ProvisionRecord{ID: id, Seed: seed, Secret: dup, Design: arch.Design()}
	if lv, ok := arch.Leveling(); ok {
		rec.Spares = lv.Spares
		rec.RemapEpoch = lv.Epoch
	}
	tkt, err := r.store.Append([]Record{{Provision: rec}})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrStore, err)
	}
	if werr := tkt.Wait(); werr != nil {
		return nil, fmt.Errorf("%w: %w", ErrStore, werr)
	}
	defer tkt.Done()
	return r.insert(id, arch, seed, dup), nil
}

// Restore inserts a recovered architecture under its original ID without
// touching the store (the record that justifies it is already on disk),
// and advances the ID counter past it.
func (r *Registry) Restore(id string, arch *core.Architecture, seed uint64, secret []byte) (*Entry, error) {
	if _, ok := r.Get(id); ok {
		return nil, fmt.Errorf("registry: restore: duplicate id %q", id)
	}
	if n, ok := idNum(id); ok {
		for {
			cur := r.seq.Load()
			if cur >= n || r.seq.CompareAndSwap(cur, n) {
				break
			}
		}
	}
	dup := make([]byte, len(secret))
	copy(dup, secret)
	return r.insert(id, arch, seed, dup), nil
}

func (r *Registry) insert(id string, arch *core.Architecture, seed uint64, secret []byte) *Entry {
	e := &Entry{ID: id, Arch: arch, Seed: seed, Secret: secret, store: r.store, reg: r}
	e.applyCond.L = &e.applyMu
	arch.SetObserver(e.observe)
	s := r.shardFor(id)
	s.mu.Lock()
	s.m[id] = e
	s.mu.Unlock()
	return e
}

// Get returns the entry for id.
func (r *Registry) Get(id string) (*Entry, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	e, ok := s.m[id]
	s.mu.RUnlock()
	return e, ok
}

// Remove deletes the entry for id, reporting whether it existed. The
// architecture itself is unaffected — wearout state is physical and
// removal only unlists it.
func (r *Registry) Remove(id string) bool {
	s := r.shardFor(id)
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ok
}

// Len returns the number of registered architectures.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// List returns up to limit entries whose IDs sort strictly after afterID,
// in deterministic ascending ID order (numeric on the assigned suffix, so
// ordering stays correct past arch-999999). limit <= 0 means no limit.
// The pagination contract: pass the last returned ID as the next afterID.
func (r *Registry) List(afterID string, limit int) []*Entry {
	var all []*Entry
	r.Range(func(e *Entry) bool {
		all = append(all, e)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		ni, iok := idNum(all[i].ID)
		nj, jok := idNum(all[j].ID)
		if iok && jok {
			return ni < nj
		}
		return all[i].ID < all[j].ID
	})
	if afterID != "" {
		na, aok := idNum(afterID)
		cut := sort.Search(len(all), func(i int) bool {
			ni, iok := idNum(all[i].ID)
			if aok && iok {
				return ni > na
			}
			return all[i].ID > afterID
		})
		all = all[cut:]
	}
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	return all
}

// Range calls fn for every entry until fn returns false. Iteration order
// is unspecified; entries added or removed concurrently may or may not be
// visited.
func (r *Registry) Range(fn func(*Entry) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		entries := make([]*Entry, 0, len(s.m))
		for _, e := range s.m {
			entries = append(entries, e)
		}
		s.mu.RUnlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}
