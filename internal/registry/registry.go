// Package registry holds the provisioned architectures of a lemonaded
// process: a sharded, mutex-striped map from architecture ID to the live
// core.Architecture serving accesses.
//
// Striping keeps registry lookups off each other's locks — the paper's
// serving scenarios (a fleet of phones unlocking, a targeting system
// answering key requests) are many independent architectures hammered
// concurrently, so the registry must never serialize traffic across
// unrelated architectures. Access serialization *within* one architecture
// is the architecture's own job (its accesses are mutex-ordered, mirroring
// the single physical structure); the registry only guards the map.
//
// IDs are assigned from a process-local counter, so a fixed provisioning
// sequence yields a fixed ID sequence — the golden HTTP determinism test
// relies on it.
package registry

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lemonade/internal/core"
)

// DefaultShards is the stripe count used by New when given 0. 32 stripes
// keep contention negligible for hundreds of concurrent handlers while
// costing only a few hundred bytes.
const DefaultShards = 32

// Entry is one provisioned architecture.
type Entry struct {
	ID   string
	Arch *core.Architecture
	Seed uint64 // provisioning seed, echoed for reproducibility audits
}

type shard struct {
	mu sync.RWMutex
	m  map[string]*Entry
}

// Registry is a sharded architecture store, safe for concurrent use.
type Registry struct {
	shards []shard
	seq    atomic.Uint64
}

// New returns a registry with the given stripe count (0 → DefaultShards).
func New(shards int) *Registry {
	if shards < 1 {
		shards = DefaultShards
	}
	r := &Registry{shards: make([]shard, shards)}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*Entry)
	}
	return r
}

// shardFor picks the stripe for id by FNV-1a.
func (r *Registry) shardFor(id string) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return &r.shards[h%uint64(len(r.shards))]
}

// Provision stores a freshly built architecture and returns its entry with
// a newly assigned ID.
func (r *Registry) Provision(arch *core.Architecture, seed uint64) *Entry {
	id := fmt.Sprintf("arch-%06d", r.seq.Add(1))
	e := &Entry{ID: id, Arch: arch, Seed: seed}
	s := r.shardFor(id)
	s.mu.Lock()
	s.m[id] = e
	s.mu.Unlock()
	return e
}

// Get returns the entry for id.
func (r *Registry) Get(id string) (*Entry, bool) {
	s := r.shardFor(id)
	s.mu.RLock()
	e, ok := s.m[id]
	s.mu.RUnlock()
	return e, ok
}

// Remove deletes the entry for id, reporting whether it existed. The
// architecture itself is unaffected — wearout state is physical and
// removal only unlists it.
func (r *Registry) Remove(id string) bool {
	s := r.shardFor(id)
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ok
}

// Len returns the number of registered architectures.
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every entry until fn returns false. Iteration order
// is unspecified; entries added or removed concurrently may or may not be
// visited.
func (r *Registry) Range(fn func(*Entry) bool) {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		entries := make([]*Entry, 0, len(s.m))
		for _, e := range s.m {
			entries = append(entries, e)
		}
		s.mu.RUnlock()
		for _, e := range entries {
			if !fn(e) {
				return
			}
		}
	}
}
