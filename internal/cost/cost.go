// Package cost provides the analytic area, energy and latency models the
// paper uses for its engineering-space evaluations (§4.3.1, §4.3.2, §6.5).
//
// Constants follow the paper: 100 nm² contact area per NEMS switch, 1 nm
// inter-switch pitch, H-tree layout whose area is on the order of the
// number of leaves (Brent & Kung), 1e-20 J switching energy, 10 ns
// switching latency, 50 nm² register cells, 20 ns/bit shift-register
// readout.
package cost

import (
	"lemonade/internal/memory"
	"lemonade/internal/nems"
)

// Nm2PerMm2 converts nm² to mm².
const Nm2PerMm2 = 1e12

// Area is a silicon area in nm², with helpers for the paper's mm² units.
type Area float64

// Mm2 returns the area in mm².
func (a Area) Mm2() float64 { return float64(a) / Nm2PerMm2 }

// SwitchArea returns the H-tree layout area of n NEMS switches. The H-tree
// area is on the order of the number of leaves when nodes sit at unit
// distance (Brent & Kung 1980, cited in §6.5.1), so the model charges each
// switch its contact area plus one pitch of wiring.
func SwitchArea(n int) Area {
	return Area(float64(n) * (nems.ContactAreaNm2 + nems.PitchNm))
}

// ShareStorageArea returns the area of the read-destructive storage holding
// component keys: totalShares shares of bitsPerShare bits in 50 nm² cells.
// §4.3.2: "the storage for component keys should be proportional to the
// size of the parallel structure".
func ShareStorageArea(totalShares, bitsPerShare int) Area {
	return Area(float64(totalShares) * float64(bitsPerShare) * memory.RegisterCellAreaNm2)
}

// DecisionTreeArea returns the area of one one-time-pad decision tree of
// height H whose leaves hold keyBits-bit shift registers (§6.5.1):
// 100·2^(H-1) nm² for the switch H-tree plus 2^(H-1)·keyBits·50 nm² of
// registers.
func DecisionTreeArea(height, keyBits int) Area {
	leaves := float64(uint64(1) << uint(height-1))
	return Area(leaves*nems.ContactAreaNm2 + leaves*float64(keyBits)*memory.RegisterCellAreaNm2)
}

// TreesPerChip returns how many decision trees of the given height fit on a
// chip of chipMm2 mm², with key length proportional to tree height
// (~1000·H bits, §6.5.1).
func TreesPerChip(height int, chipMm2 float64) int {
	keyBits := 1000 * height
	per := DecisionTreeArea(height, keyBits)
	if per <= 0 {
		return 0
	}
	return int(chipMm2 * Nm2PerMm2 / float64(per))
}

// Energy is an energy in joules.
type Energy float64

// AccessEnergy returns the switching energy of one access to a parallel
// structure of n switches: all n actuate, at 1e-20 J each (§4.3.2).
func AccessEnergy(parallelN int) Energy {
	return Energy(float64(parallelN) * nems.ActuationEnergyJoules)
}

// OTPPathEnergy returns the worst-case energy of one one-time-pad key
// retrieval: N copies of an H-high path, every node actuating (§6.5.2:
// N·H·1e-20 J).
func OTPPathEnergy(height, copies int) Energy {
	return Energy(float64(height) * float64(copies) * nems.ActuationEnergyJoules)
}

// Latency is a latency in seconds.
type Latency float64

// Ms returns the latency in milliseconds.
func (l Latency) Ms() float64 { return float64(l) * 1e3 }

// Ns returns the latency in nanoseconds.
func (l Latency) Ns() float64 { return float64(l) * 1e9 }

// ParallelAccessLatency returns the latency of one access to a parallel
// structure: all switches actuate concurrently, so it equals a single
// switch's 10 ns switching time (§4.3.2).
func ParallelAccessLatency() Latency {
	return Latency(nems.ActuationLatencySeconds)
}

// OTPRetrievalLatency returns the worst-case latency of retrieving one
// one-time-pad key (§6.5.2): traversing H switches serially in each of N
// copies (α·H·N with α = 10 ns), plus shifting keyBits bits out of the one
// register that is read (20 ns/bit).
func OTPRetrievalLatency(height, copies, keyBits int) Latency {
	traverse := nems.ActuationLatencySeconds * float64(height) * float64(copies)
	readout := memory.ShiftRegisterNsPerBit * 1e-9 * float64(keyBits)
	return Latency(traverse + readout)
}
