package cost

import (
	"math"
	"testing"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestSwitchAreaScalesLinearly(t *testing.T) {
	if SwitchArea(0) != 0 {
		t.Error("zero switches should cost zero area")
	}
	a1 := SwitchArea(1000)
	a2 := SwitchArea(2000)
	if !almostEq(float64(a2), 2*float64(a1), 1e-12) {
		t.Error("switch area should be linear in count")
	}
	// ~101 nm² per switch (100 contact + 1 pitch)
	if float64(a1) != 1000*101 {
		t.Errorf("SwitchArea(1000) = %g nm²", float64(a1))
	}
}

func TestAreaMm2Conversion(t *testing.T) {
	a := Area(5.2e11) // nm²
	if !almostEq(a.Mm2(), 0.52, 1e-12) {
		t.Errorf("Mm2 = %g", a.Mm2())
	}
}

func TestTable1Magnitudes(t *testing.T) {
	// Table 1: (18.69, 10) without encoding is 0.52 mm² — about 5e9
	// switches' worth of area. Check the model's order of magnitude.
	devices := 5_000_000_000
	got := SwitchArea(devices).Mm2()
	if got < 0.3 || got < 0 || got > 0.8 {
		t.Errorf("5e9 switches = %g mm², expected ~0.5 mm²", got)
	}
	// (10.51, 16) without encoding is 1.27e-4 mm² ≈ 1.26e6 switches.
	got = SwitchArea(1_260_000).Mm2()
	if got < 1e-4 || got > 1.5e-4 {
		t.Errorf("1.26e6 switches = %g mm², expected ~1.27e-4", got)
	}
}

func TestShareStorageArea(t *testing.T) {
	// proportional to share count and share size
	a := ShareStorageArea(1000, 128)
	if float64(a) != 1000*128*50 {
		t.Errorf("ShareStorageArea = %g", float64(a))
	}
}

func TestDecisionTreeAreaFig10(t *testing.T) {
	// §6.5.1: height-H tree has 2^(H-1) leaves, 100 nm² each, plus
	// 2^(H-1)·1000H·50 nm² of registers. Fig 10: H=4, N=128 → ~4687 pads
	// in 1 mm² → ~6e5 trees of H=4 per mm² before the 128x copies.
	for h := 2; h <= 11; h++ {
		leaves := float64(int(1) << (h - 1))
		want := leaves*100 + leaves*float64(1000*h)*50
		if got := float64(DecisionTreeArea(h, 1000*h)); got != want {
			t.Errorf("H=%d tree area = %g, want %g", h, got, want)
		}
	}
}

func TestTreesPerChipMonotone(t *testing.T) {
	prev := math.MaxInt64
	for h := 2; h <= 11; h++ {
		n := TreesPerChip(h, 1)
		if n <= 0 {
			t.Fatalf("no trees fit at H=%d", h)
		}
		if n >= prev {
			t.Errorf("density should fall with height: H=%d gives %d, H=%d gave %d", h, n, h-1, prev)
		}
		prev = n
	}
}

func TestTreesPerChipPaperPoints(t *testing.T) {
	// Fig 10 reports ~2e6 trees at H=3 and ~2e3 at H=11 per mm².
	if n := TreesPerChip(3, 1); n < 1e6 || n > 3e6 {
		t.Errorf("H=3 density = %d, paper ~2e6", n)
	}
	if n := TreesPerChip(11, 1); n < 1e3 || n > 3e3 {
		t.Errorf("H=11 density = %d, paper ~2e3", n)
	}
	// Fig 10 / §6.5.1: H=4 gives ~6e5 trees; with N=128 copies per pad
	// that is ~4687 one-time pads.
	if pads := TreesPerChip(4, 1) / 128; pads < 4000 || pads > 5500 {
		t.Errorf("H=4 pads = %d, paper says ~4687", pads)
	}
}

func TestAccessEnergyPaperPoint(t *testing.T) {
	// §4.3.2: 141-switch parallel structure → 1.41e-18 J per access.
	if got := float64(AccessEnergy(141)); !almostEq(got, 1.41e-18, 1e-9) {
		t.Errorf("AccessEnergy(141) = %g J", got)
	}
}

func TestOTPPathEnergyPaperPoint(t *testing.T) {
	// §6.5.2: N=128, H=4 → 5.12e-18 J worst case.
	if got := float64(OTPPathEnergy(4, 128)); !almostEq(got, 5.12e-18, 1e-9) {
		t.Errorf("OTPPathEnergy(4,128) = %g J", got)
	}
}

func TestParallelAccessLatency(t *testing.T) {
	if got := ParallelAccessLatency().Ns(); !almostEq(got, 10, 1e-9) {
		t.Errorf("parallel access latency = %g ns, want 10", got)
	}
}

func TestOTPRetrievalLatencyPaperPoint(t *testing.T) {
	// §6.5.2: H=4, N=128, 4000-bit key → 0.00512 ms traversal + 0.08 ms
	// readout = 0.08512 ms.
	got := OTPRetrievalLatency(4, 128, 4000).Ms()
	if !almostEq(got, 0.08512, 1e-9) {
		t.Errorf("OTP retrieval latency = %g ms, want 0.08512", got)
	}
}
