package connection

import (
	"bytes"
	"errors"
	"testing"

	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

func testDesign(t *testing.T, lab int) dse.Design {
	t.Helper()
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         lab,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestUnlockRightPasscode(t *testing.T) {
	design := testDesign(t, 40)
	r := rng.New(1)
	storage := []byte("user photos, messages, and app data")
	dev, err := NewDevice(design, "hunter2!", storage, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dev.Unlock("hunter2!", nems.RoomTemp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, storage) {
		t.Errorf("unlocked storage = %q", got)
	}
}

func TestWrongPasscodeFailsButConsumesAccess(t *testing.T) {
	design := testDesign(t, 40)
	r := rng.New(2)
	dev, err := NewDevice(design, "correct", []byte("data"), r)
	if err != nil {
		t.Fatal(err)
	}
	before := dev.Attempts()
	if _, err := dev.Unlock("wrong!", nems.RoomTemp); !errors.Is(err, ErrWrongPasscode) {
		t.Errorf("expected ErrWrongPasscode, got %v", err)
	}
	if dev.Attempts() != before+1 {
		t.Error("wrong passcode must still consume a hardware access")
	}
	// and the right passcode still works afterwards
	if _, err := dev.Unlock("correct", nems.RoomTemp); err != nil {
		t.Errorf("right passcode failed after a wrong attempt: %v", err)
	}
}

func TestDeviceLocksForever(t *testing.T) {
	design := testDesign(t, 30)
	r := rng.New(3)
	dev, err := NewDevice(design, "pass", []byte("data"), r)
	if err != nil {
		t.Fatal(err)
	}
	budget := design.MaxAllowedAccesses()*3 + 100
	locked := false
	for i := 0; i < budget; i++ {
		_, err := dev.Unlock("pass", nems.RoomTemp)
		if errors.Is(err, ErrLocked) {
			locked = true
			break
		}
	}
	if !locked {
		t.Fatal("device never locked")
	}
	if !dev.Locked() {
		t.Error("Locked() disagrees")
	}
	// locked means locked — even for the right passcode
	if _, err := dev.Unlock("pass", nems.RoomTemp); !errors.Is(err, ErrLocked) {
		t.Error("locked device served an unlock")
	}
}

func TestGuaranteedUnlocksWithinBound(t *testing.T) {
	design := testDesign(t, 50)
	r := rng.New(4)
	dev, err := NewDevice(design, "pass", []byte("data"), r)
	if err != nil {
		t.Fatal(err)
	}
	succ := 0
	for i := 0; i < 50; i++ {
		if _, err := dev.Unlock("pass", nems.RoomTemp); err == nil {
			succ++
		}
	}
	if succ < 45 {
		t.Errorf("only %d/50 unlocks succeeded within the design bound", succ)
	}
}

func TestPowerCutTrickDoesNotHelp(t *testing.T) {
	// The MDSec attack cut power to reset a software counter. Here there is
	// no software counter: the state is device wearout itself, so a fresh
	// Device *handle* over the same worn hardware is impossible to
	// construct — we verify that attempts is not the security boundary by
	// wearing out the hardware with wrong guesses only.
	design := testDesign(t, 30)
	r := rng.New(5)
	dev, err := NewDevice(design, "real-pass", []byte("secrets"), r)
	if err != nil {
		t.Fatal(err)
	}
	budget := design.MaxAllowedAccesses()*3 + 100
	for i := 0; i < budget && !dev.Locked(); i++ {
		_, _ = dev.Unlock("guess", nems.RoomTemp)
	}
	if !dev.Locked() {
		t.Fatal("brute force never exhausted the hardware")
	}
	// after lockout, even the *correct* passcode cannot recover the data:
	// confidentiality holds although availability is gone (§7).
	if _, err := dev.Unlock("real-pass", nems.RoomTemp); !errors.Is(err, ErrLocked) {
		t.Error("worn hardware still served the key")
	}
}

func TestMWayMigration(t *testing.T) {
	design := testDesign(t, 30)
	r := rng.New(6)
	storage := []byte("long-lived user data")
	m, err := NewMWayDevice(design, []string{"pass-a", "pass-b", "pass-c"}, storage, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Unlock("pass-a", nems.RoomTemp)
	if err != nil || !bytes.Equal(got, storage) {
		t.Fatalf("module 0 unlock: %v %q", err, got)
	}
	if err := m.Migrate("pass-a", nems.RoomTemp, r); err != nil {
		t.Fatal(err)
	}
	if m.ActiveModule() != 1 {
		t.Errorf("active module = %d, want 1", m.ActiveModule())
	}
	// old passcode no longer works; new one does, and data survived.
	if _, err := m.Unlock("pass-a", nems.RoomTemp); err == nil {
		t.Error("old passcode should fail after migration")
	}
	got, err = m.Unlock("pass-b", nems.RoomTemp)
	if err != nil || !bytes.Equal(got, storage) {
		t.Fatalf("module 1 unlock: %v %q", err, got)
	}
	// second migration
	if err := m.Migrate("pass-b", nems.RoomTemp, r); err != nil {
		t.Fatal(err)
	}
	got, err = m.Unlock("pass-c", nems.RoomTemp)
	if err != nil || !bytes.Equal(got, storage) {
		t.Fatalf("module 2 unlock: %v %q", err, got)
	}
	// no further modules
	if err := m.Migrate("pass-c", nems.RoomTemp, r); err == nil {
		t.Error("migration beyond last module should fail")
	}
	if m.Locked() {
		t.Error("device with a live module should not report locked")
	}
}

func TestMWayValidation(t *testing.T) {
	design := testDesign(t, 20)
	if _, err := NewMWayDevice(design, nil, []byte("x"), rng.New(7)); err == nil {
		t.Error("empty passcode list should fail")
	}
}

func TestMigrateWithWrongPasscodeFails(t *testing.T) {
	design := testDesign(t, 30)
	r := rng.New(8)
	m, err := NewMWayDevice(design, []string{"a", "b"}, []byte("data"), r)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Migrate("wrong", nems.RoomTemp, r); err == nil {
		t.Error("migration with wrong passcode should fail")
	}
	if m.ActiveModule() != 0 {
		t.Error("failed migration must not advance the module")
	}
}
