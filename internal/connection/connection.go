// Package connection implements use case 1 of the paper (§4): a
// limited-use connection that physically bounds the number of reads of a
// smartphone's storage decryption key.
//
// The storage is encrypted with AES-256-GCM under a key derived from the
// user's passcode *and* a hardware key. The hardware key lives behind a
// core.Architecture of simulated NEMS switches: every unlock attempt —
// right or wrong — must traverse the wearout hardware to fetch it, so the
// attempt budget is enforced by physics rather than by a software counter
// that NAND mirroring or power-cut tricks can reset (the iPhone attacks
// catalogued in §4). When the hardware wears out the device locks forever.
//
// MWayDevice adds the M-way module replication of §4.1.5: M architectures
// used serially, each with its own passcode, migrating (re-encrypting
// storage) from one module to the next to multiply the lifetime usage
// budget by M.
package connection

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"errors"
	"fmt"

	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

var (
	// ErrLocked is returned when the wearout hardware is exhausted: the
	// storage is cryptographically unrecoverable.
	ErrLocked = errors.New("connection: device locked forever (hardware worn out)")
	// ErrWrongPasscode is returned when the passcode fails to decrypt the
	// storage. The attempt still consumed one hardware access.
	ErrWrongPasscode = errors.New("connection: wrong passcode")
	// ErrTransient is returned when the hardware access itself failed;
	// retrying may succeed on the next module copy.
	ErrTransient = errors.New("connection: transient hardware failure; retry")
)

const hwKeyLen = 32

// Device is a simulated smartphone with a limited-use unlock path.
type Device struct {
	arch       *core.Architecture
	ciphertext []byte // nonce || AES-GCM(storage)
}

// NewDevice fabricates a device: a fresh hardware key is generated, placed
// behind wearout hardware built per design, and the storage plaintext is
// sealed under KDF(passcode, hardware key).
func NewDevice(design dse.Design, passcode string, storage []byte, r *rng.RNG) (*Device, error) {
	hwKey := make([]byte, hwKeyLen)
	r.Bytes(hwKey)
	arch, err := core.Build(design, hwKey, r)
	if err != nil {
		return nil, fmt.Errorf("connection: building wearout hardware: %w", err)
	}
	ct, err := seal(passcode, hwKey, storage, r)
	if err != nil {
		return nil, err
	}
	return &Device{arch: arch, ciphertext: ct}, nil
}

// Unlock attempts to decrypt the storage with the given passcode. Every
// call consumes one access of the wearout hardware.
func (d *Device) Unlock(passcode string, env nems.Environment) ([]byte, error) {
	hwKey, err := d.arch.Access(env)
	switch {
	case errors.Is(err, core.ErrExhausted):
		return nil, ErrLocked
	case errors.Is(err, core.ErrTransient):
		return nil, ErrTransient
	case err != nil:
		return nil, err
	}
	plain, err := open(passcode, hwKey, d.ciphertext)
	if err != nil {
		return nil, ErrWrongPasscode
	}
	return plain, nil
}

// Locked reports whether the device can never be unlocked again.
func (d *Device) Locked() bool { return !d.arch.Alive() }

// Attempts returns how many unlock attempts (hardware accesses) were made.
func (d *Device) Attempts() uint64 {
	total, _ := d.arch.Accesses()
	return total
}

// HardwareDevices returns the NEMS switch count of the unlock path.
func (d *Device) HardwareDevices() int { return d.arch.TotalDevices() }

// kdf derives the storage key from passcode and hardware key.
func kdf(passcode string, hwKey []byte) []byte {
	h := sha256.New()
	h.Write([]byte("lemonade-connection-v1"))
	h.Write([]byte{byte(len(passcode))})
	h.Write([]byte(passcode))
	h.Write(hwKey)
	return h.Sum(nil)
}

func seal(passcode string, hwKey, plain []byte, r *rng.RNG) ([]byte, error) {
	block, err := aes.NewCipher(kdf(passcode, hwKey))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	r.Bytes(nonce)
	return gcm.Seal(nonce, nonce, plain, nil), nil
}

func open(passcode string, hwKey, ct []byte) ([]byte, error) {
	block, err := aes.NewCipher(kdf(passcode, hwKey))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < gcm.NonceSize() {
		return nil, errors.New("connection: ciphertext too short")
	}
	return gcm.Open(nil, ct[:gcm.NonceSize()], ct[gcm.NonceSize():], nil)
}

// --- M-way replication (§4.1.5) ------------------------------------------------

// MWayDevice replicates the entire architecture M times. Modules are used
// serially; each requires its own passcode. Migrating to the next module
// re-encrypts the storage under the new module's hardware key and
// passcode, multiplying the daily usage budget by M at the cost of a
// periodic passcode change (the paper's example: 10-way replication turns
// 50 uses/day into 500, with a re-encryption every 6 months).
type MWayDevice struct {
	modules   []*Device
	active    int
	passcodes []string // retained only to express "user re-enters old passcode on migration"
}

// NewMWayDevice fabricates M modules, each built from the same design.
// passcodes[i] protects module i; storage starts sealed under module 0.
func NewMWayDevice(design dse.Design, passcodes []string, storage []byte, r *rng.RNG) (*MWayDevice, error) {
	if len(passcodes) == 0 {
		return nil, errors.New("connection: need at least one passcode")
	}
	m := &MWayDevice{passcodes: passcodes}
	for i, pc := range passcodes {
		var plain []byte
		if i == 0 {
			plain = storage
		} else {
			plain = nil // sealed on migration
		}
		dev, err := NewDevice(design, pc, plain, r)
		if err != nil {
			return nil, fmt.Errorf("connection: module %d: %w", i, err)
		}
		m.modules = append(m.modules, dev)
	}
	return m, nil
}

// Unlock attempts the active module.
func (m *MWayDevice) Unlock(passcode string, env nems.Environment) ([]byte, error) {
	return m.modules[m.active].Unlock(passcode, env)
}

// Migrate moves the storage to the next module: the caller proves
// knowledge of the current passcode, the storage is decrypted through the
// current module and re-sealed under the next module's hardware key and
// passcode. This is the operation the user performs every LAB/M accesses.
func (m *MWayDevice) Migrate(currentPasscode string, env nems.Environment, r *rng.RNG) error {
	if m.active+1 >= len(m.modules) {
		return errors.New("connection: no modules left to migrate to")
	}
	plain, err := m.modules[m.active].Unlock(currentPasscode, env)
	if err != nil {
		return fmt.Errorf("connection: migration unlock failed: %w", err)
	}
	next := m.modules[m.active+1]
	nextPass := m.passcodes[m.active+1]
	hwKey, err := next.arch.Access(env)
	if err != nil {
		return fmt.Errorf("connection: next module unavailable: %w", err)
	}
	ct, err := seal(nextPass, hwKey, plain, r)
	if err != nil {
		return err
	}
	next.ciphertext = ct
	m.active++
	return nil
}

// ActiveModule returns the index of the module serving unlocks.
func (m *MWayDevice) ActiveModule() int { return m.active }

// Locked reports whether every module is exhausted.
func (m *MWayDevice) Locked() bool {
	for i := m.active; i < len(m.modules); i++ {
		if !m.modules[i].Locked() {
			return false
		}
	}
	return true
}
