package connection

import (
	"errors"

	"lemonade/internal/nems"
)

// GuardedDevice layers an iOS-style software retry counter over the
// wearout hardware — defense in depth. The software layer wipes (refuses
// service) after `wipeAfter` consecutive failures, which protects the
// hardware budget from casual guessing; the wearout bound remains the
// backstop that holds even when the software layer is bypassed by the
// §4 attacks (power cuts, NAND mirroring).
type GuardedDevice struct {
	dev       *Device
	failures  int
	wipeAfter int
	wiped     bool
}

// ErrSoftWiped is returned once the software counter has tripped. Unlike
// hardware lockout it is, by construction, bypassable.
var ErrSoftWiped = errors.New("connection: software retry counter tripped")

// Guard wraps a device with a software retry counter.
func Guard(dev *Device, wipeAfter int) *GuardedDevice {
	if wipeAfter < 1 {
		wipeAfter = 1
	}
	return &GuardedDevice{dev: dev, wipeAfter: wipeAfter}
}

// Unlock enforces the software counter before touching hardware: a
// tripped counter refuses without consuming wearout budget.
func (g *GuardedDevice) Unlock(passcode string, env nems.Environment) ([]byte, error) {
	if g.wiped {
		return nil, ErrSoftWiped
	}
	plain, err := g.dev.Unlock(passcode, env)
	switch {
	case err == nil:
		g.failures = 0
		return plain, nil
	case errors.Is(err, ErrWrongPasscode):
		g.failures++
		if g.failures >= g.wipeAfter {
			g.wiped = true
		}
	}
	return nil, err
}

// BypassUnlock models the §4 attacks (power cut before the counter
// write, NAND mirroring of the counter state): the software layer is
// skipped entirely and the attempt lands directly on the hardware. The
// hardware wearout budget is still consumed — that is the whole point.
func (g *GuardedDevice) BypassUnlock(passcode string, env nems.Environment) ([]byte, error) {
	return g.dev.Unlock(passcode, env)
}

// SoftWiped reports whether the software counter has tripped.
func (g *GuardedDevice) SoftWiped() bool { return g.wiped }

// HardLocked reports whether the wearout hardware is exhausted.
func (g *GuardedDevice) HardLocked() bool { return g.dev.Locked() }

// HardwareAttempts returns the wearout budget consumed so far.
func (g *GuardedDevice) HardwareAttempts() uint64 { return g.dev.Attempts() }
