package connection_test

import (
	"errors"
	"fmt"

	"lemonade/internal/connection"
	"lemonade/internal/dse"
	"lemonade/internal/nems"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// ExampleNewDevice builds a limited-use unlock path and shows that wrong
// passcodes burn the same physical budget as right ones.
func ExampleNewDevice() {
	design, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(12, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         30,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		panic(err)
	}
	dev, err := connection.NewDevice(design, "correct horse", []byte("photos"), rng.New(1))
	if err != nil {
		panic(err)
	}
	if _, err := dev.Unlock("correct horse", nems.RoomTemp); err == nil {
		fmt.Println("owner unlocked")
	}
	_, err = dev.Unlock("password123", nems.RoomTemp)
	fmt.Println("thief rejected:", errors.Is(err, connection.ErrWrongPasscode))
	fmt.Println("attempts consumed:", dev.Attempts())
	// Output:
	// owner unlocked
	// thief rejected: true
	// attempts consumed: 2
}
