package connection

import (
	"fmt"
	"math"
	"time"

	"lemonade/internal/dse"
)

// This file implements the planning side of §4.1.5's M-way module
// replication: given a desired daily usage and device lifetime, how many
// modules are needed, and how often must the user change passcodes and
// re-encrypt storage?
//
// The paper's example: a baseline module supports 50 uses/day for 5 years
// (91,250 accesses); a user needing 500/day uses M = 10 modules and
// migrates every 6 months.

// UsagePlan is a sized M-way replication plan.
type UsagePlan struct {
	Design        dse.Design    // per-module design
	Modules       int           // M
	DailyUsage    int           // supported uses per day
	Lifetime      time.Duration // total supported lifetime
	MigrateEvery  time.Duration // how often storage must be re-encrypted
	TotalDevices  int           // across all modules
	TotalAccesses int           // lifetime usage budget
}

// PlanMWay sizes an M-way replicated deployment. design must be a
// per-module design (its Spec.LAB is the per-module access budget);
// dailyUsage is the user's required unlocks per day; lifetime is the
// deployment target (e.g. 5 years).
func PlanMWay(design dse.Design, dailyUsage int, lifetime time.Duration) (UsagePlan, error) {
	if dailyUsage < 1 {
		return UsagePlan{}, fmt.Errorf("connection: dailyUsage must be >= 1, got %d", dailyUsage)
	}
	if lifetime <= 0 {
		return UsagePlan{}, fmt.Errorf("connection: lifetime must be positive")
	}
	days := lifetime.Hours() / 24
	needed := float64(dailyUsage) * days
	perModule := float64(design.GuaranteedMinAccesses())
	if perModule < 1 {
		return UsagePlan{}, fmt.Errorf("connection: design guarantees no accesses")
	}
	m := int(math.Ceil(needed / perModule))
	if m < 1 {
		m = 1
	}
	migrate := time.Duration(float64(lifetime) / float64(m))
	return UsagePlan{
		Design:        design,
		Modules:       m,
		DailyUsage:    dailyUsage,
		Lifetime:      lifetime,
		MigrateEvery:  migrate,
		TotalDevices:  m * design.TotalDevices,
		TotalAccesses: m * design.GuaranteedMinAccesses(),
	}, nil
}

// String implements fmt.Stringer.
func (p UsagePlan) String() string {
	return fmt.Sprintf("UsagePlan{M=%d modules, %d uses/day for %s, migrate every %s, %d devices}",
		p.Modules, p.DailyUsage, fmtDuration(p.Lifetime), fmtDuration(p.MigrateEvery), p.TotalDevices)
}

func fmtDuration(d time.Duration) string {
	days := d.Hours() / 24
	switch {
	case days >= 365:
		return fmt.Sprintf("%.1fy", days/365)
	case days >= 30:
		return fmt.Sprintf("%.1fmo", days/30)
	default:
		return fmt.Sprintf("%.0fd", days)
	}
}
