package connection

import (
	"errors"
	"testing"

	"lemonade/internal/nems"
	"lemonade/internal/rng"
)

func TestGuardTripsWithoutBurningHardware(t *testing.T) {
	design := testDesign(t, 40)
	dev, err := NewDevice(design, "right", []byte("data"), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	g := Guard(dev, 10)
	for i := 0; i < 9; i++ {
		if _, err := g.Unlock("wrong", nems.RoomTemp); !errors.Is(err, ErrWrongPasscode) {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	if _, err := g.Unlock("wrong", nems.RoomTemp); !errors.Is(err, ErrWrongPasscode) {
		t.Fatal("10th failure should still report wrong passcode")
	}
	if !g.SoftWiped() {
		t.Fatal("counter should have tripped")
	}
	burned := g.HardwareAttempts()
	// Once tripped, further guessing is refused WITHOUT consuming budget.
	for i := 0; i < 50; i++ {
		if _, err := g.Unlock("wrong", nems.RoomTemp); !errors.Is(err, ErrSoftWiped) {
			t.Fatal("tripped guard should refuse")
		}
	}
	if g.HardwareAttempts() != burned {
		t.Error("soft-wiped guard consumed hardware budget")
	}
	if g.HardLocked() {
		t.Error("hardware should still be alive under the guard")
	}
}

func TestGuardResetsOnSuccess(t *testing.T) {
	design := testDesign(t, 40)
	dev, err := NewDevice(design, "right", []byte("data"), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	g := Guard(dev, 5)
	for i := 0; i < 4; i++ {
		_, _ = g.Unlock("wrong", nems.RoomTemp)
	}
	if _, err := g.Unlock("right", nems.RoomTemp); err != nil {
		t.Fatalf("owner unlock failed: %v", err)
	}
	// counter reset — 4 more failures allowed
	for i := 0; i < 4; i++ {
		if _, err := g.Unlock("wrong", nems.RoomTemp); !errors.Is(err, ErrWrongPasscode) {
			t.Fatalf("counter did not reset: %v", err)
		}
	}
}

func TestBypassDefeatsGuardButNotHardware(t *testing.T) {
	// The §4 story in one test: the attacker bypasses the software layer
	// (power cut / NAND mirroring) and guesses freely — but every bypassed
	// guess still burns wearout budget, and the hardware locks forever.
	design := testDesign(t, 30)
	dev, err := NewDevice(design, "owner-pass", []byte("data"), rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	g := Guard(dev, 10)
	// trip the soft counter first
	for i := 0; i < 10; i++ {
		_, _ = g.Unlock("wrong", nems.RoomTemp)
	}
	if !g.SoftWiped() {
		t.Fatal("setup: guard should be tripped")
	}
	// bypass: unlimited attempts against the hardware...
	budget := design.MaxAllowedAccesses()*3 + 50
	for i := 0; i < budget && !g.HardLocked(); i++ {
		_, _ = g.BypassUnlock("guess", nems.RoomTemp)
	}
	// ...until the physics ends the game.
	if !g.HardLocked() {
		t.Fatal("hardware never locked under bypass")
	}
	if _, err := g.BypassUnlock("owner-pass", nems.RoomTemp); !errors.Is(err, ErrLocked) {
		t.Error("hard-locked device served a bypassed unlock")
	}
}

func TestGuardMinimumWipeAfter(t *testing.T) {
	design := testDesign(t, 20)
	dev, err := NewDevice(design, "x", []byte("d"), rng.New(24))
	if err != nil {
		t.Fatal(err)
	}
	g := Guard(dev, 0) // clamped to 1
	_, _ = g.Unlock("wrong", nems.RoomTemp)
	if !g.SoftWiped() {
		t.Error("wipeAfter should clamp to 1")
	}
}
