package connection

import (
	"strings"
	"testing"
	"time"

	"lemonade/internal/dse"
	"lemonade/internal/reliability"
	"lemonade/internal/weibull"
)

// paperModule sizes the paper's baseline module: 50 uses/day × 5 years.
func paperModule(t *testing.T) dse.Design {
	t.Helper()
	d, err := dse.Explore(dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         5 * 365 * 50,
		KFrac:       0.10,
		ContinuousT: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlanMWayPaperExample(t *testing.T) {
	// §4.1.5: raising 50 uses/day to 500 over the same 5 years needs
	// 10-way replication with a migration every 6 months.
	design := paperModule(t)
	fiveYears := 5 * 365 * 24 * time.Hour
	plan, err := PlanMWay(design, 500, fiveYears)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Modules != 10 {
		t.Errorf("M = %d, paper example says 10", plan.Modules)
	}
	// migrate every ~6 months
	months := plan.MigrateEvery.Hours() / 24 / 30
	if months < 5.5 || months > 6.5 {
		t.Errorf("migration cadence = %.1f months, paper says every 6 months", months)
	}
	if plan.TotalDevices != 10*design.TotalDevices {
		t.Error("total devices should be M × module devices")
	}
	if plan.TotalAccesses < 500*5*365 {
		t.Errorf("plan supports %d accesses, need %d", plan.TotalAccesses, 500*5*365)
	}
	if !strings.Contains(plan.String(), "M=10") {
		t.Errorf("String: %s", plan.String())
	}
}

func TestPlanMWayBaselineNeedsOneModule(t *testing.T) {
	design := paperModule(t)
	plan, err := PlanMWay(design, 50, 5*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Modules != 1 {
		t.Errorf("baseline usage should need 1 module, got %d", plan.Modules)
	}
}

func TestPlanMWayValidation(t *testing.T) {
	design := paperModule(t)
	if _, err := PlanMWay(design, 0, time.Hour); err == nil {
		t.Error("zero daily usage should error")
	}
	if _, err := PlanMWay(design, 50, -time.Hour); err == nil {
		t.Error("negative lifetime should error")
	}
}
