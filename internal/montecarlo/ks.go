package montecarlo

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov runs a one-sample KS goodness-of-fit test of the
// samples against the hypothesized CDF. It returns the KS statistic D and
// an approximate p-value (Kolmogorov asymptotic distribution with the
// Stephens small-sample correction). A small p-value rejects the fit.
func KolmogorovSmirnov(samples []float64, cdf func(float64) float64) (d, pValue float64, err error) {
	n := len(samples)
	if n < 8 {
		return 0, 0, fmt.Errorf("montecarlo: KS test needs at least 8 samples, got %d", n)
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, 0, fmt.Errorf("montecarlo: hypothesized CDF returned %v at %v", f, x)
		}
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	sqrtN := math.Sqrt(float64(n))
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	return d, ksQ(lambda), nil
}

// ksQ is the Kolmogorov survival function Q_KS(λ) = 2 Σ (-1)^{j-1} e^{-2j²λ²}.
func ksQ(lambda float64) float64 {
	if lambda < 1e-3 {
		return 1
	}
	var sum float64
	sign := 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(-2*float64(j*j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
