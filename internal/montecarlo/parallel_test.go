package montecarlo

import (
	"context"
	"math"
	"runtime"
	"slices"
	"testing"

	"lemonade/internal/rng"
	"lemonade/internal/weibull"
)

// TestRunParallelWorkerCountInvariance pins the scheduling-independence
// contract at specific worker counts (the GOMAXPROCS ∈ {1, 2, 8} matrix
// the bench suite also asserts): trial streams are derived by index, so
// the inline single-worker path, the chunked dispatch path, and the
// sequential Run must all produce identical summaries — including the
// full sorted value set, compared through a fine quantile sweep.
func TestRunParallelWorkerCountInvariance(t *testing.T) {
	d := weibull.MustNew(14, 8)
	trial := func(r *rng.RNG) float64 { return d.Sample(r) }
	const seed, trials = 42, 1500
	want := Run(seed, trials, trial)
	for _, workers := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(workers)
		got, err := RunParallel(context.Background(), seed, trials, trial)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Mean != want.Mean || got.SD != want.SD || got.Min != want.Min || got.Max != want.Max {
			t.Fatalf("workers=%d: summary diverges from sequential Run", workers)
		}
		for q := 0.0; q <= 1.0; q += 1.0 / 64 {
			if got.Quantile(q) != want.Quantile(q) {
				t.Fatalf("workers=%d: quantile %g diverges", workers, q)
			}
		}
	}
}

// TestRunAllocsAmortized pins the per-trial overhead of the harness: with
// the amortized deriver and a caller-held generator, allocations must not
// scale with the trial count (the harness itself needs only the value
// buffers plus goroutine bookkeeping).
func TestRunAllocsAmortized(t *testing.T) {
	trial := func(r *rng.RNG) float64 { return float64(r.Uint64() >> 40) }
	const trials = 2048
	allocs := testing.AllocsPerRun(10, func() {
		_ = Run(7, trials, trial)
	})
	// vals + sorted copy + Summary internals — far below one per trial.
	if allocs > 16 {
		t.Fatalf("Run allocates %.0f times for %d trials, want amortized O(1)", allocs, trials)
	}
}

func TestProportionMatchesDeriveIndex(t *testing.T) {
	// Proportion's amortized deriver must see exactly the per-trial
	// streams the documented DeriveIndex contract defines.
	base := rng.New(99)
	wantSucc := 0
	const trials = 500
	f := func(r *rng.RNG) bool { return r.Float64() < 0.3 }
	for i := 0; i < trials; i++ {
		if f(base.DeriveIndex("trial-", i)) {
			wantSucc++
		}
	}
	p, _, _ := Proportion(99, trials, f)
	if p != float64(wantSucc)/trials {
		t.Fatalf("Proportion %g diverges from DeriveIndex replay %g", p, float64(wantSucc)/trials)
	}
}

// TestSortValuesMatchesSlicesSort pins the radix path to the comparison
// sort over adversarial inputs: heavy duplicates, single-bucket digit
// planes, denormals, and the NaN/negative fallbacks.
func TestSortValuesMatchesSlicesSort(t *testing.T) {
	r := rng.New(3)
	cases := [][]float64{
		make([]float64, 4096),
		make([]float64, 256),
		make([]float64, 255), // below the radix threshold
		make([]float64, 4096),
		make([]float64, 1024),
		make([]float64, 1024),
	}
	for i := range cases[0] {
		cases[0][i] = r.Float64() * 1e6
	}
	for i := range cases[1] {
		cases[1][i] = float64(r.Intn(7)) // heavy duplicates
	}
	for i := range cases[2] {
		cases[2][i] = r.Float64()
	}
	for i := range cases[3] {
		cases[3][i] = 42.0 // fully constant: every digit plane skips
	}
	for i := range cases[4] {
		cases[4][i] = r.Float64() * 5e-324 // denormals
	}
	for i := range cases[5] {
		cases[5][i] = r.Float64() - 0.5 // negatives: comparison fallback
	}
	cases[5][100] = math.NaN()
	cases[5][200] = math.Copysign(0, -1)
	for ci, vals := range cases {
		want := append([]float64(nil), vals...)
		slices.Sort(want)
		got := append([]float64(nil), vals...)
		sortValues(got)
		for i := range want {
			wb, gb := math.Float64bits(want[i]), math.Float64bits(got[i])
			if wb != gb && !(math.IsNaN(want[i]) && math.IsNaN(got[i])) {
				t.Fatalf("case %d index %d: sortValues %x, slices.Sort %x", ci, i, gb, wb)
			}
		}
	}
}
