package montecarlo

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"lemonade/internal/rng"
)

func TestRunDeterministic(t *testing.T) {
	f := func(r *rng.RNG) float64 { return r.Float64() }
	a := Run(42, 500, f)
	b := Run(42, 500, f)
	if a.Mean != b.Mean || a.SD != b.SD {
		t.Error("same-seed runs should be identical")
	}
	c := Run(43, 500, f)
	if a.Mean == c.Mean {
		t.Error("different seeds should differ")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	f := func(r *rng.RNG) float64 { return r.NormFloat64() }
	a := Run(7, 1000, f)
	b, err := RunParallel(context.Background(), 7, 1000, f)
	if err != nil {
		t.Fatalf("RunParallel: %v", err)
	}
	if a.Mean != b.Mean || a.Min != b.Min || a.Max != b.Max {
		t.Errorf("parallel run diverged: %v vs %v", a, b)
	}
}

func TestRunParallelCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	go func() {
		<-started
		cancel()
	}()
	_, err := RunParallel(ctx, 7, 1_000_000, func(r *rng.RNG) float64 {
		once.Do(func() { close(started) })
		<-ctx.Done() // simulate a slow trial that outlives the client
		return r.Float64()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunParallel returned %v, want context.Canceled", err)
	}
}

func TestRunParallelPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sum, err := RunParallel(ctx, 1, 100, func(r *rng.RNG) float64 { return r.Float64() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sum.Trials != 0 {
		t.Errorf("cancelled run reported %d trials", sum.Trials)
	}
}

func TestSummaryStatistics(t *testing.T) {
	// constant trials
	s := Run(1, 100, func(r *rng.RNG) float64 { return 5 })
	if s.Mean != 5 || s.SD != 0 || s.Min != 5 || s.Max != 5 {
		t.Errorf("constant summary wrong: %v", s)
	}
	if s.Median() != 5 || s.Quantile(0.9) != 5 {
		t.Error("constant quantiles wrong")
	}
	lo, hi := s.CI95()
	if lo != 5 || hi != 5 {
		t.Error("constant CI wrong")
	}
}

func TestUniformMoments(t *testing.T) {
	s := Run(11, 50000, func(r *rng.RNG) float64 { return r.Float64() })
	if math.Abs(s.Mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %g", s.Mean)
	}
	if math.Abs(s.SD-math.Sqrt(1.0/12)) > 0.01 {
		t.Errorf("uniform sd = %g", s.SD)
	}
	if math.Abs(s.Median()-0.5) > 0.02 {
		t.Errorf("uniform median = %g", s.Median())
	}
	if math.Abs(s.Quantile(0.9)-0.9) > 0.02 {
		t.Errorf("uniform q90 = %g", s.Quantile(0.9))
	}
	if s.Quantile(0) != s.Min || s.Quantile(1) != s.Max {
		t.Error("extreme quantiles should hit min/max")
	}
}

func TestEmptySummary(t *testing.T) {
	s := Run(1, 0, func(r *rng.RNG) float64 { return 1 })
	if !math.IsNaN(s.Mean) || !math.IsNaN(s.Quantile(0.5)) {
		t.Error("empty run should produce NaNs")
	}
}

func TestProportion(t *testing.T) {
	p, lo, hi := Proportion(3, 20000, func(r *rng.RNG) bool { return r.Float64() < 0.3 })
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("proportion = %g", p)
	}
	if !(lo < 0.3 && 0.3 < hi) {
		t.Errorf("CI [%g, %g] should contain 0.3", lo, hi)
	}
	if hi-lo > 0.02 {
		t.Errorf("CI too wide for 20k trials: [%g, %g]", lo, hi)
	}
}

func TestStringer(t *testing.T) {
	s := Run(1, 10, func(r *rng.RNG) float64 { return 1 })
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestKolmogorovSmirnovAcceptsTrueDistribution(t *testing.T) {
	r := rng.New(101)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = r.Float64()
	}
	d, p, err := KolmogorovSmirnov(samples, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("KS rejected the true distribution: D=%g p=%g", d, p)
	}
}

func TestKolmogorovSmirnovRejectsWrongDistribution(t *testing.T) {
	r := rng.New(102)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = r.Float64() * r.Float64() // clearly not uniform
	}
	_, p, err := KolmogorovSmirnov(samples, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("KS failed to reject a wrong distribution: p=%g", p)
	}
}

func TestKolmogorovSmirnovValidation(t *testing.T) {
	if _, _, err := KolmogorovSmirnov([]float64{1, 2}, func(x float64) float64 { return 0.5 }); err == nil {
		t.Error("tiny sample should error")
	}
	samples := make([]float64, 10)
	if _, _, err := KolmogorovSmirnov(samples, func(x float64) float64 { return 2 }); err == nil {
		t.Error("invalid CDF should error")
	}
}
