// Package montecarlo is the simulation harness used by the experiments:
// it runs independent trials with per-trial deterministic RNG streams
// (reproducible regardless of scheduling), optionally in parallel, and
// aggregates summary statistics.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"lemonade/internal/rng"
)

// Trial computes one observation from its private RNG stream.
type Trial func(r *rng.RNG) float64

// Summary aggregates the observations of a run.
type Summary struct {
	Trials int
	Mean   float64
	SD     float64 // sample standard deviation
	Min    float64
	Max    float64
	values []float64 // sorted
}

// Quantile returns the empirical q-quantile (0 <= q <= 1).
func (s Summary) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// Median returns the empirical median.
func (s Summary) Median() float64 { return s.Quantile(0.5) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.Trials == 0 {
		return math.NaN()
	}
	return s.SD / math.Sqrt(float64(s.Trials))
}

// CI95 returns an approximate 95% confidence interval for the mean.
func (s Summary) CI95() (lo, hi float64) {
	se := s.StdErr()
	return s.Mean - 1.96*se, s.Mean + 1.96*se
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.4g [%.6g, %.6g]", s.Trials, s.Mean, s.SD, s.Min, s.Max)
}

// Run executes trials sequentially with per-trial derived streams.
// Trial i always sees the same stream for a given seed.
func Run(seed uint64, trials int, f Trial) Summary {
	vals := make([]float64, trials)
	d := rng.New(seed).IndexDeriver(trialLabel)
	var tr rng.RNG
	for i := range vals {
		d.SeedInto(&tr, i)
		vals[i] = f(&tr)
	}
	return summarize(vals)
}

// trialLabel is the per-trial stream derivation label; rng.DeriveIndex
// with this label and the trial index defines each trial's stream, and
// has since the first release — changing it would shift every simulation.
const trialLabel = "trial-"

// chunkSize is the dispatch granularity of RunParallel: workers claim
// blocks of this many consecutive trial indices from an atomic counter.
// Chunking amortizes the atomic op; which worker runs a trial never
// affects its stream (derivation is by index), so results stay
// bit-identical to Run at any worker count.
const chunkSize = 64

// RunParallel is Run across GOMAXPROCS workers. Results are identical to
// Run for the same seed: stream derivation depends only on the trial index.
//
// The context cancels the run between trials: dispatch stops, in-flight
// trials finish, and ctx.Err() is returned with a zero Summary — the hook
// a server uses to abandon simulations when the client disconnects or the
// process drains for shutdown. A context that can never be cancelled
// (context.Background, context.TODO) takes a dispatch path with no
// cancellation checks, bit-identical to the pre-context behavior.
func RunParallel(ctx context.Context, seed uint64, trials int, f Trial) (Summary, error) {
	vals := make([]float64, trials)
	base := rng.New(seed)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	done := ctx.Done()
	d := base.IndexDeriver(trialLabel)
	if workers == 1 {
		// Inline path: no goroutines, no dispatch overhead. Cancellation
		// is still honored between trials.
		var tr rng.RNG
		for i := 0; i < trials; i++ {
			if done != nil {
				select {
				case <-done:
					return Summary{}, ctx.Err()
				default:
				}
			}
			d.SeedInto(&tr, i)
			vals[i] = f(&tr)
		}
		if err := ctx.Err(); err != nil {
			return Summary{}, err
		}
		return summarize(vals), nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var tr rng.RNG
			for {
				start := int(next.Add(chunkSize)) - chunkSize
				if start >= trials {
					return
				}
				if done != nil {
					select {
					case <-done:
						return
					default:
					}
				}
				end := start + chunkSize
				if end > trials {
					end = trials
				}
				for i := start; i < end; i++ {
					d.SeedInto(&tr, i)
					vals[i] = f(&tr)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Summary{}, err
	}
	return summarize(vals), nil
}

func summarize(vals []float64) Summary {
	s := Summary{Trials: len(vals)}
	if len(vals) == 0 {
		s.Mean, s.SD = math.NaN(), math.NaN()
		return s
	}
	var sum, sumSq float64
	s.Min, s.Max = vals[0], vals[0]
	for _, v := range vals {
		sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	n := float64(len(vals))
	s.Mean = sum / n
	variance := (sumSq - sum*sum/n) / math.Max(1, n-1)
	if variance < 0 {
		variance = 0
	}
	s.SD = math.Sqrt(variance)
	sorted := append([]float64(nil), vals...)
	sortValues(sorted)
	s.values = sorted
	return s
}

// sortValues sorts ascending. Inputs free of NaNs and sign bits — every
// lifetime distribution, every probability — take an LSD radix sort on
// the IEEE-754 bit patterns, which for non-negative floats are
// order-isomorphic to the values: the result is byte-identical to the
// comparison sort (equal elements are bit-identical, so their relative
// order is unobservable). Anything else falls back to slices.Sort, the
// previous behavior, keeping quantiles (and every checksum over them)
// unchanged for all inputs.
func sortValues(vals []float64) {
	if len(vals) < 256 {
		slices.Sort(vals)
		return
	}
	for _, v := range vals {
		if math.IsNaN(v) || math.Signbit(v) {
			slices.Sort(vals)
			return
		}
	}
	buf := make([]float64, len(vals))
	src, dst := vals, buf
	var counts [256]int
	for shift := 0; shift < 64; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range src {
			counts[byte(math.Float64bits(v)>>shift)]++
		}
		skip := false
		for _, c := range counts {
			if c == len(src) {
				skip = true
				break
			}
			if c > 0 {
				break
			}
		}
		if skip {
			continue
		}
		pos := 0
		for i, c := range counts {
			counts[i] = pos
			pos += c
		}
		for _, v := range src {
			b := byte(math.Float64bits(v) >> shift)
			dst[counts[b]] = v
			counts[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &vals[0] {
		copy(vals, src)
	}
}

// Proportion is a convenience for Bernoulli trials: it runs f and reports
// the success fraction with a Wilson 95% interval.
func Proportion(seed uint64, trials int, f func(r *rng.RNG) bool) (p, lo, hi float64) {
	succ := 0
	d := rng.New(seed).IndexDeriver(trialLabel)
	var tr rng.RNG
	for i := 0; i < trials; i++ {
		d.SeedInto(&tr, i)
		if f(&tr) {
			succ++
		}
	}
	n := float64(trials)
	p = float64(succ) / n
	const z = 1.96
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return p, math.Max(0, center-half), math.Min(1, center+half)
}
