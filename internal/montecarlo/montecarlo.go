// Package montecarlo is the simulation harness used by the experiments:
// it runs independent trials with per-trial deterministic RNG streams
// (reproducible regardless of scheduling), optionally in parallel, and
// aggregates summary statistics.
package montecarlo

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"lemonade/internal/rng"
)

// Trial computes one observation from its private RNG stream.
type Trial func(r *rng.RNG) float64

// Summary aggregates the observations of a run.
type Summary struct {
	Trials int
	Mean   float64
	SD     float64 // sample standard deviation
	Min    float64
	Max    float64
	values []float64 // sorted
}

// Quantile returns the empirical q-quantile (0 <= q <= 1).
func (s Summary) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s.values) {
		return s.values[len(s.values)-1]
	}
	return s.values[lo]*(1-frac) + s.values[lo+1]*frac
}

// Median returns the empirical median.
func (s Summary) Median() float64 { return s.Quantile(0.5) }

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.Trials == 0 {
		return math.NaN()
	}
	return s.SD / math.Sqrt(float64(s.Trials))
}

// CI95 returns an approximate 95% confidence interval for the mean.
func (s Summary) CI95() (lo, hi float64) {
	se := s.StdErr()
	return s.Mean - 1.96*se, s.Mean + 1.96*se
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.4g [%.6g, %.6g]", s.Trials, s.Mean, s.SD, s.Min, s.Max)
}

// Run executes trials sequentially with per-trial derived streams.
// Trial i always sees the same stream for a given seed.
func Run(seed uint64, trials int, f Trial) Summary {
	vals := make([]float64, trials)
	base := rng.New(seed)
	for i := range vals {
		vals[i] = f(base.DeriveIndex("trial-", i))
	}
	return summarize(vals)
}

// RunParallel is Run across GOMAXPROCS workers. Results are identical to
// Run for the same seed: stream derivation depends only on the trial index.
//
// The context cancels the run between trials: dispatch stops, in-flight
// trials finish, and ctx.Err() is returned with a zero Summary — the hook
// a server uses to abandon simulations when the client disconnects or the
// process drains for shutdown. A context that can never be cancelled
// (context.Background, context.TODO) takes a dispatch path with no
// cancellation checks, bit-identical to the pre-context behavior.
func RunParallel(ctx context.Context, seed uint64, trials int, f Trial) (Summary, error) {
	vals := make([]float64, trials)
	base := rng.New(seed)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	done := ctx.Done()
	go func() {
		defer close(next)
		if done == nil {
			for i := 0; i < trials; i++ {
				next <- i
			}
			return
		}
		for i := 0; i < trials; i++ {
			select {
			case next <- i:
			case <-done:
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				vals[i] = f(base.DeriveIndex("trial-", i))
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return Summary{}, err
	}
	return summarize(vals), nil
}

func summarize(vals []float64) Summary {
	s := Summary{Trials: len(vals)}
	if len(vals) == 0 {
		s.Mean, s.SD = math.NaN(), math.NaN()
		return s
	}
	var sum, sumSq float64
	s.Min, s.Max = vals[0], vals[0]
	for _, v := range vals {
		sum += v
		sumSq += v * v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	n := float64(len(vals))
	s.Mean = sum / n
	variance := (sumSq - sum*sum/n) / math.Max(1, n-1)
	if variance < 0 {
		variance = 0
	}
	s.SD = math.Sqrt(variance)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	s.values = sorted
	return s
}

// Proportion is a convenience for Bernoulli trials: it runs f and reports
// the success fraction with a Wilson 95% interval.
func Proportion(seed uint64, trials int, f func(r *rng.RNG) bool) (p, lo, hi float64) {
	succ := 0
	base := rng.New(seed)
	for i := 0; i < trials; i++ {
		if f(base.DeriveIndex("trial-", i)) {
			succ++
		}
	}
	n := float64(trials)
	p = float64(succ) / n
	const z = 1.96
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return p, math.Max(0, center-half), math.Min(1, center+half)
}
