// Package bench is lemonbench: a seeded, deterministic macro-benchmark
// harness over the service's five hot paths (montecarlo, DSE, the
// Shamir/RS codec, the WAL, and the full HTTP access path), with a
// machine-readable report format and a noise-aware regression gate.
//
// The paper's claims are statistical — Weibull wearout windows,
// k-out-of-n success probabilities — so the performance record is too:
// every metric is measured N times after warmup and reported as
// median/p95/stddev plus allocations, and Compare fails a build only
// when a median shifts beyond what the pooled per-run noise explains.
// Single-run timings would flap; distributions gate.
//
// Determinism is load-bearing twice over. Each metric's workload is a
// pure function of the report seed, re-derived identically on every
// iteration, and the harness hashes the workload's observable output
// into a per-metric checksum: two runs at the same seed must produce
// bit-identical checksums, and a checksum that drifts *within* one run
// aborts it — so the benchmark suite doubles as an always-on
// integration test of the whole stack, exercised through the same
// public entry points production traffic uses.
//
// The package obeys the lemonvet determinism contract: it never reads
// the wall clock itself. The caller (cmd/lemonaded) injects a monotonic
// nanosecond clock; everything else is seeded.
package bench

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
)

// SchemaVersion identifies the report format. Compare refuses to gate
// across schema versions — a changed format means changed semantics.
const SchemaVersion = 1

// Config parameterizes one benchmark run.
type Config struct {
	// Seed derives every workload in the suite. Same seed, same machine
	// ⇒ identical non-timing fields in the report.
	Seed uint64
	// N is the measured repetitions per metric (default 10).
	N int
	// Warmup is the discarded repetitions before measurement (default 2).
	Warmup int
	// NowNanos is the injected monotonic clock (required): the package
	// never reads the wall clock itself.
	NowNanos func() int64
	// Scratch is the directory WAL cases create their data dirs under
	// (default: the OS temp dir). Everything created is removed again.
	Scratch string
	// Filter, when non-empty, restricts the run to metrics whose name
	// contains the substring.
	Filter string
	// Log, when non-nil, receives one progress line per metric.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 10
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.N > 0 && c.Warmup == 0 {
		c.Warmup = 2
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Result is one metric's measured distribution. The non-timing fields
// (Name, N, Warmup, Checksum) are deterministic for a fixed seed; the
// nanosecond fields and the allocation counters carry machine noise and
// are gated statistically by Compare.
type Result struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	Warmup      int     `json:"warmup"`
	MedianNanos float64 `json:"median_ns"`
	P95Nanos    float64 `json:"p95_ns"`
	StddevNanos float64 `json:"stddev_ns"`
	MinNanos    float64 `json:"min_ns"`
	MaxNanos    float64 `json:"max_ns"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// Checksum is the hex digest of the workload's observable output —
	// identical on every iteration of every run at the same seed. A
	// cross-run mismatch at equal seeds is a determinism regression and
	// fails Compare outright.
	Checksum string `json:"checksum"`
}

// Report is the schema-versioned output of one run, written as
// BENCH_<gitsha>.json at the repo root by `make bench-json`.
type Report struct {
	SchemaVersion int      `json:"schema_version"`
	GitSHA        string   `json:"git_sha,omitempty"`
	GoVersion     string   `json:"go_version"`
	GOOS          string   `json:"goos"`
	GOARCH        string   `json:"goarch"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	Seed          uint64   `json:"seed"`
	N             int      `json:"n"`
	Warmup        int      `json:"warmup"`
	Results       []Result `json:"results"`
}

// Case is one benchmark: Setup builds the workload and returns the
// closure the harness times. The closure returns the workload's
// observable output, which the harness hashes into the metric checksum;
// it must be bit-identical on every invocation (the harness verifies).
type Case struct {
	Name  string
	Setup func(env *Env) (run func() ([]byte, error), cleanup func(), err error)
}

// Env is what a Case's Setup sees: the caller's context (threaded into
// every context-aware callee the workload drives), the run seed, and a
// scratch-dir factory for cases that need a filesystem (the WAL path).
type Env struct {
	Ctx     context.Context
	Seed    uint64
	scratch string
	temps   []string
}

// Run executes the suite under cfg and assembles the report. ctx flows
// into every case's workload; canceling it aborts the blocking paths
// (montecarlo, dse, registry accesses) mid-iteration.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.NowNanos == nil {
		return nil, errors.New("bench: Config.NowNanos is required (the harness never reads the wall clock itself)")
	}
	rep := &Report{
		SchemaVersion: SchemaVersion,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Seed:          cfg.Seed,
		N:             cfg.N,
		Warmup:        cfg.Warmup,
	}
	for _, c := range Suite() {
		if cfg.Filter != "" && !strings.Contains(c.Name, cfg.Filter) {
			continue
		}
		res, err := runCase(ctx, cfg, c)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", c.Name, err)
		}
		cfg.Log("%-24s median %12.0f ns  p95 %12.0f ns  σ %10.0f ns  %8.1f allocs/op",
			res.Name, res.MedianNanos, res.P95Nanos, res.StddevNanos, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("bench: no metric matches filter %q", cfg.Filter)
	}
	return rep, nil
}

// runCase measures one case: warmup iterations (digest-checked but
// untimed), then N timed iterations with per-iteration allocation
// deltas. Any digest drift between iterations aborts the run — a
// nondeterministic hot path is a bug this harness exists to catch.
func runCase(ctx context.Context, cfg Config, c Case) (Result, error) {
	env := &Env{Ctx: ctx, Seed: cfg.Seed, scratch: cfg.Scratch}
	defer env.removeTemps()
	run, cleanup, err := c.Setup(env)
	if err != nil {
		return Result{}, fmt.Errorf("setup: %w", err)
	}
	if cleanup != nil {
		defer cleanup()
	}

	var digest string
	check := func(out []byte) error {
		sum := sha256.Sum256(out)
		d := hex.EncodeToString(sum[:16])
		if digest == "" {
			digest = d
		} else if d != digest {
			return fmt.Errorf("nondeterministic workload: iteration digest %s != %s", d, digest)
		}
		return nil
	}

	for i := 0; i < cfg.Warmup; i++ {
		out, err := run()
		if err != nil {
			return Result{}, fmt.Errorf("warmup %d: %w", i, err)
		}
		if err := check(out); err != nil {
			return Result{}, err
		}
	}

	times := make([]float64, cfg.N)
	var allocs, bytes float64
	var ms runtime.MemStats
	for i := 0; i < cfg.N; i++ {
		runtime.ReadMemStats(&ms)
		m0, b0 := ms.Mallocs, ms.TotalAlloc
		start := cfg.NowNanos()
		out, err := run()
		elapsed := cfg.NowNanos() - start
		if err != nil {
			return Result{}, fmt.Errorf("iteration %d: %w", i, err)
		}
		runtime.ReadMemStats(&ms)
		if err := check(out); err != nil {
			return Result{}, err
		}
		times[i] = float64(elapsed)
		allocs += float64(ms.Mallocs - m0)
		bytes += float64(ms.TotalAlloc - b0)
	}

	sorted := append([]float64(nil), times...)
	sort.Float64s(sorted)
	return Result{
		Name:        c.Name,
		N:           cfg.N,
		Warmup:      cfg.Warmup,
		MedianNanos: quantile(sorted, 0.5),
		P95Nanos:    quantile(sorted, 0.95),
		StddevNanos: stddev(times),
		MinNanos:    sorted[0],
		MaxNanos:    sorted[len(sorted)-1],
		AllocsPerOp: allocs / float64(cfg.N),
		BytesPerOp:  bytes / float64(cfg.N),
		Checksum:    digest,
	}, nil
}

// quantile returns the interpolated q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// stddev returns the sample standard deviation.
func stddev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}
