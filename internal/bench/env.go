package bench

import (
	"fmt"
	"os"
)

// TempDir returns a fresh scratch directory for the current case. Every
// directory handed out is removed when the case finishes, whether it
// passed or failed.
func (e *Env) TempDir() (string, error) {
	base := e.scratch
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "lemonbench-")
	if err != nil {
		return "", fmt.Errorf("bench: scratch dir: %w", err)
	}
	e.temps = append(e.temps, dir)
	return dir, nil
}

func (e *Env) removeTemps() {
	for _, d := range e.temps {
		_ = os.RemoveAll(d)
	}
	e.temps = nil
}
