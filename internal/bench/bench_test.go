package bench

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"
)

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Seed:     42,
		N:        3,
		Warmup:   1,
		NowNanos: func() int64 { return time.Now().UnixNano() },
		Scratch:  t.TempDir(),
		Log:      t.Logf,
	}
}

// TestSuiteCoversHotPaths pins the metric inventory: the five hot paths
// of ISSUE 5 (montecarlo, DSE cold+cached, the codec, the WAL's three
// phases, HTTP) must all be present in a full run.
func TestSuiteCoversHotPaths(t *testing.T) {
	rep, err := Run(context.Background(), testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"montecarlo/run_parallel",
		"dse/frontier_cold",
		"dse/explore_cached",
		"explore/parallel",
		"codec/shamir_split_combine",
		"codec/rs_encode_decode",
		"codec/rs-fast-path",
		"wal/append",
		"wal/replay",
		"wal/snapshot_recovery",
		"http/access",
		"access/saturated",
		"access/leveled",
	}
	got := make(map[string]Result, len(rep.Results))
	for _, r := range rep.Results {
		got[r.Name] = r
	}
	for _, name := range want {
		r, ok := got[name]
		if !ok {
			t.Errorf("metric %q missing from report", name)
			continue
		}
		if r.Checksum == "" {
			t.Errorf("metric %q has no workload checksum", name)
		}
		if r.N != 3 || r.Warmup != 1 {
			t.Errorf("metric %q: n=%d warmup=%d, want 3/1", name, r.N, r.Warmup)
		}
		if !(r.MedianNanos > 0) {
			t.Errorf("metric %q: non-positive median %v", name, r.MedianNanos)
		}
	}
	if len(rep.Results) != len(want) {
		t.Errorf("report has %d metrics, want %d", len(rep.Results), len(want))
	}
}

// TestSuiteDeterministicChecksums runs the full suite twice at the same
// seed and requires every non-timing field — the metric names and the
// workload checksums — to agree bit for bit. This is the "harness as
// integration test" property: if any hot path computes different bytes
// across two runs, the serving stack broke the determinism contract.
func TestSuiteDeterministicChecksums(t *testing.T) {
	cfg := testConfig(t)
	cfg.N, cfg.Warmup = 2, 1
	r1, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("metric count differs: %d vs %d", len(r1.Results), len(r2.Results))
	}
	for i := range r1.Results {
		a, b := r1.Results[i], r2.Results[i]
		if a.Name != b.Name {
			t.Fatalf("metric order differs: %q vs %q", a.Name, b.Name)
		}
		if a.Checksum != b.Checksum {
			t.Errorf("%s: checksum drifted across runs: %s vs %s", a.Name, a.Checksum, b.Checksum)
		}
	}
	// The full gate between the two runs must not report coverage or
	// determinism regressions; timing fields are machine noise and are
	// not asserted here (the threshold formula is unit-tested below).
	regs, err := Compare(r1, r2, CompareOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Field == "checksum" || r.Field == "coverage" {
			t.Errorf("unexpected regression between identical runs: %s", r)
		}
	}
}

// TestParallelChecksumsWorkerCountInvariant pins the scheduling-
// independence contract of the two parallel workloads: the montecarlo
// and frontier-sweep checksums must be identical at GOMAXPROCS ∈
// {1, 2, 8}. Worker count changes which goroutine computes each trial or
// design point, never the bytes.
func TestParallelChecksumsWorkerCountInvariant(t *testing.T) {
	run := func(workers int, filter string) string {
		t.Helper()
		prev := runtime.GOMAXPROCS(workers)
		defer runtime.GOMAXPROCS(prev)
		cfg := testConfig(t)
		cfg.N, cfg.Warmup = 1, 0
		cfg.Filter = filter
		rep, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != 1 {
			t.Fatalf("filter %q matched %d metrics, want 1", filter, len(rep.Results))
		}
		return rep.Results[0].Checksum
	}
	for _, filter := range []string{"montecarlo/run_parallel", "explore/parallel"} {
		want := run(1, filter)
		for _, workers := range []int{2, 8} {
			if got := run(workers, filter); got != want {
				t.Errorf("%s: checksum at GOMAXPROCS=%d is %s, want %s (GOMAXPROCS=1)",
					filter, workers, got, want)
			}
		}
	}
}

// TestCompareAllocCeilings covers the ratchet: a new report over a
// configured ceiling regresses even when the old report was equally
// bad — the point of an absolute gate.
func TestCompareAllocCeilings(t *testing.T) {
	bad := Result{Name: "codec/rs_encode_decode", MedianNanos: 1e6, AllocsPerOp: 500, Checksum: "abc"}
	opts := CompareOpts{AllocCeilings: map[string]float64{"codec/rs_encode_decode": 48}}
	regs, err := Compare(report(bad), report(bad), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Field != "allocs_ceiling" {
		t.Fatalf("got %v, want one allocs_ceiling regression", regs)
	}
	good := bad
	good.AllocsPerOp = 12
	regs, err = Compare(report(bad), report(good), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("under-ceiling report flagged: %v", regs)
	}
}

// TestCompareSelfIsClean pins that a report gates cleanly against
// itself: zero delta must never trip any threshold.
func TestCompareSelfIsClean(t *testing.T) {
	cfg := testConfig(t)
	cfg.Filter = "codec"
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Compare(rep, rep, CompareOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("self-compare reported regressions: %v", regs)
	}
}

func report(results ...Result) *Report {
	return &Report{SchemaVersion: SchemaVersion, Seed: 42, Results: results}
}

// TestCompareSyntheticSlowdown covers the gate's decision table: a 2×
// median slowdown fails naming the metric, jitter under every threshold
// passes, improvements pass, missing metrics fail, checksum mismatches
// at equal seeds fail.
func TestCompareSyntheticSlowdown(t *testing.T) {
	base := Result{Name: "wal/append", MedianNanos: 1e6, StddevNanos: 2e4,
		AllocsPerOp: 100, Checksum: "abc"}

	t.Run("2x slowdown regresses and names the metric", func(t *testing.T) {
		slow := base
		slow.MedianNanos = 2e6
		regs, err := Compare(report(base), report(slow), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 {
			t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
		}
		if regs[0].Metric != "wal/append" || regs[0].Field != "median_ns" {
			t.Fatalf("regression misattributed: %+v", regs[0])
		}
	})

	t.Run("jitter below every threshold passes", func(t *testing.T) {
		jitter := base
		jitter.MedianNanos = 1.05e6 // +5%: under the 10% relative threshold
		regs, err := Compare(report(base), report(jitter), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("jitter flagged as regression: %v", regs)
		}
	})

	t.Run("noise floor absorbs shifts on fast metrics", func(t *testing.T) {
		fast := base
		fast.MedianNanos = 5e3
		slower := fast
		slower.MedianNanos = 1.5e4 // 3× slower, but the shift is under the 20µs floor
		regs, err := Compare(report(fast), report(slower), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("sub-floor shift flagged: %v", regs)
		}
	})

	t.Run("improvement passes", func(t *testing.T) {
		faster := base
		faster.MedianNanos = 4e5
		regs, err := Compare(report(base), report(faster), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("improvement flagged as regression: %v", regs)
		}
	})

	t.Run("missing metric regresses coverage", func(t *testing.T) {
		regs, err := Compare(report(base), report(), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Field != "coverage" {
			t.Fatalf("got %v, want one coverage regression", regs)
		}
	})

	t.Run("checksum mismatch at equal seeds regresses", func(t *testing.T) {
		drift := base
		drift.Checksum = "def"
		regs, err := Compare(report(base), report(drift), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Field != "checksum" {
			t.Fatalf("got %v, want one checksum regression", regs)
		}
	})

	t.Run("checksum mismatch at different seeds is expected", func(t *testing.T) {
		drift := base
		drift.Checksum = "def"
		other := report(drift)
		other.Seed = 7
		regs, err := Compare(report(base), other, CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("cross-seed checksum difference flagged: %v", regs)
		}
	})

	t.Run("alloc growth regresses", func(t *testing.T) {
		leaky := base
		leaky.AllocsPerOp = 500
		regs, err := Compare(report(base), report(leaky), CompareOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 1 || regs[0].Field != "allocs_per_op" {
			t.Fatalf("got %v, want one allocs regression", regs)
		}
	})
}

// TestReportFileRoundTrip checks WriteFile/ReadFile and the schema
// version rejection.
func TestReportFileRoundTrip(t *testing.T) {
	rep := report(Result{Name: "m", MedianNanos: 1, Checksum: "aa"})
	path := t.TempDir() + "/BENCH_test.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "m" || got.Seed != 42 {
		t.Fatalf("round trip mangled report: %+v", got)
	}

	bad := report()
	bad.SchemaVersion = SchemaVersion + 1
	badPath := t.TempDir() + "/BENCH_bad.json"
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(badPath); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("unknown schema accepted: %v", err)
	}
}

// TestRunRequiresClock pins that the harness refuses to run without an
// injected clock rather than silently reporting zeros.
func TestRunRequiresClock(t *testing.T) {
	if _, err := Run(context.Background(), Config{Seed: 1}); err == nil {
		t.Fatal("Run without NowNanos succeeded")
	}
}
