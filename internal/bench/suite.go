package bench

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"

	"lemonade/internal/cache"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/metrics"
	"lemonade/internal/montecarlo"
	"lemonade/internal/nems"
	"lemonade/internal/registry"
	"lemonade/internal/reliability"
	"lemonade/internal/rng"
	"lemonade/internal/rs"
	"lemonade/internal/server"
	"lemonade/internal/shamir"
	"lemonade/internal/wal"
	"lemonade/internal/weibull"
)

// smallSpec is the fast design problem the WAL and HTTP cases provision:
// the same mean-6-cycle, LAB-30, 10%-encoded architecture the golden
// determinism tests pin, so its access trajectory is short and known.
func smallSpec() dse.Spec {
	return dse.Spec{
		Dist:        weibull.MustNew(6, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         30,
		KFrac:       0.10,
		ContinuousT: true,
	}
}

// paperSpec is the paper's baseline design problem (mean lifetime 14,
// LAB 91,250, 10% encoding) — the expensive search ExploreFrontier and
// the cached-explore path are measured against.
func paperSpec() dse.Spec {
	return dse.Spec{
		Dist:        weibull.MustNew(14, 8),
		Criteria:    reliability.DefaultCriteria,
		LAB:         91_250,
		KFrac:       0.10,
		ContinuousT: true,
	}
}

// Suite returns the five hot paths lemonbench measures end to end.
// Order is stable; report consumers rely on metric names, not position.
func Suite() []Case {
	return []Case{
		{Name: "montecarlo/run_parallel", Setup: setupMonteCarlo},
		{Name: "dse/frontier_cold", Setup: setupFrontierCold},
		{Name: "dse/explore_cached", Setup: setupExploreCached},
		{Name: "explore/parallel", Setup: setupExploreParallel},
		{Name: "codec/shamir_split_combine", Setup: setupShamir},
		{Name: "codec/rs_encode_decode", Setup: setupRS},
		{Name: "codec/rs-fast-path", Setup: setupRSFastPath},
		{Name: "wal/append", Setup: setupWALAppend},
		{Name: "wal/replay", Setup: setupWALReplay},
		{Name: "wal/snapshot_recovery", Setup: setupWALSnapshotRecovery},
		{Name: "http/access", Setup: setupHTTPAccess},
		{Name: "access/saturated", Setup: setupAccessSaturated},
		{Name: "access/leveled", Setup: setupAccessLeveled},
	}
}

// --- montecarlo -------------------------------------------------------------

// setupMonteCarlo measures RunParallel over 4096 Weibull-sampling trials
// — the workhorse under every figure and the /v1 simulation endpoints.
func setupMonteCarlo(env *Env) (func() ([]byte, error), func(), error) {
	d := weibull.MustNew(14, 8)
	trial := func(r *rng.RNG) float64 { return d.Sample(r) }
	ctx := env.Ctx
	seed := env.Seed
	run := func() ([]byte, error) {
		s, err := montecarlo.RunParallel(ctx, seed, 4096, trial)
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		fmt.Fprintf(&out, "n=%d mean=%.17g sd=%.17g min=%.17g max=%.17g p95=%.17g",
			s.Trials, s.Mean, s.SD, s.Min, s.Max, s.Quantile(0.95))
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// --- dse --------------------------------------------------------------------

// setupFrontierCold measures the full feasible-design enumeration for
// the paper's baseline problem, uncached — the cost a cache miss pays.
func setupFrontierCold(env *Env) (func() ([]byte, error), func(), error) {
	spec := paperSpec()
	ctx := env.Ctx
	run := func() ([]byte, error) {
		designs, err := dse.ExploreFrontier(ctx, spec)
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		for _, d := range designs {
			fmt.Fprintf(&out, "T=%d N=%d K=%d copies=%d total=%d\n",
				d.T, d.N, d.K, d.Copies, d.TotalDevices)
		}
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupExploreCached measures the cache-hit path a provisioning fleet
// takes: 1024 Explore calls against a primed LRU, per iteration.
func setupExploreCached(env *Env) (func() ([]byte, error), func(), error) {
	spec := paperSpec()
	c := cache.New[dse.Design](16)
	key := spec.CacheKey()
	compute := func() (dse.Design, error) { return dse.Explore(spec) }
	if _, _, err := c.Do(key, compute); err != nil {
		return nil, nil, err
	}
	run := func() ([]byte, error) {
		var last dse.Design
		for i := 0; i < 1024; i++ {
			d, hit, err := c.Do(key, compute)
			if err != nil {
				return nil, err
			}
			if !hit {
				return nil, fmt.Errorf("primed cache missed on iteration %d", i)
			}
			last = d
		}
		var out bytes.Buffer
		fmt.Fprintf(&out, "T=%d N=%d K=%d copies=%d total=%d",
			last.T, last.N, last.K, last.Copies, last.TotalDevices)
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupExploreParallel measures the parallel frontier sweep: an
// unencoded, relaxed-criteria problem whose 408 integer targets cross
// ExploreFrontier's parallel threshold, so this metric times the worker
// pool (on multi-core hosts) where dse/frontier_cold times the
// sequential paper-scale sweep. The checksum is the enumerated frontier,
// which the determinism contract requires to be identical at any
// GOMAXPROCS — bench_test pins that at 1, 2, and 8.
func setupExploreParallel(env *Env) (func() ([]byte, error), func(), error) {
	spec := dse.Spec{
		Dist:     weibull.MustNew(100, 30),
		Criteria: reliability.Criteria{MinWork: 0.90, MaxOverrun: 0.10},
		LAB:      91_250,
	}
	ctx := env.Ctx
	run := func() ([]byte, error) {
		designs, err := dse.ExploreFrontier(ctx, spec)
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		for _, d := range designs {
			fmt.Fprintf(&out, "T=%d N=%d K=%d copies=%d total=%d\n",
				d.T, d.N, d.K, d.Copies, d.TotalDevices)
		}
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// --- codec ------------------------------------------------------------------

// setupShamir measures the paper-baseline sharing: split a 32-byte
// secret 15-of-141 over GF(256) and combine from the last 15 shares,
// four round trips per iteration. The share arena and the combine
// buffer are allocated once at setup and reused through the Into APIs —
// the workload bytes (and hence the checksum) are identical to the
// allocating wrappers, so this measures the codec, not the allocator.
func setupShamir(env *Env) (func() ([]byte, error), func(), error) {
	secret := make([]byte, 32)
	rng.New(env.Seed).Bytes(secret)
	seed := env.Seed
	shares := make([]shamir.Share, 141)
	combined := make([]byte, len(secret))
	run := func() ([]byte, error) {
		var out bytes.Buffer
		for rep := 0; rep < 4; rep++ {
			r := rng.New(seed).DeriveIndex("shamir-", rep)
			if err := shamir.SplitInto(secret, shares, 15, 141, r); err != nil {
				return nil, err
			}
			n, err := shamir.CombineInto(shares[len(shares)-15:], 15, combined)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(combined[:n], secret) {
				return nil, fmt.Errorf("rep %d: combined secret differs from input", rep)
			}
			for _, sh := range shares {
				out.WriteByte(sh.X)
				out.Write(sh.Data)
			}
		}
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupRS measures Reed-Solomon erasure coding at the fleet shape
// (16-of-64): encode 1 KiB and decode it back from a pseudo-random
// 16-shard subset. The shard arena and decode buffer are reused across
// iterations through the Into APIs; the checksum (the encoded shards) is
// bit-identical to the allocating Encode/Decode path.
func setupRS(env *Env) (func() ([]byte, error), func(), error) {
	code, err := rs.New(16, 64)
	if err != nil {
		return nil, nil, err
	}
	data := make([]byte, 16*64)
	rng.New(env.Seed).Bytes(data)
	seed := env.Seed
	shards := make([][]byte, 64)
	for i := range shards {
		shards[i] = make([]byte, len(data)/16)
	}
	survivors := make([]rs.Shard, 16)
	decoded := make([]byte, len(data))
	// The survivor pick is a pure function of the seed — hoisting it out
	// of the loop changes no workload bytes.
	perm := rng.New(seed).DeriveIndex("rs-pick-", 0).Perm(64)[:16]
	run := func() ([]byte, error) {
		if err := code.EncodeInto(data, shards); err != nil {
			return nil, err
		}
		for i, idx := range perm {
			survivors[i] = rs.Shard{Index: idx, Data: shards[idx]}
		}
		n, err := code.DecodeInto(survivors, decoded)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(decoded[:n], data) {
			return nil, fmt.Errorf("erasure round trip differs from input")
		}
		var out bytes.Buffer
		out.Grow(64 * len(shards[0]))
		for _, s := range shards {
			out.Write(s)
		}
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupRSFastPath measures the syndrome-checked decode: DecodeWithErrors
// over the full shard set, where the survivor-consistency fast path
// certifies the candidate without running Berlekamp–Welch (eight clean
// decodes per iteration), plus one decode with two corrupted shards that
// exercises the column-flagged BW fallback. The checksum covers every
// recovered payload, pinning both paths' outputs.
func setupRSFastPath(env *Env) (func() ([]byte, error), func(), error) {
	code, err := rs.New(16, 64)
	if err != nil {
		return nil, nil, err
	}
	data := make([]byte, 16*64)
	rng.New(env.Seed).Bytes(data)
	shards := make([][]byte, 64)
	for i := range shards {
		shards[i] = make([]byte, len(data)/16)
	}
	if err := code.EncodeInto(data, shards); err != nil {
		return nil, nil, err
	}
	clean := make([]rs.Shard, 64)
	for i := range clean {
		clean[i] = rs.Shard{Index: i, Data: shards[i]}
	}
	// Two corrupted shards (well inside the (n-k)/2 = 24 error budget),
	// damaged only in their first four bytes: a decode column is one byte
	// position across all shards, so only four columns fail the syndrome
	// check and fall back to Berlekamp–Welch — the realistic mixed case,
	// instead of a fully-corrupt decode that would drown the fast path.
	corrupted := make([]rs.Shard, 64)
	for i := range corrupted {
		dup := make([]byte, len(shards[i]))
		copy(dup, shards[i])
		corrupted[i] = rs.Shard{Index: i, Data: dup}
	}
	dmg := rng.New(env.Seed).Derive("rs-damage")
	for _, i := range []int{3, 40} {
		for b := 0; b < 4; b++ {
			corrupted[i].Data[b] ^= byte(1 + dmg.Intn(255))
		}
	}
	run := func() ([]byte, error) {
		var out bytes.Buffer
		for rep := 0; rep < 8; rep++ {
			got, err := code.DecodeWithErrors(clean)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(got, data) {
				return nil, fmt.Errorf("rep %d: clean fast-path decode differs from input", rep)
			}
			out.Write(got)
		}
		got, err := code.DecodeWithErrors(corrupted)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, data) {
			return nil, fmt.Errorf("corrupted decode differs from input")
		}
		out.Write(got)
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// --- wal --------------------------------------------------------------------

// walAccesses is how many durable accesses the WAL cases drive per
// iteration/fixture — inside the small architecture's designed window,
// so outcomes stay on the success/transient path.
const walAccesses = 16

// buildSmallArch deterministically fabricates the small architecture.
func buildSmallArch(seed uint64) (*core.Architecture, dse.Design, error) {
	design, err := dse.Explore(smallSpec())
	if err != nil {
		return nil, dse.Design{}, err
	}
	arch, err := core.Build(design, []byte("lemonbench secret 0123456789abcd"), rng.New(seed))
	return arch, design, err
}

// openStore opens (and recovers into reg) a DiskStore on dir with a
// null clock and a private metric registry.
func openStore(dir string, reg *registry.Registry) (*wal.DiskStore, wal.RecoveryStats, error) {
	store, err := wal.Open(wal.Config{Dir: dir, Metrics: metrics.NewRegistry()})
	if err != nil {
		return nil, wal.RecoveryStats{}, err
	}
	stats, err := store.Recover(reg)
	if err != nil {
		return nil, stats, err
	}
	return store, stats, nil
}

// driveAccesses performs n durable accesses through the registry entry,
// recording each outcome class into out.
func driveAccesses(ctx context.Context, out *bytes.Buffer, e *registry.Entry, n int) error {
	for i := 0; i < n; i++ {
		secret, err := e.Access(ctx, nems.RoomTemp)
		switch {
		case err == nil:
			fmt.Fprintf(out, "ok %x\n", secret)
		case errors.Is(err, core.ErrTransient):
			fmt.Fprintf(out, "transient\n")
		case errors.Is(err, core.ErrExhausted):
			fmt.Fprintf(out, "exhausted\n")
		default:
			return err
		}
	}
	return nil
}

// setupWALAppend measures the durable write path: recover an empty data
// directory, provision one architecture through the log-ahead store, and
// drive walAccesses fsynced accesses — a fresh directory per iteration.
func setupWALAppend(env *Env) (func() ([]byte, error), func(), error) {
	ctx := env.Ctx
	seed := env.Seed
	run := func() ([]byte, error) {
		dir, err := env.TempDir()
		if err != nil {
			return nil, err
		}
		reg := registry.New(1)
		store, _, err := openStore(dir, reg)
		if err != nil {
			return nil, err
		}
		defer func() { _ = store.Close() }()
		reg = registry.NewWithStore(1, store)
		arch, _, err := buildSmallArch(seed)
		if err != nil {
			return nil, err
		}
		e, err := reg.Provision(arch, seed, []byte("lemonbench secret 0123456789abcd"))
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		fmt.Fprintf(&out, "id=%s\n", e.ID)
		if err := driveAccesses(ctx, &out, e, walAccesses); err != nil {
			return nil, err
		}
		total, okCount := e.Arch.Accesses()
		fmt.Fprintf(&out, "attempts=%d successes=%d\n", total, okCount)
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupWALReplay measures cold recovery from a pure log: the fixture
// directory holds one provision plus walAccesses access records and no
// snapshot, and every iteration replays it into a fresh registry.
func setupWALReplay(env *Env) (func() ([]byte, error), func(), error) {
	dir, err := env.TempDir()
	if err != nil {
		return nil, nil, err
	}
	seed := env.Seed
	if err := buildWALFixture(env.Ctx, dir, seed, false); err != nil {
		return nil, nil, err
	}
	run := func() ([]byte, error) { return recoverDir(dir) }
	return run, nil, nil
}

// setupWALSnapshotRecovery measures recovery through a snapshot: the
// fixture holds a compacted snapshot of the provisioned state plus a
// tail of access records appended after it.
func setupWALSnapshotRecovery(env *Env) (func() ([]byte, error), func(), error) {
	dir, err := env.TempDir()
	if err != nil {
		return nil, nil, err
	}
	seed := env.Seed
	if err := buildWALFixture(env.Ctx, dir, seed, true); err != nil {
		return nil, nil, err
	}
	run := func() ([]byte, error) { return recoverDir(dir) }
	return run, nil, nil
}

// buildWALFixture populates dir with one provisioned architecture and
// two batches of walAccesses accesses; with snapshot set, a snapshot is
// taken between the batches so recovery loads it and replays the tail.
func buildWALFixture(ctx context.Context, dir string, seed uint64, snapshot bool) error {
	reg := registry.New(1)
	store, _, err := openStore(dir, reg)
	if err != nil {
		return err
	}
	defer func() { _ = store.Close() }()
	reg = registry.NewWithStore(1, store)
	arch, _, err := buildSmallArch(seed)
	if err != nil {
		return err
	}
	e, err := reg.Provision(arch, seed, []byte("lemonbench secret 0123456789abcd"))
	if err != nil {
		return err
	}
	var sink bytes.Buffer
	if err := driveAccesses(ctx, &sink, e, walAccesses); err != nil {
		return err
	}
	if snapshot {
		if err := store.Snapshot(reg); err != nil {
			return err
		}
	}
	return driveAccesses(ctx, &sink, e, walAccesses)
}

// recoverDir runs one cold recovery of dir into a fresh registry and
// summarizes the recovered state.
func recoverDir(dir string) ([]byte, error) {
	reg := registry.New(1)
	store, stats, err := openStore(dir, reg)
	if err != nil {
		return nil, err
	}
	defer func() { _ = store.Close() }()
	var out bytes.Buffer
	fmt.Fprintf(&out, "snapshot_epoch=%d snapshot_archs=%d provisions=%d accesses=%d segments=%d torn=%d\n",
		stats.SnapshotEpoch, stats.SnapshotArchitectures,
		stats.ReplayedProvisions, stats.ReplayedAccesses, stats.Segments, stats.TornBytesTruncated)
	reg.Range(func(e *registry.Entry) bool {
		total, okCount := e.Arch.Accesses()
		fmt.Fprintf(&out, "%s attempts=%d successes=%d alive=%t\n", e.ID, total, okCount, e.Arch.Alive())
		return true
	})
	return out.Bytes(), nil
}

// --- http -------------------------------------------------------------------

// provisionHTTP provisions one small architecture over HTTP and returns
// its ID.
func provisionHTTP(client *http.Client, baseURL string, seed uint64) (string, error) {
	body := fmt.Sprintf(
		`{"spec":{"alpha":6,"beta":8,"lab":30,"kfrac":0.1,"continuous_t":true},"secret_hex":"00112233445566778899aabbccddeeff","seed":%d}`,
		seed)
	resp, err := client.Post(baseURL+"/v1/architectures", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		return "", err
	}
	payload, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("provision: status %d: %s", resp.StatusCode, payload)
	}
	return extractID(payload)
}

// driveToLockout drives one architecture to lockout over HTTP, appending
// every status code (and every returned secret) to out. Each
// architecture's transcript is a pure function of its provisioning seed
// — its wear trajectory depends only on its own NEMS RNG — so the
// transcript is deterministic even when many of these run concurrently.
func driveToLockout(client *http.Client, baseURL, id string, out *bytes.Buffer) error {
	for attempt := 0; attempt < 100; attempt++ {
		resp, err := client.Post(baseURL+"/v1/architectures/"+id+"/access", "application/json", nil)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d\n", resp.StatusCode)
		switch resp.StatusCode {
		case http.StatusOK:
			out.Write(body)
		case http.StatusGone:
			return nil
		case http.StatusServiceUnavailable:
			// transient: the next copy takes over
		default:
			return fmt.Errorf("access: unexpected status %d: %s", resp.StatusCode, body)
		}
	}
	return fmt.Errorf("architecture %s not exhausted after 100 attempts", id)
}

// setupHTTPAccess measures the full service path: an httptest listener
// over a real internal/server; each iteration provisions a fresh
// architecture over HTTP and drives it to lockout, checksumming every
// status code and returned secret.
func setupHTTPAccess(env *Env) (func() ([]byte, error), func(), error) {
	srv := server.New(server.Config{})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	seed := env.Seed
	run := func() ([]byte, error) {
		id, err := provisionHTTP(client, ts.URL, seed)
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		if err := driveToLockout(client, ts.URL, id, &out); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	}
	return run, ts.Close, nil
}

// saturatedWorkers is the concurrency of the access/saturated metric:
// this many clients hammer the durable access path at once, which is
// where group commit earns its keep (one fsync amortizes over the whole
// in-flight cohort instead of serializing it).
const saturatedWorkers = 16

// setupAccessSaturated measures saturated concurrent access throughput
// end to end: an httptest server over a WAL-backed registry, with
// saturatedWorkers clients each driving its own architecture (seeds
// seed+i) to lockout in parallel. The iteration time IS the saturation
// metric — total durable accesses per iteration is fixed by the seeds,
// so `bench compare` gates the throughput like any other median. The
// checksum concatenates the per-architecture transcripts in architecture
// order; interleaving across workers is scheduler noise, but each
// architecture's own transcript is deterministic.
func setupAccessSaturated(env *Env) (func() ([]byte, error), func(), error) {
	seed := env.Seed
	run := func() ([]byte, error) {
		dir, err := env.TempDir()
		if err != nil {
			return nil, err
		}
		reg := registry.New(32)
		store, _, err := openStore(dir, reg)
		if err != nil {
			return nil, err
		}
		defer func() { _ = store.Close() }()
		reg = registry.NewWithStore(32, store)
		srv := server.New(server.Config{Registry: reg})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()

		var ids [saturatedWorkers]string
		for i := range ids {
			if ids[i], err = provisionHTTP(client, ts.URL, seed+uint64(i)); err != nil {
				return nil, err
			}
		}

		var wg sync.WaitGroup
		var transcripts [saturatedWorkers]bytes.Buffer
		var errs [saturatedWorkers]error
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = driveToLockout(client, ts.URL, ids[i], &transcripts[i])
			}(i)
		}
		wg.Wait()
		var out bytes.Buffer
		for i := range ids {
			if errs[i] != nil {
				return nil, fmt.Errorf("worker %d (%s): %w", i, ids[i], errs[i])
			}
			fmt.Fprintf(&out, "arch=%s\n", ids[i])
			out.Write(transcripts[i].Bytes())
		}
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// setupAccessLeveled measures the wear-leveled access path in process:
// each iteration builds one spares-4 architecture and drives it to
// lockout through alternating targeted hot stress bursts and accesses,
// so the remap maintenance (PendingRemap scan + bank rotation) rides
// every round exactly as it does in the daemon. The checksum covers
// every outcome class, every revealed secret, and the final wear
// counters, so `bench compare` gates both the rotation cost and the
// bit-exact leveled trajectory.
func setupAccessLeveled(env *Env) (func() ([]byte, error), func(), error) {
	design, err := dse.Explore(smallSpec())
	if err != nil {
		return nil, nil, err
	}
	ctx := env.Ctx
	seed := env.Seed
	secret := []byte("lemonbench secret 0123456789abcd")
	run := func() ([]byte, error) {
		arch, err := core.BuildLeveled(design, secret,
			core.Leveling{Spares: 4, Epoch: 8}, rng.New(seed))
		if err != nil {
			return nil, err
		}
		reg := registry.New(1)
		e, err := reg.Provision(arch, seed, secret)
		if err != nil {
			return nil, err
		}
		var out bytes.Buffer
		exhausted := false
		for i := 0; i < 200 && !exhausted; i++ {
			if _, err := e.Stress(ctx, nems.Environment{TempCelsius: 400},
				[]int{0, 1, 2}, 1); err != nil {
				// The last copy can die on a transient access, so the
				// following stress — not the next access — may be the
				// first call to observe lockout.
				if errors.Is(err, core.ErrExhausted) {
					fmt.Fprintf(&out, "stress-exhausted\n")
					exhausted = true
					break
				}
				return nil, err
			}
			got, err := e.Access(ctx, nems.RoomTemp)
			switch {
			case err == nil:
				fmt.Fprintf(&out, "ok %x\n", got)
			case errors.Is(err, core.ErrTransient):
				fmt.Fprintf(&out, "transient\n")
			case errors.Is(err, core.ErrExhausted):
				fmt.Fprintf(&out, "exhausted\n")
				exhausted = true
			default:
				return nil, err
			}
		}
		if !exhausted {
			return nil, fmt.Errorf("leveled architecture survived 200 stressed rounds")
		}
		fmt.Fprintf(&out, "remaps=%d spares=%d skew=%.17g stressed=%d\n",
			arch.Remaps(), arch.SparesRemaining(), arch.WearSkew(), arch.Stressed())
		return out.Bytes(), nil
	}
	return run, nil, nil
}

// extractID pulls the "id" field out of a provision response without
// depending on the full wire struct (the checksum must not absorb
// incidental response fields).
func extractID(body []byte) (string, error) {
	const key = `"id": "`
	i := bytes.Index(body, []byte(key))
	if i < 0 {
		return "", fmt.Errorf("no id in provision response: %s", body)
	}
	rest := body[i+len(key):]
	j := bytes.IndexByte(rest, '"')
	if j < 0 {
		return "", fmt.Errorf("unterminated id in provision response")
	}
	return string(rest[:j]), nil
}
