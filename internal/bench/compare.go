package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// CompareOpts tunes the regression gate. The zero value applies the
// defaults documented on each field.
type CompareOpts struct {
	// RelThreshold is the minimum relative median shift considered a
	// regression (default 0.10 = 10%).
	RelThreshold float64
	// SigmaFactor scales the pooled standard deviation in the noise term
	// (default 3).
	SigmaFactor float64
	// MinDeltaNanos is an absolute floor under which a median shift is
	// never a regression, guarding metrics whose medians sit near the
	// clock's resolution (default 20µs).
	MinDeltaNanos float64
	// AllocSlack is the absolute allocs/op increase tolerated on top of
	// RelThreshold (default 16; allocation counts carry GC jitter from
	// background goroutines).
	AllocSlack float64
	// AllocCeilings maps metric names to absolute allocs/op ceilings —
	// the ratchet: unlike the relative gate, a ceiling binds against the
	// *new* report alone, so a regression cannot hide behind an old
	// report that had already regressed. Metrics absent from the map are
	// gated only relatively. nil applies no ceilings.
	AllocCeilings map[string]float64
}

// DefaultAllocCeilings are the ratcheted allocs/op ceilings for the
// zero-alloc codec and simulation paths: each is the measured floor of
// the pooled implementation (seed 42, N=10) with ~2× headroom for GC and
// runtime jitter, far below the pre-pooling counts (shamir 622, rs 86,
// montecarlo 4111 allocs/op). Lower a ceiling when a path gets cheaper;
// raising one is a performance regression and needs the same scrutiny as
// a failing gate.
var DefaultAllocCeilings = map[string]float64{
	"codec/shamir_split_combine": 32,  // measured floor 14
	"codec/rs_encode_decode":     16,  // measured floor 1
	"codec/rs-fast-path":         512, // measured floor 300 (BW fallback columns)
	"montecarlo/run_parallel":    48,  // measured floor 12
	"explore/parallel":           64,  // measured floor 22
}

func (o CompareOpts) withDefaults() CompareOpts {
	if o.RelThreshold <= 0 {
		o.RelThreshold = 0.10
	}
	if o.SigmaFactor <= 0 {
		o.SigmaFactor = 3
	}
	if o.MinDeltaNanos <= 0 {
		o.MinDeltaNanos = 20_000
	}
	if o.AllocSlack <= 0 {
		o.AllocSlack = 16
	}
	return o
}

// Regression is one gate failure: the metric, the field that moved, and
// a human-readable account of by how much.
type Regression struct {
	Metric string `json:"metric"`
	Field  string `json:"field"`
	Detail string `json:"detail"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s: %s", r.Metric, r.Field, r.Detail)
}

// Compare gates a new report against an old one. A metric regresses
// when its median slows by more than
//
//	max(RelThreshold × old median, SigmaFactor × pooled σ, MinDeltaNanos)
//
// — the noise-aware threshold: a shift must be both relatively large
// and outside what the two runs' own spread explains. Improvements
// never fail. Beyond timing: a metric present in old but missing from
// new regresses (coverage loss), allocs/op regresses past its own
// threshold, and — when both runs used the same seed — a checksum
// mismatch regresses unconditionally, because it means the workload
// computed different bytes, which is a determinism bug, not noise.
func Compare(old, cur *Report, opts CompareOpts) ([]Regression, error) {
	if old.SchemaVersion != cur.SchemaVersion {
		return nil, fmt.Errorf("bench: schema version mismatch: old %d vs new %d",
			old.SchemaVersion, cur.SchemaVersion)
	}
	opts = opts.withDefaults()
	newByName := make(map[string]Result, len(cur.Results))
	for _, r := range cur.Results {
		newByName[r.Name] = r
	}
	var regs []Regression
	for _, o := range old.Results {
		n, ok := newByName[o.Name]
		if !ok {
			regs = append(regs, Regression{Metric: o.Name, Field: "coverage",
				Detail: "metric present in old report but missing from new"})
			continue
		}
		if old.Seed == cur.Seed && o.Checksum != "" && n.Checksum != "" && o.Checksum != n.Checksum {
			regs = append(regs, Regression{Metric: o.Name, Field: "checksum",
				Detail: fmt.Sprintf("workload output changed at equal seeds (%s → %s): determinism regression",
					o.Checksum, n.Checksum)})
		}
		delta := n.MedianNanos - o.MedianNanos
		pooled := math.Sqrt((o.StddevNanos*o.StddevNanos + n.StddevNanos*n.StddevNanos) / 2)
		threshold := math.Max(opts.RelThreshold*o.MedianNanos,
			math.Max(opts.SigmaFactor*pooled, opts.MinDeltaNanos))
		if delta > threshold {
			regs = append(regs, Regression{Metric: o.Name, Field: "median_ns",
				Detail: fmt.Sprintf("%.0f ns → %.0f ns (+%.1f%%), beyond max(%.0f%% rel, %g×σ=%.0f ns, %.0f ns floor)",
					o.MedianNanos, n.MedianNanos, 100*delta/math.Max(o.MedianNanos, 1),
					100*opts.RelThreshold, opts.SigmaFactor, opts.SigmaFactor*pooled, opts.MinDeltaNanos)})
		}
		if n.AllocsPerOp > o.AllocsPerOp*(1+opts.RelThreshold)+opts.AllocSlack {
			regs = append(regs, Regression{Metric: o.Name, Field: "allocs_per_op",
				Detail: fmt.Sprintf("%.1f → %.1f allocs/op, beyond %.0f%% + %.0f slack",
					o.AllocsPerOp, n.AllocsPerOp, 100*opts.RelThreshold, opts.AllocSlack)})
		}
	}
	// Ratchet ceilings bind on the new report alone: every measured
	// metric with a configured ceiling must stay under it, whether or not
	// the old report covered it.
	for _, n := range cur.Results {
		if ceil, ok := opts.AllocCeilings[n.Name]; ok && n.AllocsPerOp > ceil {
			regs = append(regs, Regression{Metric: n.Name, Field: "allocs_ceiling",
				Detail: fmt.Sprintf("%.1f allocs/op exceeds the ratcheted ceiling of %.0f",
					n.AllocsPerOp, ceil)})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Metric != regs[j].Metric {
			return regs[i].Metric < regs[j].Metric
		}
		return regs[i].Field < regs[j].Field
	})
	return regs, nil
}

// Encode writes the report as stable indented JSON to w.
func (r *Report) Encode(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encoding report: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	return nil
}

// WriteFile marshals the report (stable indented JSON) to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	if err := r.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	return nil
}

// ReadFile loads a report written by WriteFile, rejecting unknown
// schema versions.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading report: %w", err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema version %d, this binary speaks %d",
			path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}
