package analysis

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// loadFixtureTree loads one or more fixture packages from testdata/src
// (logahead spans three packages, connected by the call graph).
func loadFixtureTree(t *testing.T, pattern string) []*Package {
	t.Helper()
	pkgs, err := Load(".", pattern)
	if err != nil {
		t.Fatalf("load fixtures %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture pattern %s matched no packages", pattern)
	}
	return pkgs
}

// wantMarkersAll extracts "// want <analyzer>" comments across a fixture
// tree, keyed by "file:line".
func wantMarkersAll(pkgs []*Package) map[string]string {
	want := make(map[string]string)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					want[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = strings.TrimSpace(rest)
				}
			}
		}
	}
	return want
}

// TestProgramAnalyzers runs each whole-program analyzer against its
// fixture tree and checks the findings against "// want" markers: every
// marked line must be reported, no unmarked line may be, and each
// fixture's //lemonvet:allow example must suppress exactly one finding.
//
// The Bad* fixture cases double as the regression demonstrations the
// acceptance criteria ask for: deleting the checked Store.Append before a
// wear mutation (BadNoAppend / BadUncheckedAppend) makes logahead fire,
// and swapping a lock order (BA, DC) makes lockorder fire.
func TestProgramAnalyzers(t *testing.T) {
	cases := []struct {
		name    string
		pattern string
	}{
		{"guardedby", "./testdata/src/guardedby"},
		{"lockorder", "./testdata/src/lockorder"},
		{"ctxflow", "./testdata/src/ctxflow"},
		{"logahead", "./testdata/src/logahead/..."},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a := ProgramByName(c.name)
			if a == nil {
				t.Fatalf("no program analyzer named %q", c.name)
			}
			pkgs := loadFixtureTree(t, c.pattern)
			findings, suppressed := CheckProgram(pkgs, []*ProgramAnalyzer{a})
			want := wantMarkersAll(pkgs)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", c.name)
			}
			got := make(map[string]bool)
			for _, f := range findings {
				if f.Analyzer != c.name {
					t.Errorf("unexpected analyzer %q in finding %s", f.Analyzer, f)
				}
				key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
				if _, expected := want[key]; !expected {
					t.Errorf("unexpected finding: %s", f)
				}
				got[key] = true
			}
			var missed []string
			for key, wantAnalyzer := range want {
				if wantAnalyzer != c.name {
					t.Errorf("%s wants %q, fixture belongs to %q", key, wantAnalyzer, c.name)
				}
				if !got[key] {
					missed = append(missed, key)
				}
			}
			sort.Strings(missed)
			for _, key := range missed {
				t.Errorf("no finding at %s, want one", key)
			}
			if suppressed != 1 {
				t.Errorf("suppressed = %d, want 1 (each fixture carries one //lemonvet:allow example)", suppressed)
			}
		})
	}
}

// TestProgramAnalyzersForConfig pins the driver's applicability rules for
// the whole-program passes.
func TestProgramAnalyzersForConfig(t *testing.T) {
	names := func(as []*ProgramAnalyzer) string {
		var ns []string
		for _, a := range as {
			ns = append(ns, a.Name)
		}
		return strings.Join(ns, ",")
	}
	cases := []struct {
		path    string
		pkgName string
		want    string
	}{
		{"lemonade/internal/registry", "registry", "guardedby,lockorder,logahead,ctxflow"},
		{"lemonade/internal/wal", "wal", "guardedby,lockorder,logahead,ctxflow"},
		{"lemonade/internal/montecarlo", "montecarlo", "guardedby,lockorder,ctxflow"},
		{"lemonade/cmd/lemonaded", "main", "guardedby,lockorder"},
		{"lemonade/internal/analysis/testdata/src/guardedby", "guardedby", ""},
	}
	for _, c := range cases {
		if got := names(ProgramAnalyzersFor(c.path, c.pkgName)); got != c.want {
			t.Errorf("ProgramAnalyzersFor(%q, %q) = %q, want %q", c.path, c.pkgName, got, c.want)
		}
	}
}

// TestRunCleanTree is the whole-suite self-hosting check: the full driver
// (local passes + program passes + suppression resolution) over the entire
// module must produce zero findings and zero stale allow comments — the
// exact condition that makes `go run ./cmd/lemonvet -strict-suppress ./...`
// exit 0 in CI.
func TestRunCleanTree(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	res := Run(pkgs)
	if res.Packages < 20 {
		t.Fatalf("analyzed only %d packages; pattern ./... no longer covers the module?", res.Packages)
	}
	for _, f := range res.Findings {
		t.Errorf("finding: %s", f)
	}
	for _, f := range res.Stale {
		t.Errorf("stale allow: %s", f)
	}
	if res.Suppressed == 0 {
		t.Error("suppressed = 0: the tree's documented //lemonvet:allow comments were not resolved")
	}
}
