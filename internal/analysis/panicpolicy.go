package analysis

import (
	"go/ast"
	"go/types"
)

// PanicPolicy flags panic calls in library code. Library functions hit by
// recoverable conditions (bad input, failed validation) must return errors
// the caller can handle; panic is reserved for programmer-error invariants
// — impossible states whose only correct handling is a crash — and each
// such site carries a //lemonvet:allow panic <reason> annotation so the
// judgment is recorded next to the code. Commands (cmd/...) are exempt via
// the driver config: top-level main functions may crash on fatal errors.
var PanicPolicy = &Analyzer{
	Name: "panicpolicy",
	Doc:  "flag panic in library code; return errors or annotate //lemonvet:allow panic",
	Run:  runPanicPolicy,
}

func runPanicPolicy(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function named panic, not the builtin
			}
			pass.Reportf("panicpolicy", call.Pos(),
				"panic in library code; return an error, or annotate //lemonvet:allow panic <reason> if this is a programmer-error invariant")
			return true
		})
	}
}
