package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LogAhead turns DESIGN.md §8's log-ahead rule into a build-breaking
// check: inside the wear-accounting packages (registry, wal), any call
// that mutates wear state — core.Architecture Access/AccessContext/
// Restore, nems switch actuations — must be dominated by a *checked
// commit ticket wait*: a `tkt, err := store.Append(...)` whose ticket's
// Wait() error result is tested before the mutation. With group commit,
// Append only stages the record; the ticket resolving is the proof it is
// durably fsynced, so checking the Append error alone does NOT establish
// the barrier — deleting the ticket-wait before the NEMS fire fails the
// build. A mutation that is not locally dominated is still accepted when
// every call path reaching its function performs the checked wait first;
// replay and recovery paths that legitimately apply already-durable
// records carry an explicit //lemonvet:allow logahead.
var LogAhead = &ProgramAnalyzer{
	Name: "logahead",
	Doc:  "wear-state mutations in registry/wal must be preceded by a checked Store.Append commit-ticket wait",
	Run:  runLogAhead,
}

// isWearMutator reports whether call invokes a wear-state mutation: a
// method of a type declared in a package whose import path ends in /core
// or /nems, with a mutating method name.
func isWearMutator(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named := derefNamed(recv.Type())
	if named == nil {
		return "", false
	}
	pkgPath := named.Obj().Pkg().Path()
	var mutating bool
	switch {
	case pkgPath == "core" || strings.HasSuffix(pkgPath, "/core"):
		switch fn.Name() {
		case "Access", "AccessContext", "Restore",
			"Stress", "StressContext", "Retire", "ApplyRemap":
			mutating = true
		}
	case pkgPath == "nems" || strings.HasSuffix(pkgPath, "/nems"):
		switch fn.Name() {
		case "Actuate", "Fire", "Transition", "SetState":
			mutating = true
		}
	}
	if !mutating {
		return "", false
	}
	return named.Obj().Name() + "." + fn.Name(), true
}

// isStoreAppend reports whether call is a Store.Append invocation (the
// batch ticket API, or a legacy Append* name).
func isStoreAppend(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Append", "AppendAccess", "AppendProvision":
	default:
		return false
	}
	_, ok = info.Uses[sel.Sel].(*types.Func)
	return ok
}

// mutatorSite is one wear-mutation call observed during the walk.
type mutatorSite struct {
	call      *ast.CallExpr
	what      string
	fn        *FuncInfo
	barriered bool
}

func runLogAhead(p *ProgramPass) {
	prog := p.Prog

	// Per function: barrier state at every call expression. The barrier
	// becomes true after a Store.Append whose error result has been
	// tested on the fall-through path (`if err != nil { ... return }`).
	barrierAtCall := make(map[*ast.CallExpr]bool)
	var mutators []mutatorSite

	for _, fn := range prog.funcsInOrder {
		fn := fn
		w := &barrierWalker{
			info: fn.Pkg.Info,
			visit: func(call *ast.CallExpr, barriered bool) {
				barrierAtCall[call] = barriered
				if what, ok := isWearMutator(fn.Pkg.Info, call); ok {
					mutators = append(mutators, mutatorSite{call: call, what: what, fn: fn, barriered: barriered})
				}
			},
		}
		w.stmts(fn.Decl.Body.List, newBarrierState())
	}

	checker := &barrierChecker{barrierAtCall: barrierAtCall, memo: make(map[*FuncInfo]holderState)}
	for _, m := range mutators {
		if m.barriered {
			continue
		}
		if checker.allCallersBarriered(m.fn) {
			continue
		}
		p.Reportf("logahead", m.call.Pos(),
			"wear-state mutation %s is not dominated by a checked Store.Append on every path (log-ahead rule, DESIGN.md §8)",
			m.what)
	}
}

// barrierChecker decides whether every call path reaching fn has already
// passed a checked Store.Append.
type barrierChecker struct {
	barrierAtCall map[*ast.CallExpr]bool
	memo          map[*FuncInfo]holderState
}

func (c *barrierChecker) allCallersBarriered(fn *FuncInfo) bool {
	if state, ok := c.memo[fn]; ok {
		return state == holderYes
	}
	c.memo[fn] = holderUnknown // cycle guard
	ok := c.compute(fn)
	if ok {
		c.memo[fn] = holderYes
	} else {
		c.memo[fn] = holderNo
	}
	return ok
}

func (c *barrierChecker) compute(fn *FuncInfo) bool {
	if len(fn.Callers) == 0 {
		return false
	}
	for _, cs := range fn.Callers {
		if c.barrierAtCall[cs.Call] {
			continue
		}
		if !c.allCallersBarriered(cs.Caller) {
			return false
		}
	}
	return true
}

// barrierState tracks, along one control-flow path, which variables hold
// commit tickets from a Store.Append (tickets), which error variables
// hold a ticket's Wait() result (pending), and whether a checked
// ticket-wait dominates the current point (barrier).
type barrierState struct {
	tickets map[types.Object]bool
	pending map[types.Object]bool
	barrier bool
}

func newBarrierState() *barrierState {
	return &barrierState{tickets: map[types.Object]bool{}, pending: map[types.Object]bool{}}
}

func (s *barrierState) clone() *barrierState {
	out := &barrierState{
		tickets: make(map[types.Object]bool, len(s.tickets)),
		pending: make(map[types.Object]bool, len(s.pending)),
		barrier: s.barrier,
	}
	for k, v := range s.tickets {
		out.tickets[k] = v
	}
	for k, v := range s.pending {
		out.pending[k] = v
	}
	return out
}

// barrierWalker mirrors heldWalker's branch-copy traversal but tracks the
// append-then-check barrier instead of held locks.
type barrierWalker struct {
	info  *types.Info
	visit func(call *ast.CallExpr, barriered bool)
}

func (w *barrierWalker) stmts(list []ast.Stmt, st *barrierState) {
	for _, s := range list {
		w.stmt(s, st)
	}
}

func (w *barrierWalker) branch(s ast.Stmt, st *barrierState) {
	w.stmt(s, st.clone())
}

func (w *barrierWalker) stmt(s ast.Stmt, st *barrierState) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		w.stmts(s.List, st.clone())
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		w.branch(s.Body, st)
		if s.Else != nil {
			w.branch(s.Else, st)
		}
		// `if err != nil { ...; return/panic }` on a pending append error
		// establishes the barrier for the statements that follow.
		if s.Else == nil && w.testsPendingErr(s.Cond, st) && terminates(s.Body) {
			st.barrier = true
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		w.stmts(s.Body.List, st.clone())
		if s.Post != nil {
			w.branch(s.Post, st)
		}
	case *ast.RangeStmt:
		w.expr(s.X, st)
		w.stmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.expr(s.Tag, st)
		}
		for _, clause := range s.Body.List {
			w.branch(clause, st)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		w.branch(s.Assign, st)
		for _, clause := range s.Body.List {
			w.branch(clause, st)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, st)
		}
		w.stmts(s.Body, st)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			w.branch(clause, st)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm, st)
		}
		w.stmts(s.Body, st)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		w.expr(s.Call, st)
	case *ast.GoStmt:
		w.expr(s.Call, st)
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
		// `tkt, err := store.Append(...)` marks tkt as a commit ticket;
		// `werr := tkt.Wait()` marks werr pending — checking THAT error is
		// what establishes the barrier (the append error alone only proves
		// the record was staged, not that it is durable).
		if len(s.Rhs) == 1 {
			if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
				switch {
				case isStoreAppend(w.info, call):
					for _, lhs := range s.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := identObj(w.info, id)
						if obj != nil && !types.Identical(obj.Type(), errorType) {
							st.tickets[obj] = true
						}
					}
				case w.isTicketWait(call, st):
					for _, lhs := range s.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name == "_" {
							continue
						}
						obj := identObj(w.info, id)
						if obj != nil && types.Identical(obj.Type(), errorType) {
							st.pending[obj] = true
						}
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, st)
					}
				}
			}
		}
	default:
	}
}

func (w *barrierWalker) expr(e ast.Expr, st *barrierState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			// A closure body runs at an unknown time: walk it with a
			// fresh, unbarriered state.
			w.stmts(lit.Body.List, newBarrierState())
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			w.visit(call, st.barrier)
		}
		return true
	})
}

// isTicketWait reports whether call is tkt.Wait() on a tracked commit
// ticket.
func (w *barrierWalker) isTicketWait(call *ast.CallExpr, st *barrierState) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Wait" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	obj := identObj(w.info, id)
	return obj != nil && st.tickets[obj]
}

// testsPendingErr reports whether cond reads an error variable that holds
// a pending commit-ticket Wait result.
func (w *barrierWalker) testsPendingErr(cond ast.Expr, st *barrierState) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := identObj(w.info, id); obj != nil && st.pending[obj] {
				found = true
			}
		}
		return true
	})
	return found
}

// terminates reports whether the block always leaves the function (return
// or panic somewhere in it — good enough for the flat error-check shapes
// this codebase uses).
func terminates(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				found = true
			}
		}
		return true
	})
	return found
}

var errorType = types.Universe.Lookup("error").Type()
