// Package analysis implements lemonvet, the repo-specific static-analysis
// suite that machine-checks the determinism contract documented in
// internal/rng and DESIGN.md: simulation code draws randomness only from an
// explicit *rng.RNG, never from math/rand or the wall clock, never shares a
// generator across goroutines, never compares computed floats for equality,
// and surfaces failures as errors rather than panics.
//
// The suite is built on the standard library only (go/parser, go/ast,
// go/types, go/importer); packages are located and their dependency export
// data produced by shelling out to `go list -export`, so no module download
// or golang.org/x/tools dependency is required.
//
// Findings can be suppressed with a trailing or immediately-preceding
// comment of the form:
//
//	//lemonvet:allow <analyzer> <reason>
//
// where <analyzer> is the analyzer name (the alias "panic" is accepted for
// "panicpolicy"). The reason is mandatory by convention and shows up in
// code review; lemonvet only checks that the analyzer name matches.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
	ImportPath string

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(analyzer string, pos token.Pos, format string, args ...interface{}) {
	p.findings = append(p.findings, Finding{
		Analyzer: analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lemonvet check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer in the suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		RNGCapture,
		FloatEq,
		PanicPolicy,
		ErrCheck,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Check runs the given analyzers over a loaded package and returns the
// unsuppressed findings sorted by position, plus the count of findings that
// were suppressed by //lemonvet:allow comments.
func Check(pkg *Package, analyzers []*Analyzer) (findings []Finding, suppressed int) {
	pass := &Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ImportPath: pkg.ImportPath,
	}
	for _, a := range analyzers {
		a.Run(pass)
	}
	allow := collectAllows(pkg.Fset, pkg.Files)
	for _, f := range pass.findings {
		if allow.covers(f) {
			suppressed++
			continue
		}
		findings = append(findings, f)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, suppressed
}
