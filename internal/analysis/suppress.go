package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowSet records, per file and line, which analyzers are suppressed there.
// A finding is covered when an allow comment for its analyzer sits on the
// finding's own line (trailing comment) or on the line directly above it.
type allowSet map[string]map[int][]string

// allowAliases maps shorthand names accepted in //lemonvet:allow comments to
// canonical analyzer names.
var allowAliases = map[string]string{
	"panic": "panicpolicy",
}

func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	set := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lemonvet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				name := fields[0]
				if canon, ok := allowAliases[name]; ok {
					name = canon
				}
				pos := fset.Position(c.Pos())
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], name)
			}
		}
	}
	return set
}

func (s allowSet) covers(f Finding) bool {
	byLine := s[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == f.Analyzer {
				return true
			}
		}
	}
	return false
}
