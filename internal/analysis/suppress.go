package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// allowEntry is one //lemonvet:allow comment.
type allowEntry struct {
	name string // canonical analyzer name, "" when the written name is unknown
	raw  string // analyzer name as written
	pos  token.Position
	used bool // covered at least one finding this run
}

// allowSet records, per file and line, which analyzers are suppressed
// there, and tracks which allow comments actually fired so stale ones can
// be reported. A finding is covered when an allow comment for its analyzer
// sits on the finding's own line (trailing comment) or on the line
// directly above it.
type allowSet struct {
	byLine map[string]map[int][]*allowEntry
	order  []*allowEntry
}

// allowAliases maps shorthand names accepted in //lemonvet:allow comments to
// canonical analyzer names.
var allowAliases = map[string]string{
	"panic": "panicpolicy",
}

func newAllowSet() *allowSet {
	return &allowSet{byLine: make(map[string]map[int][]*allowEntry)}
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	set := newAllowSet()
	set.add(fset, files)
	return set
}

// collectAllowsAll gathers the allow comments of every package into one
// set, so program-analyzer findings in any package resolve against it.
func collectAllowsAll(pkgs []*Package) *allowSet {
	set := newAllowSet()
	for _, pkg := range pkgs {
		set.add(pkg.Fset, pkg.Files)
	}
	return set
}

func (s *allowSet) add(fset *token.FileSet, files []*ast.File) {
	known := make(map[string]bool)
	for _, name := range Names() {
		known[name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lemonvet:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				raw := fields[0]
				name := raw
				if canon, ok := allowAliases[name]; ok {
					name = canon
				}
				if !known[name] {
					name = ""
				}
				entry := &allowEntry{name: name, raw: raw, pos: fset.Position(c.Pos())}
				byLine := s.byLine[entry.pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowEntry)
					s.byLine[entry.pos.Filename] = byLine
				}
				byLine[entry.pos.Line] = append(byLine[entry.pos.Line], entry)
				s.order = append(s.order, entry)
			}
		}
	}
}

func (s *allowSet) covers(f Finding) bool {
	byLine := s.byLine[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	covered := false
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, entry := range byLine[line] {
			if entry.name == f.Analyzer {
				entry.used = true
				covered = true
			}
		}
	}
	return covered
}

// stale returns one Finding (Analyzer "suppress") per allow comment that
// suppressed nothing in this run, or that names no known analyzer. Call it
// only after every covers() query of the run.
func (s *allowSet) stale() []Finding {
	var out []Finding
	for _, entry := range s.order {
		switch {
		case entry.name == "":
			out = append(out, Finding{
				Analyzer: "suppress",
				Pos:      entry.pos,
				Message:  fmt.Sprintf("//lemonvet:allow names unknown analyzer %q", entry.raw),
			})
		case !entry.used:
			out = append(out, Finding{
				Analyzer: "suppress",
				Pos:      entry.pos,
				Message:  fmt.Sprintf("stale //lemonvet:allow %s: it suppresses no finding; delete it", entry.raw),
			})
		}
	}
	sortFindings(out)
	return out
}
