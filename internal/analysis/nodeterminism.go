package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// forbiddenImports are sources of nondeterminism that simulation packages
// must never use; all randomness flows through lemonade/internal/rng.
var forbiddenImports = map[string]string{
	"math/rand":    "use lemonade/internal/rng with an explicit seed",
	"math/rand/v2": "use lemonade/internal/rng with an explicit seed",
}

// forbiddenTimeFuncs are the wall-clock entry points of package time. The
// time package itself stays importable: time.Duration arithmetic is
// deterministic and legitimate in simulation code.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NoDeterminism forbids math/rand imports and wall-clock reads in
// simulation packages. Every figure in EXPERIMENTS.md must regenerate
// bit-identically, so simulated stochastic behaviour may only come from an
// explicit, seeded *rng.RNG, and nothing in a simulation path may observe
// real time. (crypto/rand is untouched: key-generation paths legitimately
// use it, and it never feeds simulation results.)
//
// sync.Pool is conditionally allowed: whether Get returns a cached object
// or nil depends on GC timing and scheduling, so a pool is only
// deterministic behind the fallback seam — a New function, which makes
// the hit and miss paths structurally identical (the codec packages'
// scratch pools are the pattern: every pooled buffer is re-sliced and
// fully overwritten before it is read). A pool declared without New is
// flagged.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid math/rand imports, time.Now/Since/Until, and sync.Pool without a New fallback in simulation packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, bad := forbiddenImports[path]; bad {
				pass.Reportf("nodeterminism", imp.Pos(),
					"import of %q breaks reproducibility; %s", path, hint)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[sel.Sel.Name] {
				pass.Reportf("nodeterminism", sel.Pos(),
					"time.%s reads the wall clock; simulation results must not depend on real time", sel.Sel.Name)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isSyncPool(pass.Info.Types[n].Type) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "New" {
						return true
					}
				}
				pass.Reportf("nodeterminism", n.Pos(),
					"sync.Pool without a New fallback: Get returns nil depending on GC timing; declare the deterministic-fallback seam (New) and fully overwrite pooled buffers before reading them")
			case *ast.ValueSpec:
				// A zero-value pool declaration (`var p sync.Pool`) has the
				// same missing seam as an empty literal.
				if len(n.Values) > 0 {
					return true
				}
				for _, name := range n.Names {
					obj := pass.Info.Defs[name]
					if obj != nil && isSyncPool(obj.Type()) {
						pass.Reportf("nodeterminism", name.Pos(),
							"zero-value sync.Pool: Get returns nil depending on GC timing; declare the deterministic-fallback seam (New) and fully overwrite pooled buffers before reading them")
					}
				}
			}
			return true
		})
	}
}

// isSyncPool reports whether t is sync.Pool (not a pointer or alias chain
// ending elsewhere).
func isSyncPool(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
