package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// forbiddenImports are sources of nondeterminism that simulation packages
// must never use; all randomness flows through lemonade/internal/rng.
var forbiddenImports = map[string]string{
	"math/rand":    "use lemonade/internal/rng with an explicit seed",
	"math/rand/v2": "use lemonade/internal/rng with an explicit seed",
}

// forbiddenTimeFuncs are the wall-clock entry points of package time. The
// time package itself stays importable: time.Duration arithmetic is
// deterministic and legitimate in simulation code.
var forbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// NoDeterminism forbids math/rand imports and wall-clock reads in
// simulation packages. Every figure in EXPERIMENTS.md must regenerate
// bit-identically, so simulated stochastic behaviour may only come from an
// explicit, seeded *rng.RNG, and nothing in a simulation path may observe
// real time. (crypto/rand is untouched: key-generation paths legitimately
// use it, and it never feeds simulation results.)
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid math/rand imports and time.Now/Since/Until in simulation packages",
	Run:  runNoDeterminism,
}

func runNoDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, bad := forbiddenImports[path]; bad {
				pass.Reportf("nodeterminism", imp.Pos(),
					"import of %q breaks reproducibility; %s", path, hint)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if forbiddenTimeFuncs[sel.Sel.Name] {
				pass.Reportf("nodeterminism", sel.Pos(),
					"time.%s reads the wall clock; simulation results must not depend on real time", sel.Sel.Name)
			}
			return true
		})
	}
}
