package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// ProgramPass carries the whole program through a program analyzer.
type ProgramPass struct {
	Prog *Program

	findings []Finding
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(analyzer string, pos token.Pos, format string, args ...interface{}) {
	p.findings = append(p.findings, Finding{
		Analyzer: analyzer,
		Pos:      p.Prog.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ProgramAnalyzer is one whole-program lemonvet check. Unlike Analyzer,
// its Run sees every loaded package at once, connected by the call graph.
type ProgramAnalyzer struct {
	Name string
	Doc  string
	Run  func(*ProgramPass)
}

// AllProgram returns every program analyzer in the suite, in stable order.
func AllProgram() []*ProgramAnalyzer {
	return []*ProgramAnalyzer{
		GuardedBy,
		LockOrder,
		LogAhead,
		CtxFlow,
	}
}

// ProgramByName returns the program analyzer with the given name, or nil.
func ProgramByName(name string) *ProgramAnalyzer {
	for _, a := range AllProgram() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Names returns the canonical names of every analyzer, local and program.
func Names() []string {
	var out []string
	for _, a := range All() {
		out = append(out, a.Name)
	}
	for _, a := range AllProgram() {
		out = append(out, a.Name)
	}
	return out
}

// CheckProgram runs the given program analyzers over a set of loaded
// packages (typically a fixture tree) and returns the unsuppressed
// findings sorted by position plus the suppressed count. Unlike Run it
// applies no per-package applicability rules: fixtures opt in explicitly.
func CheckProgram(pkgs []*Package, analyzers []*ProgramAnalyzer) (findings []Finding, suppressed int) {
	pass := &ProgramPass{Prog: BuildProgram(pkgs)}
	for _, a := range analyzers {
		a.Run(pass)
	}
	allow := collectAllowsAll(pkgs)
	for _, f := range pass.findings {
		if allow.covers(f) {
			suppressed++
			continue
		}
		findings = append(findings, f)
	}
	sortFindings(findings)
	return findings, suppressed
}

// RunResult is what a full lemonvet run over a package tree produces.
type RunResult struct {
	// Findings are the unsuppressed findings from every applicable local
	// and program analyzer, sorted by position.
	Findings []Finding
	// Suppressed counts findings covered by //lemonvet:allow comments.
	Suppressed int
	// Stale reports allow comments that suppressed nothing (or name no
	// known analyzer); each is rendered as a Finding with Analyzer
	// "suppress". Only -strict-suppress treats these as failures.
	Stale []Finding
	// Packages is how many packages were analyzed.
	Packages int
}

// Run is the lemonvet driver: it applies the local analyzers per package
// (per AnalyzersFor), builds the whole-program call graph, applies the
// program analyzers (filtered per ProgramAnalyzersFor by the package each
// finding lands in), resolves suppressions across the whole tree, and
// reports stale allow comments.
func Run(pkgs []*Package) RunResult {
	var res RunResult
	var raw []Finding

	for _, pkg := range pkgs {
		analyzers := AnalyzersFor(pkg.ImportPath)
		if len(analyzers) == 0 && isTestdata(pkg.ImportPath) {
			continue
		}
		res.Packages++
		raw = append(raw, runLocal(pkg, analyzers)...)
	}

	prog := BuildProgram(pkgs)
	pass := &ProgramPass{Prog: prog}
	for _, a := range AllProgram() {
		a.Run(pass)
	}
	raw = append(raw, pass.findings...)
	raw = filterProgramFindings(prog, raw)

	allow := collectAllowsAll(pkgs)
	for _, f := range raw {
		if allow.covers(f) {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, f)
	}
	sortFindings(res.Findings)
	res.Stale = allow.stale()
	return res
}

// filterProgramFindings drops program-analyzer findings whose package has
// opted out of that analyzer (per ProgramAnalyzersFor). Local-analyzer
// findings pass through untouched.
func filterProgramFindings(prog *Program, findings []Finding) []Finding {
	programNames := make(map[string]bool)
	for _, a := range AllProgram() {
		programNames[a.Name] = true
	}
	fileToPkg := make(map[string]*Package)
	for file, pkg := range prog.pkgOfFile {
		fileToPkg[prog.Fset.Position(file.FileStart).Filename] = pkg
	}
	out := findings[:0]
	for _, f := range findings {
		if programNames[f.Analyzer] {
			pkg := fileToPkg[f.Pos.Filename]
			if pkg == nil || !programAnalyzerApplies(f.Analyzer, pkg) {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}

func programAnalyzerApplies(name string, pkg *Package) bool {
	for _, a := range ProgramAnalyzersFor(pkg.ImportPath, pkg.Types.Name()) {
		if a.Name == name {
			return true
		}
	}
	return false
}

// runLocal runs the local analyzers over pkg and returns the raw findings
// with no suppression applied.
func runLocal(pkg *Package, analyzers []*Analyzer) []Finding {
	pass := &Pass{
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		Info:       pkg.Info,
		ImportPath: pkg.ImportPath,
	}
	for _, a := range analyzers {
		a.Run(pass)
	}
	return pass.findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}
