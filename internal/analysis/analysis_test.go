package analysis

import (
	"fmt"
	"os/exec"
	"sort"
	"strings"
	"testing"
)

// loadFixture loads one fixture package from testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	pkgs, err := Load(".", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs[0]
}

// wantMarkers extracts "// want <analyzer>" comments, keyed by line.
func wantMarkers(pkg *Package) map[int]string {
	want := make(map[int]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				want[pkg.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
			}
		}
	}
	return want
}

// TestAnalyzers runs each analyzer against its fixture package and checks
// the findings against the fixture's "// want" markers: every marked line
// must be reported, no unmarked line may be, and each fixture's
// //lemonvet:allow example must suppress exactly one finding.
func TestAnalyzers(t *testing.T) {
	for _, name := range []string{"nodeterminism", "rngcapture", "floateq", "panicpolicy", "errcheck"} {
		t.Run(name, func(t *testing.T) {
			a := ByName(name)
			if a == nil {
				t.Fatalf("no analyzer named %q", name)
			}
			pkg := loadFixture(t, name)
			findings, suppressed := Check(pkg, []*Analyzer{a})
			want := wantMarkers(pkg)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no // want markers", name)
			}
			got := make(map[int]bool)
			for _, f := range findings {
				if f.Analyzer != name {
					t.Errorf("unexpected analyzer %q in finding %s", f.Analyzer, f)
				}
				if _, expected := want[f.Pos.Line]; !expected {
					t.Errorf("unexpected finding: %s", f)
				}
				got[f.Pos.Line] = true
			}
			var missed []int
			for line, wantAnalyzer := range want {
				if wantAnalyzer != name {
					t.Errorf("line %d wants %q, fixture belongs to %q", line, wantAnalyzer, name)
				}
				if !got[line] {
					missed = append(missed, line)
				}
			}
			sort.Ints(missed)
			for _, line := range missed {
				t.Errorf("no finding on line %d, want one", line)
			}
			if suppressed != 1 {
				t.Errorf("suppressed = %d, want 1 (each fixture carries one //lemonvet:allow example)", suppressed)
			}
		})
	}
}

// TestRepoClean is the self-hosting check: lemonvet over the entire module
// must produce zero unsuppressed findings. This is exactly what makes
// `go run ./cmd/lemonvet ./...` exit 0 in CI; any new violation fails this
// test first.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern ./... no longer covers the module?", len(pkgs))
	}
	checked := 0
	for _, pkg := range pkgs {
		analyzers := AnalyzersFor(pkg.ImportPath)
		if len(analyzers) == 0 {
			continue
		}
		checked++
		findings, _ := Check(pkg, analyzers)
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
	if checked == 0 {
		t.Fatal("no packages checked")
	}
}

// TestAnalyzersForConfig pins the driver's applicability rules.
func TestAnalyzersForConfig(t *testing.T) {
	names := func(as []*Analyzer) string {
		var ns []string
		for _, a := range as {
			ns = append(ns, a.Name)
		}
		return strings.Join(ns, ",")
	}
	cases := []struct {
		path string
		want string
	}{
		{"lemonade/internal/montecarlo", "nodeterminism,rngcapture,floateq,panicpolicy,errcheck"},
		{"lemonade/internal/rng", "nodeterminism,rngcapture,floateq,panicpolicy,errcheck"},
		{"lemonade/cmd/lemonade", "rngcapture,floateq,errcheck"},
		{"lemonade/internal/analysis/testdata/src/floateq", ""},
	}
	for _, c := range cases {
		if got := names(AnalyzersFor(c.path)); got != c.want {
			t.Errorf("AnalyzersFor(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

// TestCommandExitCode smoke-tests the real CLI: exit 0 and valid JSON on a
// clean package.
func TestCommandExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("exec-based smoke test")
	}
	cmd := exec.Command("go", "run", "./cmd/lemonvet", "-json", "./internal/rng")
	cmd.Dir = "../.."
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("lemonvet on clean package: %v\n%s", err, out)
	}
	if got := strings.TrimSpace(string(out)); got != "[]" {
		t.Fatalf("expected empty JSON findings array, got %s", got)
	}
}

// TestFindingString pins the text output format CI consumers grep for.
func TestFindingString(t *testing.T) {
	pkg := loadFixture(t, "panicpolicy")
	findings, _ := Check(pkg, []*Analyzer{PanicPolicy})
	if len(findings) == 0 {
		t.Fatal("no findings")
	}
	s := findings[0].String()
	if !strings.Contains(s, "p.go:") || !strings.Contains(s, "[panicpolicy]") {
		t.Errorf("finding format %q lacks file:line or [analyzer] tag", s)
	}
	if !strings.Contains(s, fmt.Sprintf(":%d:", findings[0].Pos.Line)) {
		t.Errorf("finding format %q lacks line number", s)
	}
}
