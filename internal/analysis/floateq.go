package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between computed floating-point expressions.
// Exact float comparison is almost always a bug in simulation code — two
// mathematically equal quantities computed along different paths differ in
// the last ulp, and the branch silently depends on rounding. Exempt are the
// two legitimate idioms:
//
//   - self-comparison (x != x), the portable NaN test;
//   - comparison against a compile-time constant or math.Inf(...) sentinel
//     (x == 0 boundary cases, beta == 1 special-casing an exact parameter,
//     saturation checks against ±Inf) — these test for an exactly
//     representable value that was *assigned*, not computed.
//
// Everything else should use a tolerance (mathx helpers) or be annotated.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between computed floating-point expressions",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
				return true
			}
			if types.ExprString(bin.X) == types.ExprString(bin.Y) {
				return true // NaN idiom: x != x
			}
			if isSentinel(pass, bin.X) || isSentinel(pass, bin.Y) {
				return true
			}
			pass.Reportf("floateq", bin.OpPos,
				"%s between computed floats; compare with a tolerance or annotate //lemonvet:allow floateq", bin.Op)
			return true
		})
	}
}

func isFloat(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isSentinel reports whether e is a compile-time constant or a direct
// math.Inf(...) call — exactly representable values that code assigns and
// later tests for, rather than results of arithmetic.
func isSentinel(pass *Pass, e ast.Expr) bool {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Inf" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "math"
}
