package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder derives the program's lock-acquisition order and fails on any
// cycle in it. An edge A → B is recorded when a lock of class B is
// acquired — directly, or anywhere inside a callee reached from the call
// graph — while a lock of class A is lexically held. Lock classes are
// struct-field or package-level mutex identities ("wal.DiskStore.mu"), so
// the order is program-wide: two functions in different packages that
// nest the same two classes in opposite orders form a cycle even if they
// never call each other. Self-edges (acquiring a class while holding it)
// are reported too: with sync.Mutex that is an immediate deadlock risk.
var LockOrder = &ProgramAnalyzer{
	Name: "lockorder",
	Doc:  "the program-wide lock acquisition order must be acyclic (deadlock freedom)",
	Run:  runLockOrder,
}

// lockEdge is one observed "acquired to while holding from" pair.
type lockEdge struct {
	from, to string
	pos      token.Pos
	fn       *FuncInfo
	// via names the callee whose transitive acquisition created the edge;
	// empty for a direct acquisition.
	via string
}

func runLockOrder(p *ProgramPass) {
	prog := p.Prog

	// Phase 1: per function, record direct acquisitions (for the
	// may-acquire fixpoint) and the acquire/call events observed while
	// locks are held.
	type callEvent struct {
		call *ast.CallExpr
		held []heldLock
		fn   *FuncInfo
	}
	direct := make(map[*FuncInfo]map[string]bool)
	var edges []lockEdge
	var callEvents []callEvent
	callSitesByExpr := make(map[*FuncInfo]map[*ast.CallExpr][]*CallSite)

	for _, fn := range prog.funcsInOrder {
		fn := fn
		direct[fn] = make(map[string]bool)
		byExpr := make(map[*ast.CallExpr][]*CallSite)
		for _, cs := range fn.Callees {
			byExpr[cs.Call] = append(byExpr[cs.Call], cs)
		}
		callSitesByExpr[fn] = byExpr
		walkFuncHeld(fn.Pkg.Info, fn.Decl.Body, func(n ast.Node, held []heldLock) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			if lk, acquire, ok := lockOpOf(fn.Pkg.Info, call); ok {
				if !acquire || lk.class == "" {
					return
				}
				direct[fn][lk.class] = true
				for _, h := range held {
					if h.class != "" {
						edges = append(edges, lockEdge{from: h.class, to: lk.class, pos: call.Pos(), fn: fn})
					}
				}
				return
			}
			if len(held) > 0 && len(byExpr[call]) > 0 {
				callEvents = append(callEvents, callEvent{call: call, held: copyHeld(held), fn: fn})
			}
		})
	}

	// Phase 2: may-acquire fixpoint over the call graph. mayAcquire(f) is
	// every lock class f can take directly or through any callee.
	mayAcquire := make(map[*FuncInfo]map[string]bool)
	for fn, d := range direct {
		set := make(map[string]bool, len(d))
		for class := range d {
			set[class] = true
		}
		mayAcquire[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.funcsInOrder {
			set := mayAcquire[fn]
			for _, cs := range fn.Callees {
				for class := range mayAcquire[cs.Callee] {
					if !set[class] {
						set[class] = true
						changed = true
					}
				}
			}
		}
	}

	// Phase 3: materialize call-transitive edges.
	for _, ev := range callEvents {
		for _, cs := range callSitesByExpr[ev.fn][ev.call] {
			classes := make([]string, 0, len(mayAcquire[cs.Callee]))
			for class := range mayAcquire[cs.Callee] {
				classes = append(classes, class)
			}
			sort.Strings(classes)
			for _, h := range ev.held {
				if h.class == "" {
					continue
				}
				for _, class := range classes {
					edges = append(edges, lockEdge{
						from: h.class, to: class, pos: ev.call.Pos(), fn: ev.fn,
						via: cs.Callee.Obj.FullName(),
					})
				}
			}
		}
	}

	// Phase 4: keep one witness per (from, to) — the earliest position —
	// then report every edge that lies inside a strongly connected
	// component (every such edge is on a cycle).
	witness := make(map[[2]string]lockEdge)
	for _, e := range edges {
		key := [2]string{e.from, e.to}
		if w, ok := witness[key]; !ok || e.pos < w.pos {
			witness[key] = e
		}
	}
	keys := make([][2]string, 0, len(witness))
	adj := make(map[string][]string)
	for key := range witness {
		keys = append(keys, key)
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	scc := stronglyConnected(adj)
	for _, key := range keys {
		from, to := key[0], key[1]
		if from == to {
			e := witness[key]
			p.Reportf("lockorder", e.pos, "lock %s acquired while already held%s", from, viaSuffix(e))
			continue
		}
		if scc[from] != 0 && scc[from] == scc[to] {
			e := witness[key]
			cyc := cyclePath(adj, from, to)
			p.Reportf("lockorder", e.pos,
				"lock-order cycle %s: acquiring %s while holding %s%s inverts the order used elsewhere",
				strings.Join(cyc, " -> "), to, from, viaSuffix(e))
		}
	}
}

func viaSuffix(e lockEdge) string {
	if e.via == "" {
		return ""
	}
	return fmt.Sprintf(" (via call to %s)", e.via)
}

// stronglyConnected assigns every node that belongs to a multi-node SCC a
// nonzero component id (Tarjan). Nodes in singleton components get 0.
func stronglyConnected(adj map[string][]string) map[string]int {
	nodes := make([]string, 0, len(adj))
	seen := make(map[string]bool)
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for _, to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	comp := make(map[string]int)
	var stack []string
	next, compID := 1, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := append([]string(nil), adj[v]...)
		sort.Strings(tos)
		for _, w := range tos {
			if index[w] == 0 {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if index[v] == 0 {
			strong(v)
		}
	}
	return comp
}

// cyclePath renders a representative cycle through the edge from → to:
// the edge itself closed by the shortest path (BFS in deterministic
// order) leading from to back to from.
func cyclePath(adj map[string][]string, from, to string) []string {
	prev := map[string]string{to: ""}
	queue := []string{to}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v == from {
			break
		}
		tos := append([]string(nil), adj[v]...)
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := prev[w]; !ok {
				prev[w] = v
				queue = append(queue, w)
			}
		}
	}
	if _, ok := prev[from]; !ok {
		return []string{from, to, from} // unreachable inside an SCC
	}
	// Backtrack from → … → to, then emit the cycle forward.
	var back []string
	for v := from; v != ""; v = prev[v] {
		back = append(back, v)
	}
	path := []string{from}
	for i := len(back) - 1; i >= 0; i-- {
		path = append(path, back[i])
	}
	return path
}
