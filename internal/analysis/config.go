package analysis

import "strings"

// The driver applies analyzers per package according to the rules below.
// Analyzer applicability is a property of the package's role, not of the
// analyzer: the analyzers themselves flag every occurrence and stay
// path-agnostic, which keeps their fixture tests simple.

// commandPrefix marks top-level commands. Commands are exempt from the
// panic policy (main may crash on fatal errors) and from the determinism
// rules (a CLI may legitimately time itself or shuffle output order; it
// must pass explicit seeds *into* the library, which the library-side
// checks enforce).
const commandPrefix = "/cmd/"

// AnalyzersFor returns the analyzers lemonvet applies to the package with
// the given import path.
func AnalyzersFor(importPath string) []*Analyzer {
	if strings.Contains(importPath, "/testdata/") {
		return nil // fixtures are analyzed explicitly by their tests
	}
	isCommand := strings.Contains(importPath, commandPrefix)
	var out []*Analyzer
	for _, a := range All() {
		switch a.Name {
		case NoDeterminism.Name, PanicPolicy.Name:
			if isCommand {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}
