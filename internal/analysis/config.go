package analysis

import "strings"

// The driver applies analyzers per package according to the rules below.
// Analyzer applicability is a property of the package's role, not of the
// analyzer: the analyzers themselves flag every occurrence and stay
// path-agnostic, which keeps their fixture tests simple.

// commandPrefix marks top-level commands. Commands are exempt from the
// panic policy (main may crash on fatal errors) and from the determinism
// rules (a CLI may legitimately time itself or shuffle output order; it
// must pass explicit seeds *into* the library, which the library-side
// checks enforce).
const commandPrefix = "/cmd/"

func isTestdata(importPath string) bool {
	return strings.Contains(importPath, "/testdata/")
}

// AnalyzersFor returns the local analyzers lemonvet applies to the package
// with the given import path.
func AnalyzersFor(importPath string) []*Analyzer {
	if isTestdata(importPath) {
		return nil // fixtures are analyzed explicitly by their tests
	}
	isCommand := strings.Contains(importPath, commandPrefix)
	var out []*Analyzer
	for _, a := range All() {
		switch a.Name {
		case NoDeterminism.Name, PanicPolicy.Name:
			if isCommand {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}

// ProgramAnalyzersFor returns the program analyzers whose findings apply
// to the package with the given import path and package name. The
// analyzers themselves run over the whole program (the call graph does not
// stop at package boundaries); this filter only decides which packages'
// findings are reported:
//
//   - guardedby and lockorder apply everywhere: lock discipline has no
//     exemptions.
//   - logahead applies only to the wear-accounting core (registry, wal):
//     that is where DESIGN.md §8's log-ahead rule is binding. Other
//     packages (bench, figures) exercise architectures that were never
//     provisioned durably.
//   - ctxflow applies to library packages only: package main and cmd/ may
//     root context trees with context.Background().
func ProgramAnalyzersFor(importPath, pkgName string) []*ProgramAnalyzer {
	if isTestdata(importPath) {
		return nil // fixtures are analyzed explicitly by their tests
	}
	isCommand := strings.Contains(importPath, commandPrefix) || pkgName == "main"
	var out []*ProgramAnalyzer
	for _, a := range AllProgram() {
		switch a.Name {
		case LogAhead.Name:
			if !strings.Contains(importPath, "/registry") && !strings.Contains(importPath, "/wal") {
				continue
			}
		case CtxFlow.Name:
			if isCommand {
				continue
			}
		}
		out = append(out, a)
	}
	return out
}
