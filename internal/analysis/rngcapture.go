package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RNGCapture flags *rng.RNG values that cross a goroutine boundary without
// an intervening Derive/DeriveIndex/Split. An RNG is documented NOT safe
// for concurrent use: its draw methods mutate the 4-word state, so a
// generator shared with a spawned goroutine is a data race that corrupts
// reproducibility silently (results change with scheduling, not with the
// seed). Derive and DeriveIndex only *read* the parent state, so calling
// them on a captured generator inside the goroutine — as
// montecarlo.RunParallel does per trial index — is safe and allowed;
// everything else must derive or split a private stream before launch.
var RNGCapture = &Analyzer{
	Name: "rngcapture",
	Doc:  "flag *rng.RNG shared with a goroutine without Derive/DeriveIndex/Split",
	Run:  runRNGCapture,
}

// deriveOnlyMethods are the *rng.RNG methods that do not mutate the
// receiver and therefore may be called on a generator shared across
// goroutines.
var deriveOnlyMethods = map[string]bool{
	"Derive":      true,
	"DeriveIndex": true,
}

func isRNGPointer(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Name() != "RNG" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "lemonade/internal/rng" || strings.HasSuffix(path, "/internal/rng")
}

func runRNGCapture(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoCall(pass, g)
			return true
		})
	}
}

func checkGoCall(pass *Pass, g *ast.GoStmt) {
	// An RNG-typed argument evaluated at spawn time hands the parent's
	// generator to the goroutine: `go worker(r)` races with any further use
	// of r. `go worker(r.Split())` and `go worker(r.Derive("w"))` are fine —
	// the child stream is created sequentially, before the goroutine runs.
	for _, arg := range g.Call.Args {
		tv, ok := pass.Info.Types[arg]
		if !ok || !isRNGPointer(tv.Type) {
			continue
		}
		if _, isCall := arg.(*ast.CallExpr); isCall {
			continue // a fresh stream from Derive/DeriveIndex/Split/New
		}
		pass.Reportf("rngcapture", arg.Pos(),
			"*rng.RNG passed to goroutine; pass a private stream (Derive/DeriveIndex/Split) instead")
	}
	lit, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	// Free *rng.RNG variables used inside the goroutine body: allowed only
	// as the receiver of the read-only Derive/DeriveIndex methods.
	parents := parentMap(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || !isRNGPointer(obj.Type()) {
			return true
		}
		if declaredWithin(obj, lit) {
			return true // the goroutine's own private stream
		}
		if isDeriveReceiver(parents, id) {
			return true
		}
		pass.Reportf("rngcapture", id.Pos(),
			"captured *rng.RNG %q mutated inside goroutine; only Derive/DeriveIndex are safe on a shared generator — give the goroutine its own stream", id.Name)
		return true
	})
}

// declaredWithin reports whether obj's declaration lies inside the function
// literal, i.e. the variable is goroutine-private rather than captured.
func declaredWithin(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() != token.NoPos && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
}

// isDeriveReceiver reports whether id appears as the receiver of a call to
// one of the read-only derivation methods, e.g. base.Derive("label") or
// base.DeriveIndex("trial-", i).
func isDeriveReceiver(parents map[ast.Node]ast.Node, id *ast.Ident) bool {
	sel, ok := parents[id].(*ast.SelectorExpr)
	if !ok || sel.X != id || !deriveOnlyMethods[sel.Sel.Name] {
		return false
	}
	call, ok := parents[sel].(*ast.CallExpr)
	return ok && call.Fun == sel
}

func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
