package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GuardedBy enforces the `// guarded by <mu>` field-comment convention: a
// struct field annotated that way may only be read while the named sibling
// mutex is held (write-locked for writes), either lexically in the same
// function or in every function along every call path that reaches the
// access. Field accesses on freshly constructed objects (the base variable
// is declared inside the function, so nothing else can see the object yet)
// are exempt — constructors initialize fields before the object escapes.
var GuardedBy = &ProgramAnalyzer{
	Name: "guardedby",
	Doc:  "fields annotated `// guarded by <mu>` must only be accessed with the named mutex held",
	Run:  runGuardedBy,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardAnnotations maps each annotated struct field to the name of the
// sibling mutex field that guards it.
func guardAnnotations(prog *Program) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					mu := guardNameOf(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						if fv, ok := pkg.Info.Defs[name].(*types.Var); ok {
							guards[fv] = mu
						}
					}
				}
				return true
			})
		}
	}
	return guards
}

func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func runGuardedBy(p *ProgramPass) {
	prog := p.Prog
	guards := guardAnnotations(prog)
	if len(guards) == 0 {
		return
	}

	// heldAtCall records the lexically held locks at every call site, for
	// the reachable-only-from-holders check below.
	heldAtCall := make(map[*ast.CallExpr][]heldLock)

	type access struct {
		fn    *FuncInfo
		sel   *ast.SelectorExpr
		field *types.Var
		mu    string
		write bool
		held  []heldLock
	}
	var accesses []access
	freshByFn := make(map[*FuncInfo]map[types.Object]bool)

	for _, fn := range prog.funcsInOrder {
		fn := fn
		freshByFn[fn] = freshLocals(fn)
		parents := parentMap(fn.Decl)
		walkFuncHeld(fn.Pkg.Info, fn.Decl.Body, func(n ast.Node, held []heldLock) {
			switch n := n.(type) {
			case *ast.CallExpr:
				heldAtCall[n] = copyHeld(held)
			case *ast.SelectorExpr:
				selinfo := fn.Pkg.Info.Selections[n]
				if selinfo == nil || selinfo.Kind() != types.FieldVal {
					return
				}
				fv, ok := selinfo.Obj().(*types.Var)
				if !ok {
					return
				}
				mu, ok := guards[fv]
				if !ok {
					return
				}
				accesses = append(accesses, access{
					fn:    fn,
					sel:   n,
					field: fv,
					mu:    mu,
					write: isWriteAccess(parents, n),
					held:  copyHeld(held),
				})
			}
		})
	}

	checker := &holderChecker{prog: prog, heldAtCall: heldAtCall, memo: make(map[holderKey]holderState)}

	for _, acc := range accesses {
		base := ast.Unparen(acc.sel.X)
		needKey := types.ExprString(base) + "." + acc.mu
		if heldHas(acc.held, needKey, acc.write) {
			continue
		}
		// Fresh-object exemption: the base variable holds an object this
		// function constructed itself (composite literal, new, make), so
		// nothing else can see it yet — constructors initialize fields
		// before the object escapes.
		if baseID := baseIdent(base); baseID != nil {
			obj := identObj(acc.fn.Pkg.Info, baseID)
			if obj != nil && freshByFn[acc.fn][obj] {
				continue
			}
			// Receiver access: accept if every call path to this function
			// holds the guard on the same receiver.
			if obj != nil && obj == receiverObj(acc.fn) && checker.allSitesHold(acc.fn, acc.mu, acc.write, nil) {
				continue
			}
		}
		verb := "read"
		if acc.write {
			verb = "write to"
		}
		p.Reportf("guardedby", acc.sel.Pos(),
			"%s of field %s (guarded by %s) without holding %s on any path reaching %s",
			verb, fieldPath(acc.field), acc.mu, needKey, acc.fn.Obj.Name())
	}
}

func fieldPath(fv *types.Var) string {
	return fv.Pkg().Name() + "." + fv.Name()
}

// isWriteAccess reports whether sel is written: it (or an index/deref of
// it) appears on the left of an assignment, in an IncDec statement, or has
// its address taken.
func isWriteAccess(parents map[ast.Node]ast.Node, sel ast.Expr) bool {
	n := ast.Node(sel)
	for {
		parent := parents[n]
		switch p := parent.(type) {
		case *ast.IndexExpr:
			if p.X != n {
				return false
			}
			n = p
		case *ast.StarExpr, *ast.ParenExpr:
			n = p.(ast.Expr)
		case *ast.SelectorExpr:
			// Selecting a field *of* sel: writes to the inner field are
			// writes through sel's object, treat as write only if the
			// outer chain is written; keep climbing.
			if p.X != n {
				return false
			}
			n = p
		case *ast.IncDecStmt:
			return true
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == n {
					return true
				}
			}
			return false
		default:
			return false
		}
	}
}

// baseIdent returns the innermost identifier of a selector/index/deref
// chain, e.g. `s` for `s.shards[i].m`, or nil when the chain is rooted in
// something else (a call result, a composite literal).
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// freshLocals collects the local variables of fn that are bound to
// objects the function constructed itself: `x := &T{...}`, `x := T{...}`,
// `x := new(T)`, `x := make(...)`, or a valueless `var x T` declaring a
// zero value in place. Aliases to shared state (`s := r.shardFor(id)`,
// `s := &r.shards[i]`) are NOT fresh.
func freshLocals(fn *FuncInfo) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	define := func(id *ast.Ident) {
		if id.Name == "_" {
			return
		}
		if obj := fn.Pkg.Info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(fn.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if ok && isFreshExpr(n.Rhs[i]) {
					define(id)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					define(id)
				}
				return true
			}
			if len(n.Values) == len(n.Names) {
				for i, id := range n.Names {
					if isFreshExpr(n.Values[i]) {
						define(id)
					}
				}
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		return ok && (id.Name == "new" || id.Name == "make")
	}
	return false
}

func receiverObj(fn *FuncInfo) types.Object {
	if fn.Decl.Recv == nil || len(fn.Decl.Recv.List) == 0 {
		return nil
	}
	names := fn.Decl.Recv.List[0].Names
	if len(names) == 0 {
		return nil
	}
	return fn.Pkg.Info.Defs[names[0]]
}

// holderChecker answers "is fn only ever reached with <mu> held on the
// receiver?" by walking the call graph upward through every caller.
type holderChecker struct {
	prog       *Program
	heldAtCall map[*ast.CallExpr][]heldLock
	memo       map[holderKey]holderState
}

type holderKey struct {
	fn    *FuncInfo
	mu    string
	write bool
}

type holderState int

const (
	holderUnknown holderState = iota // in progress (cycle) → treated as not held
	holderYes
	holderNo
)

// allSitesHold reports whether every call site of fn is a method call on a
// receiver expression whose `<recv>.<mu>` lock is lexically held at the
// site (write-held if write), or is itself inside a function that
// satisfies the same property recursively. A function with no call sites
// fails: nothing proves its callers hold the lock.
func (c *holderChecker) allSitesHold(fn *FuncInfo, mu string, write bool, _ []heldLock) bool {
	key := holderKey{fn, mu, write}
	if state, ok := c.memo[key]; ok {
		return state == holderYes
	}
	c.memo[key] = holderUnknown // cycle guard: recursion does not prove holding
	ok := c.computeAllSitesHold(fn, mu, write)
	if ok {
		c.memo[key] = holderYes
	} else {
		c.memo[key] = holderNo
	}
	return ok
}

func (c *holderChecker) computeAllSitesHold(fn *FuncInfo, mu string, write bool) bool {
	if len(fn.Callers) == 0 {
		return false
	}
	for _, cs := range fn.Callers {
		if cs.ViaInterface {
			// An interface call site names the interface value, not the
			// concrete receiver; no lock correlation is possible.
			return false
		}
		sel, ok := ast.Unparen(cs.Call.Fun).(*ast.SelectorExpr)
		if !ok {
			return false // plain function call, no receiver to correlate
		}
		recv := ast.Unparen(sel.X)
		needKey := types.ExprString(recv) + "." + mu
		if heldHas(c.heldAtCall[cs.Call], needKey, write) {
			continue
		}
		// The caller may itself be a helper whose own receiver is the
		// same object and whose callers all hold the lock.
		baseID := baseIdent(recv)
		if baseID == nil {
			return false
		}
		obj := identObj(cs.Caller.Pkg.Info, baseID)
		if obj == nil || obj != receiverObj(cs.Caller) {
			return false
		}
		if !c.allSitesHold(cs.Caller, mu, write, nil) {
			return false
		}
	}
	return true
}
