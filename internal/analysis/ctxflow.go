package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context discipline in library packages: an exported
// function or method that takes a context.Context must take it as its
// first parameter, and library code must not mint root contexts with
// context.Background()/context.TODO() — it threads the caller's ctx so
// cancellation and deadlines propagate to every blocking callee.
// Documented bit-identical fast paths keep an explicit
// //lemonvet:allow ctxflow <reason>.
var CtxFlow = &ProgramAnalyzer{
	Name: "ctxflow",
	Doc:  "exported functions take ctx first; no context.Background()/TODO() outside main and tests",
	Run:  runCtxFlow,
}

func runCtxFlow(p *ProgramPass) {
	for _, pkg := range p.Prog.Pkgs {
		info := pkg.Info
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					checkCtxPosition(p, info, n)
				case *ast.CallExpr:
					if name, ok := isContextRoot(info, n); ok {
						p.Reportf("ctxflow", n.Pos(),
							"context.%s() in library code: thread the caller's ctx (or annotate a documented fast path)", name)
					}
				}
				return true
			})
		}
	}
}

// checkCtxPosition flags exported functions that accept a context.Context
// anywhere but first.
func checkCtxPosition(p *ProgramPass, info *types.Info, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Params == nil {
		return
	}
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(info, field.Type) && pos > 0 {
			p.Reportf("ctxflow", field.Pos(),
				"exported %s takes context.Context as parameter %d; ctx must come first", fd.Name.Name, pos+1)
			return
		}
		pos += n
	}
}

func isContextType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isContextRoot reports whether call is context.Background() or
// context.TODO().
func isContextRoot(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}
