package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked, non-test package of the module.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output lemonvet needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load locates the packages matching patterns (as interpreted by `go list`,
// run in dir), type-checks the non-dependency ones from source, and returns
// them sorted by import path. Dependency type information — including the
// standard library — is read from compiler export data produced by
// `go list -export`, so loading works without network access and without
// golang.org/x/tools.
//
// Only non-test Go files are loaded: the determinism contract lemonvet
// enforces applies to library and command code; tests are free to use the
// clock and to compare exact values.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the package build?)", path)
		}
		return os.Open(exp)
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %w", name, err)
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []listedPackage
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}
