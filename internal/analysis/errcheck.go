package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck flags call statements that silently discard an error result.
// A dropped error in a fabrication or simulation path means an experiment
// keeps running on invalid state and produces a figure nobody can trust.
// This is the "lite" variant: it checks expression statements only —
// an explicit `_ = f()` assignment is treated as a deliberate, visible
// discard and left alone, as are the print-family helpers below whose
// errors are conventionally ignored.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag call statements that discard an error result",
	Run:  runErrCheck,
}

// errcheckExemptFuncs lists fully-qualified functions whose error results
// are conventionally discarded (terminal output; failure is untreatable).
var errcheckExemptFuncs = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

// errcheckExemptTypes lists receiver types (pointer or value) whose methods
// are documented to never return a non-nil error: the strings.Builder and
// bytes.Buffer writers, and hash.Hash ("Write ... never returns an error").
var errcheckExemptTypes = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
	"hash.Hash":       true,
}

// errcheckStrictMethods lists durability-critical interface methods whose
// error results must be handled — even an explicit `_ =` discard is a
// finding. These are the fault-injection seams the WAL writes through: a
// silently dropped write or fsync error turns the fail-closed wearout
// guarantee into fail-open (the access proceeds with no durable record).
var errcheckStrictMethods = map[string]map[string]bool{
	"lemonade/internal/fault.File": {"Write": true, "Sync": true, "Truncate": true},
	"lemonade/internal/fault.FS":   {"Rename": true, "Truncate": true},
}

func runErrCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(pass, call) || exemptCall(pass, call) {
					return true
				}
				pass.Reportf("errcheck", call.Pos(),
					"error result of %s discarded; handle it or assign to _ explicitly", callName(call))
			case *ast.AssignStmt:
				// `_ = f.Sync()` is a visible discard, which the lite rule
				// allows — except on durability-critical methods.
				if len(stmt.Rhs) != 1 || !allBlank(stmt.Lhs) {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, strict := strictCall(pass, call); strict {
					pass.Reportf("errcheck", call.Pos(),
						"error result of durability-critical %s discarded; a dropped write/fsync error breaks the fail-closed guarantee", name)
				}
			}
			return true
		})
	}
}

// allBlank reports whether every assignment target is the blank
// identifier — i.e. the statement exists only to discard results.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// strictCall reports whether call is a method in errcheckStrictMethods,
// resolved through the receiver's type.
func strictCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	methods := errcheckStrictMethods[types.TypeString(recv, nil)]
	if !methods[sel.Sel.Name] {
		return "", false
	}
	return callName(call), true
}

func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorInterface)
}

func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Package-level function: fmt.Printf and friends.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			qualified := pkgName.Imported().Path() + "." + sel.Sel.Name
			return errcheckExemptFuncs[qualified]
		}
	}
	// Method on an error-free writer: (*strings.Builder).WriteString etc.
	if selection, ok := pass.Info.Selections[sel]; ok {
		recv := selection.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		return errcheckExemptTypes[types.TypeString(recv, nil)]
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		s := types.ExprString(call.Fun)
		if len(s) > 40 {
			s = s[:40] + "…"
		}
		return s
	}
}
