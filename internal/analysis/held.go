package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// heldLock is one mutex acquisition in force at a program point.
type heldLock struct {
	// key is the rendered acquisition expression, e.g. "s.mu" — lexical
	// identity within one function.
	key string
	// class names the lock program-wide, e.g. "wal.DiskStore.mu" for a
	// struct field or "gf16.tableOnce" for a package-level mutex. Empty
	// for locks the passes cannot classify (locals, complex expressions).
	class string
	// field is the mutex field object when the lock is a struct field.
	field *types.Var
	// write distinguishes Lock (true) from RLock (false).
	write bool
	// pos is the acquisition site.
	pos token.Pos
}

// lockOpOf reports whether n is a call to Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning the lock it names and whether the
// call acquires (true) or releases (false) it.
func lockOpOf(info *types.Info, n ast.Node) (lk heldLock, acquire, ok bool) {
	call, isCall := n.(*ast.CallExpr)
	if !isCall {
		return heldLock{}, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return heldLock{}, false, false
	}
	var write bool
	switch sel.Sel.Name {
	case "Lock", "Unlock":
		write = true
	case "RLock", "RUnlock":
		write = false
	default:
		return heldLock{}, false, false
	}
	recv := ast.Unparen(sel.X)
	tv, okType := info.Types[recv]
	if !okType || !isSyncMutex(tv.Type) {
		return heldLock{}, false, false
	}
	lk = heldLock{
		key:   types.ExprString(recv),
		write: write,
		pos:   call.Pos(),
	}
	lk.class, lk.field = lockClass(info, recv)
	acquire = sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock"
	return lk, acquire, true
}

func isSyncMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockClass derives the program-wide class of the mutex named by recv:
// "pkg.Type.field" for struct fields, "pkg.var" for package-level mutexes,
// "" otherwise (locals and expressions too complex to classify).
func lockClass(info *types.Info, recv ast.Expr) (string, *types.Var) {
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		selinfo := info.Selections[recv]
		if selinfo == nil || selinfo.Kind() != types.FieldVal {
			// Qualified identifier (pkg.Var) has no Selections entry.
			if v, ok := info.Uses[recv.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Name() + "." + v.Name(), nil
			}
			return "", nil
		}
		fv, ok := selinfo.Obj().(*types.Var)
		if !ok {
			return "", nil
		}
		owner := derefNamed(selinfo.Recv())
		if owner == nil {
			return "", nil
		}
		return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + fv.Name(), fv
	case *ast.Ident:
		v, ok := identObj(info, recv).(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", nil
		}
		if v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name(), nil
		}
		return "", nil
	}
	return "", nil
}

func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// walkFuncHeld traverses body in source order, tracking which locks are
// lexically held at each point, and calls visit for every node with the
// current held set. The tracking is branch-local: acquisitions and
// releases inside a nested block (if/for/switch/select body) do not leak
// into the statements that follow it, which keeps error paths of the form
//
//	mu.Lock()
//	if bad { mu.Unlock(); return err }
//	...
//	mu.Unlock()
//
// tracked correctly (the lock is still held after the if). `defer
// mu.Unlock()` leaves the lock held until the function returns, as it does
// dynamically. Function literal bodies are walked with an empty held set:
// the passes treat a closure's body as running at an unknown time.
func walkFuncHeld(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held []heldLock)) {
	w := &heldWalker{info: info, visit: visit}
	held := []heldLock{}
	w.stmts(body.List, &held)
}

type heldWalker struct {
	info  *types.Info
	visit func(n ast.Node, held []heldLock)
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}

func (w *heldWalker) stmts(list []ast.Stmt, held *[]heldLock) {
	for _, s := range list {
		w.stmt(s, held)
	}
}

// branch walks a nested statement with a copy of the current held set, so
// its lock effects stay local to the branch.
func (w *heldWalker) branch(s ast.Stmt, held []heldLock) {
	h := copyHeld(held)
	w.stmt(s, &h)
}

// branchStmts walks a nested statement list with a copy of the current
// held set.
func (w *heldWalker) branchStmts(list []ast.Stmt, held []heldLock) {
	h := copyHeld(held)
	w.stmts(list, &h)
}

func (w *heldWalker) stmt(s ast.Stmt, held *[]heldLock) {
	switch s := s.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		w.branchStmts(s.List, *held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, *held)
		w.branchStmts(s.Body.List, *held)
		if s.Else != nil {
			w.branch(s.Else, *held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, *held)
		}
		w.branchStmts(s.Body.List, *held)
		if s.Post != nil {
			w.branch(s.Post, *held)
		}
	case *ast.RangeStmt:
		if s.Key != nil {
			w.expr(s.Key, *held)
		}
		if s.Value != nil {
			w.expr(s.Value, *held)
		}
		w.expr(s.X, *held)
		w.branchStmts(s.Body.List, *held)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, *held)
		}
		for _, clause := range s.Body.List {
			w.branch(clause, *held)
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.branch(s.Assign, *held)
		for _, clause := range s.Body.List {
			w.branch(clause, *held)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e, *held)
		}
		w.stmts(s.Body, held)
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			w.branch(clause, *held)
		}
	case *ast.CommClause:
		if s.Comm != nil {
			w.stmt(s.Comm, held)
		}
		w.stmts(s.Body, held)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	case *ast.DeferStmt:
		// Visit the call (args and any function literal) but apply no
		// lock effect: `defer mu.Unlock()` keeps the lock held for the
		// remainder of the function.
		w.expr(s.Call, *held)
	case *ast.GoStmt:
		w.expr(s.Call, *held)
	case *ast.ExprStmt:
		w.expr(s.X, *held)
		if lk, acquire, ok := lockOpOf(w.info, s.X); ok {
			applyLockOp(held, lk, acquire)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, *held)
		}
		for _, e := range s.Lhs {
			w.expr(e, *held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, *held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, *held)
	case *ast.SendStmt:
		w.expr(s.Chan, *held)
		w.expr(s.Value, *held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, *held)
					}
				}
			}
		}
	default:
		// BranchStmt, EmptyStmt: nothing to visit.
	}
}

// expr visits every node of e with the current held set, descending into
// function literal bodies with an empty held set.
func (w *heldWalker) expr(e ast.Expr, held []heldLock) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.visit(lit, held)
			empty := []heldLock{}
			w.stmts(lit.Body.List, &empty)
			return false
		}
		if n != nil {
			w.visit(n, held)
		}
		return true
	})
}

func applyLockOp(held *[]heldLock, lk heldLock, acquire bool) {
	if acquire {
		*held = append(copyHeld(*held), lk)
		return
	}
	// Release the most recent matching acquisition (same key; Unlock
	// matches Lock, RUnlock matches RLock).
	h := *held
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].key == lk.key && h[i].write == lk.write {
			out := make([]heldLock, 0, len(h)-1)
			out = append(out, h[:i]...)
			out = append(out, h[i+1:]...)
			*held = out
			return
		}
	}
}

// heldHas reports whether held contains the lock with the given key, and
// if needWrite is set, whether that acquisition is a write Lock.
func heldHas(held []heldLock, key string, needWrite bool) bool {
	for _, h := range held {
		if h.key == key && (!needWrite || h.write) {
			return true
		}
	}
	return false
}
