package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the lightweight whole-program call graph the
// inter-procedural passes (guardedby, lockorder, logahead) walk. It is
// deliberately approximate but sound for the patterns this codebase uses:
//
//   - Static calls (pkg-level functions and methods with a concrete
//     receiver) are resolved exactly through types.Info.Uses.
//   - Calls through an interface method are expanded to every named type
//     declared in the analyzed program that implements the interface;
//     each such edge is marked ViaInterface.
//   - Function literals are attributed to the enclosing declared function:
//     a call inside a closure counts as a call made by the function that
//     contains the closure. This matches how the codebase uses closures
//     (breaker ops, singleflight thunks) — they run on the caller's
//     goroutine or shortly after, and lock-discipline bugs inside them are
//     still bugs of the enclosing function's call path.
//   - Calls through plain function *values* (fields or parameters of func
//     type) are not traced; this is a documented limit (DESIGN.md §6).
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncInfo

	// funcsInOrder lists every analyzed function in deterministic
	// (package, file, declaration) order.
	funcsInOrder []*FuncInfo
	// pkgOfFile maps each parsed file back to its package so program
	// passes can recover per-package type info from a position.
	pkgOfFile map[*ast.File]*Package
}

// FuncInfo is one declared function or method with a body.
type FuncInfo struct {
	Obj     *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []*CallSite
	Callers []*CallSite
}

// CallSite is one resolved call edge.
type CallSite struct {
	Caller *FuncInfo
	Callee *FuncInfo
	Call   *ast.CallExpr
	// ViaInterface marks an edge added by expanding an interface method
	// call to a concrete implementation declared in the program.
	ViaInterface bool
}

// BuildProgram indexes every function declaration in pkgs and resolves the
// call edges between them.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:      pkgs,
		Funcs:     make(map[*types.Func]*FuncInfo),
		pkgOfFile: make(map[*ast.File]*Package),
	}
	if len(pkgs) > 0 {
		prog.Fset = pkgs[0].Fset
	}

	// Pass 1: index declared functions.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			prog.pkgOfFile[file] = pkg
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				prog.Funcs[obj] = fi
				prog.funcsInOrder = append(prog.funcsInOrder, fi)
			}
		}
	}

	impls := prog.interfaceImpls()

	// Pass 2: resolve calls.
	for _, fi := range prog.funcsInOrder {
		fi := fi
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fi.Pkg.Info, call)
			if callee == nil {
				return true
			}
			if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				for _, impl := range impls.resolve(callee) {
					addEdge(fi, impl, call, true)
				}
				return true
			}
			if target := prog.Funcs[callee]; target != nil {
				addEdge(fi, target, call, false)
			}
			return true
		})
	}
	return prog
}

// PkgOf returns the analyzed package containing pos, or nil.
func (p *Program) PkgOf(pos token.Pos) *Package {
	for file, pkg := range p.pkgOfFile {
		if file.FileStart <= pos && pos < file.FileEnd {
			return pkg
		}
	}
	return nil
}

func addEdge(caller, callee *FuncInfo, call *ast.CallExpr, viaInterface bool) {
	cs := &CallSite{Caller: caller, Callee: callee, Call: call, ViaInterface: viaInterface}
	caller.Callees = append(caller.Callees, cs)
	callee.Callers = append(callee.Callers, cs)
}

// calleeOf resolves the *types.Func a call expression invokes statically,
// or nil for function values, builtins, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// implTable maps interface methods to their in-program implementations.
type implTable struct {
	prog *Program
	// named lists every non-interface named type declared in the program,
	// in deterministic order.
	named []*types.Named
	memo  map[*types.Func][]*FuncInfo
}

func (p *Program) interfaceImpls() *implTable {
	t := &implTable{prog: p, memo: make(map[*types.Func][]*FuncInfo)}
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			t.named = append(t.named, named)
		}
	}
	return t
}

// resolve returns the in-program methods that may run when imeth is called
// through its interface.
func (t *implTable) resolve(imeth *types.Func) []*FuncInfo {
	if out, ok := t.memo[imeth]; ok {
		return out
	}
	iface, ok := imeth.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	var out []*FuncInfo
	if ok {
		for _, named := range t.named {
			var impl types.Type = named
			if !types.Implements(named, iface) {
				ptr := types.NewPointer(named)
				if !types.Implements(ptr, iface) {
					continue
				}
				impl = ptr
			}
			obj, _, _ := types.LookupFieldOrMethod(impl, true, imeth.Pkg(), imeth.Name())
			fn, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if fi := t.prog.Funcs[fn]; fi != nil {
				out = append(out, fi)
			}
		}
	}
	t.memo[imeth] = out
	return out
}
