// Package ctxflow is the fixture for the ctxflow program analyzer:
// exported functions take ctx first, and library code never mints root
// contexts with context.Background()/context.TODO().
package ctxflow

import "context"

// OKFirst threads ctx in the canonical position.
func OKFirst(ctx context.Context, n int) error {
	return work(ctx, n)
}

// BadSecond takes ctx after another parameter.
func BadSecond(n int, ctx context.Context) error { // want ctxflow
	return work(ctx, n)
}

// BadBackground mints a root context in library code.
func BadBackground(n int) error {
	return work(context.Background(), n) // want ctxflow
}

// BadTODO defers the decision instead of threading the caller's ctx.
func BadTODO(n int) error {
	return work(context.TODO(), n) // want ctxflow
}

// Suppressed documents a bit-identical fast path; this is the fixture's
// //lemonvet:allow example.
func Suppressed(n int) error {
	return work(context.Background(), n) //lemonvet:allow ctxflow fixture example: documented fast path
}

// helper is unexported, so the ctx-position rule does not apply to it.
func helper(n int, ctx context.Context) error {
	return work(ctx, n)
}

func work(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	_ = n
	return nil
}
