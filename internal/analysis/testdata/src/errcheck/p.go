// Package errcheck is a lemonvet fixture: discarded error results.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func step() error               { return errors.New("boom") }
func compute() (int, error)     { return 0, errors.New("boom") }
func report(w *strings.Builder) { w.WriteString("ok") }

// BadDiscard drops a lone error result on the floor.
func BadDiscard() {
	step() // want errcheck
}

// BadDiscardTuple drops an (int, error) pair.
func BadDiscardTuple() {
	compute() // want errcheck
}

// OKHandled propagates the error.
func OKHandled() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

// OKExplicitDiscard makes the discard visible at the call site.
func OKExplicitDiscard() {
	_ = step()
}

// OKPrint uses the conventional print family.
func OKPrint() {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
}

// OKBuilder writes to an error-free writer.
func OKBuilder() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 2)
	report(&b)
	return b.String()
}

// SuppressedDiscard is annotated: best-effort cleanup.
func SuppressedDiscard() {
	step() //lemonvet:allow errcheck fixture demonstrates suppression
}
