// Package errcheck is a lemonvet fixture: discarded error results.
package errcheck

import (
	"errors"
	"fmt"
	"strings"

	"lemonade/internal/fault"
)

func step() error               { return errors.New("boom") }
func compute() (int, error)     { return 0, errors.New("boom") }
func report(w *strings.Builder) { w.WriteString("ok") }

// BadDiscard drops a lone error result on the floor.
func BadDiscard() {
	step() // want errcheck
}

// BadDiscardTuple drops an (int, error) pair.
func BadDiscardTuple() {
	compute() // want errcheck
}

// OKHandled propagates the error.
func OKHandled() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}

// OKExplicitDiscard makes the discard visible at the call site.
func OKExplicitDiscard() {
	_ = step()
}

// OKPrint uses the conventional print family.
func OKPrint() {
	fmt.Println("hello")
	fmt.Printf("%d\n", 1)
}

// OKBuilder writes to an error-free writer.
func OKBuilder() string {
	var b strings.Builder
	b.WriteString("x")
	fmt.Fprintf(&b, "%d", 2)
	report(&b)
	return b.String()
}

// SuppressedDiscard is annotated: best-effort cleanup.
func SuppressedDiscard() {
	step() //lemonvet:allow errcheck fixture demonstrates suppression
}

// BadStrictDiscard drops durability-critical errors. On fault.File and
// fault.FS even the explicit `_ =` form is a finding: a silently lost
// write or fsync error breaks the fail-closed wearout guarantee.
func BadStrictDiscard(f fault.File, fs fault.FS, p []byte) {
	_ = f.Sync()            // want errcheck
	_, _ = f.Write(p)       // want errcheck
	_ = f.Truncate(0)       // want errcheck
	_ = fs.Rename("a", "b") // want errcheck
	_ = fs.Truncate("a", 0) // want errcheck
}

// OKStrictHandled propagates the durability-critical error.
func OKStrictHandled(f fault.File) error {
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	return f.Sync()
}

// OKNonStrictExplicitDiscard: Remove is best-effort cleanup, not a
// durability seam, so the visible discard stays allowed.
func OKNonStrictExplicitDiscard(fs fault.FS) {
	_ = fs.Remove("tmp")
}
