// Package guardedby is the fixture for the guardedby program analyzer:
// fields annotated `// guarded by <mu>` may only be accessed with the
// named sibling mutex held.
package guardedby

import "sync"

// Box carries both mutex flavors so read- and write-lock modes are covered.
type Box struct {
	mu sync.Mutex
	rw sync.RWMutex

	n     int      // guarded by mu
	items []string // guarded by rw
}

// OKLocked reads under the lock.
func (b *Box) OKLocked() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// OKRead reads under the read lock.
func (b *Box) OKRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return len(b.items)
}

// OKWrite writes under the write lock.
func (b *Box) OKWrite(s string) {
	b.rw.Lock()
	b.items = append(b.items, s)
	b.rw.Unlock()
}

// OKErrorPath releases on the early return; the access after the branch is
// still covered because lock effects inside a branch do not escape it.
func (b *Box) OKErrorPath(bail bool) int {
	b.mu.Lock()
	if bail {
		b.mu.Unlock()
		return -1
	}
	defer b.mu.Unlock()
	return b.n
}

// BadUnlocked reads with no lock at all.
func (b *Box) BadUnlocked() int {
	return b.n // want guardedby
}

// BadWriteUnderRLock holds only the read lock while writing.
func (b *Box) BadWriteUnderRLock(s string) {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.items = append(b.items, s) // want guardedby
}

// bumpLocked does not lock itself, but every call path to it holds b.mu,
// so the access is accepted via the call graph.
func (b *Box) bumpLocked() {
	b.n++
}

// OKCallerHolds is bumpLocked's only caller and holds the lock.
func (b *Box) OKCallerHolds() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bumpLocked()
}

// badHelper is reached from BadCaller without the lock: flagged at the
// helper, where the unprotected access lives.
func (b *Box) badHelper() int {
	return b.n // want guardedby
}

// BadCaller reaches badHelper lock-free.
func (b *Box) BadCaller() int {
	return b.badHelper()
}

// NewBox initializes fields before the box escapes: fresh-object accesses
// are exempt.
func NewBox() *Box {
	b := &Box{}
	b.n = 1
	b.items = nil
	return b
}

// Snapshot documents why its lock-free read is safe and suppresses the
// finding; this is the fixture's //lemonvet:allow example.
func (b *Box) Snapshot() int {
	return b.n //lemonvet:allow guardedby fixture example: caller quiesces all writers first
}
