// Package floateq is a lemonvet fixture: floating-point equality idioms,
// forbidden and exempt.
package floateq

import "math"

// BadComputed compares two computed floats exactly.
func BadComputed(a, b float64) bool {
	return a*3 == b/7 // want floateq
}

// BadVars compares two float variables exactly.
func BadVars(a, b float64) bool {
	if a != b { // want floateq
		return false
	}
	return true
}

// BadFloat32 is just as wrong in single precision.
func BadFloat32(a, b float32) bool {
	return a == b // want floateq
}

// OKNaNIdiom is the portable NaN test.
func OKNaNIdiom(x float64) bool {
	return x != x
}

// OKZeroSentinel tests an exactly representable boundary.
func OKZeroSentinel(x float64) bool {
	return x == 0
}

// OKConstSentinel special-cases an exact parameter value, weibull-style.
func OKConstSentinel(beta float64) bool {
	return beta == 1
}

// OKInfSentinel checks saturation against the Inf sentinel.
func OKInfSentinel(x float64) bool {
	return x == math.Inf(1)
}

// OKInts compares integers, which is always exact.
func OKInts(a, b int) bool {
	return a == b
}

// SuppressedExact is annotated: bit-exactness is the point here.
func SuppressedExact(a, b float64) bool {
	return a+1 == b+1 //lemonvet:allow floateq fixture demonstrates suppression
}
