// Package rngcapture is a lemonvet fixture: *rng.RNG values crossing
// goroutine boundaries with and without private streams.
package rngcapture

import (
	"sync"

	"lemonade/internal/rng"
)

func worker(r *rng.RNG, out chan<- float64) {
	out <- r.Float64()
}

// BadSharedDraw captures the parent generator and mutates it concurrently.
func BadSharedDraw(r *rng.RNG) float64 {
	out := make(chan float64, 2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out <- r.Float64() // want rngcapture
		}()
	}
	wg.Wait()
	return <-out + <-out
}

// BadSharedSplit splits inside the goroutine, which also mutates the parent.
func BadSharedSplit(r *rng.RNG) {
	done := make(chan struct{})
	go func() {
		_ = r.Split() // want rngcapture
		close(done)
	}()
	<-done
}

// BadArg hands the parent generator itself to the spawned worker.
func BadArg(r *rng.RNG) float64 {
	out := make(chan float64, 1)
	go worker(r, out) // want rngcapture
	return <-out
}

// OKDeriveInGoroutine derives by label inside the goroutine; Derive only
// reads the parent state, exactly the montecarlo.RunParallel pattern.
func OKDeriveInGoroutine(r *rng.RNG) float64 {
	out := make(chan float64, 1)
	go func() {
		out <- r.Derive("worker").Float64()
	}()
	return <-out
}

// OKDeriveIndexInGoroutine is the allocation-free variant of the same.
func OKDeriveIndexInGoroutine(r *rng.RNG) float64 {
	out := make(chan float64, 1)
	go func() {
		out <- r.DeriveIndex("trial-", 0).Float64()
	}()
	return <-out
}

// OKSplitBeforeLaunch creates the private stream sequentially.
func OKSplitBeforeLaunch(r *rng.RNG) float64 {
	out := make(chan float64, 1)
	go worker(r.Split(), out)
	return <-out
}

// OKPrivate declares its generator inside the goroutine.
func OKPrivate() float64 {
	out := make(chan float64, 1)
	go func() {
		mine := rng.New(1)
		out <- mine.Float64()
	}()
	return <-out
}

// SuppressedShared is annotated: single-consumer handoff, parent unused after.
func SuppressedShared(r *rng.RNG) float64 {
	out := make(chan float64, 1)
	go worker(r, out) //lemonvet:allow rngcapture fixture demonstrates suppression
	return <-out
}
