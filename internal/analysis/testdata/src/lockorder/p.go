// Package lockorder is the fixture for the lockorder program analyzer:
// the program-wide lock acquisition order must be acyclic.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.Mutex
)

// AB and BA nest muA and muB in opposite orders: a two-lock cycle visible
// without any call graph.
func AB() {
	muA.Lock()
	muB.Lock() // want lockorder
	muB.Unlock()
	muA.Unlock()
}

// BA is the inverted half of the AB cycle.
func BA() {
	muB.Lock()
	muA.Lock() // want lockorder
	muA.Unlock()
	muB.Unlock()
}

// CD holds muC across a call to lockD, which acquires muD; DC nests the
// same pair directly in the other order. This cycle is visible only
// through the call graph.
func CD() {
	muC.Lock()
	lockD() // want lockorder
	muC.Unlock()
}

func lockD() {
	muD.Lock()
	muD.Unlock()
}

// DC is the direct half of the call-transitive cycle.
func DC() {
	muD.Lock()
	muC.Lock() // want lockorder
	muC.Unlock()
	muD.Unlock()
}

// OKNested always takes muE before muF: consistent order, no finding.
func OKNested() {
	muE.Lock()
	muF.Lock()
	muF.Unlock()
	muE.Unlock()
}

// Reentrant double-acquires muE — an immediate deadlock with sync.Mutex —
// and is the fixture's //lemonvet:allow example.
func Reentrant() {
	muE.Lock()
	muE.Lock() //lemonvet:allow lockorder fixture example: reentrant acquire kept to exercise suppression
	muE.Unlock()
	muE.Unlock()
}
