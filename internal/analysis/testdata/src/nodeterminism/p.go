// Package nodeterminism is a lemonvet fixture: nondeterminism sources that
// simulation packages must not use.
package nodeterminism

import (
	"math/rand" // want nodeterminism
	"time"
)

// BadSample draws from the global math/rand stream.
func BadSample() float64 {
	return rand.Float64()
}

// BadStamp reads the wall clock twice.
func BadStamp() time.Duration {
	start := time.Now()      // want nodeterminism
	return time.Since(start) // want nodeterminism
}

// BadDeadline uses the third wall-clock entry point.
func BadDeadline(t time.Time) time.Duration {
	return time.Until(t) // want nodeterminism
}

// OKDuration uses time only for deterministic duration arithmetic.
func OKDuration(cycles int64) time.Duration {
	return time.Duration(cycles) * time.Microsecond
}

// SuppressedStamp carries an explicit annotation.
func SuppressedStamp() time.Time {
	return time.Now() //lemonvet:allow nodeterminism fixture demonstrates suppression
}
