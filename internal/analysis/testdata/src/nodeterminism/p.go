// Package nodeterminism is a lemonvet fixture: nondeterminism sources that
// simulation packages must not use.
package nodeterminism

import (
	"math/rand" // want nodeterminism
	"sync"
	"time"
)

// BadSample draws from the global math/rand stream.
func BadSample() float64 {
	return rand.Float64()
}

// BadStamp reads the wall clock twice.
func BadStamp() time.Duration {
	start := time.Now()      // want nodeterminism
	return time.Since(start) // want nodeterminism
}

// BadDeadline uses the third wall-clock entry point.
func BadDeadline(t time.Time) time.Duration {
	return time.Until(t) // want nodeterminism
}

// OKDuration uses time only for deterministic duration arithmetic.
func OKDuration(cycles int64) time.Duration {
	return time.Duration(cycles) * time.Microsecond
}

// SuppressedStamp carries an explicit annotation.
func SuppressedStamp() time.Time {
	return time.Now() //lemonvet:allow nodeterminism fixture demonstrates suppression
}

// BadPool has no New fallback: whether Get returns a cached object or nil
// depends on GC timing, which the simulation contract forbids observing.
var BadPool = sync.Pool{} // want nodeterminism

// BadZeroPool is the zero-value form of the same missing seam.
var BadZeroPool sync.Pool // want nodeterminism

// OKPool carries the deterministic-fallback seam: Get never returns nil,
// and callers fully overwrite the scratch before reading it, so pool hits
// and misses are indistinguishable in output.
var OKPool = sync.Pool{New: func() any { return new([64]byte) }}
