// Package store is a stand-in durable log with the batch ticket-based
// Store.Append shape the logahead analyzer's barrier detection keys on.
package store

// Ticket resolves when the containing commit group is durably fsynced.
type Ticket interface {
	Wait() error
	Done()
}

type readyTicket struct{}

func (readyTicket) Wait() error { return nil }
func (readyTicket) Done()       {}

// Store is the durable access log.
type Store struct {
	appended int
}

// Append stages the records for group commit; the returned Ticket
// resolves when they are durable.
func (s *Store) Append(ids []string) (Ticket, error) {
	s.appended += len(ids)
	return readyTicket{}, nil
}
