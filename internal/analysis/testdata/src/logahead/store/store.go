// Package store is a stand-in durable log with the Store.Append* method
// shape the logahead analyzer's barrier detection keys on.
package store

// Store is the durable access log.
type Store struct {
	appended int
}

// AppendAccess appends an access record; the returned func acknowledges
// the durable write.
func (s *Store) AppendAccess(id string) (func(), error) {
	s.appended++
	_ = id
	return func() {}, nil
}

// AppendProvision appends a provision record.
func (s *Store) AppendProvision(id string) (func(), error) {
	s.appended++
	_ = id
	return func() {}, nil
}
