// Package registry is the fixture for the logahead program analyzer: a
// wear-state mutation (core.Architecture Access/Restore) must be dominated
// by a Store.Append whose error was checked — DESIGN.md §8's log-ahead
// rule. Deleting the Append (BadNoAppend) or discarding its error
// (BadUncheckedAppend) makes the pass fire.
package registry

import (
	"lemonade/internal/analysis/testdata/src/logahead/core"
	"lemonade/internal/analysis/testdata/src/logahead/store"
)

// Entry pairs an architecture with its durable log.
type Entry struct {
	arch  *core.Architecture
	store *store.Store
}

// OKLogAhead appends, checks the error, then mutates: the canonical shape.
func (e *Entry) OKLogAhead(id string) (int, error) {
	done, err := e.store.AppendAccess(id)
	if err != nil {
		return 0, err
	}
	defer done()
	return e.arch.Access()
}

// BadNoAppend mutates wear state with no append at all.
func (e *Entry) BadNoAppend() (int, error) {
	return e.arch.Access() // want logahead
}

// BadUncheckedAppend appends but discards the error: durability was never
// confirmed, so no barrier is established.
func (e *Entry) BadUncheckedAppend(id string) (int, error) {
	done, _ := e.store.AppendAccess(id)
	defer done()
	return e.arch.Access() // want logahead
}

// fire is not locally barriered, but its only caller appends first, so the
// mutation is accepted through the call graph.
func (e *Entry) fire() (int, error) {
	return e.arch.Access()
}

// OKCallerAppends performs the checked append before calling fire.
func (e *Entry) OKCallerAppends(id string) (int, error) {
	done, err := e.store.AppendAccess(id)
	if err != nil {
		return 0, err
	}
	defer done()
	return e.fire()
}

// BadRestore overwrites wear state with nothing logged.
func (e *Entry) BadRestore(n int) {
	e.arch.Restore(n) // want logahead
}

// Replay applies a record that is already durable in the log; this is the
// fixture's //lemonvet:allow example.
func (e *Entry) Replay() {
	_, _ = e.arch.Access() //lemonvet:allow logahead fixture example: record already durable in the log
}
