// Package registry is the fixture for the logahead program analyzer: a
// wear-state mutation (core.Architecture Access/Restore) must be
// dominated by a checked commit-ticket wait — `tkt, err :=
// store.Append(...)` followed by a tested tkt.Wait() error — DESIGN.md
// §8's log-ahead rule under group commit. Deleting the Append
// (BadNoAppend), deleting the ticket-wait (BadNoWait), or discarding the
// Wait error (BadUncheckedWait) makes the pass fire.
package registry

import (
	"lemonade/internal/analysis/testdata/src/logahead/core"
	"lemonade/internal/analysis/testdata/src/logahead/store"
)

// Entry pairs an architecture with its durable log.
type Entry struct {
	arch  *core.Architecture
	store *store.Store
}

// OKLogAhead appends, checks the error, waits on the commit ticket, then
// mutates: the canonical shape.
func (e *Entry) OKLogAhead(id string) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	if werr := tkt.Wait(); werr != nil {
		return 0, werr
	}
	defer tkt.Done()
	return e.arch.Access()
}

// OKSeparateWait checks the Wait error in its own statement.
func (e *Entry) OKSeparateWait(id string) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	werr := tkt.Wait()
	if werr != nil {
		return 0, werr
	}
	defer tkt.Done()
	return e.arch.Access()
}

// BadNoAppend mutates wear state with no append at all.
func (e *Entry) BadNoAppend() (int, error) {
	return e.arch.Access() // want logahead
}

// BadNoWait appends and checks the Append error but never waits on the
// ticket: the record is only staged, never proven durable — the commit
// barrier was deleted, so the build must break.
func (e *Entry) BadNoWait(id string) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	defer tkt.Done()
	return e.arch.Access() // want logahead
}

// BadUncheckedWait waits but discards the ticket's error: a failed group
// commit would fire the hardware anyway.
func (e *Entry) BadUncheckedWait(id string) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	_ = tkt.Wait()
	defer tkt.Done()
	return e.arch.Access() // want logahead
}

// fire is not locally barriered, but its only caller waits on the commit
// ticket first, so the mutation is accepted through the call graph.
func (e *Entry) fire() (int, error) {
	return e.arch.Access()
}

// OKCallerAppends performs the checked append-and-wait before calling
// fire.
func (e *Entry) OKCallerAppends(id string) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	if werr := tkt.Wait(); werr != nil {
		return 0, werr
	}
	defer tkt.Done()
	return e.fire()
}

// BadRestore overwrites wear state with nothing logged.
func (e *Entry) BadRestore(n int) {
	e.arch.Restore(n) // want logahead
}

// Replay applies a record that is already durable in the log; this is the
// fixture's //lemonvet:allow example.
func (e *Entry) Replay() {
	_, _ = e.arch.Access() //lemonvet:allow logahead fixture example: record already durable in the log
}

// BadStress serves adversarial wear traffic with nothing logged: stress
// consumes wearout exactly like an access, so the same barrier applies.
func (e *Entry) BadStress(pulses int) (int, error) {
	return e.arch.Stress(pulses) // want logahead
}

// OKStress is the canonical stress shape: append, wait, fire.
func (e *Entry) OKStress(id string, pulses int) (int, error) {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return 0, err
	}
	if werr := tkt.Wait(); werr != nil {
		return 0, werr
	}
	defer tkt.Done()
	return e.arch.Stress(pulses)
}

// BadRemap installs a remap table and retires switches without the plan
// ever being appended.
func (e *Entry) BadRemap(assign []int) error {
	if err := e.arch.Retire(0, assign[0]); err != nil { // want logahead
		return err
	}
	return e.arch.ApplyRemap(0, assign) // want logahead
}

// OKMaintain is the wear-leveling maintenance shape: the whole plan
// (retirements + remap) goes through one atomic append, and every
// mutation — including those inside the range loop — happens after the
// checked commit-ticket wait.
func (e *Entry) OKMaintain(id string, retire, assign []int) error {
	tkt, err := e.store.Append([]string{id})
	if err != nil {
		return err
	}
	if werr := tkt.Wait(); werr != nil {
		return werr
	}
	defer tkt.Done()
	for _, p := range retire {
		if err := e.arch.Retire(0, p); err != nil {
			return err
		}
	}
	return e.arch.ApplyRemap(0, assign)
}
