// Package core is a stand-in for the wear-accounting core: the logahead
// analyzer recognizes wear-state mutators by the /core import-path suffix
// of the method's receiver type, so this fixture package must live under a
// directory named core.
package core

import "errors"

// ErrExhausted is returned when the wearout budget is spent.
var ErrExhausted = errors.New("core: wearout budget exhausted")

// Architecture models a limited-use primitive with a wearout budget.
type Architecture struct {
	// Remaining is the unspent wearout budget.
	Remaining int
}

// Access consumes one use and returns the remaining budget.
func (a *Architecture) Access() (int, error) {
	if a.Remaining <= 0 {
		return 0, ErrExhausted
	}
	a.Remaining--
	return a.Remaining, nil
}

// Restore overwrites wear state from a snapshot.
func (a *Architecture) Restore(remaining int) {
	a.Remaining = remaining
}

// Stress consumes wear without revealing anything (adversarial traffic).
func (a *Architecture) Stress(pulses int) (int, error) {
	if a.Remaining < pulses {
		return 0, ErrExhausted
	}
	a.Remaining -= pulses
	return pulses, nil
}

// Retire removes a physical switch from wear-leveling service.
func (a *Architecture) Retire(copy, physical int) error { return nil }

// ApplyRemap installs a wear-leveling remap table.
func (a *Architecture) ApplyRemap(copy int, assign []int) error { return nil }
