// Package panicpolicy is a lemonvet fixture: panics in library code.
package panicpolicy

import "errors"

// BadValidate panics on a recoverable input error.
func BadValidate(n int) int {
	if n <= 0 {
		panic("n must be positive") // want panicpolicy
	}
	return n * 2
}

// BadWrap re-panics a returned error.
func BadWrap() int {
	v, err := mayFail()
	if err != nil {
		panic(err) // want panicpolicy
	}
	return v
}

// OKError returns the error instead.
func OKError(n int) (int, error) {
	if n <= 0 {
		return 0, errors.New("n must be positive")
	}
	return n * 2, nil
}

// OKInvariant documents a programmer-error invariant with the alias form.
func OKInvariant(idx, length int) {
	if idx < 0 || idx >= length {
		panic("index out of range: caller broke the contract") //lemonvet:allow panic fixture demonstrates alias suppression
	}
}

func mayFail() (int, error) { return 1, nil }
