// Package memory simulates the storage elements of the paper's
// architectures: read-destructive cells holding key components, one-time
// programmable (OTP/anti-fuse style) stores, and the parallel-in/serial-out
// shift registers at the leaves of the one-time-pad decision trees (§6.2).
//
// The paper is explicit that read-destructive memory *alone* is
// insufficient — "the read-destruction could be compromised if reading with
// a lower voltage" and a stolen device could be cloned. The simulator
// mirrors that: ReadDestructive supports a ColdRead that bypasses
// destruction (the attack the NEMS network exists to stop), so the
// architecture-level tests can demonstrate that the security comes from the
// NEMS structures in front of the memory, not the memory itself.
package memory

import (
	"errors"
	"fmt"
)

// ShiftRegisterNsPerBit is the read latency of a parallel-in/serial-out
// shift register per bit (§6.5.2 cites ~20 ns, like an MM74HC165).
const ShiftRegisterNsPerBit = 20.0

// RegisterCellAreaNm2 is the area of one register cell in nm² (§6.5.1
// assumes a 50 nm² cell).
const RegisterCellAreaNm2 = 50.0

// ErrDestroyed is returned when reading a cell whose contents have been
// destroyed.
var ErrDestroyed = errors.New("memory: contents destroyed")

// ErrAlreadyProgrammed is returned when programming a one-time store twice.
var ErrAlreadyProgrammed = errors.New("memory: already programmed")

// ErrNotProgrammed is returned when reading an unprogrammed store.
var ErrNotProgrammed = errors.New("memory: not programmed")

// ReadDestructive is a memory cell that erases its contents on read.
type ReadDestructive struct {
	data      []byte
	destroyed bool
}

// NewReadDestructive returns a cell holding a private copy of data.
func NewReadDestructive(data []byte) *ReadDestructive {
	d := make([]byte, len(data))
	copy(d, data)
	return &ReadDestructive{data: d}
}

// Read returns the contents and destroys them. A second Read fails.
func (m *ReadDestructive) Read() ([]byte, error) {
	if m.destroyed {
		return nil, ErrDestroyed
	}
	out := m.data
	m.data = nil
	m.destroyed = true
	return out, nil
}

// Destroyed reports whether the cell has been consumed.
func (m *ReadDestructive) Destroyed() bool { return m.destroyed }

// ColdRead models the low-voltage attack of §6.2.2: it returns the contents
// WITHOUT destroying them, if they still exist. The security architectures
// must remain safe even against an adversary with this capability (that is
// what the NEMS network in front of the memory provides).
func (m *ReadDestructive) ColdRead() ([]byte, error) {
	if m.destroyed {
		return nil, ErrDestroyed
	}
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out, nil
}

// Clone models the evil-maid duplication attack: a bitwise copy of the
// cell, again only possible while the contents exist.
func (m *ReadDestructive) Clone() (*ReadDestructive, error) {
	if m.destroyed {
		return nil, ErrDestroyed
	}
	return NewReadDestructive(m.data), nil
}

// --- One-time programmable store ------------------------------------------------

// OneTimeProgrammable is an anti-fuse style store: programmed exactly once
// (at fabrication, per the paper's threat model §3), then read-only.
type OneTimeProgrammable struct {
	data       []byte
	programmed bool
}

// Program burns the data in. It fails on a second call.
func (m *OneTimeProgrammable) Program(data []byte) error {
	if m.programmed {
		return ErrAlreadyProgrammed
	}
	m.data = make([]byte, len(data))
	copy(m.data, data)
	m.programmed = true
	return nil
}

// Read returns the programmed contents.
func (m *OneTimeProgrammable) Read() ([]byte, error) {
	if !m.programmed {
		return nil, ErrNotProgrammed
	}
	out := make([]byte, len(m.data))
	copy(out, m.data)
	return out, nil
}

// Programmed reports whether the store has been burned.
func (m *OneTimeProgrammable) Programmed() bool { return m.programmed }

// --- Shift register ---------------------------------------------------------------

// ShiftRegister is a parallel-in/serial-out register holding one random key
// at a decision-tree leaf. Reading shifts the bits out serially (costing
// ShiftRegisterNsPerBit per bit) and destroys the contents.
type ShiftRegister struct {
	bits      []byte // packed, MSB first within each byte
	nbits     int
	destroyed bool
}

// NewShiftRegister loads nbits bits from data (packed, MSB-first).
func NewShiftRegister(data []byte, nbits int) (*ShiftRegister, error) {
	if nbits < 0 || nbits > len(data)*8 {
		return nil, fmt.Errorf("memory: nbits %d out of range for %d data bytes", nbits, len(data))
	}
	d := make([]byte, len(data))
	copy(d, data)
	return &ShiftRegister{bits: d, nbits: nbits}, nil
}

// Bits returns the register width in bits.
func (s *ShiftRegister) Bits() int { return s.nbits }

// ReadOut shifts out the whole register, destroying the contents. It
// returns the packed bits and the read latency in nanoseconds.
func (s *ShiftRegister) ReadOut() (data []byte, latencyNs float64, err error) {
	if s.destroyed {
		return nil, 0, ErrDestroyed
	}
	out := s.bits
	s.bits = nil
	s.destroyed = true
	return out, float64(s.nbits) * ShiftRegisterNsPerBit, nil
}

// Destroyed reports whether the register has been read out.
func (s *ShiftRegister) Destroyed() bool { return s.destroyed }

// AreaNm2 returns the silicon area of the register in nm².
func (s *ShiftRegister) AreaNm2() float64 {
	return float64(s.nbits) * RegisterCellAreaNm2
}

// --- Field programming (the paper's §3 future work) -----------------------------

// FieldProgrammable is a store that an *end user* can program exactly
// once in the field — the capability the paper defers to future work
// ("techniques to allow secure, one-time programming of our devices by
// end users"). The programming path runs through its own one-actuation
// wearout gate: after one Program the gate is physically destroyed, so
// not even the manufacturer can reprogram the store. Reads are unlimited
// (guard them with a NEMS network as usual).
type FieldProgrammable struct {
	store      OneTimeProgrammable
	gateBudget int // remaining programming actuations (1 for fresh parts)
	gateBurned bool
}

// NewFieldProgrammable returns a fresh, unprogrammed part.
func NewFieldProgrammable() *FieldProgrammable {
	return &FieldProgrammable{gateBudget: 1}
}

// Program burns data into the store, consuming the programming gate.
func (m *FieldProgrammable) Program(data []byte) error {
	if m.gateBurned || m.gateBudget < 1 {
		return ErrAlreadyProgrammed
	}
	m.gateBudget--
	m.gateBurned = true
	return m.store.Program(data)
}

// Read returns the programmed contents (repeatable).
func (m *FieldProgrammable) Read() ([]byte, error) { return m.store.Read() }

// Programmed reports whether the part has been used.
func (m *FieldProgrammable) Programmed() bool { return m.store.Programmed() }
