package memory

import (
	"bytes"
	"errors"
	"testing"
)

func TestReadDestructiveSingleRead(t *testing.T) {
	m := NewReadDestructive([]byte("key material"))
	got, err := m.Read()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("key material")) {
		t.Errorf("Read = %q", got)
	}
	if !m.Destroyed() {
		t.Error("should be destroyed after read")
	}
	if _, err := m.Read(); !errors.Is(err, ErrDestroyed) {
		t.Errorf("second read should fail with ErrDestroyed, got %v", err)
	}
}

func TestReadDestructiveIsolation(t *testing.T) {
	src := []byte{1, 2, 3}
	m := NewReadDestructive(src)
	src[0] = 99 // caller mutates their buffer
	got, _ := m.Read()
	if got[0] != 1 {
		t.Error("cell aliased caller's buffer")
	}
}

func TestColdReadBypassesDestruction(t *testing.T) {
	// The §6.2.2 low-voltage attack: reading without destroying. This must
	// work at the memory level (it's the NEMS network's job to prevent it
	// at the architecture level).
	m := NewReadDestructive([]byte("secret"))
	a, err := m.ColdRead()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.ColdRead()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) || !bytes.Equal(a, []byte("secret")) {
		t.Error("cold reads should repeatedly return contents")
	}
	if m.Destroyed() {
		t.Error("cold read must not destroy")
	}
	// and a normal read still works afterwards
	if _, err := m.Read(); err != nil {
		t.Error("normal read after cold read should work")
	}
	if _, err := m.ColdRead(); !errors.Is(err, ErrDestroyed) {
		t.Error("cold read after destruction should fail")
	}
}

func TestCloneAttack(t *testing.T) {
	m := NewReadDestructive([]byte("otp key"))
	c, err := m.Clone()
	if err != nil {
		t.Fatal(err)
	}
	// reading the original doesn't affect the clone
	if _, err := m.Read(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read()
	if err != nil || !bytes.Equal(got, []byte("otp key")) {
		t.Error("clone should retain contents independently")
	}
	if _, err := m.Clone(); !errors.Is(err, ErrDestroyed) {
		t.Error("cloning a destroyed cell should fail")
	}
}

func TestOneTimeProgrammable(t *testing.T) {
	var m OneTimeProgrammable
	if _, err := m.Read(); !errors.Is(err, ErrNotProgrammed) {
		t.Error("reading unprogrammed store should fail")
	}
	if m.Programmed() {
		t.Error("fresh store should be unprogrammed")
	}
	if err := m.Program([]byte("burn")); err != nil {
		t.Fatal(err)
	}
	if err := m.Program([]byte("again")); !errors.Is(err, ErrAlreadyProgrammed) {
		t.Error("second Program should fail")
	}
	got, err := m.Read()
	if err != nil || !bytes.Equal(got, []byte("burn")) {
		t.Errorf("Read = %q, %v", got, err)
	}
	// reads are repeatable (not destructive)
	got2, _ := m.Read()
	if !bytes.Equal(got2, []byte("burn")) {
		t.Error("OTP store reads should be repeatable")
	}
	// returned buffer is a copy
	got[0] = 'X'
	got3, _ := m.Read()
	if got3[0] != 'b' {
		t.Error("Read returned aliased internal buffer")
	}
}

func TestShiftRegisterReadOut(t *testing.T) {
	data := []byte{0xDE, 0xAD}
	sr, err := NewShiftRegister(data, 16)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Bits() != 16 {
		t.Errorf("Bits = %d", sr.Bits())
	}
	out, lat, err := sr.ReadOut()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Errorf("ReadOut = %x", out)
	}
	if lat != 16*ShiftRegisterNsPerBit {
		t.Errorf("latency = %g ns, want %g", lat, 16*ShiftRegisterNsPerBit)
	}
	if !sr.Destroyed() {
		t.Error("register should be destroyed after read out")
	}
	if _, _, err := sr.ReadOut(); !errors.Is(err, ErrDestroyed) {
		t.Error("second ReadOut should fail")
	}
}

func TestShiftRegisterValidation(t *testing.T) {
	if _, err := NewShiftRegister([]byte{1}, 9); err == nil {
		t.Error("nbits > 8*len should error")
	}
	if _, err := NewShiftRegister([]byte{1}, -1); err == nil {
		t.Error("negative nbits should error")
	}
	sr, err := NewShiftRegister(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, lat, err := sr.ReadOut(); err != nil || lat != 0 {
		t.Error("empty register should read out instantly")
	}
}

func TestShiftRegisterArea(t *testing.T) {
	sr, _ := NewShiftRegister(make([]byte, 500), 4000)
	if got := sr.AreaNm2(); got != 4000*RegisterCellAreaNm2 {
		t.Errorf("area = %g", got)
	}
}

func TestShiftRegisterPaperLatency(t *testing.T) {
	// §6.5.2: reading a 1000H-bit string at H=4 takes 20ns*4000 = 0.08 ms.
	sr, _ := NewShiftRegister(make([]byte, 500), 4000)
	_, lat, err := sr.ReadOut()
	if err != nil {
		t.Fatal(err)
	}
	if ms := lat / 1e6; ms != 0.08 {
		t.Errorf("4000-bit readout = %g ms, paper says 0.08 ms", ms)
	}
}

func TestFieldProgrammableSingleProgram(t *testing.T) {
	m := NewFieldProgrammable()
	if m.Programmed() {
		t.Error("fresh part should be unprogrammed")
	}
	if _, err := m.Read(); !errors.Is(err, ErrNotProgrammed) {
		t.Error("reading unprogrammed part should fail")
	}
	if err := m.Program([]byte("user key")); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read()
	if err != nil || !bytes.Equal(got, []byte("user key")) {
		t.Errorf("Read = %q, %v", got, err)
	}
	// the programming gate is physically gone
	if err := m.Program([]byte("evil overwrite")); !errors.Is(err, ErrAlreadyProgrammed) {
		t.Error("second Program must fail — gate destroyed")
	}
	// contents unchanged
	got, _ = m.Read()
	if !bytes.Equal(got, []byte("user key")) {
		t.Error("failed reprogram must not alter contents")
	}
}
