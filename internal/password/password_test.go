package password

import (
	"math"
	"testing"

	"lemonade/internal/rng"
)

func TestUrEtAlCalibration(t *testing.T) {
	c := UrEtAl()
	// the paper's quoted operating points
	if got := c.SuccessProb(100_000); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("P(crack|100k) = %g, want 0.01", got)
	}
	if got := c.SuccessProb(200_000); math.Abs(got-0.02) > 1e-9 {
		t.Errorf("P(crack|200k) = %g, want 0.02", got)
	}
	if got := c.SuccessProb(91_250); got >= 0.01 {
		t.Errorf("P(crack|91250) = %g, must be below 1%%", got)
	}
}

func TestSuccessProbMonotone(t *testing.T) {
	c := UrEtAl()
	prev := -1.0
	for g := 1.0; g < 1e15; g *= 3 {
		p := c.SuccessProb(g)
		if p < prev {
			t.Fatalf("curve not monotone at %g guesses", g)
		}
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %g", p)
		}
		prev = p
	}
	if c.SuccessProb(0.5) != 0 {
		t.Error("below one guess nothing cracks")
	}
}

func TestGuessesForProbInverse(t *testing.T) {
	c := UrEtAl()
	for _, p := range []float64{0.001, 0.01, 0.02, 0.1, 0.5} {
		g := c.GuessesForProb(p)
		back := c.SuccessProb(g)
		if math.Abs(back-p) > 1e-6 {
			t.Errorf("inverse broken at p=%g: guesses=%g back=%g", p, g, back)
		}
	}
	if !math.IsInf(c.GuessesForProb(1.1), 1) {
		t.Error("impossible fraction should need infinite guesses")
	}
	if c.GuessesForProb(0) != 0 {
		t.Error("zero fraction needs zero guesses")
	}
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve([]Anchor{{1, 0.1}}); err == nil {
		t.Error("single anchor should fail")
	}
	if _, err := NewCurve([]Anchor{{1, 0.1}, {10, 0.05}}); err == nil {
		t.Error("non-increasing prob should fail")
	}
	if _, err := NewCurve([]Anchor{{1, 0.1}, {1, 0.2}}); err == nil {
		t.Error("duplicate guesses should fail")
	}
	if _, err := NewCurve([]Anchor{{0.5, 0.1}, {10, 0.2}}); err == nil {
		t.Error("sub-one guesses should fail")
	}
	if _, err := NewCurve([]Anchor{{1, 0.1}, {10, 1.5}}); err == nil {
		t.Error("prob > 1 should fail")
	}
}

func TestSampleRankDistribution(t *testing.T) {
	// Fraction of sampled ranks below G guesses must match SuccessProb(G).
	c := UrEtAl()
	r := rng.New(17)
	const n = 300000
	within100k, within1e8 := 0, 0
	for i := 0; i < n; i++ {
		rank := c.SampleRank(r)
		if rank <= 100_000 {
			within100k++
		}
		if rank <= 1e8 {
			within1e8++
		}
	}
	f100k := float64(within100k) / n
	if math.Abs(f100k-0.01) > 0.002 {
		t.Errorf("P(rank<=100k) = %g, want ~0.01", f100k)
	}
	f1e8 := float64(within1e8) / n
	if math.Abs(f1e8-0.45) > 0.01 {
		t.Errorf("P(rank<=1e8) = %g, want ~0.45", f1e8)
	}
}

func TestRejectPopularShiftsCurve(t *testing.T) {
	c := UrEtAl()
	// Rejecting the most popular 1% means the attacker's first 100k guesses
	// (the old head) are all refused choices; cracking the *remaining*
	// population needs far more guesses.
	r1, err := c.RejectPopular(0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Shift identity: the attacker skips the banned head, so
	// P_rejected(G) = (P(G + skip) - frac) / (1 - frac).
	skip := c.GuessesForProb(0.01)
	for _, g := range []float64{150_000, 500_000, 5e6, 5e8} {
		want := (c.SuccessProb(g+skip) - 0.01) / 0.99
		got := r1.SuccessProb(g)
		if math.Abs(got-want) > 0.01*want+1e-9 {
			t.Errorf("shift identity broken at G=%g: got %g want %g", g, got, want)
		}
	}
	// Fig 4d's operating point: with the popular 1% rejected, a hardware
	// upper bound of 100,000 attempts keeps the residual crack probability
	// at ~1% — the same risk level the baseline had at its tighter bound.
	if got := r1.SuccessProb(100_000); got > 0.012 {
		t.Errorf("P_rejected(100k) = %g, should stay ~1%%", got)
	}
	if _, err := c.RejectPopular(2.0); err == nil {
		t.Error("rejecting beyond ceiling should fail")
	}
	same, err := c.RejectPopular(0)
	if err != nil || same != c {
		t.Error("rejecting nothing should return the curve unchanged")
	}
}

func TestPasswordStringDeterministicAndDistinct(t *testing.T) {
	if PasswordString(5) != PasswordString(5) {
		t.Error("PasswordString must be deterministic")
	}
	seen := map[string]bool{}
	for i := uint64(0); i < 10000; i++ {
		s := PasswordString(i)
		if len(s) != 8 {
			t.Fatalf("password %q not 8 chars", s)
		}
		if seen[s] {
			t.Fatalf("collision at rank %d: %q", i, s)
		}
		seen[s] = true
	}
}
