// Package password models real-world password guessability after Ur et
// al. (USENIX Security 2015), the study the paper's threat analysis is
// built on (§4.1): professional attackers guess passwords in order of
// empirical popularity, and the probability of cracking a password grows
// with the attacker's guess budget in a heavy-tailed way.
//
// The default curve is calibrated to the operating points the paper
// quotes for 8-character all-class passwords:
//
//	≤ 91,250 guesses → only a few very popular passwords fall (<1%)
//	100,000 guesses  → 1% of passwords fall
//	200,000 guesses  → 2% of passwords fall
//
// The curve doubles as the distribution of a user's password *rank* under
// the attacker's ordering, which lets the attack simulations race a
// popularity-ordered cracker against hardware wearout.
package password

import (
	"fmt"
	"math"
	"sort"

	"lemonade/internal/rng"
)

// Anchor is one calibration point: after Guesses guesses, a fraction Prob
// of real-world passwords has been cracked.
type Anchor struct {
	Guesses float64
	Prob    float64
}

// GuessCurve is a monotone guesses→cracked-fraction curve, interpolated
// log-linearly (linear in log-guesses) between anchors. A curve may carry
// a rejection transform (skip, frac) representing software that bans the
// most popular fraction frac of passwords: the attacker skips those skip
// guesses and the remaining population is renormalized.
type GuessCurve struct {
	anchors []Anchor
	skip    float64 // guesses consumed by the banned head
	frac    float64 // rejected fraction of the original population
}

// NewCurve builds a curve from anchors. Anchors are sorted; both
// coordinates must be strictly increasing and probabilities within (0, 1].
func NewCurve(anchors []Anchor) (*GuessCurve, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("password: need at least 2 anchors, got %d", len(anchors))
	}
	as := append([]Anchor(nil), anchors...)
	sort.Slice(as, func(i, j int) bool { return as[i].Guesses < as[j].Guesses })
	for i, a := range as {
		if a.Guesses < 1 || a.Prob <= 0 || a.Prob > 1 {
			return nil, fmt.Errorf("password: invalid anchor %+v", a)
		}
		if i > 0 && (a.Guesses <= as[i-1].Guesses || a.Prob <= as[i-1].Prob) {
			return nil, fmt.Errorf("password: anchors must be strictly increasing, got %+v after %+v", a, as[i-1])
		}
	}
	return &GuessCurve{anchors: as}, nil
}

// UrEtAl returns the default curve calibrated to the paper's quoted
// operating points for 8-character all-class passwords.
func UrEtAl() *GuessCurve {
	c, err := NewCurve([]Anchor{
		{Guesses: 1, Prob: 5e-5},        // a handful of extremely popular choices
		{Guesses: 1_000, Prob: 1.5e-3},  // early dictionary head
		{Guesses: 10_000, Prob: 4e-3},   //
		{Guesses: 91_250, Prob: 9e-3},   // the paper's LAB: <1% cracked
		{Guesses: 100_000, Prob: 1e-2},  // paper: 1%
		{Guesses: 200_000, Prob: 2e-2},  // paper: 2%
		{Guesses: 1e6, Prob: 6e-2},      //
		{Guesses: 1e8, Prob: 0.45},      // large offline budgets
		{Guesses: 1e11, Prob: 0.90},     //
		{Guesses: 1e14, Prob: 0.999999}, // effectively exhaustive
	})
	if err != nil {
		panic(err) //lemonvet:allow panic static anchor table; NewCurve on it cannot fail
	}
	return c
}

// baseProb interpolates the raw anchor curve.
func (c *GuessCurve) baseProb(guesses float64) float64 {
	as := c.anchors
	if guesses < 1 {
		return 0
	}
	if guesses <= as[0].Guesses {
		// extrapolate the first segment down to a single guess
		return as[0].Prob * guesses / as[0].Guesses
	}
	last := as[len(as)-1]
	if guesses >= last.Guesses {
		return last.Prob
	}
	i := sort.Search(len(as), func(i int) bool { return as[i].Guesses >= guesses }) - 1
	a, b := as[i], as[i+1]
	frac := (math.Log(guesses) - math.Log(a.Guesses)) / (math.Log(b.Guesses) - math.Log(a.Guesses))
	return a.Prob + frac*(b.Prob-a.Prob)
}

// baseInverse inverts the raw anchor curve.
func (c *GuessCurve) baseInverse(p float64) float64 {
	as := c.anchors
	if p <= 0 {
		return 0
	}
	last := as[len(as)-1]
	if p > last.Prob {
		return math.Inf(1)
	}
	if p <= as[0].Prob {
		return as[0].Guesses * p / as[0].Prob
	}
	i := sort.Search(len(as), func(i int) bool { return as[i].Prob >= p }) - 1
	a, b := as[i], as[i+1]
	frac := (p - a.Prob) / (b.Prob - a.Prob)
	return math.Exp(math.Log(a.Guesses) + frac*(math.Log(b.Guesses)-math.Log(a.Guesses)))
}

// SuccessProb returns the fraction of passwords cracked within the given
// number of popularity-ordered guesses, accounting for any rejection
// transform: P'(G) = max(0, P(G + skip) − frac) / (1 − frac).
func (c *GuessCurve) SuccessProb(guesses float64) float64 {
	if guesses < 1 {
		return 0
	}
	p := c.baseProb(guesses + c.skip)
	if c.frac > 0 {
		p = math.Max(0, p-c.frac) / (1 - c.frac)
	}
	return p
}

// GuessesForProb returns the guess budget needed to crack a fraction p of
// passwords — the inverse of SuccessProb. It returns +Inf for p above the
// curve's ceiling.
func (c *GuessCurve) GuessesForProb(p float64) float64 {
	if p <= 0 {
		return 0
	}
	base := p
	if c.frac > 0 {
		base = p*(1-c.frac) + c.frac
	}
	g := c.baseInverse(base)
	if math.IsInf(g, 1) {
		return g
	}
	g -= c.skip
	if g < 0 {
		g = 0
	}
	return g
}

// SampleRank draws the rank of a user's password under the attacker's
// popularity ordering: the attacker cracks the password on guess number
// SampleRank. Ranks beyond the curve's resolution (the user chose a truly
// strong password) are returned as the curve's maximum guess count.
func (c *GuessCurve) SampleRank(r *rng.RNG) float64 {
	u := r.Float64Open()
	g := c.GuessesForProb(u)
	if math.IsInf(g, 1) {
		return c.anchors[len(c.anchors)-1].Guesses
	}
	if g < 1 {
		return 1
	}
	return math.Ceil(g)
}

// RejectPopular returns the curve seen by an attacker when software
// refuses the most popular fraction `frac` of passwords (Fig 4d: "the
// software helps reject the most popular 1% and 2% passwords"): the head
// of the distribution is removed and the remainder renormalized.
func (c *GuessCurve) RejectPopular(frac float64) (*GuessCurve, error) {
	if frac <= 0 {
		return c, nil
	}
	last := c.anchors[len(c.anchors)-1]
	if frac >= last.Prob {
		return nil, fmt.Errorf("password: cannot reject fraction %g beyond curve ceiling %g", frac, last.Prob)
	}
	if c.frac > 0 {
		return nil, fmt.Errorf("password: curve already carries a rejection transform")
	}
	return &GuessCurve{
		anchors: c.anchors,
		skip:    c.GuessesForProb(frac),
		frac:    frac,
	}, nil
}

// MinGuessesToCrackProb is the quantity Fig 4d uses for upper-bound
// targets: the number of attempts within which at most fraction p of
// passwords fall. Raising the allowed p (because software rejected the
// popular head) raises the safe hardware upper bound.
func (c *GuessCurve) MinGuessesToCrackProb(p float64) float64 {
	return c.GuessesForProb(p)
}

// PasswordString returns a deterministic password string for a rank, so
// end-to-end demos can run a real guess loop. The mapping scrambles the
// rank to avoid trivially sequential strings; attacker and user use the
// same mapping (the attacker knows the dictionary ordering).
func PasswordString(rank uint64) string {
	x := rank*0x9E3779B97F4A7C15 + 0x1234567
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	buf := make([]byte, 8)
	for i := range buf {
		buf[i] = alphabet[x%uint64(len(alphabet))]
		x /= 7
		x ^= x >> 13
		x *= 0xBF58476D1CE4E5B9
	}
	return string(buf)
}
