package cluster_test

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"lemonade/api"
	"lemonade/internal/cluster"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/rng"
)

// TestClusterErrorTaxonomy is the cluster-level mirror of
// internal/server's taxonomy test: one failure mode per row, each
// staged end-to-end against a live 3-node cluster, asserting the
// status code, the taxonomy label in the message, and retryability.
// The rows run in order because the last one kills a node.
func TestClusterErrorTaxonomy(t *testing.T) {
	h := startCluster(t, t.TempDir(), 3, 42, nil)
	cc := h.client(t)

	provision := func(t *testing.T) *api.ClusterProvisionResult {
		t.Helper()
		prov, err := cc.Provision(context.Background(), api.ClusterProvision{
			Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: 7, ShareK: 3, ShareN: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return prov
	}

	rows := []struct {
		name      string
		stage     func(t *testing.T, prov *api.ClusterProvisionResult)
		status    int
		label     string
		retryable bool
	}{
		{
			// An owner answers but cannot serve its share (here: the share
			// record is simply gone — a 404, standing in for degraded
			// stores, shedding, replays). Not permanent: retry.
			name: "share refused -> 503 quorum unreachable",
			stage: func(t *testing.T, prov *api.ClusterProvisionResult) {
				n := h.nodes[prov.Owners[1]]
				if !n.reg.Remove(cluster.ShareID(prov.ClusterID, 1)) {
					t.Fatal("share to remove not found")
				}
			},
			status:    http.StatusServiceUnavailable,
			label:     "quorum unreachable",
			retryable: true,
		},
		{
			// An owner conducts but returns a share that cannot combine
			// (wrong width): permanent per-share damage, the client must
			// say "decode failed", not retry forever.
			name: "garbled share -> 422 decode failed",
			stage: func(t *testing.T, prov *api.ClusterProvisionResult) {
				n := h.nodes[prov.Owners[2]]
				id := cluster.ShareID(prov.ClusterID, 2)
				if !n.reg.Remove(id) {
					t.Fatal("share to garble not found")
				}
				d, err := dse.Explore(shareSpec())
				if err != nil {
					t.Fatal(err)
				}
				garbled := cluster.EncodeShare(3, []byte{0xde, 0xad}) // 2 bytes, secret is 16
				arch, err := core.Build(d, garbled, rng.New(99))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := n.reg.ProvisionShare(id, arch, 99, garbled); err != nil {
					t.Fatal(err)
				}
			},
			status: http.StatusUnprocessableEntity,
			label:  "decode failed",
		},
		{
			// Every share's hardware budget is spent: the cluster-level
			// lockout. Permanent — 410, never retryable.
			name: "all shares spent -> 410 budget exhausted",
			stage: func(t *testing.T, prov *api.ClusterProvisionResult) {
				for i := 0; i < shareBudget(t)*4; i++ {
					if _, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{}); api.IsExhausted(err) {
						return
					}
				}
				t.Fatal("never reached lockout")
			},
			status: http.StatusGone,
			label:  "budget exhausted",
		},
		{
			// A node is unreachable at the transport level: classically
			// transient, and distinct from "reachable but refusing".
			name: "node unreachable -> 503 owner down",
			stage: func(t *testing.T, prov *api.ClusterProvisionResult) {
				h.nodes[prov.Owners[0]].kill()
			},
			status:    http.StatusServiceUnavailable,
			label:     "owner down",
			retryable: true,
		},
	}

	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			prov := provision(t)
			row.stage(t, prov)
			_, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
			if err == nil {
				t.Fatal("staged failure still revealed the secret")
			}
			var ae *api.Error
			if !errors.As(err, &ae) {
				t.Fatalf("error %v is not an *api.Error", err)
			}
			if ae.StatusCode != row.status {
				t.Fatalf("status = %d, want %d (%v)", ae.StatusCode, row.status, err)
			}
			if !strings.Contains(ae.Message, row.label) {
				t.Fatalf("message %q missing taxonomy label %q", ae.Message, row.label)
			}
			if ae.Retry != row.retryable {
				t.Fatalf("retryable = %v, want %v (%v)", ae.Retry, row.retryable, err)
			}
		})
	}
}
