// Package cluster turns a fleet of lemonaded processes into one logical
// lemonade: architecture IDs are placed onto nodes by a deterministic
// consistent-hash ring, and an architecture's n Shamir shares are
// provisioned across n distinct nodes so that any k of them can answer
// an access.
//
// The placement function is the load-bearing piece: every node and every
// client computes it independently, so it must be a pure function of
// (seed, node set, key) with no process-local state — two processes that
// agree on the ring configuration agree, bit for bit, on where every
// share lives. That is what lets the read path run with no coordinator:
// a client routes share i of arch X straight to owner i, and the owner
// needs to consult nobody to know the share is (or is not) its own.
//
// The budget story mirrors the paper's, lifted one level: each node's
// WAL logs-ahead only the wear on the shares it physically owns, so the
// global reveal budget is enforced by k independent per-node hardware
// budgets rather than by any shared counter. See DESIGN.md §14.
package cluster

import (
	"fmt"
	"sort"
)

// Ring is a rendezvous (highest-random-weight) placement ring over a
// fixed set of named nodes. It is immutable after construction and safe
// for concurrent use.
//
// Rendezvous hashing is chosen over a ketama-style virtual-node circle
// because its minimal-disruption property is exact, not statistical:
// removing one node reassigns exactly the keys that node owned, and the
// surviving owners of every key keep their relative order (pinned by
// TestRingRemovalMovesOnlyOwnedKeys). With the small node counts a
// lemonade cluster runs (3–16), the O(nodes · log nodes) per-placement
// cost is noise.
type Ring struct {
	seed   uint64
	nodes  []string // sorted, unique
	hashes []uint64 // hashes[i] = node hash of nodes[i]
}

// NewRing builds a ring over the given node names with the given seed.
// The input order is irrelevant: names are sorted, so every process that
// agrees on the *set* of nodes and the seed computes identical
// placements. Empty and duplicate names are rejected.
func NewRing(nodes []string, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, fmt.Errorf("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n)
		}
	}
	r := &Ring{seed: seed, nodes: sorted, hashes: make([]uint64, len(sorted))}
	for i, n := range sorted {
		r.hashes[i] = mix64(fnv64(n) ^ 0x9e3779b97f4a7c15)
	}
	return r, nil
}

// Seed returns the placement seed the ring was built with.
func (r *Ring) Seed() uint64 { return r.seed }

// Size returns the number of nodes on the ring.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns the node names in their canonical (sorted) order.
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Owners returns the n distinct nodes responsible for key, best first:
// Owners(key, n)[i] is the owner of share i. Placement is the rendezvous
// rule — every node scores the key, the top n win — so it is a pure
// function of (seed, node set, key) and bit-identical across processes.
// n larger than the ring is an error: shares must land on distinct
// nodes, or losing one node could cost more than one share.
func (r *Ring) Owners(key string, n int) ([]string, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least one owner, got %d", n)
	}
	if n > len(r.nodes) {
		return nil, fmt.Errorf("cluster: %d shares cannot land on distinct nodes of a %d-node ring", n, len(r.nodes))
	}
	kh := mix64(fnv64(key) ^ r.seed)
	type scored struct {
		score uint64
		idx   int
	}
	all := make([]scored, len(r.nodes))
	for i := range r.nodes {
		all[i] = scored{score: mix64(r.hashes[i] ^ kh), idx: i}
	}
	// Ties broken by canonical node order, so the placement stays a total
	// order even if two scores collide.
	sort.Slice(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].idx < all[j].idx
	})
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = r.nodes[all[i].idx]
	}
	return out, nil
}

// Owner returns the primary owner of key (Owners(key, 1)[0]).
func (r *Ring) Owner(key string) string {
	owners, err := r.Owners(key, 1)
	if err != nil {
		// Unreachable: NewRing guarantees at least one node.
		return ""
	}
	return owners[0]
}

// fnv64 is FNV-1a over s — the same stable string hash the registry's
// shard picker uses, with no process-local state.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap, well-studied bijection
// that spreads the structured bit patterns of FNV hashes and small
// seeds across the whole word.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
