package cluster_test

import (
	"fmt"
	"slices"
	"testing"

	"lemonade/internal/cluster"
)

func fiveNodes() []string { return []string{"n0", "n1", "n2", "n3", "n4"} }

// TestRingDeterministicAcrossConstruction pins the property every other
// cluster invariant rests on: placement is a pure function of (seed,
// node set, key). Input order must not matter, and a different seed
// must produce a different placement.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	a, err := cluster.NewRing(fiveNodes(), 42)
	if err != nil {
		t.Fatal(err)
	}
	shuffled := []string{"n3", "n0", "n4", "n2", "n1"}
	b, err := cluster.NewRing(shuffled, 42)
	if err != nil {
		t.Fatal(err)
	}
	other, err := cluster.NewRing(fiveNodes(), 43)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("arch-%06d", i+1)
		oa, err := a.Owners(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.Owners(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(oa, ob) {
			t.Fatalf("key %s: node order changed placement: %v vs %v", key, oa, ob)
		}
		oo, err := other.Owners(key, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(oa, oo) {
			differs = true
		}
		// Owners must be distinct nodes — one node lost may cost at most
		// one share.
		seen := map[string]bool{}
		for _, o := range oa {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner in %v", key, oa)
			}
			seen[o] = true
		}
	}
	if !differs {
		t.Fatal("changing the seed never changed any placement")
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := cluster.NewRing(nil, 1); err == nil {
		t.Fatal("empty ring accepted")
	}
	if _, err := cluster.NewRing([]string{"a", "a"}, 1); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := cluster.NewRing([]string{"a", ""}, 1); err == nil {
		t.Fatal("empty node name accepted")
	}
	r, err := cluster.NewRing([]string{"a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Owners("k", 3); err == nil {
		t.Fatal("3 owners on a 2-node ring accepted")
	}
	if _, err := r.Owners("k", 0); err == nil {
		t.Fatal("0 owners accepted")
	}
	if got := r.Owner("k"); got != "a" && got != "b" {
		t.Fatalf("Owner = %q, not a ring member", got)
	}
}

// TestRingRemovalMovesOnlyOwnedKeys is the exact form of rendezvous
// hashing's minimal-disruption property: dropping one node from the
// ring changes a key's owner list ONLY by deleting that node from it
// (surviving owners keep their slots and relative order, one new node
// fills the freed tail slot). Keys the removed node did not own are
// placed bit-identically. Quantitatively, the primary owner moves for
// exactly the ~1/N of keys the removed node fronted.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	const nKeys, owners = 1000, 3
	nodes := fiveNodes()
	full, err := cluster.NewRing(nodes, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, removed := range nodes {
		rest := make([]string, 0, len(nodes)-1)
		for _, n := range nodes {
			if n != removed {
				rest = append(rest, n)
			}
		}
		small, err := cluster.NewRing(rest, 42)
		if err != nil {
			t.Fatal(err)
		}
		primaryMoved := 0
		for i := 1; i <= nKeys; i++ {
			key := fmt.Sprintf("arch-%06d", i)
			before, err := full.Owners(key, owners)
			if err != nil {
				t.Fatal(err)
			}
			after, err := small.Owners(key, owners)
			if err != nil {
				t.Fatal(err)
			}
			if before[0] != after[0] {
				primaryMoved++
			}
			if !slices.Contains(before, removed) {
				if !slices.Equal(before, after) {
					t.Fatalf("%s (removed %s): unowned key moved: %v -> %v", key, removed, before, after)
				}
				continue
			}
			if before[0] != removed && before[0] != after[0] {
				t.Fatalf("%s (removed %s): primary moved though %s was not primary: %v -> %v",
					key, removed, removed, before, after)
			}
			survivors := make([]string, 0, owners-1)
			for _, n := range before {
				if n != removed {
					survivors = append(survivors, n)
				}
			}
			if !slices.Equal(after[:owners-1], survivors) {
				t.Fatalf("%s (removed %s): surviving owners reordered: %v -> %v", key, removed, before, after)
			}
			if slices.Contains(before, after[owners-1]) {
				t.Fatalf("%s (removed %s): freed slot refilled from existing owners: %v -> %v",
					key, removed, before, after)
			}
		}
		// The primary owner moves iff the removed node was primary: ~1/N of
		// keys. A generous band still catches a broken hash collapsing onto
		// one node (100%) or a ketama-style cascade (~2/N+).
		frac := float64(primaryMoved) / nKeys
		if frac < 0.5/float64(len(nodes)) || frac > 2.0/float64(len(nodes)) {
			t.Fatalf("removed %s: primary owner moved for %.1f%% of keys, want ~%.1f%%",
				removed, 100*frac, 100.0/float64(len(nodes)))
		}
	}
}
