// The in-process cluster harness: N WAL-backed lemonaded nodes behind
// httptest listeners, one ring, one cluster-aware client — everything
// seeded, nothing reading the wall clock, so every run of a given
// schedule is bit-identical. This file is what makes the multi-node
// architecture safe to grow: the tests here pin the global-budget
// invariant (reveals ≤ B under any interleaving, 503s — never minted
// budget — when nodes die) and bit-identical double recovery of every
// node's WAL, with and without injected disk faults.
package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"lemonade/api"
	"lemonade/internal/cluster"
	"lemonade/internal/core"
	"lemonade/internal/dse"
	"lemonade/internal/fault"
	"lemonade/internal/registry"
	"lemonade/internal/server"
	"lemonade/internal/wal"
)

var clusterSpec = api.SpecRequest{Alpha: 6, Beta: 8, LAB: 30, KFrac: 0.1, ContinuousT: true}

const clusterSecretHex = "00112233445566778899aabbccddeeff"

// shareBudget solves the per-share design and returns its hardware
// budget ceiling M: no share architecture can serve more successful
// accesses than that, whatever the interleaving. The ceiling follows
// the repo-wide convention (cf. internal/fault/chaos_test.go):
// MaxAllowedAccesses plus a 2·Copies slack, because each serial copy's
// death past UpperT is a ≤ MaxOverrun-probability event, not an exact
// cliff — the hard guarantee is the sum, not the per-copy bound.
func shareBudget(t *testing.T) int {
	t.Helper()
	d, err := dse.Explore(shareSpec())
	if err != nil {
		t.Fatal(err)
	}
	return d.MaxAllowedAccesses() + 2*d.Copies
}

// shareSpec is the dse.Spec the wire-level clusterSpec implies — the
// same solve every node performs for a share provision.
func shareSpec() dse.Spec {
	spec := dse.Spec{LAB: clusterSpec.LAB, KFrac: clusterSpec.KFrac, ContinuousT: true}
	spec.Dist.Alpha = clusterSpec.Alpha
	spec.Dist.Beta = clusterSpec.Beta
	spec.Criteria.MinWork = 0.99
	spec.Criteria.MaxOverrun = 0.01
	return spec
}

// harnessNode is one in-process lemonaded: a WAL-backed registry behind
// an httptest listener, carrying its cluster identity.
type harnessNode struct {
	name string
	dir  string
	st   *wal.DiskStore
	reg  *registry.Registry
	ts   *httptest.Server

	killed bool
}

// kill takes the node off the air mid-run: the listener closes (clients
// see connection errors, as with a crashed process) and the WAL store
// is abandoned un-Closed, exactly like a SIGKILL.
func (n *harnessNode) kill() {
	if n.killed {
		return
	}
	n.killed = true
	n.ts.CloseClientConnections()
	n.ts.Close()
}

// harness is an N-node in-process cluster plus the client facing it.
type harness struct {
	nodes map[string]*harnessNode
	urls  map[string]string
	seed  uint64
}

// startCluster boots nodes named n0..n{count-1}, each with its own WAL
// under dir and an optional per-node faulty filesystem. The listener
// addresses are allocated before any server starts, so every node's
// ring (and the client's) is built over the same URL table.
func startCluster(t *testing.T, dir string, count int, seed uint64, fs map[string]fault.FS) *harness {
	t.Helper()
	h := &harness{nodes: make(map[string]*harnessNode), urls: make(map[string]string), seed: seed}
	// Phase 1: listeners only, so the full URL table exists before any
	// node's ring is constructed.
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("n%d", i)
		ts := httptest.NewUnstartedServer(nil)
		h.nodes[name] = &harnessNode{name: name, ts: ts, dir: filepath.Join(dir, name)}
		h.urls[name] = "http://" + ts.Listener.Addr().String()
	}
	// Phase 2: WAL, registry, server, start.
	for _, n := range h.nodes {
		st, err := wal.Open(wal.Config{Dir: n.dir, FS: fs[n.name]})
		if err != nil {
			t.Fatalf("%s: open: %v", n.name, err)
		}
		n.st = st
		n.reg = registry.NewWithStore(4, st)
		if _, err := st.Recover(n.reg); err != nil {
			t.Fatalf("%s: recover: %v", n.name, err)
		}
		node, err := cluster.NewNode(cluster.Config{Self: n.name, Nodes: h.urls, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{Registry: n.reg, Cluster: node})
		n.ts.Config.Handler = srv.Handler()
		n.ts.Start()
	}
	t.Cleanup(func() {
		for _, n := range h.nodes {
			n.kill()
		}
	})
	return h
}

// client builds a cluster-aware client over the harness ring.
func (h *harness) client(t *testing.T, opts ...api.ClusterOption) *api.ClusterClient {
	t.Helper()
	cc, err := api.NewClusterClient(h.urls, h.seed, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

// shareStates recovers one node's WAL from disk into a fresh registry
// (the node's server keeps running; recovery opens the directory
// read-only through a second store) and returns the canonical JSON of
// every entry's full architecture state, keyed by entry ID.
func shareStates(t *testing.T, dir string) map[string]string {
	t.Helper()
	st, err := wal.Open(wal.Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery open %s: %v", dir, err)
	}
	reg := registry.NewWithStore(4, st)
	if _, err := st.Recover(reg); err != nil {
		t.Fatalf("recover %s: %v", dir, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	reg.Range(func(e *registry.Entry) bool {
		blob, err := json.Marshal(e.Arch.State())
		if err != nil {
			t.Fatal(err)
		}
		out[e.ID] = string(blob)
		return true
	})
	return out
}

// TestClusterGlobalBudgetConcurrent is the acceptance test's first
// half: a 3-node k=n=3 cluster hammered by concurrent clients must
// reveal the secret at most B times (B = the per-share hardware budget;
// with k=n every reveal consumes one success on every node) and then
// lock out permanently — under ANY goroutine interleaving, with no
// coordinator anywhere.
func TestClusterGlobalBudgetConcurrent(t *testing.T) {
	budget := shareBudget(t)
	h := startCluster(t, t.TempDir(), 3, 42, nil)
	cc := h.client(t)

	prov, err := cc.Provision(context.Background(), api.ClusterProvision{
		Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: 7, ShareK: 3, ShareN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var reveals atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < budget*4; i++ {
				res, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
				switch {
				case err == nil:
					if res.SecretHex != clusterSecretHex {
						t.Errorf("revealed wrong secret %q", res.SecretHex)
						return
					}
					reveals.Add(1)
				case api.IsExhausted(err):
					return // global lockout reached; this worker is done
				case api.IsTransient(err):
					// A copy died mid-access on some node, or fewer than k
					// shares answered this round — no reveal, retry.
				default:
					var ae *api.Error
					if errors.As(err, &ae) && ae.StatusCode == 422 {
						continue // decode-failed share round; wear consumed, no reveal
					}
					t.Errorf("unexpected access error: %v", err)
					return
				}
			}
			t.Error("worker never reached lockout")
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	got := int(reveals.Load())
	if got > budget {
		t.Fatalf("BUDGET OVERRUN: %d reveals from a global budget of %d", got, budget)
	}
	if got == 0 {
		t.Fatal("no reveals at all — harness not exercising the budget")
	}
	// The lockout must be permanent: one more access is 410, and every
	// node's own ledger agrees no share over-served.
	if _, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{}); !api.IsExhausted(err) {
		t.Fatalf("post-lockout access = %v, want exhausted", err)
	}
	sts, err := cc.ShareStatuses(context.Background(), prov.ClusterID)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range sts {
		if st == nil {
			t.Fatalf("share %d status unreachable", i)
		}
		if int(st.Successful) > budget {
			t.Fatalf("share %d over-served: %d successes > budget %d", i, st.Successful, budget)
		}
	}
}

// transcript is the deterministic record of one sequential cluster
// schedule: per access the outcome class and secret, then every node's
// recovered share states. Two runs of the same seed must produce equal
// transcripts, byte for byte.
type transcriptEntry struct {
	Outcome string `json:"outcome"`
	Secret  string `json:"secret,omitempty"`
}

// runSeededSchedule plays one fixed sequential schedule against a fresh
// 3-node cluster rooted at dir and returns (transcript, states after a
// first recovery, states after a second recovery of the same WALs).
func runSeededSchedule(t *testing.T, dir string, seed uint64) ([]transcriptEntry, []map[string]string, []map[string]string) {
	t.Helper()
	budget := shareBudget(t)
	h := startCluster(t, dir, 3, seed, nil)
	cc := h.client(t)
	prov, err := cc.Provision(context.Background(), api.ClusterProvision{
		Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: 7, ShareK: 3, ShareN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace []transcriptEntry
	for i := 0; i < budget*3; i++ {
		// The seeded environment schedule: every 7th access runs hot, so
		// accelerated wear is part of the replayed trajectory.
		req := api.AccessRequest{}
		if i%7 == 6 {
			req.TempCelsius = 200
		}
		res, err := cc.Access(context.Background(), prov.ClusterID, req)
		e := transcriptEntry{}
		switch {
		case err == nil:
			e.Outcome, e.Secret = "reveal", res.SecretHex
		case api.IsExhausted(err):
			e.Outcome = "exhausted"
		case api.IsTransient(err):
			e.Outcome = "transient"
		default:
			var ae *api.Error
			if errors.As(err, &ae) && ae.StatusCode == 422 {
				e.Outcome = "decode_failed"
			} else {
				t.Fatalf("access %d: %v", i, err)
			}
		}
		trace = append(trace, e)
		if e.Outcome == "exhausted" {
			break
		}
	}
	// Tear the cluster down un-Closed (crash), then recover every WAL
	// twice from disk.
	for _, n := range h.nodes {
		n.kill()
	}
	var first, second []map[string]string
	for i := 0; i < 3; i++ {
		first = append(first, shareStates(t, h.nodes[fmt.Sprintf("n%d", i)].dir))
	}
	for i := 0; i < 3; i++ {
		second = append(second, shareStates(t, h.nodes[fmt.Sprintf("n%d", i)].dir))
	}
	return trace, first, second
}

// TestClusterSeededScheduleBitIdentical is the acceptance test's
// determinism half: the same seeded sequential schedule, run twice
// against two fresh clusters, must produce byte-identical transcripts
// (same reveals, same lockout point) AND byte-identical recovered
// states — and recovering any node's WAL twice must agree with itself.
func TestClusterSeededScheduleBitIdentical(t *testing.T) {
	traceA, firstA, secondA := runSeededSchedule(t, t.TempDir(), 42)
	traceB, firstB, _ := runSeededSchedule(t, t.TempDir(), 42)

	ja, _ := json.Marshal(traceA)
	jb, _ := json.Marshal(traceB)
	if string(ja) != string(jb) {
		t.Fatalf("transcripts differ across same-seed runs:\nA: %s\nB: %s", ja, jb)
	}
	if traceA[len(traceA)-1].Outcome != "exhausted" {
		t.Fatalf("schedule never reached lockout: last outcome %q", traceA[len(traceA)-1].Outcome)
	}
	reveals := 0
	for _, e := range traceA {
		if e.Outcome == "reveal" {
			reveals++
		}
	}
	if budget := shareBudget(t); reveals > budget {
		t.Fatalf("BUDGET OVERRUN: %d reveals > budget %d", reveals, budget)
	} else if reveals == 0 {
		t.Fatal("schedule revealed nothing")
	}
	for i := 0; i < 3; i++ {
		a, _ := json.Marshal(firstA[i])
		a2, _ := json.Marshal(secondA[i])
		if string(a) != string(a2) {
			t.Fatalf("node n%d: double recovery of the same WAL disagrees with itself", i)
		}
		b, _ := json.Marshal(firstB[i])
		if string(a) != string(b) {
			t.Fatalf("node n%d: recovered state differs across same-seed runs", i)
		}
	}
}

// TestClusterNodeKillDegradesTo503 is the acceptance test's failure
// half, k=n case: with 3-of-3 shares required, killing any one node
// (n−k+1 = 1) must turn every subsequent access into a retryable 503 —
// owner down — and can never mint budget: reveals before + after stay
// within B, and the secret is never reconstructed from k−1 shares.
func TestClusterNodeKillDegradesTo503(t *testing.T) {
	budget := shareBudget(t)
	h := startCluster(t, t.TempDir(), 3, 42, nil)
	cc := h.client(t)
	prov, err := cc.Provision(context.Background(), api.ClusterProvision{
		Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: 7, ShareK: 3, ShareN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reveals := 0
	for i := 0; i < 3; i++ {
		res, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
		if err == nil {
			if res.SecretHex != clusterSecretHex {
				t.Fatalf("wrong secret")
			}
			reveals++
		} else if !api.IsTransient(err) {
			t.Fatalf("pre-kill access %d: %v", i, err)
		}
	}
	h.nodes[prov.Owners[0]].kill()
	// Only a few rounds: with k=n every failed round still wears the two
	// live shares (physical wearout has no rollback — see DESIGN §14), so
	// hammering to the budget would legitimately exhaust them and turn
	// the answer into a true 410. The degradation contract under test is
	// the early behavior: 503 owner-down, never a reveal.
	for i := 0; i < 5; i++ {
		res, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
		if err == nil {
			t.Fatalf("access %d succeeded with a dead owner holding share 0 of a 3-of-3 split: %v", i, res.Served)
		}
		if api.IsExhausted(err) {
			t.Fatalf("access %d: dead node misreported as exhausted — that would be a permanent lockout from a transient outage: %v", i, err)
		}
		if !api.IsTransient(err) {
			t.Fatalf("access %d: want 503, got %v", i, err)
		}
		var ae *api.Error
		if errors.As(err, &ae) && !strings.Contains(ae.Message, "owner down") {
			t.Fatalf("access %d: want owner-down classification, got %q", i, ae.Message)
		}
	}
	if reveals > budget {
		t.Fatalf("BUDGET OVERRUN: %d reveals > %d", reveals, budget)
	}
}

// TestClusterNodeKillToleratedAtKOfN is the same crash with slack in
// the split: k=2 of n=3 means one dead node is survivable — accesses
// keep succeeding off the two spare owners, and total reveals stay
// within the global ceiling n·M/k (every reveal consumes at least k
// share successes from a pool of n·M).
func TestClusterNodeKillToleratedAtKOfN(t *testing.T) {
	budget := shareBudget(t)
	h := startCluster(t, t.TempDir(), 3, 42, nil)
	cc := h.client(t)
	prov, err := cc.Provision(context.Background(), api.ClusterProvision{
		Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: 7, ShareK: 2, ShareN: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the primary owner immediately: every access must fail over to
	// the spare share without a single reveal lost to the outage.
	h.nodes[prov.Owners[0]].kill()
	reveals, ceiling := 0, 3*budget/2
	for i := 0; i < ceiling*3; i++ {
		res, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
		switch {
		case err == nil:
			if res.SecretHex != clusterSecretHex {
				t.Fatal("wrong secret after failover")
			}
			for _, n := range res.Served {
				if n == prov.Owners[0] {
					t.Fatalf("dead node %q reported as serving", n)
				}
			}
			reveals++
		case api.IsExhausted(err):
			if reveals == 0 {
				t.Fatal("exhausted before any reveal")
			}
			if reveals > ceiling {
				t.Fatalf("BUDGET OVERRUN: %d reveals > global ceiling %d", reveals, ceiling)
			}
			return
		case api.IsTransient(err):
			// wear noise; retry
		default:
			var ae *api.Error
			if errors.As(err, &ae) && ae.StatusCode == 422 {
				continue
			}
			t.Fatalf("access %d: %v", i, err)
		}
	}
	t.Fatalf("never reached lockout (reveals %d, ceiling %d)", reveals, ceiling)
}

// TestClusterFaultedRecoveryBitIdentical turns seeded disk faults on
// under live cluster traffic, crashes every node, and then requires
// what the paper requires of the hardware: whatever the weather did,
// the durable record is the truth — reveals stay within budget and two
// recoveries of each node's WAL agree bit for bit.
func TestClusterFaultedRecoveryBitIdentical(t *testing.T) {
	budget := shareBudget(t)
	for _, seed := range []uint64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			fs := map[string]fault.FS{}
			for i := 0; i < 3; i++ {
				// Leave the first ops fault-free so every node boots and takes
				// its share: the chaos under test is live-traffic weather, not
				// a node that never came up.
				plan := fault.FromSeed(seed*100+uint64(i), 600, 0.03)
				live := plan.Rules[:0]
				for _, r := range plan.Rules {
					if r.Op > 40 {
						live = append(live, r)
					}
				}
				plan.Rules = live
				fs[fmt.Sprintf("n%d", i)] = fault.NewInjector(fault.OS{}, plan)
			}
			h := startCluster(t, t.TempDir(), 3, 42, fs)
			cc := h.client(t)
			prov, err := cc.Provision(context.Background(), api.ClusterProvision{
				Spec: clusterSpec, SecretHex: clusterSecretHex, Seed: seed, ShareK: 3, ShareN: 3,
			})
			if err != nil {
				// A fault during provisioning fails closed; nothing to assert
				// beyond recovery consistency below — but without shares the
				// run is vacuous, so skip loudly.
				t.Skipf("provision hit injected fault (fails closed): %v", err)
			}
			reveals := 0
			for i := 0; i < budget*3; i++ {
				res, err := cc.Access(context.Background(), prov.ClusterID, api.AccessRequest{})
				switch {
				case err == nil:
					if res.SecretHex != clusterSecretHex {
						t.Fatal("revealed wrong secret through faults")
					}
					reveals++
				case api.IsExhausted(err):
					i = budget * 3 // lockout is permanent; stop the schedule
				default:
					// Injected store faults surface as 500s, shed/transient as
					// 503s, garbled shares as 422s — all fail closed, none
					// reveal.
				}
			}
			if reveals > budget {
				t.Fatalf("BUDGET OVERRUN through faults: %d > %d", reveals, budget)
			}
			for _, n := range h.nodes {
				n.kill()
			}
			for i := 0; i < 3; i++ {
				dir := h.nodes[fmt.Sprintf("n%d", i)].dir
				a, _ := json.Marshal(shareStates(t, dir))
				b, _ := json.Marshal(shareStates(t, dir))
				if string(a) != string(b) {
					t.Fatalf("node n%d: double recovery disagrees after faulted run", i)
				}
				// The recovered ledger can never show more successes than the
				// hardware budget allows.
				for id, raw := range shareStates(t, dir) {
					var st core.State
					if err := json.Unmarshal([]byte(raw), &st); err != nil {
						t.Fatal(err)
					}
					if int(st.Successful) > budget {
						t.Fatalf("node n%d share %s over-served after recovery: %d > %d", i, id, st.Successful, budget)
					}
				}
			}
		})
	}
}
