package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// Config describes one node's view of the cluster. Every node (and
// every cluster-aware client) must be handed the same Nodes set and
// Seed, or placements will disagree and shares will be refused as
// misrouted.
type Config struct {
	// Self is this node's name. Must be one of Nodes for a server; a
	// pure client leaves it empty.
	Self string
	// Nodes maps node name -> base URL (e.g. "http://127.0.0.1:8091").
	// The key set defines the ring membership.
	Nodes map[string]string
	// Seed is the shared placement seed.
	Seed uint64
}

// Node is one member's resolved cluster identity: its name, the ring,
// and the peer URL table. It is immutable after construction and safe
// for concurrent use.
type Node struct {
	self string
	ring *Ring
	urls map[string]string
}

// NewNode validates cfg and builds the node's ring. Self must be a
// ring member when non-empty.
func NewNode(cfg Config) (*Node, error) {
	names := make([]string, 0, len(cfg.Nodes))
	urls := make(map[string]string, len(cfg.Nodes))
	for name, url := range cfg.Nodes {
		if url == "" {
			return nil, fmt.Errorf("cluster: node %q has no URL", name)
		}
		names = append(names, name)
		urls[name] = url
	}
	ring, err := NewRing(names, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Self != "" {
		if _, ok := urls[cfg.Self]; !ok {
			return nil, fmt.Errorf("cluster: self %q is not a ring member", cfg.Self)
		}
	}
	return &Node{self: cfg.Self, ring: ring, urls: urls}, nil
}

// Self returns this node's name ("" for a pure client).
func (n *Node) Self() string { return n.self }

// Ring returns the node's placement ring.
func (n *Node) Ring() *Ring { return n.ring }

// URL returns the base URL of the named peer ("" if unknown).
func (n *Node) URL(name string) string { return n.urls[name] }

// Owns reports whether this node is the placed owner of the given
// share: Owners(clusterID, n)[idx] == self, where n must cover idx.
// It is how a server rejects misrouted provisions without consulting
// any peer — the ring is the single source of placement truth.
func (n *Node) Owns(clusterID string, idx, total int) (bool, error) {
	owners, err := n.ring.Owners(clusterID, total)
	if err != nil {
		return false, err
	}
	if idx < 0 || idx >= len(owners) {
		return false, fmt.Errorf("cluster: share index %d out of range [0,%d)", idx, total)
	}
	return owners[idx] == n.self, nil
}

// ShareID names share idx of cluster architecture clusterID in a
// node's local registry. The "@s" separator keeps the ID outside the
// registry's minted arch-%06d namespace (so local mints can never
// collide with cluster shares) and is URL-path-safe, unlike '#'.
func ShareID(clusterID string, idx int) string {
	return clusterID + "@s" + strconv.Itoa(idx)
}

// ParseShareID splits a share ID back into (clusterID, idx). ok is
// false for IDs that are not cluster share IDs.
func ParseShareID(id string) (clusterID string, idx int, ok bool) {
	at := strings.LastIndex(id, "@s")
	if at <= 0 || at+2 >= len(id) {
		return "", 0, false
	}
	n, err := strconv.Atoi(id[at+2:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return id[:at], n, true
}

// EncodeShare packs a Shamir share point for the wire: one byte of X
// followed by the share data. The share data is what the owning node's
// limited-use architecture guards; X rides along so the client can
// reconstruct without re-deriving placement order.
func EncodeShare(x byte, data []byte) []byte {
	out := make([]byte, 1+len(data))
	out[0] = x
	copy(out[1:], data)
	return out
}

// DecodeShare unpacks an EncodeShare payload.
func DecodeShare(b []byte) (x byte, data []byte, err error) {
	if len(b) < 2 {
		return 0, nil, fmt.Errorf("cluster: share payload too short (%d bytes)", len(b))
	}
	return b[0], b[1:], nil
}
