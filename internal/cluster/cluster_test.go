package cluster_test

import (
	"strings"
	"testing"

	"lemonade/internal/cluster"
)

func TestShareIDRoundTrip(t *testing.T) {
	cases := []struct {
		clusterID string
		idx       int
	}{
		{"arch-000001", 0},
		{"arch-000042", 7},
		{"arch-999999", 254},
		{"weird@s5name", 3}, // '@s' inside the cluster ID must survive (LastIndex)
	}
	for _, tc := range cases {
		id := cluster.ShareID(tc.clusterID, tc.idx)
		gotCluster, gotIdx, ok := cluster.ParseShareID(id)
		if !ok || gotCluster != tc.clusterID || gotIdx != tc.idx {
			t.Fatalf("ParseShareID(ShareID(%q, %d)) = (%q, %d, %v)", tc.clusterID, tc.idx, gotCluster, gotIdx, ok)
		}
		if strings.ContainsAny(id, "#?/% ") {
			t.Fatalf("share ID %q is not URL-path-safe", id)
		}
	}
	for _, bad := range []string{"arch-000001", "@s1", "a@s", "a@sx", "a@s-1", ""} {
		if _, _, ok := cluster.ParseShareID(bad); ok {
			t.Fatalf("ParseShareID(%q) accepted a non-share ID", bad)
		}
	}
}

func TestEncodeDecodeShare(t *testing.T) {
	payload := cluster.EncodeShare(7, []byte{1, 2, 3})
	x, data, err := cluster.DecodeShare(payload)
	if err != nil || x != 7 || len(data) != 3 || data[0] != 1 || data[2] != 3 {
		t.Fatalf("round trip = (%d, %v, %v)", x, data, err)
	}
	for _, short := range [][]byte{nil, {}, {9}} {
		if _, _, err := cluster.DecodeShare(short); err == nil {
			t.Fatalf("DecodeShare(%v) accepted a truncated payload", short)
		}
	}
}

func TestNewNodeValidation(t *testing.T) {
	urls := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	if _, err := cluster.NewNode(cluster.Config{Self: "zz", Nodes: urls, Seed: 1}); err == nil {
		t.Fatal("self outside the ring accepted")
	}
	if _, err := cluster.NewNode(cluster.Config{Nodes: map[string]string{"a": ""}, Seed: 1}); err == nil {
		t.Fatal("node without URL accepted")
	}
	n, err := cluster.NewNode(cluster.Config{Self: "a", Nodes: urls, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.Self() != "a" || n.URL("b") != "http://b" || n.URL("zz") != "" {
		t.Fatalf("identity accessors wrong: self=%q url(b)=%q", n.Self(), n.URL("b"))
	}
	// A pure client (empty Self) owns nothing but may still place.
	c, err := cluster.NewNode(cluster.Config{Nodes: urls, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	owns, err := c.Owns("arch-000001", 0, 3)
	if err != nil || owns {
		t.Fatalf("pure client Owns = (%v, %v), want (false, nil)", owns, err)
	}
}

func TestOwnsMatchesRing(t *testing.T) {
	urls := map[string]string{"a": "http://a", "b": "http://b", "c": "http://c"}
	const total = 3
	for _, self := range []string{"a", "b", "c"} {
		n, err := cluster.NewNode(cluster.Config{Self: self, Nodes: urls, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		owners, err := n.Ring().Owners("arch-000007", total)
		if err != nil {
			t.Fatal(err)
		}
		for idx := 0; idx < total; idx++ {
			owns, err := n.Owns("arch-000007", idx, total)
			if err != nil {
				t.Fatal(err)
			}
			if owns != (owners[idx] == self) {
				t.Fatalf("self %s idx %d: Owns = %v, owners = %v", self, idx, owns, owners)
			}
		}
		if _, err := n.Owns("arch-000007", total, total); err == nil {
			t.Fatal("out-of-range share index accepted")
		}
		if _, err := n.Owns("arch-000007", 0, 99); err == nil {
			t.Fatal("share_total beyond ring size accepted")
		}
	}
}
