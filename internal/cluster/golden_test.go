package cluster_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lemonade/internal/cluster"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenPlacement is the checked-in form of the seed-42 placement
// table. Any change to the ring's hash, tie-break, or sort rule shows
// up as a diff here — and a diff means every existing cluster's shares
// are suddenly "misrouted", so it must be a conscious, migration-bearing
// decision, not a refactor accident.
type goldenPlacement struct {
	Seed        uint64              `json:"seed"`
	Nodes       []string            `json:"nodes"`
	Owners      int                 `json:"owners"`
	Assignments map[string][]string `json:"assignments"`
}

// TestGoldenRingPlacement pins the placement of the first 24 minted
// arch IDs on the canonical 5-node seed-42 ring against
// testdata/ring_seed42.json. Regenerate with -update (and justify the
// diff in review).
func TestGoldenRingPlacement(t *testing.T) {
	const seed, owners, keys = 42, 3, 24
	nodes := fiveNodes()
	ring, err := cluster.NewRing(nodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := goldenPlacement{
		Seed:        seed,
		Nodes:       ring.Nodes(),
		Owners:      owners,
		Assignments: make(map[string][]string, keys),
	}
	for i := 1; i <= keys; i++ {
		key := fmt.Sprintf("arch-%06d", i)
		own, err := ring.Owners(key, owners)
		if err != nil {
			t.Fatal(err)
		}
		got.Assignments[key] = own
	}

	path := filepath.Join("testdata", "ring_seed42.json")
	if *update {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	var want goldenPlacement
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("golden file is not JSON: %v", err)
	}
	if want.Seed != got.Seed || want.Owners != got.Owners {
		t.Fatalf("golden header mismatch: got seed=%d owners=%d, want seed=%d owners=%d",
			got.Seed, got.Owners, want.Seed, want.Owners)
	}
	if len(want.Assignments) != len(got.Assignments) {
		t.Fatalf("golden has %d assignments, computed %d", len(want.Assignments), len(got.Assignments))
	}
	for key, w := range want.Assignments {
		g, ok := got.Assignments[key]
		if !ok {
			t.Fatalf("golden key %s not computed", key)
		}
		if len(g) != len(w) {
			t.Fatalf("%s: got %v, want %v", key, g, w)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("%s: placement drifted: got %v, want %v — changing the hash strands every deployed share", key, g, w)
			}
		}
	}
}
