package gf16

import (
	"testing"

	"lemonade/internal/rng"
)

// GF(2^16) is too large for exhaustive pair sweeps (2^32 cases), so the
// unary laws run exhaustively over all 65 535 nonzero elements and the
// binary/ternary laws run over seeded pseudo-random samples — same
// deterministic rng the rest of the module uses, so a failure is a
// stable repro, not a flake.

func TestPropertyInvExhaustive(t *testing.T) {
	for a := 1; a <= Order; a++ {
		x := uint16(a)
		inv := Inv(x)
		if inv == 0 || Mul(x, inv) != 1 {
			t.Fatalf("Inv(%d) = %d is not a multiplicative inverse", a, inv)
		}
		if Div(1, x) != inv {
			t.Fatalf("Div(1, %d) disagrees with Inv", a)
		}
		if Mul(x, 1) != x {
			t.Fatalf("1 is not the multiplicative identity for %d", a)
		}
		if Add(x, x) != 0 {
			t.Fatalf("%d is not its own additive inverse (char 2)", a)
		}
	}
}

func TestPropertyFieldLawsRandomized(t *testing.T) {
	r := rng.New(0x16f16)
	n := 2_000_000
	if testing.Short() {
		n = 100_000
	}
	for i := 0; i < n; i++ {
		a := uint16(r.Intn(1 << 16))
		b := uint16(r.Intn(1 << 16))
		c := uint16(r.Intn(1 << 16))
		if Add(a, b) != Add(b, a) {
			t.Fatalf("Add not commutative at (%d, %d)", a, b)
		}
		if Mul(a, b) != Mul(b, a) {
			t.Fatalf("Mul not commutative at (%d, %d)", a, b)
		}
		if Mul(Mul(a, b), c) != Mul(a, Mul(b, c)) {
			t.Fatalf("Mul not associative at (%d, %d, %d)", a, b, c)
		}
		if Add(Add(a, b), c) != Add(a, Add(b, c)) {
			t.Fatalf("Add not associative at (%d, %d, %d)", a, b, c)
		}
		if Mul(a, Add(b, c)) != Add(Mul(a, b), Mul(a, c)) {
			t.Fatalf("distributivity fails at (%d, %d, %d)", a, b, c)
		}
		if b != 0 && Mul(Div(a, b), b) != a {
			t.Fatalf("Div(%d, %d)·%d != %d", a, b, b, a)
		}
	}
}

// TestPropertyInterpolateRoundTrip: a random degree-(k-1) polynomial
// evaluated at k distinct points must interpolate back exactly — the
// identity shamir16 reconstruction rests on.
func TestPropertyInterpolateRoundTrip(t *testing.T) {
	r := rng.New(0x1611)
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(12)
		p := make(Polynomial, k)
		for i := range p {
			p[i] = uint16(r.Intn(1 << 16))
		}
		// k distinct nonzero evaluation points via a partial permutation.
		xs := make([]uint16, k)
		for i, v := range r.Perm(Order)[:k] {
			xs[i] = uint16(v + 1)
		}
		ys := make([]uint16, k)
		for i, x := range xs {
			ys[i] = p.Eval(x)
		}
		got, err := Interpolate(xs, ys, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != p[0] {
			t.Fatalf("trial %d: interpolated constant term %d, want %d", trial, got, p[0])
		}
	}
}
