package gf16

// Slice kernels mirroring gf256's. A full multiplication table would be
// 2^32 entries here, so the constant's log is hoisted out of the loop
// instead and each element costs one log and one exp lookup. As in gf256,
// field arithmetic is exact, so these are bit-identical to element-wise
// Mul/Add. dst may be the same slice as src but must not otherwise
// overlap it; none of the kernels allocate.

// AddSlice adds src into dst elementwise: dst[i] ^= src[i].
func AddSlice(dst, src []uint16) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf16: AddSlice length mismatch")
	}
	for i, s := range src {
		dst[i] ^= s
	}
}

// MulSliceAdd multiply-accumulates a constant into dst: dst[i] ^= c·src[i].
func MulSliceAdd(dst, src []uint16, c uint16) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf16: MulSliceAdd length mismatch")
	}
	switch c {
	case 0:
		return
	case 1:
		AddSlice(dst, src)
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= expTable[lc+int(logTable[s])]
		}
	}
}

// MulSlice sets dst[i] = c·src[i].
func MulSlice(dst, src []uint16, c uint16) {
	if len(dst) != len(src) {
		//lemonvet:allow panic mismatched kernel operand lengths are a caller bug, like out-of-range indexing
		panic("gf16: MulSlice length mismatch")
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	lc := int(logTable[c])
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
		} else {
			dst[i] = expTable[lc+int(logTable[s])]
		}
	}
}

// EvalInto evaluates, column by column, the polynomial whose degree-j
// coefficient vector is rows[j], at x: dst[b] = Σ_j rows[j][b]·x^j.
// Every row must have len(dst); dst must not overlap any row except
// rows[0], which it may equal.
func EvalInto(dst []uint16, rows [][]uint16, x uint16) {
	if len(rows) == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	MulSlice(dst, rows[0], 1)
	pw := x
	for j := 1; j < len(rows); j++ {
		MulSliceAdd(dst, rows[j], pw)
		pw = Mul(pw, x)
	}
}

// LagrangeCoeffs fills coeffs[i] with L_i(x) = Π_{j≠i}(x⊕xs[j])/(xs[i]⊕xs[j]),
// the scalar weights that reconstruct whole share slices via MulSliceAdd.
// The xs must be distinct and len(coeffs) must equal len(xs).
func LagrangeCoeffs(xs []uint16, x uint16, coeffs []uint16) error {
	if err := checkDistinct(xs, len(coeffs)); err != nil {
		return err
	}
	for i := range xs {
		num, den := uint16(1), uint16(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = Mul(num, x^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		coeffs[i] = Div(num, den)
	}
	return nil
}
