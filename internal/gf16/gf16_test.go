package gf16

import (
	"testing"
	"testing/quick"
)

func TestFieldAxioms(t *testing.T) {
	comm := func(a, b uint16) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(a, b, c uint16) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	dist := func(a, b, c uint16) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(dist, nil); err != nil {
		t.Error("distributivity:", err)
	}
}

func TestIdentityAndZero(t *testing.T) {
	for _, a := range []uint16{0, 1, 2, 255, 256, 40000, 65535} {
		if Mul(a, 1) != a {
			t.Errorf("a*1 != a for %d", a)
		}
		if Mul(a, 0) != 0 {
			t.Errorf("a*0 != 0 for %d", a)
		}
		if Add(a, a) != 0 {
			t.Errorf("a+a != 0 for %d", a)
		}
	}
}

func TestInverses(t *testing.T) {
	f := func(a uint16) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1 && Div(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// exhaustive spot-band around table edges
	for a := uint16(1); a < 300; a++ {
		if Mul(a, Inv(a)) != 1 {
			t.Fatalf("inverse broken at %d", a)
		}
	}
	if Div(0, 7) != 0 {
		t.Error("0/b should be 0")
	}
}

func TestDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Div by zero should panic")
		}
	}()
	Div(1, 0)
}

func TestInvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) should panic")
		}
	}()
	Inv(0)
}

func TestMulMatchesCarrylessReference(t *testing.T) {
	ref := func(a, b uint16) uint16 {
		var p uint32
		aa, bb := uint32(a), uint32(b)
		for i := 0; i < 16; i++ {
			if bb&1 != 0 {
				p ^= aa
			}
			bb >>= 1
			aa <<= 1
			if aa&0x10000 != 0 {
				aa ^= Poly
			}
		}
		return uint16(p)
	}
	f := func(a, b uint16) bool { return Mul(a, b) == ref(a, b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInterpolateRecovers(t *testing.T) {
	p := Polynomial{12345, 999, 42, 7}
	xs := []uint16{1, 300, 5000, 65000}
	ys := make([]uint16, len(xs))
	for i, x := range xs {
		ys[i] = p.Eval(x)
	}
	for _, at := range []uint16{0, 2, 1000, 40000} {
		got, err := Interpolate(xs, ys, at)
		if err != nil {
			t.Fatal(err)
		}
		if got != p.Eval(at) {
			t.Errorf("interpolation at %d = %d, want %d", at, got, p.Eval(at))
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate([]uint16{1}, []uint16{1, 2}, 0); err == nil {
		t.Error("mismatched slices should error")
	}
	if _, err := Interpolate(nil, nil, 0); err == nil {
		t.Error("empty input should error")
	}
	if _, err := Interpolate([]uint16{5, 5}, []uint16{1, 2}, 0); err == nil {
		t.Error("duplicate x should error")
	}
}
