// Package gf16 implements arithmetic in GF(2^16) with the primitive
// polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B).
//
// The connection designs at low β need parallel structures with thousands
// of devices per copy; Shamir sharing over GF(2^8) caps out at 255 shares.
// This field supports up to 65,535 shares (see package shamir16).
package gf16

import "fmt"

// Poly is the primitive reduction polynomial.
const Poly = 0x1100B

// Order is the multiplicative group order.
const Order = 1<<16 - 1

var (
	expTable [2 * Order]uint16
	logTable [1 << 16]uint16
)

func init() {
	x := uint32(1)
	for i := 0; i < Order; i++ {
		expTable[i] = uint16(x)
		logTable[x] = uint16(i)
		x <<= 1
		if x&0x10000 != 0 {
			x ^= Poly
		}
	}
	for i := Order; i < 2*Order; i++ {
		expTable[i] = expTable[i-Order]
	}
}

// Add returns a + b (XOR); subtraction is identical.
func Add(a, b uint16) uint16 { return a ^ b }

// Mul returns a·b.
func Mul(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b; it panics on division by zero.
func Div(a, b uint16) uint16 {
	if b == 0 {
		//lemonvet:allow panic division by zero is a caller bug, like integer /0
		panic("gf16: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+Order-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a; it panics for a == 0.
func Inv(a uint16) uint16 {
	if a == 0 {
		//lemonvet:allow panic inverse of zero is a caller bug, like integer /0
		panic("gf16: zero has no inverse")
	}
	return expTable[Order-int(logTable[a])]
}

// checkDistinct validates the shared Interpolate/LagrangeCoeffs
// preconditions without allocating. Small point sets use a pairwise scan;
// large ones (shamir16 thresholds run to thousands of shares) switch to a
// stack bitset over the 2^16 possible coordinates, trading an 8 KiB
// stack clear for O(k) instead of O(k²).
func checkDistinct(xs []uint16, pairLen int) error {
	if len(xs) != pairLen {
		return fmt.Errorf("gf16: mismatched point slices (%d vs %d)", len(xs), pairLen)
	}
	if len(xs) == 0 {
		return fmt.Errorf("gf16: no points to interpolate")
	}
	if len(xs) <= 32 {
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[i] == xs[j] {
					return fmt.Errorf("gf16: duplicate x coordinate %d", xs[i])
				}
			}
		}
		return nil
	}
	var seen [1 << 16 / 8]byte
	for _, v := range xs {
		bit := byte(1) << (v & 7)
		if seen[v>>3]&bit != 0 {
			return fmt.Errorf("gf16: duplicate x coordinate %d", v)
		}
		seen[v>>3] |= bit
	}
	return nil
}

// Interpolate evaluates at x the unique degree-(k-1) polynomial through
// the k points (xs[i], ys[i]); the xs must be distinct. Like the gf256
// version, the Lagrange basis folds straight into the accumulator and the
// success path performs no allocations.
func Interpolate(xs, ys []uint16, x uint16) (uint16, error) {
	if err := checkDistinct(xs, len(ys)); err != nil {
		return 0, err
	}
	var acc uint16
	for i := range xs {
		num, den := uint16(1), uint16(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = Mul(num, x^xs[j])
			den = Mul(den, xs[i]^xs[j])
		}
		acc ^= Mul(ys[i], Div(num, den))
	}
	return acc, nil
}

// Polynomial is a polynomial over GF(2^16), ascending degree order.
type Polynomial []uint16

// Eval evaluates the polynomial at x by Horner's rule.
func (p Polynomial) Eval(x uint16) uint16 {
	var y uint16
	for i := len(p) - 1; i >= 0; i-- {
		y = Mul(y, x) ^ p[i]
	}
	return y
}
