package gf16

import (
	"testing"
)

// The gf16 kernels can't be swept over every (c, element) pair — 2^32
// cases — so constants sweep a structured set (all byte-ish values plus
// high-bit patterns) against full element coverage in the operand, and
// the distinctness bitset is tested across its pairwise/bitset threshold.

func patternWords(n int, salt uint16) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(i*40503+977) ^ salt
	}
	return out
}

func kernelConstants() []uint16 {
	cs := []uint16{0, 1, 2, 3, 255, 256, 4097, 0x8000, 0xFFFF}
	for c := uint16(5); c < 250; c += 7 {
		cs = append(cs, c, c<<8)
	}
	return cs
}

func TestMulSliceAddMatchesScalar(t *testing.T) {
	// src covers a full residue sweep of the 16-bit space including 0.
	src := make([]uint16, 1<<13)
	for i := range src {
		src[i] = uint16(i * 8) // includes 0 and high values
	}
	src[1] = 0xFFFF
	dst := make([]uint16, len(src))
	want := make([]uint16, len(src))
	for _, c := range kernelConstants() {
		copy(dst, patternWords(len(src), c))
		copy(want, dst)
		for i := range want {
			want[i] ^= Mul(c, src[i])
		}
		MulSliceAdd(dst, src, c)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("MulSliceAdd c=%d diverges at %d: got %d want %d", c, i, dst[i], want[i])
			}
		}
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	src := patternWords(257, 0x1234)
	src[0] = 0
	dst := make([]uint16, len(src))
	for _, c := range kernelConstants() {
		MulSlice(dst, src, c)
		for i := range dst {
			if want := Mul(c, src[i]); dst[i] != want {
				t.Fatalf("MulSlice c=%d diverges at %d: got %d want %d", c, i, dst[i], want)
			}
		}
	}
}

func TestAddSliceLengths(t *testing.T) {
	for n := 0; n <= 64; n++ {
		dst := patternWords(n, 0xA5A5)
		src := patternWords(n, 0x3C3C)
		want := make([]uint16, n)
		for i := range want {
			want[i] = dst[i] ^ src[i]
		}
		AddSlice(dst, src)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("AddSlice diverges at n=%d i=%d", n, i)
			}
		}
	}
}

func TestEvalIntoMatchesHorner(t *testing.T) {
	const width, degree = 11, 4
	rows := make([][]uint16, degree)
	for j := range rows {
		rows[j] = patternWords(width, uint16(3*j+1))
	}
	dst := make([]uint16, width)
	for _, x := range kernelConstants() {
		EvalInto(dst, rows, x)
		for b := 0; b < width; b++ {
			p := make(Polynomial, degree)
			for j := range rows {
				p[j] = rows[j][b]
			}
			if want := p.Eval(x); dst[b] != want {
				t.Fatalf("EvalInto(x=%d) word %d = %d, want Horner %d", x, b, dst[b], want)
			}
		}
	}
}

func TestLagrangeCoeffsMatchInterpolate(t *testing.T) {
	xs := []uint16{1, 2, 3, 700, 40000, 65535}
	ys := patternWords(len(xs), 0x1F1F)
	coeffs := make([]uint16, len(xs))
	for _, x := range kernelConstants() {
		if err := LagrangeCoeffs(xs, x, coeffs); err != nil {
			t.Fatalf("LagrangeCoeffs(x=%d): %v", x, err)
		}
		var got uint16
		for i := range xs {
			got ^= Mul(ys[i], coeffs[i])
		}
		want, err := Interpolate(xs, ys, x)
		if err != nil {
			t.Fatalf("Interpolate(x=%d): %v", x, err)
		}
		if got != want {
			t.Fatalf("coefficient reconstruction at x=%d: got %d, want %d", x, got, want)
		}
	}
}

// TestCheckDistinctBothPaths exercises the pairwise path (k ≤ 32) and the
// bitset path (k > 32) on both clean and duplicate-bearing inputs.
func TestCheckDistinctBothPaths(t *testing.T) {
	for _, k := range []int{2, 32, 33, 500} {
		xs := make([]uint16, k)
		for i := range xs {
			xs[i] = uint16(i + 1)
		}
		if err := checkDistinct(xs, k); err != nil {
			t.Fatalf("k=%d distinct set rejected: %v", k, err)
		}
		xs[k-1] = xs[0]
		if err := checkDistinct(xs, k); err == nil {
			t.Fatalf("k=%d duplicate not detected", k)
		}
	}
	if err := checkDistinct(nil, 0); err == nil {
		t.Fatal("empty point set not rejected")
	}
	if err := checkDistinct([]uint16{1}, 2); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}

// Interpolate dropped its per-call seen-map; pin the zero-alloc success
// path on both sides of the distinctness threshold.
func TestInterpolateNoAllocs(t *testing.T) {
	small := patternWords(8, 0)
	for i := range small {
		small[i] = uint16(i + 1)
	}
	large := make([]uint16, 100)
	for i := range large {
		large[i] = uint16(i + 1)
	}
	ysSmall := patternWords(len(small), 3)
	ysLarge := patternWords(len(large), 4)
	for name, f := range map[string]func(){
		"small": func() { _, _ = Interpolate(small, ysSmall, 0) },
		"large": func() { _, _ = Interpolate(large, ysLarge, 0) },
	} {
		if n := testing.AllocsPerRun(50, f); n != 0 {
			t.Errorf("Interpolate %s-k allocates %v times per call, want 0", name, n)
		}
	}
}

func TestSliceKernelsLengthMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		f    func()
	}{
		{"AddSlice", func() { AddSlice(make([]uint16, 3), make([]uint16, 4)) }},
		{"MulSliceAdd", func() { MulSliceAdd(make([]uint16, 3), make([]uint16, 4), 5) }},
		{"MulSlice", func() { MulSlice(make([]uint16, 3), make([]uint16, 4), 5) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic on length mismatch", tc.name)
				}
			}()
			tc.f()
		})
	}
}
