package rs

import (
	"bytes"
	"errors"
	"testing"

	"lemonade/internal/rng"
)

func TestDecodeWithErrorsNoCorruption(t *testing.T) {
	c, _ := New(4, 10)
	data := []byte("error correcting")
	shards, _ := c.Encode(data)
	all := make([]Shard, len(shards))
	for i, s := range shards {
		all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
	}
	got, err := c.DecodeWithErrors(all)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("clean decode = %q", got)
	}
}

func TestDecodeWithErrorsCorrectsCorruption(t *testing.T) {
	// n=10, k=4: corrects up to 3 corrupted shards.
	c, _ := New(4, 10)
	data := []byte("error correcting")
	shards, _ := c.Encode(data)
	for nErrors := 1; nErrors <= 3; nErrors++ {
		all := make([]Shard, len(shards))
		for i, s := range shards {
			all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
		}
		// corrupt shards silently
		for e := 0; e < nErrors; e++ {
			idx := (e * 3) % len(all)
			for b := range all[idx].Data {
				all[idx].Data[b] ^= 0x5A
			}
		}
		got, err := c.DecodeWithErrors(all)
		if err != nil {
			t.Fatalf("%d errors: %v", nErrors, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%d errors: decode = %q", nErrors, got)
		}
	}
}

func TestDecodeWithErrorsDetectsOverload(t *testing.T) {
	// 4 corrupted of 10 with k=4 exceeds the (n-k)/2 = 3 bound; the
	// decoder must fail rather than return wrong data... except for
	// pathological corruptions that land on another codeword; XOR of a
	// constant into 4 specific shards is overwhelmingly not one.
	c, _ := New(4, 10)
	data := []byte("error correcting")
	shards, _ := c.Encode(data)
	all := make([]Shard, len(shards))
	for i, s := range shards {
		all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
	}
	for e := 0; e < 4; e++ {
		for b := range all[e].Data {
			all[e].Data[b] ^= byte(0x11 * (e + 1))
		}
	}
	got, err := c.DecodeWithErrors(all)
	if err == nil && bytes.Equal(got, data) {
		t.Error("decoder should not silently succeed beyond its bound")
	}
}

func TestDecodeWithErrorsSubsetOfShards(t *testing.T) {
	// 7 of 10 shards present, one corrupted: e = (7-4)/2 = 1 correctable.
	c, _ := New(4, 10)
	data := []byte("subset decoding!")
	shards, _ := c.Encode(data)
	subset := []Shard{
		{Index: 0, Data: append([]byte(nil), shards[0]...)},
		{Index: 2, Data: append([]byte(nil), shards[2]...)},
		{Index: 3, Data: append([]byte(nil), shards[3]...)},
		{Index: 5, Data: append([]byte(nil), shards[5]...)},
		{Index: 6, Data: append([]byte(nil), shards[6]...)},
		{Index: 8, Data: append([]byte(nil), shards[8]...)},
		{Index: 9, Data: append([]byte(nil), shards[9]...)},
	}
	subset[4].Data[1] ^= 0xFF
	got, err := c.DecodeWithErrors(subset)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("subset decode = %q", got)
	}
}

func TestDecodeWithErrorsValidation(t *testing.T) {
	c, _ := New(3, 6)
	if _, err := c.DecodeWithErrors([]Shard{{Index: 0, Data: []byte{1}}}); !errors.Is(err, ErrTooFewShards) {
		t.Errorf("too few shards: %v", err)
	}
	if _, err := c.DecodeWithErrors([]Shard{{Index: 9, Data: []byte{1}}}); err == nil {
		t.Error("bad index should error")
	}
	bad := []Shard{
		{Index: 0, Data: []byte{1, 2}},
		{Index: 1, Data: []byte{1}},
		{Index: 2, Data: []byte{1, 2}},
	}
	if _, err := c.DecodeWithErrors(bad); err == nil {
		t.Error("inconsistent lengths should error")
	}
}

func TestDecodeWithErrorsRandomized(t *testing.T) {
	r := rng.New(999)
	for trial := 0; trial < 50; trial++ {
		k := 2 + r.Intn(5)
		n := k + 2 + r.Intn(8)
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, k*3)
		r.Bytes(data)
		shards, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]Shard, n)
		for i, s := range shards {
			all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
		}
		e := (n - k) / 2
		nErr := r.Intn(e + 1)
		perm := r.Perm(n)[:nErr]
		for _, idx := range perm {
			pos := r.Intn(len(all[idx].Data))
			all[idx].Data[pos] ^= byte(1 + r.Intn(255))
		}
		got, err := c.DecodeWithErrors(all)
		if err != nil {
			t.Fatalf("trial %d (k=%d n=%d errs=%d): %v", trial, k, n, nErr, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}
