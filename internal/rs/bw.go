package rs

import (
	"errors"
	"fmt"

	"lemonade/internal/gf256"
)

// This file adds Berlekamp–Welch decoding: recovery from *corrupted*
// shards, not just erased ones. The paper's architectures only face
// erasures (a dead switch returns nothing), but RS is introduced as "the
// error correction version of Shamir's secret-sharing scheme", and a
// hardware fault model in which a failing switch returns garbage instead
// of nothing needs genuine error correction. With n shards of a k-data
// code, up to ⌊(n−k)/2⌋ corrupted shards are corrected.

// ErrTooManyErrors is returned when decoding fails to find a consistent
// codeword, i.e. more shards are corrupt than the code can correct.
var ErrTooManyErrors = errors.New("rs: too many corrupted shards to correct")

// DecodeWithErrors reconstructs the original data from n' >= k shards of
// which up to ⌊(n'−k)/2⌋ may be silently corrupted. All shards must be
// present (by index) and equal length; use Decode for the erasure-only
// case, which tolerates more loss.
func (c *Code) DecodeWithErrors(shards []Shard) ([]byte, error) {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	shardLen, err := c.selectSurvivors(shards, sc, false)
	if err != nil {
		return nil, err
	}
	dist := sc.dist
	nn := len(dist)
	data := make([]byte, c.k*shardLen)

	// Syndrome fast path: interpolate a candidate codeword from the first
	// k distinct shards, then check the remaining shards against it. A
	// column where every extra shard matches is consistent with zero
	// errors, and Berlekamp–Welch's solution for a zero-error column is
	// exactly this interpolation — so only flagged columns need the full
	// linear solve. Clean decodes (the common case for an erasure-only
	// fault model) skip it entirely.
	if err := c.lagrangeRows(data, shards, dist[:c.k], shardLen, sc); err != nil {
		return nil, err
	}
	sc.xsData = growBytes(sc.xsData, c.k)
	for i := range sc.xsData {
		sc.xsData[i] = byte(i + 1)
	}
	sc.row = growBytes(sc.row, shardLen)
	sc.bad = growBools(sc.bad, shardLen)
	for i := range sc.bad {
		sc.bad[i] = false
	}
	anyBad := false
	for _, si := range dist[c.k:] {
		s := shards[si]
		if err := gf256.LagrangeCoeffs(sc.xsData, byte(s.Index+1), sc.coeffs); err != nil {
			return nil, err
		}
		pred := sc.row
		for j := range pred {
			pred[j] = 0
		}
		for j := 0; j < c.k; j++ {
			gf256.MulSliceAdd(pred, data[j*shardLen:(j+1)*shardLen], sc.coeffs[j])
		}
		for col, v := range pred {
			if v != s.Data[col] {
				sc.bad[col] = true
				anyBad = true
			}
		}
	}
	if !anyBad {
		return data, nil
	}

	// Slow path, flagged columns only: the original per-column
	// Berlekamp–Welch over all nn shards.
	e := (nn - c.k) / 2 // correctable errors
	xs := make([]byte, nn)
	for i, si := range dist {
		xs[i] = byte(shards[si].Index + 1)
	}
	ys := make([]byte, nn)
	for col := 0; col < shardLen; col++ {
		if !sc.bad[col] {
			continue
		}
		for i, si := range dist {
			ys[i] = shards[si].Data[col]
		}
		poly, err := berlekampWelch(xs, ys, c.k, e)
		if err != nil {
			return nil, err
		}
		for di := 0; di < c.k; di++ {
			data[di*shardLen+col] = poly.Eval(byte(di + 1))
		}
	}
	return data, nil
}

// RecoverPolynomial recovers the degree < k polynomial through the points
// (xs, ys), of which up to ⌊(len(xs)−k)/2⌋ may be corrupted. This is the
// McEliece–Sarwate bridge the paper cites: Shamir shares are evaluations
// of a degree-(k−1) polynomial, i.e. a Reed-Solomon codeword, so they can
// be decoded with error correction and the secret read off at x = 0.
func RecoverPolynomial(xs, ys []byte, k int) (gf256.Polynomial, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("rs: mismatched point slices (%d vs %d)", len(xs), len(ys))
	}
	if len(xs) < k {
		return nil, fmt.Errorf("%w: have %d points, need %d", ErrTooFewShards, len(xs), k)
	}
	// Clean fast path: fit the first k points (a k×k solve instead of the
	// n×(k+2e) Berlekamp–Welch system) and verify the rest. If every point
	// lies on the fit, zero errors are consistent and Berlekamp–Welch
	// would return this exact polynomial — coefficients of a degree-<k fit
	// are unique, whatever algorithm finds them. The equivalence argument
	// needs distinct evaluation points, so duplicate-bearing inputs take
	// the original path untouched.
	if len(xs) > k && allDistinct(xs) {
		if p, err := berlekampWelch(xs[:k], ys[:k], k, 0); err == nil {
			clean := true
			for i := k; i < len(xs); i++ {
				if p.Eval(xs[i]) != ys[i] {
					clean = false
					break
				}
			}
			if clean {
				return p, nil
			}
		}
	}
	return berlekampWelch(xs, ys, k, (len(xs)-k)/2)
}

// allDistinct reports whether no byte value repeats in xs.
func allDistinct(xs []byte) bool {
	var seen [256]bool
	for _, x := range xs {
		if seen[x] {
			return false
		}
		seen[x] = true
	}
	return true
}

// berlekampWelch recovers the degree < k message polynomial from points
// (xs, ys) with at most e errors. It solves for an error locator E (monic,
// degree e) and Q (degree < k+e) with Q(x_i) = y_i·E(x_i), then divides.
func berlekampWelch(xs, ys []byte, k, e int) (gf256.Polynomial, error) {
	n := len(xs)
	// Unknowns: q_0..q_{k+e-1} then e_0..e_{e-1} (E's leading coeff is 1).
	cols := k + 2*e
	if cols > n {
		cols = n // cannot use more unknowns than equations
	}
	// Build the augmented system row per point:
	//   sum_j q_j x^j − y·sum_j e_j x^j = y·x^e
	m := make([][]byte, n)
	for i := range m {
		row := make([]byte, cols+1)
		xp := byte(1)
		for j := 0; j < k+e; j++ {
			row[j] = xp
			xp = gf256.Mul(xp, xs[i])
		}
		xp = byte(1)
		for j := 0; j < e; j++ {
			row[k+e+j] = gf256.Mul(ys[i], xp)
			xp = gf256.Mul(xp, xs[i])
		}
		// RHS: y_i · x_i^e
		rhs := ys[i]
		for j := 0; j < e; j++ {
			rhs = gf256.Mul(rhs, xs[i])
		}
		row[cols] = rhs
		m[i] = row
	}
	sol, ok := solveGF256(m, cols)
	if !ok {
		return nil, ErrTooManyErrors
	}
	q := gf256.Polynomial(sol[:k+e])
	eloc := make(gf256.Polynomial, e+1)
	copy(eloc, sol[k+e:])
	eloc[e] = 1 // monic
	p, rem := polyDiv(q, eloc)
	for _, r := range rem {
		if r != 0 {
			return nil, ErrTooManyErrors
		}
	}
	// trim/extend to degree < k
	out := make(gf256.Polynomial, k)
	copy(out, p)
	for i := k; i < len(p); i++ {
		if p[i] != 0 {
			return nil, ErrTooManyErrors
		}
	}
	return out, nil
}

// solveGF256 solves the augmented linear system (rows of length cols+1)
// over GF(256) by Gaussian elimination, returning one solution (free
// variables set to zero). ok is false if the system is inconsistent.
func solveGF256(m [][]byte, cols int) (sol []byte, ok bool) {
	rows := len(m)
	pivotCol := make([]int, 0, cols)
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		// find pivot
		pivot := -1
		for i := r; i < rows; i++ {
			if m[i][c] != 0 {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m[r], m[pivot] = m[pivot], m[r]
		inv := gf256.Inv(m[r][c])
		for j := c; j <= cols; j++ {
			m[r][j] = gf256.Mul(m[r][j], inv)
		}
		for i := 0; i < rows; i++ {
			if i == r || m[i][c] == 0 {
				continue
			}
			f := m[i][c]
			for j := c; j <= cols; j++ {
				m[i][j] ^= gf256.Mul(f, m[r][j])
			}
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	// consistency: zero rows must have zero RHS
	for i := r; i < rows; i++ {
		if m[i][cols] != 0 {
			return nil, false
		}
	}
	sol = make([]byte, cols)
	for i, c := range pivotCol {
		sol[c] = m[i][cols]
	}
	return sol, true
}

// polyDiv divides a by b over GF(256), returning quotient and remainder.
func polyDiv(a, b gf256.Polynomial) (q, r gf256.Polynomial) {
	db := b.Degree()
	if db < 0 {
		//lemonvet:allow panic unexported helper; callers guarantee a nonzero divisor
		panic("rs: division by zero polynomial")
	}
	r = append(gf256.Polynomial(nil), a...)
	if a.Degree() < db {
		return gf256.Polynomial{}, r
	}
	q = make(gf256.Polynomial, a.Degree()-db+1)
	inv := gf256.Inv(b[db])
	for d := a.Degree(); d >= db; d-- {
		if r[d] == 0 {
			continue
		}
		coef := gf256.Mul(r[d], inv)
		q[d-db] = coef
		for j := 0; j <= db; j++ {
			r[d-db+j] ^= gf256.Mul(coef, b[j])
		}
	}
	return q, r
}
