// Package rs implements a systematic Reed-Solomon erasure code over
// GF(2^8) — the "error correction version of Shamir's secret-sharing
// scheme" the paper uses for redundant encoding (§4.1.4, citing McEliece &
// Sarwate).
//
// Encoding: k data shards are interpreted, byte column by byte column, as
// evaluations of a degree-(k-1) polynomial at x = 1..k. The n-k parity
// shards are that polynomial's evaluations at x = k+1..n. Any k of the n
// shards reconstruct every column by Lagrange interpolation, so the code
// tolerates up to n-k erasures — exactly the device-failure erasures a
// k-out-of-n NEMS parallel structure produces.
//
// Unlike Shamir, RS is not secret-hiding on its own (the data shards are
// plaintext); the paper's security argument for the key components comes
// from pairing the encoding with Shamir-style secret shares or from
// encoding an already-random key. Both packages are provided so the
// architectures can choose.
package rs

import (
	"errors"
	"fmt"
)

// MaxShards is the maximum total number of shards (field size limit).
const MaxShards = 255

// ErrTooFewShards is returned when fewer than k shards survive.
var ErrTooFewShards = errors.New("rs: not enough shards to reconstruct")

// Code is a fixed (k, n) Reed-Solomon erasure code.
type Code struct {
	k, n int
}

// New constructs a code with k data shards and n total shards.
func New(k, n int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("rs: k must be >= 1, got %d", k)
	}
	if n < k {
		return nil, fmt.Errorf("rs: n (%d) must be >= k (%d)", n, k)
	}
	if n > MaxShards {
		return nil, fmt.Errorf("rs: n must be <= %d, got %d", MaxShards, n)
	}
	return &Code{k: k, n: n}, nil
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// N returns the total number of shards.
func (c *Code) N() int { return c.n }

// Encode splits data into k shards and appends n-k parity shards.
// len(data) must be a multiple of k (pad upstream if needed). The returned
// slice has n shards of len(data)/k bytes each; the first k are the data
// itself (systematic code).
func (c *Code) Encode(data []byte) ([][]byte, error) {
	shards := make([][]byte, c.n)
	if err := c.EncodeInto(data, shards); err != nil {
		return nil, err
	}
	return shards, nil
}

// Shard pairs a shard index with its bytes, for decoding from survivors.
type Shard struct {
	Index int // 0-based shard index as produced by Encode
	Data  []byte
}

// Decode reconstructs the original data from any k surviving shards.
// Duplicate indices are ignored; shards must agree on length. It is the
// allocating wrapper around DecodeInto; the first survivor's length sizes
// the destination, which DecodeInto's consistency check then holds every
// used shard to.
func (c *Code) Decode(survivors []Shard) ([]byte, error) {
	var dst []byte
	if len(survivors) > 0 {
		dst = make([]byte, c.k*len(survivors[0].Data))
	}
	n, err := c.DecodeInto(survivors, dst)
	if err != nil {
		return nil, err
	}
	return dst[:n], nil
}

// Pad returns data padded with zeros to a multiple of k, plus the original
// length for Unpad.
func Pad(data []byte, k int) ([]byte, int) {
	orig := len(data)
	rem := len(data) % k
	if rem == 0 && len(data) > 0 {
		return data, orig
	}
	padded := make([]byte, len(data)+(k-rem)%k)
	if len(padded) == 0 {
		padded = make([]byte, k)
	}
	copy(padded, data)
	return padded, orig
}

// Unpad trims padded data back to its original length.
func Unpad(data []byte, origLen int) []byte {
	if origLen > len(data) {
		return data
	}
	return data[:origLen]
}
