package rs

import (
	"errors"
	"fmt"
	"sync"

	"lemonade/internal/gf256"
)

// scratch is the shared working set of EncodeInto/DecodeInto and the
// clean-shard fast path in DecodeWithErrors. Instances recycle through
// scratchPool; every buffer is re-sliced and fully written before it is
// read, so pool hits and misses produce identical bytes.
type scratch struct {
	xs     []byte
	xsData []byte
	coeffs []byte
	dist   []int
	row    []byte
	bad    []bool
}

// scratchPool's New field is the deterministic fallback: a miss constructs
// a zero scratch grown on demand.
var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func growBytes(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

func growInts(b []int, n int) []int {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]int, n)
}

func growBools(b []bool, n int) []bool {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]bool, n)
}

// EncodeInto is the destination-buffer form of Encode: shards must have
// length n; each element is resized to len(data)/k bytes, reusing capacity
// where available. The first k shards receive the data itself (systematic
// code); parity shards are built with one MulSliceAdd sweep per data shard
// instead of a per-column Interpolate. Shard buffers must not overlap data
// or each other.
func (c *Code) EncodeInto(data []byte, shards [][]byte) error {
	if len(data) == 0 || len(data)%c.k != 0 {
		return fmt.Errorf("rs: data length %d is not a positive multiple of k=%d", len(data), c.k)
	}
	if len(shards) != c.n {
		return fmt.Errorf("rs: destination holds %d shards, need n=%d", len(shards), c.n)
	}
	shardLen := len(data) / c.k
	for i := range shards {
		shards[i] = growBytes(shards[i], shardLen)
	}
	for i := 0; i < c.k; i++ {
		copy(shards[i], data[i*shardLen:(i+1)*shardLen])
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.xs = growBytes(sc.xs, c.k)
	sc.coeffs = growBytes(sc.coeffs, c.k)
	for i := range sc.xs {
		sc.xs[i] = byte(i + 1)
	}
	// Parity shard at x is Σ_j L_j(x)·dataShard_j — the same scalars the
	// per-column Interpolate computed, applied slice-at-a-time.
	for i := c.k; i < c.n; i++ {
		if err := gf256.LagrangeCoeffs(sc.xs, byte(i+1), sc.coeffs); err != nil {
			return err
		}
		p := shards[i]
		for j := range p {
			p[j] = 0
		}
		for j := 0; j < c.k; j++ {
			gf256.MulSliceAdd(p, shards[j], sc.coeffs[j])
		}
	}
	return nil
}

// selectSurvivors deduplicates survivors by index into sc.dist, keeping
// first occurrences. With stopAtK it stops collecting once k shards are
// found (Decode semantics); otherwise it collects every distinct shard
// (DecodeWithErrors semantics). It validates index range as encountered
// and length consistency across the selected set, returning the shard
// length.
func (c *Code) selectSurvivors(survivors []Shard, sc *scratch, stopAtK bool) (int, error) {
	capHint := c.k
	if !stopAtK {
		capHint = c.n
	}
	dist := growInts(sc.dist, capHint)[:0]
	var seen [MaxShards]bool
	for si := range survivors {
		idx := survivors[si].Index
		if idx < 0 || idx >= c.n {
			sc.dist = dist
			return 0, fmt.Errorf("rs: shard index %d out of range [0,%d)", idx, c.n)
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		dist = append(dist, si)
		if stopAtK && len(dist) == c.k {
			break
		}
	}
	sc.dist = dist
	if len(dist) < c.k {
		return 0, fmt.Errorf("%w: have %d distinct, need %d", ErrTooFewShards, len(dist), c.k)
	}
	shardLen := len(survivors[dist[0]].Data)
	for _, si := range dist {
		if len(survivors[si].Data) != shardLen {
			return 0, errors.New("rs: shards have inconsistent lengths")
		}
	}
	return shardLen, nil
}

// lagrangeRows reconstructs the k data rows into dst (row-major,
// k·shardLen bytes) from the k survivors indexed by dist. Surviving
// systematic shards are copied directly — Lagrange interpolation at a node
// returns that node's value exactly, so the copy is bit-identical to
// interpolating.
func (c *Code) lagrangeRows(dst []byte, survivors []Shard, dist []int, shardLen int, sc *scratch) error {
	sc.xs = growBytes(sc.xs, c.k)
	sc.coeffs = growBytes(sc.coeffs, c.k)
	var rowOf [MaxShards]int16
	for di := 0; di < c.k; di++ {
		rowOf[di] = -1
	}
	for i, si := range dist {
		if idx := survivors[si].Index; idx < c.k {
			rowOf[idx] = int16(i)
		}
		sc.xs[i] = byte(survivors[si].Index + 1)
	}
	for di := 0; di < c.k; di++ {
		out := dst[di*shardLen : (di+1)*shardLen]
		if i := rowOf[di]; i >= 0 {
			copy(out, survivors[dist[i]].Data)
			continue
		}
		if err := gf256.LagrangeCoeffs(sc.xs, byte(di+1), sc.coeffs); err != nil {
			return err
		}
		for j := range out {
			out[j] = 0
		}
		for i, si := range dist {
			gf256.MulSliceAdd(out, survivors[si].Data, sc.coeffs[i])
		}
	}
	return nil
}

// DecodeInto is the destination-buffer form of Decode: it reconstructs the
// original data from any k surviving shards into dst, returning the number
// of bytes written (k times the shard length). dst must be at least that
// long and must not alias survivor data. Shard selection matches Decode:
// first k distinct indices win.
func (c *Code) DecodeInto(survivors []Shard, dst []byte) (int, error) {
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	shardLen, err := c.selectSurvivors(survivors, sc, true)
	if err != nil {
		return 0, err
	}
	need := c.k * shardLen
	if len(dst) < need {
		return 0, fmt.Errorf("rs: dst holds %d bytes, need %d", len(dst), need)
	}
	if err := c.lagrangeRows(dst[:need], survivors, sc.dist, shardLen, sc); err != nil {
		return 0, err
	}
	return need, nil
}
