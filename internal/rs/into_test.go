package rs

import (
	"bytes"
	"testing"
)

// dirty returns a buffer of capacity c deliberately filled with garbage,
// sliced to an arbitrary shorter length — destination reuse must overwrite
// every byte the API contract covers.
func dirty(c int) []byte {
	b := make([]byte, c)
	for i := range b {
		b[i] = 0xDB
	}
	return b[:c/2]
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	c, err := New(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := goldenData(4*33, 0x11)
	want, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Destination with a mix of nil, undersized, and oversized dirty
	// shard buffers.
	dst := make([][]byte, 10)
	for i := range dst {
		switch i % 3 {
		case 0:
			dst[i] = nil
		case 1:
			dst[i] = dirty(10)
		default:
			dst[i] = dirty(100)
		}
	}
	if err := c.EncodeInto(data, dst); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !bytes.Equal(dst[i], want[i]) {
			t.Fatalf("shard %d differs between Encode and EncodeInto", i)
		}
	}
}

func TestDecodeIntoMatchesDecode(t *testing.T) {
	c, err := New(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	data := goldenData(5*17, 0x22)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Parity-heavy survivor set, reversed, with duplicates.
	surv := []Shard{
		{Index: 11, Data: shards[11]},
		{Index: 2, Data: shards[2]},
		{Index: 11, Data: shards[11]},
		{Index: 9, Data: shards[9]},
		{Index: 7, Data: shards[7]},
		{Index: 0, Data: shards[0]},
		{Index: 3, Data: shards[3]},
	}
	want, err := c.Decode(surv)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, data) {
		t.Fatal("Decode did not round-trip")
	}
	dst := make([]byte, len(want)+7)
	for i := range dst {
		dst[i] = 0xDB
	}
	n, err := c.DecodeInto(surv, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || !bytes.Equal(dst[:n], want) {
		t.Fatalf("DecodeInto differs from Decode (n=%d)", n)
	}
	for i := n; i < len(dst); i++ {
		if dst[i] != 0xDB {
			t.Fatalf("DecodeInto wrote past its return length at %d", i)
		}
	}
}

func TestIntoErrors(t *testing.T) {
	c, err := New(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	data := goldenData(9, 0)
	if err := c.EncodeInto(data, make([][]byte, 5)); err == nil {
		t.Error("EncodeInto accepted a short destination slice")
	}
	if err := c.EncodeInto(data[:7], make([][]byte, 6)); err == nil {
		t.Error("EncodeInto accepted a non-multiple data length")
	}
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	surv := []Shard{{0, shards[0]}, {1, shards[1]}, {2, shards[2]}}
	if _, err := c.DecodeInto(surv, make([]byte, 8)); err == nil {
		t.Error("DecodeInto accepted a too-short dst")
	}
	if _, err := c.DecodeInto(surv[:2], make([]byte, 9)); err == nil {
		t.Error("DecodeInto accepted too few shards")
	}
	if _, err := c.DecodeInto([]Shard{{0, shards[0]}, {6, shards[1]}, {2, shards[2]}}, make([]byte, 9)); err == nil {
		t.Error("DecodeInto accepted an out-of-range index")
	}
}

// Steady-state allocation contract: with warm pools and preallocated
// destinations, the Into paths allocate nothing.
func TestIntoNoAllocsSteadyState(t *testing.T) {
	c, err := New(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	data := goldenData(4*32, 0x33)
	shards := make([][]byte, 10)
	if err := c.EncodeInto(data, shards); err != nil {
		t.Fatal(err)
	}
	surv := []Shard{
		{Index: 9, Data: shards[9]},
		{Index: 8, Data: shards[8]},
		{Index: 1, Data: shards[1]},
		{Index: 5, Data: shards[5]},
	}
	dst := make([]byte, len(data))
	if n := testing.AllocsPerRun(200, func() {
		if err := c.EncodeInto(data, shards); err != nil {
			t.Fatal(err)
		}
	}); n >= 1 {
		t.Errorf("EncodeInto steady state allocates %v times per call", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := c.DecodeInto(surv, dst); err != nil {
			t.Fatal(err)
		}
	}); n >= 1 {
		t.Errorf("DecodeInto steady state allocates %v times per call", n)
	}
}

// FuzzEncodeDecodeInto cross-checks the destination-buffer paths against
// the allocating wrappers on fuzz-chosen code shapes, payloads, and
// survivor patterns: both must emit identical bytes (the wrappers ARE the
// Into paths plus an allocation, and the golden files pin the wrappers to
// the pre-kernel implementation).
func FuzzEncodeDecodeInto(f *testing.F) {
	f.Add(uint8(3), uint8(6), uint16(0xBEEF), []byte("0123456789abcdef"))
	f.Add(uint8(0), uint8(0), uint16(0), []byte{})
	f.Add(uint8(15), uint8(200), uint16(0x1234), []byte("x"))
	f.Fuzz(func(t *testing.T, kb, nb uint8, pick uint16, payload []byte) {
		k := int(kb)%24 + 1
		n := k + int(nb)%24
		c, err := New(k, n)
		if err != nil {
			t.Skip()
		}
		if len(payload) == 0 {
			payload = []byte{0xA7}
		}
		data, _ := Pad(payload, k)
		want, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([][]byte, n)
		for i := range dst {
			if i%2 == 0 {
				dst[i] = dirty(len(data)/k + int(pick)%8)
			}
		}
		if err := c.EncodeInto(data, dst); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !bytes.Equal(dst[i], want[i]) {
				t.Fatalf("shard %d differs between Encode and EncodeInto", i)
			}
		}

		// Survivor selection: rotate through indices starting at
		// pick%n, stepping by a pick-derived odd stride to mix data and
		// parity shards, and include one duplicate.
		stride := int(pick>>4)%n | 1
		surv := make([]Shard, 0, k+1)
		for i := 0; len(surv) < k; i++ {
			idx := (int(pick) + i*stride) % n
			surv = append(surv, Shard{Index: idx, Data: want[idx]})
		}
		surv = append(surv, surv[0])
		wantData, wantErr := c.Decode(surv)
		got := make([]byte, k*(len(data)/k))
		gotN, gotErr := c.DecodeInto(surv, got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("Decode err=%v, DecodeInto err=%v", wantErr, gotErr)
		}
		if wantErr == nil {
			if gotN != len(wantData) || !bytes.Equal(got[:gotN], wantData) {
				t.Fatal("DecodeInto output differs from Decode")
			}
		}
	})
}
