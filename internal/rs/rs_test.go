package rs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"lemonade/internal/rng"
)

func TestEncodeDecodeAllShards(t *testing.T) {
	c, err := New(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("abcdefghijklmnop") // 16 bytes, 4 shards of 4
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	// systematic: first k shards are the data
	if !bytes.Equal(shards[0], []byte("abcd")) || !bytes.Equal(shards[3], []byte("mnop")) {
		t.Error("code is not systematic")
	}
	all := make([]Shard, 7)
	for i, s := range shards {
		all[i] = Shard{Index: i, Data: s}
	}
	got, err := c.Decode(all)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("decode = %q", got)
	}
}

func TestDecodeFromParityOnly(t *testing.T) {
	c, _ := New(3, 6)
	data := []byte("123456789") // 3 shards of 3
	shards, _ := c.Encode(data)
	survivors := []Shard{
		{Index: 3, Data: shards[3]},
		{Index: 4, Data: shards[4]},
		{Index: 5, Data: shards[5]},
	}
	got, err := c.Decode(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("parity-only decode = %q, want %q", got, data)
	}
}

func TestDecodeEveryKSubset(t *testing.T) {
	c, _ := New(2, 5)
	data := []byte("hello world!") // 2 shards of 6
	shards, _ := c.Encode(data)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			got, err := c.Decode([]Shard{{i, shards[i]}, {j, shards[j]}})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("subset (%d,%d) decode failed", i, j)
			}
		}
	}
}

func TestTooFewShards(t *testing.T) {
	c, _ := New(3, 5)
	data := []byte("abcdef")
	shards, _ := c.Encode(data)
	_, err := c.Decode([]Shard{{0, shards[0]}, {1, shards[1]}})
	if !errors.Is(err, ErrTooFewShards) {
		t.Errorf("expected ErrTooFewShards, got %v", err)
	}
	// duplicates don't count
	_, err = c.Decode([]Shard{{0, shards[0]}, {0, shards[0]}, {0, shards[0]}})
	if !errors.Is(err, ErrTooFewShards) {
		t.Errorf("duplicates satisfied threshold: %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 5); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := New(5, 3); err == nil {
		t.Error("n<k should error")
	}
	if _, err := New(2, 300); err == nil {
		t.Error("n>255 should error")
	}
	c, _ := New(3, 5)
	if _, err := c.Encode([]byte("ab")); err == nil {
		t.Error("non-multiple data length should error")
	}
	if _, err := c.Encode(nil); err == nil {
		t.Error("empty data should error")
	}
	if _, err := c.Decode([]Shard{{Index: 9, Data: []byte{1}}}); err == nil {
		t.Error("out-of-range shard index should error")
	}
	shards, _ := c.Encode([]byte("abcdef"))
	bad := []Shard{{0, shards[0]}, {1, shards[1][:1]}, {2, shards[2]}}
	if _, err := c.Decode(bad); err == nil {
		t.Error("inconsistent shard lengths should error")
	}
}

func TestKEqualsN(t *testing.T) {
	c, _ := New(4, 4) // no parity: pure striping
	data := []byte("12345678")
	shards, _ := c.Encode(data)
	all := make([]Shard, 4)
	for i := range shards {
		all[i] = Shard{Index: i, Data: shards[i]}
	}
	got, err := c.Decode(all)
	if err != nil || !bytes.Equal(got, data) {
		t.Errorf("k=n round trip failed: %v %q", err, got)
	}
}

func TestK1IsReplication(t *testing.T) {
	c, _ := New(1, 4)
	data := []byte{0xAB, 0xCD}
	shards, _ := c.Encode(data)
	for i, s := range shards {
		if !bytes.Equal(s, data) {
			t.Errorf("k=1 shard %d is not a replica", i)
		}
	}
}

func TestPropertyRandomErasures(t *testing.T) {
	r := rng.New(2024)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		k := 1 + rr.Intn(8)
		n := k + rr.Intn(10)
		c, err := New(k, n)
		if err != nil {
			return false
		}
		data := make([]byte, k*(1+rr.Intn(8)))
		r.Bytes(data)
		shards, err := c.Encode(data)
		if err != nil {
			return false
		}
		perm := rr.Perm(n)[:k] // survive a random k-subset
		survivors := make([]Shard, k)
		for i, idx := range perm {
			survivors[i] = Shard{Index: idx, Data: shards[idx]}
		}
		got, err := c.Decode(survivors)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPadUnpad(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 11} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i + 1)
		}
		padded, orig := Pad(data, 4)
		if len(padded)%4 != 0 || len(padded) == 0 {
			t.Errorf("Pad(%d bytes) -> %d bytes, not positive multiple of 4", n, len(padded))
		}
		got := Unpad(padded, orig)
		if !bytes.Equal(got, data) {
			t.Errorf("Unpad round trip failed for n=%d", n)
		}
	}
}

func TestAccessors(t *testing.T) {
	c, _ := New(3, 9)
	if c.K() != 3 || c.N() != 9 {
		t.Error("accessors wrong")
	}
}
