package rs

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current implementation")

// goldenData builds a deterministic data buffer without an RNG.
func goldenData(n int, salt byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*101+29) ^ salt
	}
	return out
}

// Pins Encode / Decode / DecodeWithErrors output bytes for a grid of
// codes, survivor patterns, and corruption patterns. Generated from the
// pre-kernel per-column implementation; the slice-kernel rewrite and the
// clean-shard fast path must reproduce every line bit for bit — including
// which scenarios error.
func goldenDigests(t *testing.T) string {
	t.Helper()
	var b strings.Builder
	codes := []struct{ k, n int }{{1, 1}, {1, 3}, {2, 3}, {4, 10}, {16, 64}, {10, 12}}
	for _, kn := range codes {
		c, err := New(kn.k, kn.n)
		if err != nil {
			t.Fatal(err)
		}
		data := goldenData(kn.k*31, byte(kn.k^kn.n))
		shards, err := c.Encode(data)
		if err != nil {
			t.Fatalf("Encode(%d,%d): %v", kn.k, kn.n, err)
		}
		h := sha256.New()
		for _, s := range shards {
			h.Write(s)
		}
		fmt.Fprintf(&b, "encode/%d/%d %s\n", kn.k, kn.n, hex.EncodeToString(h.Sum(nil)))

		// Decode from the LAST k shards (favoring parity), reversed, with
		// a duplicate appended.
		surv := make([]Shard, 0, kn.k+1)
		for i := kn.n - 1; i >= kn.n-kn.k; i-- {
			surv = append(surv, Shard{Index: i, Data: shards[i]})
		}
		surv = append(surv, surv[0])
		got, err := c.Decode(surv)
		if err != nil {
			t.Fatalf("Decode(%d,%d): %v", kn.k, kn.n, err)
		}
		sum := sha256.Sum256(got)
		fmt.Fprintf(&b, "decode/%d/%d %s\n", kn.k, kn.n, hex.EncodeToString(sum[:]))

		// DecodeWithErrors over all shards: clean, then with up to e
		// corrupted shards, then with e+1 (must error when e+1 > 0 exceeds
		// the budget).
		e := (kn.n - kn.k) / 2
		for errs := 0; errs <= e+1; errs++ {
			all := make([]Shard, kn.n)
			for i := range all {
				d := append([]byte(nil), shards[i]...)
				all[i] = Shard{Index: i, Data: d}
			}
			for j := 0; j < errs && j < kn.n; j++ {
				// corrupt shard j at a shifting column
				col := (j * 7) % len(all[j].Data)
				all[j].Data[col] ^= 0x5A
			}
			got, err := c.DecodeWithErrors(all)
			switch {
			case err == nil:
				sum := sha256.Sum256(got)
				fmt.Fprintf(&b, "bw/%d/%d/errs=%d %s\n", kn.k, kn.n, errs, hex.EncodeToString(sum[:]))
			case errors.Is(err, ErrTooManyErrors):
				fmt.Fprintf(&b, "bw/%d/%d/errs=%d ERR_TOO_MANY\n", kn.k, kn.n, errs)
			default:
				t.Fatalf("DecodeWithErrors(%d,%d,errs=%d): %v", kn.k, kn.n, errs, err)
			}
		}

		// RecoverPolynomial across clean and singly-corrupted points.
		xs := make([]byte, kn.n)
		ys := make([]byte, kn.n)
		for i := 0; i < kn.n; i++ {
			xs[i] = byte(i + 1)
			ys[i] = shards[i][0]
		}
		p, err := RecoverPolynomial(xs, ys, kn.k)
		if err != nil {
			t.Fatalf("RecoverPolynomial(%d,%d): %v", kn.k, kn.n, err)
		}
		sum = sha256.Sum256(p)
		fmt.Fprintf(&b, "recover/%d/%d %s\n", kn.k, kn.n, hex.EncodeToString(sum[:]))
		if e > 0 {
			ys[1] ^= 0xC3
			p, err := RecoverPolynomial(xs, ys, kn.k)
			if err != nil {
				t.Fatalf("RecoverPolynomial corrupt (%d,%d): %v", kn.k, kn.n, err)
			}
			sum := sha256.Sum256(p)
			fmt.Fprintf(&b, "recover-corrupt/%d/%d %s\n", kn.k, kn.n, hex.EncodeToString(sum[:]))
		}
	}
	return b.String()
}

func TestGoldenCodec(t *testing.T) {
	got := goldenDigests(t)
	path := filepath.Join("testdata", "rs.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
}
