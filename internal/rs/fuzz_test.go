package rs

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte("0123456789ab"), uint8(3), uint8(6), uint64(7))
	f.Add([]byte{1, 2}, uint8(1), uint8(4), uint64(9))
	f.Fuzz(func(t *testing.T, data []byte, k8, n8 uint8, seed uint64) {
		k := int(k8%16) + 1
		n := k + int(n8%32)
		if len(data) == 0 || len(data) > 512 {
			return
		}
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		padded, orig := Pad(data, k)
		shards, err := c.Encode(padded)
		if err != nil {
			t.Fatal(err)
		}
		// decode from a pseudo-random k-subset
		r := rng.New(seed)
		perm := r.Perm(n)[:k]
		survivors := make([]Shard, k)
		for i, idx := range perm {
			survivors[i] = Shard{Index: idx, Data: shards[idx]}
		}
		got, err := c.Decode(survivors)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Unpad(got, orig), data) {
			t.Fatal("erasure round trip failed")
		}
	})
}

func FuzzRecoverPolynomialWithErrors(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(3), uint8(9), uint64(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, k8, n8 uint8, seed uint64, errCount uint8) {
		k := int(k8%8) + 1
		n := k + 2 + int(n8%16)
		if len(data) == 0 || len(data) > 64 {
			return
		}
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		padded, orig := Pad(data, k)
		shards, err := c.Encode(padded)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]Shard, n)
		for i, s := range shards {
			all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
		}
		r := rng.New(seed)
		maxErr := (n - k) / 2
		nErr := int(errCount) % (maxErr + 1)
		for _, idx := range r.Perm(n)[:nErr] {
			pos := r.Intn(len(all[idx].Data))
			all[idx].Data[pos] ^= byte(1 + r.Intn(255))
		}
		got, err := c.DecodeWithErrors(all)
		if err != nil {
			t.Fatalf("k=%d n=%d errs=%d: %v", k, n, nErr, err)
		}
		if !bytes.Equal(Unpad(got, orig), data) {
			t.Fatal("error-correcting round trip failed")
		}
	})
}
