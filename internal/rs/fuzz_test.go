package rs

import (
	"bytes"
	"testing"

	"lemonade/internal/rng"
)

func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte("0123456789ab"), uint8(3), uint8(6), uint64(7))
	f.Add([]byte{1, 2}, uint8(1), uint8(4), uint64(9))
	f.Fuzz(func(t *testing.T, data []byte, k8, n8 uint8, seed uint64) {
		k := int(k8%16) + 1
		n := k + int(n8%32)
		if len(data) == 0 || len(data) > 512 {
			return
		}
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		padded, orig := Pad(data, k)
		shards, err := c.Encode(padded)
		if err != nil {
			t.Fatal(err)
		}
		// decode from a pseudo-random k-subset
		r := rng.New(seed)
		perm := r.Perm(n)[:k]
		survivors := make([]Shard, k)
		for i, idx := range perm {
			survivors[i] = Shard{Index: idx, Data: shards[idx]}
		}
		got, err := c.Decode(survivors)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(Unpad(got, orig), data) {
			t.Fatal("erasure round trip failed")
		}
	})
}

// FuzzRSDecode attacks Decode from the receiver's side: a valid
// k-subset must round-trip, while damaged survivor sets — out-of-range
// indices, duplicates collapsing the set below k, truncated shards,
// flipped data bytes — must produce a clean error or wrong bytes, never
// a panic.
func FuzzRSDecode(f *testing.F) {
	f.Add([]byte("erasure-coded secret"), uint8(3), uint8(6), uint64(1), uint8(0), uint8(0))
	f.Add([]byte{9}, uint8(1), uint8(2), uint64(2), uint8(1), uint8(3))
	f.Add([]byte("0123456789abcdef"), uint8(4), uint8(10), uint64(3), uint8(2), uint8(200))
	f.Fuzz(func(t *testing.T, data []byte, k8, n8 uint8, seed uint64, mode, corrupt uint8) {
		k := int(k8%16) + 1
		n := k + int(n8%32)
		if len(data) == 0 || len(data) > 256 {
			return
		}
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		padded, orig := Pad(data, k)
		shards, err := c.Encode(padded)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		subset := make([]Shard, k)
		for i, idx := range r.Perm(n)[:k] {
			subset[i] = Shard{Index: idx, Data: append([]byte(nil), shards[idx]...)}
		}

		switch mode % 4 {
		case 0: // pristine subset must round-trip
			got, err := c.Decode(subset)
			if err != nil {
				t.Fatalf("Decode on valid shards: %v", err)
			}
			if !bytes.Equal(Unpad(got, orig), data) {
				t.Fatal("valid shards decoded to wrong bytes")
			}
		case 1: // out-of-range index must error, not index out of bounds
			subset[int(corrupt)%k].Index = c.n + int(corrupt)
			if _, err := c.Decode(subset); err == nil {
				t.Fatal("Decode accepted an out-of-range shard index")
			}
		case 2: // duplicate index drops the distinct count below k
			if k < 2 {
				return
			}
			subset[0].Index = subset[1].Index
			if _, err := c.Decode(subset); err == nil {
				t.Fatal("Decode succeeded with a duplicated shard index")
			}
		case 3: // truncated shard must error cleanly
			if k < 2 || len(subset[0].Data) < 2 {
				return
			}
			i := int(corrupt) % k
			subset[i].Data = subset[i].Data[:len(subset[i].Data)-1]
			if _, err := c.Decode(subset); err == nil {
				t.Fatal("Decode succeeded with inconsistent shard lengths")
			}
		}
	})
}

func FuzzRecoverPolynomialWithErrors(f *testing.F) {
	f.Add([]byte("abcdefgh"), uint8(3), uint8(9), uint64(1), uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, k8, n8 uint8, seed uint64, errCount uint8) {
		k := int(k8%8) + 1
		n := k + 2 + int(n8%16)
		if len(data) == 0 || len(data) > 64 {
			return
		}
		c, err := New(k, n)
		if err != nil {
			t.Fatal(err)
		}
		padded, orig := Pad(data, k)
		shards, err := c.Encode(padded)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]Shard, n)
		for i, s := range shards {
			all[i] = Shard{Index: i, Data: append([]byte(nil), s...)}
		}
		r := rng.New(seed)
		maxErr := (n - k) / 2
		nErr := int(errCount) % (maxErr + 1)
		for _, idx := range r.Perm(n)[:nErr] {
			pos := r.Intn(len(all[idx].Data))
			all[idx].Data[pos] ^= byte(1 + r.Intn(255))
		}
		got, err := c.DecodeWithErrors(all)
		if err != nil {
			t.Fatalf("k=%d n=%d errs=%d: %v", k, n, nErr, err)
		}
		if !bytes.Equal(Unpad(got, orig), data) {
			t.Fatal("error-correcting round trip failed")
		}
	})
}
